//! Long-run memory bounds (the hours-long-soak guarantee): a run that
//! offers on the order of 10⁸ events to the metrics registry and the
//! journey tracer must leave both at a fixed, run-length-independent
//! footprint — decimating series, capped drop/ctrl logs, bounded hop ring.
//!
//! The asserted caps are identical in every build; only the event count is
//! scaled down in debug builds so `cargo test` stays fast (the bound being
//! regression-tested — retained state ≤ cap — does not depend on the
//! count, which release CI runs at the full 10⁸).

use adcp_sim::metrics::MetricsRegistry;
use adcp_sim::time::SimTime;
use adcp_sim::trace::{DropReason, HopCtx, JourneyTracer, Site, CTRL_LOG_CAP, DROP_LOG_CAP};

/// Full soak scale in release; two orders smaller under debug profiles.
fn event_count() -> u64 {
    if cfg!(debug_assertions) {
        1_000_000
    } else {
        100_000_000
    }
}

#[test]
fn registry_series_footprint_is_bounded() {
    let mut m = MetricsRegistry::new_enabled();
    let scope = m.scope("tm1");
    let series_cap = 512;
    let qd = m.series(scope, "queue_depth", series_cap);
    let oc = m.series(scope, "occupancy", series_cap);
    let ctr = m.counter(scope, "queue_drops");

    let n = event_count();
    for i in 0..n {
        let t = SimTime(i * 1_000);
        m.sample(qd, t, i % 513);
        if i % 2 == 0 {
            m.sample(oc, t, i % 131);
        }
        if i % 97 == 0 {
            m.inc(ctr);
        }
    }

    // Decimation must keep every series strictly under its cap no matter
    // how many samples were offered, and the registry total under the sum
    // of caps.
    assert!(m.retained_series_points() < 2 * series_cap);
    // The samples were seen (not silently dropped): offered counts are
    // exact even though retention is decimated.
    let json = m.to_json();
    let offered = json
        .get("scopes")
        .and_then(|s| s.get("tm1"))
        .and_then(|s| s.get("series"))
        .and_then(|s| s.get("queue_depth"))
        .and_then(|s| s.get("offered"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert_eq!(offered, n);
}

#[test]
fn tracer_logs_are_bounded_with_exact_forensics() {
    // Serving-daemon configuration: hop ring off (capacity 0) so sharded
    // execution stays enabled, forensics always exact.
    let mut t = JourneyTracer::with_sample(0, 1);
    let n = event_count();
    for i in 0..n {
        let at = SimTime(i * 10);
        let reason = if i % 3 == 0 {
            DropReason::QueueTail { tm: 2, queue: 0 }
        } else {
            DropReason::BufferExhausted { tm: 1 }
        };
        t.record_drop(at, i, Site::CentralPipe(0), reason, HopCtx::NONE);
        if i % 64 == 0 {
            t.record_ctrl(at, adcp_sim::trace::CtrlEvent::EpochBump { epoch: i / 64 });
        }
    }

    // Detailed logs are capped...
    assert!(t.drops().len() <= DROP_LOG_CAP);
    assert!(t.ctrl_events().len() <= CTRL_LOG_CAP);
    assert_eq!(t.drops_truncated(), n - DROP_LOG_CAP as u64);
    // ...while the exact aggregation never loses a record.
    let totals = t.drop_totals_by_reason();
    let qt = totals.get(&("queue_tail", 2)).copied().unwrap_or(0);
    let be = totals.get(&("buffer_exhausted", 1)).copied().unwrap_or(0);
    assert_eq!(qt + be, n);
    assert_eq!(qt, n.div_ceil(3));
}

#[test]
fn hop_ring_evicts_instead_of_growing() {
    let cap = 4_096;
    let mut t = JourneyTracer::new(cap);
    let n = event_count() / 10; // hops are the pricier record; scale down
    for i in 0..n {
        let enter = SimTime(i * 100);
        let exit = SimTime(i * 100 + 40);
        t.record_hop(i, Site::IngressPipe(0), enter, exit, HopCtx::NONE);
    }
    assert!(t.len() <= cap);
    assert_eq!(t.evicted() + t.len() as u64, n);
}
