//! Simulation time, clocks, and clock domains.
//!
//! The entire reproduction runs on integer **picosecond** timestamps. The
//! paper's arguments are about clock frequencies (Tables 2 and 3 are entirely
//! about pipeline frequency vs. port speed), so the substrate models clock
//! domains explicitly: every pipeline, traffic manager, and memory belongs to
//! a [`Clock`] with its own period, and components only make progress on
//! their own clock edges.
//!
//! Integer picoseconds keep the simulation deterministic (no floating-point
//! drift) while still resolving the frequencies the paper discusses: a
//! 1.62 GHz pipeline has a period of 617 ps; an 800 Gbps port serializes one
//! byte every 10 ps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as "never" for idle components.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    pub fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    pub fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Raw picosecond value.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating difference (`self - earlier`), zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "never");
        }
        if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A span of simulation time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from picoseconds.
    pub fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Construct from nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        Duration(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    pub fn from_us(us: u64) -> Self {
        Duration(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    pub fn from_ms(ms: u64) -> Self {
        Duration(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Duration(s * PS_PER_S)
    }

    /// Raw picoseconds.
    pub fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration in fractional nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// A clock frequency.
///
/// Stored in kilohertz so that the frequencies in the paper (e.g. 0.95 GHz,
/// 1.19 GHz, 1.62 GHz) are represented exactly as integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq {
    khz: u64,
}

impl Freq {
    /// Construct from gigahertz (fractional values allowed, e.g. `1.62`).
    pub fn ghz(g: f64) -> Self {
        assert!(g > 0.0, "frequency must be positive");
        Freq {
            khz: (g * 1_000_000.0).round() as u64,
        }
    }

    /// Construct from megahertz.
    pub fn mhz(m: f64) -> Self {
        assert!(m > 0.0, "frequency must be positive");
        Freq {
            khz: (m * 1_000.0).round() as u64,
        }
    }

    /// Construct from an exact kilohertz count.
    pub fn from_khz(khz: u64) -> Self {
        assert!(khz > 0, "frequency must be positive");
        Freq { khz }
    }

    /// Frequency in hertz.
    pub fn as_hz(self) -> u64 {
        self.khz * 1_000
    }

    /// Frequency in fractional gigahertz.
    pub fn as_ghz_f64(self) -> f64 {
        self.khz as f64 / 1_000_000.0
    }

    /// The clock period in picoseconds, rounded to the nearest integer.
    ///
    /// 1.62 GHz → 617 ps; 0.95 GHz → 1053 ps.
    pub fn period(self) -> Duration {
        // period_ps = 1e12 / hz = 1e9 / khz
        Duration((1_000_000_000 + self.khz / 2) / self.khz)
    }

    /// A frequency scaled by an integer multiplier (used by the §4
    /// multi-clock MAT memory, clocked `w×` the pipeline).
    pub fn times(self, n: u64) -> Freq {
        Freq { khz: self.khz * n }
    }

    /// A frequency divided by an integer (used by §3.3 port demultiplexing:
    /// each of the `m` pipelines behind a port runs at `1/m` of the rate the
    /// multiplexed design would need).
    #[allow(clippy::should_implement_trait)] // not `Div`: keeps `Freq / u64` out of the API
    pub fn div(self, n: u64) -> Freq {
        assert!(n > 0);
        Freq { khz: self.khz / n }
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GHz", self.as_ghz_f64())
    }
}

/// A free-running clock: a frequency plus a tick counter.
///
/// Components that belong to a clock domain ask the clock when their next
/// edge is and advance one unit of work per edge. This is what makes
/// "a pipeline retires at most one PHV per cycle" an enforced invariant
/// rather than a convention.
#[derive(Debug, Clone)]
pub struct Clock {
    freq: Freq,
    period: Duration,
    /// Number of edges that have fired.
    ticks: u64,
}

impl Clock {
    /// Create a clock at the given frequency, first edge at t = 0.
    pub fn new(freq: Freq) -> Self {
        Clock {
            freq,
            period: freq.period(),
            ticks: 0,
        }
    }

    /// The clock's frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The clock's period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Number of edges fired so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Time of the next edge.
    pub fn next_edge(&self) -> SimTime {
        SimTime(self.ticks * self.period.0)
    }

    /// Fire the edge at `now`, if due. Returns `true` when the edge fired.
    pub fn try_tick(&mut self, now: SimTime) -> bool {
        if now >= self.next_edge() {
            self.ticks += 1;
            true
        } else {
            false
        }
    }

    /// Wall-clock time corresponding to a given number of this clock's cycles.
    pub fn cycles_to_time(&self, cycles: u64) -> Duration {
        Duration(cycles * self.period.0)
    }
}

/// A coordinator for several clock domains.
///
/// `next_due` returns the earliest next edge across all registered domains,
/// which drives the main simulation loop: advance global time to that edge,
/// tick everything that is due, repeat.
#[derive(Debug, Default)]
pub struct ClockSet {
    clocks: Vec<Clock>,
}

/// Handle to a clock registered in a [`ClockSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockId(pub usize);

impl ClockSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new clock domain; returns its handle.
    pub fn add(&mut self, freq: Freq) -> ClockId {
        self.clocks.push(Clock::new(freq));
        ClockId(self.clocks.len() - 1)
    }

    /// Access a clock by handle.
    pub fn get(&self, id: ClockId) -> &Clock {
        &self.clocks[id.0]
    }

    /// Mutable access to a clock by handle.
    pub fn get_mut(&mut self, id: ClockId) -> &mut Clock {
        &mut self.clocks[id.0]
    }

    /// The earliest pending edge across all domains, or `None` if empty.
    pub fn next_due(&self) -> Option<SimTime> {
        self.clocks.iter().map(|c| c.next_edge()).min()
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// True when no clocks are registered.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }
}

/// An endless sequence of contiguous, equal-width simulation-time slices
/// `[start, end)`, the stepping discipline of a long-running serving loop:
/// inject what arrives inside the slice, run the event loop to the slice
/// boundary, then do control-plane work (SLO accounting, autoscaler tick,
/// metrics streaming) with bounded per-iteration latency instead of
/// running the switch to idle.
#[derive(Debug, Clone)]
pub struct TimeSlicer {
    next: SimTime,
    width: Duration,
}

/// One slice produced by [`TimeSlicer`]: `start <= t < end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// Inclusive slice start.
    pub start: SimTime,
    /// Exclusive slice end.
    pub end: SimTime,
}

impl TimeSlicer {
    /// Slices of `width` starting at `origin`. Panics on zero width.
    pub fn new(origin: SimTime, width: Duration) -> Self {
        assert!(width.as_ps() > 0, "slice width must be positive");
        TimeSlicer {
            next: origin,
            width,
        }
    }

    /// The slice index the next `next()` call will return.
    pub fn upcoming_index(&self) -> u64 {
        self.next.as_ps() / self.width.as_ps()
    }
}

impl Iterator for TimeSlicer {
    type Item = Slice;

    fn next(&mut self) -> Option<Slice> {
        let start = self.next;
        let end = start + self.width;
        self.next = end;
        Some(Slice { start, end })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_slicer_is_contiguous_and_gapless() {
        let mut s = TimeSlicer::new(SimTime::from_us(3), Duration::from_us(5));
        let mut prev_end = SimTime::from_us(3);
        for _ in 0..100 {
            let sl = s.next().unwrap();
            assert_eq!(sl.start, prev_end, "slices must tile without gaps");
            assert_eq!(sl.end - sl.start, Duration::from_us(5));
            prev_end = sl.end;
        }
        assert_eq!(s.upcoming_index(), (3 + 100 * 5) / 5);
    }

    #[test]
    fn period_of_paper_frequencies() {
        // The frequencies that appear in Tables 2 and 3 of the paper.
        assert_eq!(Freq::ghz(1.0).period(), Duration(1000));
        assert_eq!(Freq::ghz(1.62).period(), Duration(617));
        assert_eq!(Freq::ghz(1.25).period(), Duration(800));
        assert_eq!(Freq::ghz(0.95).period(), Duration(1053));
        assert_eq!(Freq::ghz(0.60).period(), Duration(1667));
        assert_eq!(Freq::ghz(1.19).period(), Duration(840));
    }

    #[test]
    fn freq_scaling() {
        let f = Freq::ghz(0.8);
        assert_eq!(f.times(2), Freq::ghz(1.6));
        assert_eq!(f.div(2), Freq::ghz(0.4));
        // §4: MAT memory clocked w× the pipeline.
        let mem = Freq::ghz(0.6).times(16);
        assert!((mem.as_ghz_f64() - 9.6).abs() < 1e-9);
    }

    #[test]
    fn clock_ticks_in_order() {
        let mut c = Clock::new(Freq::ghz(1.0)); // 1000 ps period
        assert_eq!(c.next_edge(), SimTime(0));
        assert!(c.try_tick(SimTime(0)));
        assert_eq!(c.next_edge(), SimTime(1000));
        assert!(!c.try_tick(SimTime(999)));
        assert!(c.try_tick(SimTime(1000)));
        assert_eq!(c.ticks(), 2);
    }

    #[test]
    fn clock_set_orders_domains() {
        let mut set = ClockSet::new();
        let slow = set.add(Freq::ghz(0.5)); // 2000 ps
        let fast = set.add(Freq::ghz(2.0)); // 500 ps
        assert_eq!(set.next_due(), Some(SimTime(0)));
        assert!(set.get_mut(slow).try_tick(SimTime(0)));
        assert!(set.get_mut(fast).try_tick(SimTime(0)));
        // fast is due at 500, slow at 2000.
        assert_eq!(set.next_due(), Some(SimTime(500)));
    }

    #[test]
    fn time_arithmetic_and_display() {
        let t = SimTime::from_ns(3) + Duration::from_ps(500);
        assert_eq!(t.as_ps(), 3500);
        assert_eq!(t - SimTime::from_ns(1), Duration(2500));
        assert_eq!(SimTime(1500).to_string(), "1.500ns");
        assert_eq!(SimTime(999).to_string(), "999ps");
        assert_eq!(SimTime::NEVER.to_string(), "never");
        assert_eq!(
            SimTime::from_us(2).saturating_since(SimTime::from_us(5)),
            Duration::ZERO
        );
    }

    #[test]
    fn cycles_convert_to_time() {
        let c = Clock::new(Freq::ghz(1.25));
        assert_eq!(c.cycles_to_time(10), Duration(8000));
    }
}
