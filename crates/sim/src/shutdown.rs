//! Cooperative shutdown flag for long-running binaries.
//!
//! A process-wide latch that SIGINT / SIGTERM set asynchronously and the
//! simulation loop polls between time slices (or table-1 grid points, or
//! conformance cases). Nothing is interrupted mid-event: the loop notices
//! the latch at its next natural boundary, drains in-flight work, writes a
//! final (partial but internally consistent) report, and exits — the
//! "graceful shutdown" contract every ADCP daemon and experiment harness
//! shares.
//!
//! The handler itself only stores a relaxed atomic — the single
//! async-signal-safe action — so it cannot deadlock or corrupt state no
//! matter where the signal lands. [`trigger`] sets the same latch
//! programmatically, which is how tests (and `--max-wall` style guards)
//! exercise the drain path without raising a real signal.
//!
//! This is the one module in the crate that needs `unsafe`: registering a
//! handler goes through libc's `signal(2)`, which std links but does not
//! wrap. The surface is a single audited `extern` block, gated to unix;
//! elsewhere [`install`] is a no-op and only [`trigger`] can set the latch.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide latch. Never cleared once set — a second SIGINT has
/// nothing further to do (the default-action escalation some daemons use
/// is deliberately not implemented: the drain is bounded by construction).
static REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once a shutdown has been requested by signal or by [`trigger`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Set the latch programmatically (tests, wall-clock guards).
pub fn trigger() {
    REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a single relaxed atomic store.
        REQUESTED.store(true, Ordering::Relaxed);
    }

    // std links libc; `signal` has been in POSIX since forever. The
    // handler type is passed as a plain function pointer.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `on_signal` is async-signal-safe (one atomic store) and
        // has the exact ABI `signal(2)` expects. Re-registration is
        // idempotent.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

/// Register SIGINT/SIGTERM handlers that set the latch. Idempotent; call
/// once at binary start-up. On non-unix targets this is a no-op and the
/// latch can only be set via [`trigger`].
pub fn install() {
    sys::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_sets_the_latch_and_install_is_idempotent() {
        install();
        install();
        // The latch may already be set if another test triggered it —
        // the API only promises monotonicity.
        trigger();
        assert!(requested());
    }
}
