//! Bounded queues and shared-memory buffer pools.
//!
//! The traffic managers in both switch models are *output-buffered
//! shared-memory* schedulers (the paper cites Arpaci & Copeland's survey for
//! this). Packets admitted to a TM take buffer *cells* from a shared
//! [`BufferPool`]; per-destination [`BoundedQueue`]s hold the packets until
//! the scheduler releases them. Exhaustion of either bound is a tail drop,
//! and every drop is counted — the conservation tests check
//! `in = out + drops + in-flight` across the whole switch.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Outcome of attempting to enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    /// Packet accepted.
    Ok,
    /// Packet rejected: the queue's own packet bound was hit.
    DroppedQueueFull,
    /// Packet rejected: the shared buffer pool had no cells left.
    DroppedNoBuffer,
}

impl EnqueueResult {
    /// True when the packet was accepted.
    pub fn is_ok(self) -> bool {
        matches!(self, EnqueueResult::Ok)
    }
}

/// A FIFO bounded in packets and (optionally) bytes.
#[derive(Debug, Default)]
pub struct BoundedQueue {
    items: VecDeque<Packet>,
    max_pkts: usize,
    max_bytes: Option<u64>,
    cur_bytes: u64,
    /// Packets dropped because this queue was full.
    pub drops: u64,
    /// Packets that have ever been enqueued successfully.
    pub enqueued: u64,
    /// Packets dequeued.
    pub dequeued: u64,
    /// High-water mark in packets.
    pub hwm_pkts: usize,
}

impl BoundedQueue {
    /// Queue bounded to `max_pkts` packets.
    pub fn new(max_pkts: usize) -> Self {
        BoundedQueue {
            max_pkts,
            ..Default::default()
        }
    }

    /// Additionally bound the queue in frame bytes.
    pub fn with_byte_limit(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Frame bytes currently queued.
    pub fn bytes(&self) -> u64 {
        self.cur_bytes
    }

    /// Would an enqueue of `p` be admitted?
    pub fn has_room(&self, p: &Packet) -> bool {
        if self.items.len() >= self.max_pkts {
            return false;
        }
        if let Some(mb) = self.max_bytes {
            if self.cur_bytes + p.frame_bytes() as u64 > mb {
                return false;
            }
        }
        true
    }

    /// Enqueue, tail-dropping when full.
    pub fn push(&mut self, p: Packet) -> EnqueueResult {
        if !self.has_room(&p) {
            self.drops += 1;
            return EnqueueResult::DroppedQueueFull;
        }
        self.cur_bytes += p.frame_bytes() as u64;
        self.items.push_back(p);
        self.enqueued += 1;
        self.hwm_pkts = self.hwm_pkts.max(self.items.len());
        EnqueueResult::Ok
    }

    /// Dequeue the head.
    pub fn pop(&mut self) -> Option<Packet> {
        let p = self.items.pop_front()?;
        self.cur_bytes -= p.frame_bytes() as u64;
        self.dequeued += 1;
        Some(p)
    }

    /// Peek the head without removing it.
    pub fn peek(&self) -> Option<&Packet> {
        self.items.front()
    }

    /// Remove and return the first packet matching a predicate (used by
    /// rank-ordered schedulers that depart from queue interiors).
    pub fn take_first(&mut self, pred: impl Fn(&Packet) -> bool) -> Option<Packet> {
        let idx = self.items.iter().position(pred)?;
        let p = self.items.remove(idx).expect("index from position");
        self.cur_bytes -= p.frame_bytes() as u64;
        self.dequeued += 1;
        Some(p)
    }
}

/// Shared-memory cell accounting for a traffic manager.
///
/// A pool of `total_cells` fixed-size cells; a packet of `n` frame bytes
/// consumes `ceil(n / cell_bytes)` cells while buffered.
#[derive(Debug, Clone)]
pub struct BufferPool {
    total_cells: u64,
    cell_bytes: u32,
    used_cells: u64,
    /// Admissions refused for lack of cells.
    pub refusals: u64,
    /// High-water mark of used cells.
    pub hwm_cells: u64,
}

impl BufferPool {
    /// Pool with `total_cells` cells of `cell_bytes` each.
    pub fn new(total_cells: u64, cell_bytes: u32) -> Self {
        assert!(cell_bytes > 0);
        BufferPool {
            total_cells,
            cell_bytes,
            used_cells: 0,
            refusals: 0,
            hwm_cells: 0,
        }
    }

    /// Cells needed to hold a packet.
    pub fn cells_for(&self, p: &Packet) -> u64 {
        let b = p.frame_bytes().max(1) as u64;
        b.div_ceil(self.cell_bytes as u64)
    }

    /// Cells currently allocated.
    pub fn used(&self) -> u64 {
        self.used_cells
    }

    /// Cells free.
    pub fn free(&self) -> u64 {
        self.total_cells - self.used_cells
    }

    /// Total capacity in cells.
    pub fn capacity(&self) -> u64 {
        self.total_cells
    }

    /// Try to allocate cells for a packet. Returns `false` (and counts a
    /// refusal) when the pool cannot hold it. On success the charged cell
    /// count is snapshotted into `p.meta.buf_cells` so [`release`] returns
    /// exactly what was taken, even if the frame is rewritten (re-sealed,
    /// header grown or shrunk) while buffered.
    ///
    /// [`release`]: BufferPool::release
    pub fn try_alloc(&mut self, p: &mut Packet) -> bool {
        debug_assert!(
            p.meta.buf_cells.is_none(),
            "double alloc: packet already holds cells"
        );
        let need = self.cells_for(p);
        if self.used_cells + need > self.total_cells {
            self.refusals += 1;
            return false;
        }
        self.used_cells += need;
        self.hwm_cells = self.hwm_cells.max(self.used_cells);
        p.meta.buf_cells = Some(need as u32);
        true
    }

    /// Release the cells held by a packet, consuming its allocation token.
    ///
    /// Recomputing `cells_for(p)` here — what this used to do — silently
    /// leaked cells when a buffered frame shrank and underflowed the pool
    /// when it grew.
    pub fn release(&mut self, p: &mut Packet) {
        let held = match p.meta.buf_cells.take() {
            Some(n) => n as u64,
            None => {
                debug_assert!(false, "release without an allocation token");
                self.cells_for(p)
            }
        };
        debug_assert!(self.used_cells >= held, "buffer pool underflow");
        self.used_cells = self.used_cells.saturating_sub(held);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{synthetic_packet, FlowId};

    fn pkt(id: u64, len: usize) -> Packet {
        synthetic_packet(id, FlowId(1), len)
    }

    #[test]
    fn fifo_order_and_counters() {
        let mut q = BoundedQueue::new(4);
        for i in 0..3 {
            assert!(q.push(pkt(i, 100)).is_ok());
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.bytes(), 300);
        assert_eq!(q.pop().unwrap().meta.id, 0);
        assert_eq!(q.pop().unwrap().meta.id, 1);
        assert_eq!(q.dequeued, 2);
        assert_eq!(q.enqueued, 3);
        assert_eq!(q.hwm_pkts, 3);
    }

    #[test]
    fn packet_bound_tail_drops() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(pkt(0, 64)).is_ok());
        assert!(q.push(pkt(1, 64)).is_ok());
        assert_eq!(q.push(pkt(2, 64)), EnqueueResult::DroppedQueueFull);
        assert_eq!(q.drops, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_bound_tail_drops() {
        let mut q = BoundedQueue::new(100).with_byte_limit(200);
        assert!(q.push(pkt(0, 150)).is_ok());
        assert_eq!(q.push(pkt(1, 100)), EnqueueResult::DroppedQueueFull);
        assert!(q.push(pkt(2, 50)).is_ok());
        assert_eq!(q.bytes(), 200);
    }

    #[test]
    fn pool_allocates_in_cells() {
        let mut pool = BufferPool::new(10, 80);
        let mut p = pkt(0, 100); // 2 cells of 80 B
        assert_eq!(pool.cells_for(&p), 2);
        assert!(pool.try_alloc(&mut p));
        assert_eq!(p.meta.buf_cells, Some(2));
        assert_eq!(pool.used(), 2);
        pool.release(&mut p);
        assert_eq!(p.meta.buf_cells, None, "token consumed on release");
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.free(), 10);
    }

    #[test]
    fn pool_refuses_when_exhausted() {
        let mut pool = BufferPool::new(3, 64);
        let mut big = pkt(0, 200); // 4 cells — never fits
        assert!(!pool.try_alloc(&mut big));
        assert_eq!(big.meta.buf_cells, None, "refused alloc leaves no token");
        assert_eq!(pool.refusals, 1);
        for id in 1..=3 {
            assert!(pool.try_alloc(&mut pkt(id, 64)));
        }
        assert!(!pool.try_alloc(&mut pkt(4, 64)));
        assert_eq!(pool.refusals, 2);
        assert_eq!(pool.hwm_cells, 3);
    }

    #[test]
    fn pool_release_matches_alloc_for_rewritten_frames() {
        // Regression: `release` used to recompute `cells_for` from the frame
        // length at release time, so a frame rewritten while buffered leaked
        // cells (shrink) or underflowed the pool (grow).
        let mut pool = BufferPool::new(100, 64);

        // Shrink in flight: alloc 2 cells, rewrite to a 1-cell frame.
        let mut p = pkt(0, 128); // 2 cells
        assert!(pool.try_alloc(&mut p));
        assert_eq!(pool.used(), 2);
        p.data = vec![0u8; 60].into();
        p.reseal();
        pool.release(&mut p);
        assert_eq!(pool.used(), 0, "shrunk frame must not leak cells");

        // Grow in flight: alloc 1 cell, rewrite to a 3-cell frame.
        let mut p = pkt(1, 60); // 1 cell
        assert!(pool.try_alloc(&mut p));
        assert_eq!(pool.used(), 1);
        p.data = vec![0u8; 180].into();
        p.reseal();
        pool.release(&mut p);
        assert_eq!(pool.used(), 0, "grown frame must not underflow the pool");
        assert_eq!(pool.free(), 100);
    }
}
