//! Fault injection, in the spirit of smoltcp's example harnesses.
//!
//! A [`FaultInjector`] sits on a link and randomly drops, corrupts, or
//! delays packets. The integration tests use it to confirm that the switch
//! models degrade gracefully (conservation still holds: every injected drop
//! is counted) and that application-level aggregation tolerates loss.

use crate::packet::Packet;
use crate::rng::SimRng;
use crate::time::Duration;

/// What the injector decided to do with a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Packet passes unharmed.
    Pass,
    /// Packet was dropped.
    Dropped,
    /// One byte of the packet was flipped.
    Corrupted,
    /// Packet passes but delayed by the given extra latency.
    Delayed(Duration),
}

/// Configuration for a fault injector.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability a packet is dropped.
    pub drop_chance: f64,
    /// Probability one byte of a surviving packet is flipped.
    pub corrupt_chance: f64,
    /// Probability a surviving packet is delayed.
    pub delay_chance: f64,
    /// Maximum extra delay applied when a delay fault fires.
    pub max_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            delay_chance: 0.0,
            max_delay: Duration::from_ns(1000),
        }
    }
}

impl FaultConfig {
    /// A lossy link with the given drop probability.
    pub fn lossy(drop_chance: f64) -> Self {
        FaultConfig {
            drop_chance,
            ..Default::default()
        }
    }
}

/// Stateful fault injector for one link.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
    /// Packets dropped by this injector.
    pub dropped: u64,
    /// Packets corrupted.
    pub corrupted: u64,
    /// Packets delayed.
    pub delayed: u64,
    /// Packets passed untouched.
    pub passed: u64,
}

impl FaultInjector {
    /// Injector with its own random stream.
    pub fn new(cfg: FaultConfig, rng: SimRng) -> Self {
        FaultInjector {
            cfg,
            rng,
            dropped: 0,
            corrupted: 0,
            delayed: 0,
            passed: 0,
        }
    }

    /// An injector that never faults (handy default wiring).
    pub fn transparent() -> Self {
        FaultInjector::new(FaultConfig::default(), SimRng::seed_from(0))
    }

    /// Apply faults to a packet. On `Dropped` the caller must discard the
    /// packet (and account it); on `Corrupted` the payload has been mutated
    /// in place.
    pub fn apply(&mut self, p: &mut Packet) -> FaultOutcome {
        if self.rng.chance(self.cfg.drop_chance) {
            self.dropped += 1;
            return FaultOutcome::Dropped;
        }
        if self.rng.chance(self.cfg.corrupt_chance) && !p.data.is_empty() {
            let idx = self.rng.index(p.data.len());
            let bit = 1u8 << self.rng.range(0..8u8);
            let mut buf = p.data.to_vec();
            buf[idx] ^= bit;
            p.data = buf.into();
            self.corrupted += 1;
            return FaultOutcome::Corrupted;
        }
        if self.rng.chance(self.cfg.delay_chance) {
            let extra = Duration(self.rng.range(0..=self.cfg.max_delay.as_ps()));
            self.delayed += 1;
            return FaultOutcome::Delayed(extra);
        }
        self.passed += 1;
        FaultOutcome::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{synthetic_packet, FlowId};

    #[test]
    fn transparent_injector_passes_everything() {
        let mut inj = FaultInjector::transparent();
        for i in 0..100 {
            let mut p = synthetic_packet(i, FlowId(1), 128);
            assert_eq!(inj.apply(&mut p), FaultOutcome::Pass);
        }
        assert_eq!(inj.passed, 100);
        assert_eq!(inj.dropped + inj.corrupted + inj.delayed, 0);
    }

    #[test]
    fn drop_rate_close_to_configured() {
        let mut inj = FaultInjector::new(FaultConfig::lossy(0.15), SimRng::seed_from(1));
        let n = 20_000;
        for i in 0..n {
            let mut p = synthetic_packet(i, FlowId(1), 64);
            inj.apply(&mut p);
        }
        let rate = inj.dropped as f64 / n as f64;
        assert!((0.13..0.17).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let cfg = FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        };
        let mut inj = FaultInjector::new(cfg, SimRng::seed_from(2));
        let orig = synthetic_packet(7, FlowId(1), 256);
        let mut p = orig.clone();
        assert_eq!(inj.apply(&mut p), FaultOutcome::Corrupted);
        let diff_bits: u32 = orig
            .data
            .iter()
            .zip(p.data.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
        assert_eq!(orig.data.len(), p.data.len());
    }

    #[test]
    fn corruption_breaks_the_frame_check() {
        let cfg = FaultConfig {
            corrupt_chance: 1.0,
            ..Default::default()
        };
        let mut inj = FaultInjector::new(cfg, SimRng::seed_from(7));
        for i in 0..32 {
            let mut p = synthetic_packet(i, FlowId(1), 128).seal();
            assert!(p.fcs_ok());
            assert!(p.meta.fcs.is_some());
            let out = inj.apply(&mut p);
            assert!(matches!(out, FaultOutcome::Corrupted));
            assert!(
                !p.fcs_ok(),
                "a flipped bit must make the sealed frame fail its check"
            );
        }
    }

    #[test]
    fn delays_are_bounded() {
        let cfg = FaultConfig {
            delay_chance: 1.0,
            max_delay: Duration::from_ns(50),
            ..Default::default()
        };
        let mut inj = FaultInjector::new(cfg, SimRng::seed_from(3));
        for i in 0..200 {
            let mut p = synthetic_packet(i, FlowId(1), 64);
            match inj.apply(&mut p) {
                FaultOutcome::Delayed(d) => assert!(d <= Duration::from_ns(50)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn outcomes_are_accounted_exhaustively() {
        let cfg = FaultConfig {
            drop_chance: 0.2,
            corrupt_chance: 0.2,
            delay_chance: 0.2,
            max_delay: Duration::from_ns(10),
        };
        let mut inj = FaultInjector::new(cfg, SimRng::seed_from(4));
        let n = 5_000;
        for i in 0..n {
            let mut p = synthetic_packet(i, FlowId(1), 64);
            inj.apply(&mut p);
        }
        assert_eq!(inj.passed + inj.dropped + inj.corrupted + inj.delayed, n);
    }
}
