//! Per-stage metrics registry: one uniform path for every number a switch
//! model reports.
//!
//! The paper's claims are *per-stage* latency/throughput arguments (central
//! pipelines, §3.1; key-rate vs packet-rate, §3.2), so the simulator needs
//! per-stage visibility: which stage a packet spent its time in, how deep
//! each queue ran, how full each buffer pool was. This module provides a
//! lightweight registry of named scopes (parser, MAU stages, TM1/TM2,
//! central pipelines, queues, deparser), each holding:
//!
//! * **counters** — monotonically increasing event counts;
//! * **gauges** — instantaneous values with a high-water mark;
//! * **histograms** — the fixed [`LatencyHist`], for span-style stage
//!   timing recorded on every packet;
//! * **time series** — bounded, self-decimating `(time, value)` samples for
//!   queue-depth and buffer-occupancy traces.
//!
//! Handles ([`CounterId`], [`GaugeId`], [`HistId`], [`SeriesId`]) are plain
//! vector indices, so the hot path is an array index plus an integer add —
//! no string hashing per event. The whole registry can be disabled (the
//! `ADCP_METRICS=off` environment variable, or
//! [`MetricsRegistry::new_disabled`]) so `bench_snapshot` can measure the
//! instrumentation overhead itself; recording into a disabled registry is a
//! branch and a return.
//!
//! [`MetricsRegistry::to_json`] exports everything as one JSON object with
//! a stable shape (validated against `schemas/metrics.schema.json` in CI),
//! embedded in every `--json` AppReport and dumped by the `adcp-trace`
//! binary.

use crate::stats::LatencyHist;
use crate::time::{Duration, SimTime};
use serde::{Map, Value};

/// Handle to a named scope (a pipeline stage or other component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(usize);

/// Handle to a counter registered in some scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge registered in some scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a latency histogram registered in some scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// Handle to a time series registered in some scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A bounded `(time, value)` series that decimates itself under pressure.
///
/// The series keeps every `stride`-th offered sample; when the buffer
/// reaches capacity it drops every other retained point and doubles the
/// stride, so memory stays bounded while the full simulated time range
/// remains covered (at progressively coarser resolution).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    cap: usize,
    stride: u64,
    seen: u64,
    hwm: u64,
    points: Vec<(u64, u64)>,
}

impl TimeSeries {
    /// Series bounded to at most `cap` retained points (`cap >= 2`).
    pub fn new(cap: usize) -> Self {
        TimeSeries {
            cap: cap.max(2),
            stride: 1,
            seen: 0,
            hwm: 0,
            points: Vec::new(),
        }
    }

    /// Offer a sample at simulated time `t`.
    pub fn offer(&mut self, t: SimTime, v: u64) {
        self.hwm = self.hwm.max(v);
        if self.seen.is_multiple_of(self.stride) {
            self.points.push((t.as_ps(), v));
            if self.points.len() >= self.cap {
                // Halve resolution: keep even-indexed points, double stride.
                let mut i = 0u32;
                self.points.retain(|_| {
                    let keep = i.is_multiple_of(2);
                    i += 1;
                    keep
                });
                self.stride *= 2;
            }
        }
        self.seen += 1;
    }

    /// Samples offered (not all are retained).
    pub fn offered(&self) -> u64 {
        self.seen
    }

    /// Retained `(time_ps, value)` points, oldest first.
    pub fn points(&self) -> &[(u64, u64)] {
        &self.points
    }

    /// Current decimation stride (1 = every offered sample retained).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Largest value ever offered, 0 if none. Tracked exactly, independent
    /// of decimation.
    pub fn max_value(&self) -> u64 {
        self.hwm
    }
}

#[derive(Debug, Clone)]
struct Named<T> {
    scope: usize,
    name: String,
    value: T,
}

/// Registry of per-stage metrics for one switch instance.
///
/// See the [module docs](self) for the model. Typical use:
///
/// ```
/// use adcp_sim::metrics::MetricsRegistry;
/// use adcp_sim::time::{Duration, SimTime};
///
/// let mut m = MetricsRegistry::new_enabled();
/// let parser = m.scope("parser");
/// let errors = m.counter(parser, "errors");
/// let span = m.hist(parser, "span_ps");
/// m.inc(errors);
/// m.record(span, Duration(1500));
/// let json = m.to_json();
/// assert!(json.get("scopes").is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    enabled: bool,
    scopes: Vec<String>,
    counters: Vec<Named<u64>>,
    gauges: Vec<Named<Gauge>>,
    hists: Vec<Named<LatencyHist>>,
    series: Vec<Named<TimeSeries>>,
}

#[derive(Debug, Clone, Default)]
struct Gauge {
    value: u64,
    hwm: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::from_env()
    }
}

impl MetricsRegistry {
    /// Registry with collection on.
    pub fn new_enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            scopes: Vec::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Registry with collection off: registration still hands out valid
    /// handles, but every record call is a branch-and-return. Used by
    /// `bench_snapshot` to measure instrumentation overhead.
    pub fn new_disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            ..Self::new_enabled()
        }
    }

    /// Registry honoring the `ADCP_METRICS` environment variable:
    /// `off`, `0`, or `false` disable collection; anything else (including
    /// unset) enables it.
    pub fn from_env() -> Self {
        match std::env::var("ADCP_METRICS") {
            Ok(v) if matches!(v.as_str(), "off" | "0" | "false") => Self::new_disabled(),
            _ => Self::new_enabled(),
        }
    }

    /// Is collection on? Hot paths branch on this before computing sample
    /// values (queue depths walk every queue), so a disabled registry costs
    /// one predictable branch per call site.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Find or create the scope named `name`.
    pub fn scope(&mut self, name: &str) -> ScopeId {
        if let Some(i) = self.scopes.iter().position(|s| s == name) {
            return ScopeId(i);
        }
        self.scopes.push(name.to_string());
        ScopeId(self.scopes.len() - 1)
    }

    /// Find or create a counter in `scope`.
    pub fn counter(&mut self, scope: ScopeId, name: &str) -> CounterId {
        if let Some(i) = self
            .counters
            .iter()
            .position(|c| c.scope == scope.0 && c.name == name)
        {
            return CounterId(i);
        }
        self.counters.push(Named {
            scope: scope.0,
            name: name.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Find or create a gauge in `scope`.
    pub fn gauge(&mut self, scope: ScopeId, name: &str) -> GaugeId {
        if let Some(i) = self
            .gauges
            .iter()
            .position(|g| g.scope == scope.0 && g.name == name)
        {
            return GaugeId(i);
        }
        self.gauges.push(Named {
            scope: scope.0,
            name: name.to_string(),
            value: Gauge::default(),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Find or create a latency histogram in `scope`.
    pub fn hist(&mut self, scope: ScopeId, name: &str) -> HistId {
        if let Some(i) = self
            .hists
            .iter()
            .position(|h| h.scope == scope.0 && h.name == name)
        {
            return HistId(i);
        }
        self.hists.push(Named {
            scope: scope.0,
            name: name.to_string(),
            value: LatencyHist::new(),
        });
        HistId(self.hists.len() - 1)
    }

    /// Find or create a time series in `scope`, bounded to `cap` points.
    pub fn series(&mut self, scope: ScopeId, name: &str, cap: usize) -> SeriesId {
        if let Some(i) = self
            .series
            .iter()
            .position(|s| s.scope == scope.0 && s.name == name)
        {
            return SeriesId(i);
        }
        self.series.push(Named {
            scope: scope.0,
            name: name.to_string(),
            value: TimeSeries::new(cap),
        });
        SeriesId(self.series.len() - 1)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        if self.enabled {
            self.counters[id.0].value += 1;
        }
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled {
            self.counters[id.0].value += n;
        }
    }

    /// Overwrite a counter's value (used when mirroring a counter that is
    /// maintained elsewhere into the registry at quiescence).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        if self.enabled {
            self.counters[id.0].value = v;
        }
    }

    /// Set a gauge's instantaneous value (high-water mark kept).
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: u64) {
        if self.enabled {
            let g = &mut self.gauges[id.0].value;
            g.value = v;
            g.hwm = g.hwm.max(v);
        }
    }

    /// Record a duration into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistId, d: Duration) {
        if self.enabled {
            self.hists[id.0].value.record(d);
        }
    }

    /// Record the span between two simulation points into a histogram.
    ///
    /// `to` must not precede `from`: debug builds assert (also enforced in
    /// [`LatencyHist::record_span`]), release builds saturate to zero —
    /// checked here as well so a disabled registry still catches the
    /// mis-ordered pair in debug runs.
    #[inline]
    pub fn record_span(&mut self, id: HistId, from: SimTime, to: SimTime) {
        debug_assert!(
            to >= from,
            "record_span: to ({to}) precedes from ({from}); span would underflow"
        );
        if self.enabled {
            self.hists[id.0].value.record_span(from, to);
        }
    }

    /// Offer a `(time, value)` sample to a series.
    #[inline]
    pub fn sample(&mut self, id: SeriesId, t: SimTime, v: u64) {
        if self.enabled {
            self.series[id.0].value.offer(t, v);
        }
    }

    /// Look up a counter's current value by scope and name (slow path, for
    /// tests and cross-target conformance checks).
    pub fn counter_value(&self, scope: &str, name: &str) -> Option<u64> {
        let si = self.scopes.iter().position(|s| s == scope)?;
        self.counters
            .iter()
            .find(|c| c.scope == si && c.name == name)
            .map(|c| c.value)
    }

    /// Total `(t, v)` points currently retained across every registered
    /// series — the only part of the registry whose size could depend on
    /// run length. Counters, gauges and histograms are fixed-size at
    /// registration, and every series self-decimates at its cap, so this
    /// number (and hence the registry's footprint) must hold steady over
    /// an arbitrarily long soak; the memory-bound regression test pins
    /// that down.
    pub fn retained_series_points(&self) -> usize {
        self.series.iter().map(|s| s.value.points().len()).sum()
    }

    /// Shared access to a histogram by scope and name (slow path).
    pub fn hist_ref(&self, scope: &str, name: &str) -> Option<&LatencyHist> {
        let si = self.scopes.iter().position(|s| s == scope)?;
        self.hists
            .iter()
            .find(|h| h.scope == si && h.name == name)
            .map(|h| &h.value)
    }

    /// Export the registry as one JSON object:
    ///
    /// ```json
    /// {
    ///   "enabled": true,
    ///   "scopes": {
    ///     "<scope>": {
    ///       "counters": {"<name>": 7},
    ///       "gauges":   {"<name>": {"value": 3, "hwm": 9}},
    ///       "hists":    {"<name>": {"count": …, "min_ps": …, "mean_ps": …,
    ///                                "p50_ps": …, "p99_ps": …,
    ///                                "p99_upper_ps": …, "max_ps": …,
    ///                                "overflow": …}},
    ///       "series":   {"<name>": {"offered": …, "stride": …,
    ///                                "points": [[t_ps, v], …]}}
    ///     }
    ///   }
    /// }
    /// ```
    ///
    /// Scope and metric order is registration order (deterministic), so the
    /// encoded JSON is byte-stable for a given simulation.
    pub fn to_json(&self) -> Value {
        let mut scopes = Map::new();
        for (si, sname) in self.scopes.iter().enumerate() {
            let mut counters = Map::new();
            for c in self.counters.iter().filter(|c| c.scope == si) {
                counters.insert(c.name.clone(), Value::U64(c.value));
            }
            let mut gauges = Map::new();
            for g in self.gauges.iter().filter(|g| g.scope == si) {
                let mut o = Map::new();
                o.insert("value".into(), Value::U64(g.value.value));
                o.insert("hwm".into(), Value::U64(g.value.hwm));
                gauges.insert(g.name.clone(), Value::Object(o));
            }
            let mut hists = Map::new();
            for h in self.hists.iter().filter(|h| h.scope == si) {
                hists.insert(h.name.clone(), hist_json(&h.value));
            }
            let mut series = Map::new();
            for s in self.series.iter().filter(|s| s.scope == si) {
                let mut o = Map::new();
                o.insert("offered".into(), Value::U64(s.value.offered()));
                o.insert("stride".into(), Value::U64(s.value.stride()));
                o.insert(
                    "points".into(),
                    Value::Array(
                        s.value
                            .points()
                            .iter()
                            .map(|&(t, v)| Value::Array(vec![Value::U64(t), Value::U64(v)]))
                            .collect(),
                    ),
                );
                series.insert(s.name.clone(), Value::Object(o));
            }
            let mut scope = Map::new();
            scope.insert("counters".into(), Value::Object(counters));
            scope.insert("gauges".into(), Value::Object(gauges));
            scope.insert("hists".into(), Value::Object(hists));
            scope.insert("series".into(), Value::Object(series));
            scopes.insert(sname.clone(), Value::Object(scope));
        }
        let mut root = Map::new();
        root.insert("enabled".into(), Value::Bool(self.enabled));
        root.insert("scopes".into(), Value::Object(scopes));
        Value::Object(root)
    }
}

fn hist_json(h: &LatencyHist) -> Value {
    let mut o = Map::new();
    o.insert("count".into(), Value::U64(h.count()));
    o.insert("min_ps".into(), Value::U64(h.min_ps()));
    o.insert("mean_ps".into(), Value::F64(h.mean_ps()));
    o.insert("p50_ps".into(), Value::U64(h.percentile_ps(0.50)));
    o.insert("p99_ps".into(), Value::U64(h.percentile_ps(0.99)));
    o.insert(
        "p99_upper_ps".into(),
        Value::U64(h.percentile_upper_ps(0.99)),
    );
    o.insert("max_ps".into(), Value::U64(h.max_ps()));
    o.insert("overflow".into(), Value::U64(h.overflow_count()));
    Value::Object(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_idempotent() {
        let mut m = MetricsRegistry::new_enabled();
        let a = m.scope("parser");
        let b = m.scope("tm1");
        assert_eq!(m.scope("parser"), a);
        let c1 = m.counter(a, "errors");
        let c2 = m.counter(b, "errors");
        assert_ne!(c1, c2, "same name in different scopes is distinct");
        assert_eq!(m.counter(a, "errors"), c1);
        m.inc(c1);
        m.add(c1, 4);
        assert_eq!(m.counter_value("parser", "errors"), Some(5));
        assert_eq!(m.counter_value("tm1", "errors"), Some(0));
        assert_eq!(m.counter_value("nope", "errors"), None);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::new_disabled();
        let s = m.scope("tm1");
        let c = m.counter(s, "drops");
        let h = m.hist(s, "span_ps");
        let ts = m.series(s, "depth", 8);
        m.inc(c);
        m.record(h, Duration(100));
        m.sample(ts, SimTime(1), 5);
        assert_eq!(m.counter_value("tm1", "drops"), Some(0));
        assert_eq!(m.hist_ref("tm1", "span_ps").unwrap().count(), 0);
        let json = m.to_json();
        assert_eq!(json.get("enabled").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn gauge_tracks_hwm() {
        let mut m = MetricsRegistry::new_enabled();
        let s = m.scope("pool");
        let g = m.gauge(s, "used");
        m.set_gauge(g, 10);
        m.set_gauge(g, 3);
        let json = m.to_json();
        let gj = json
            .get("scopes")
            .and_then(|v| v.get("pool"))
            .and_then(|v| v.get("gauges"))
            .and_then(|v| v.get("used"))
            .expect("gauge exported");
        assert_eq!(gj.get("value").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(gj.get("hwm").and_then(|v| v.as_u64()), Some(10));
    }

    #[test]
    fn series_decimates_under_pressure() {
        let mut ts = TimeSeries::new(8);
        for i in 0..1000u64 {
            ts.offer(SimTime(i), i);
        }
        assert_eq!(ts.offered(), 1000);
        assert!(ts.points().len() < 8, "stays under capacity");
        assert!(ts.stride() > 1, "stride doubled under pressure");
        assert_eq!(ts.max_value(), 999, "hwm exact despite decimation");
        // Points remain in time order and span the range.
        let pts = ts.points();
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(pts[0].0, 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut m = MetricsRegistry::new_enabled();
        let s = m.scope("egress");
        let c = m.counter(s, "tx_pkts");
        let h = m.hist(s, "span_ps");
        let ts = m.series(s, "depth", 16);
        m.add(c, 2);
        m.record(h, Duration(5000));
        m.sample(ts, SimTime(10), 1);
        let json = m.to_json();
        let scope = json
            .get("scopes")
            .and_then(|v| v.get("egress"))
            .expect("scope present");
        assert_eq!(
            scope
                .get("counters")
                .and_then(|v| v.get("tx_pkts"))
                .and_then(|v| v.as_u64()),
            Some(2)
        );
        let hist = scope.get("hists").and_then(|v| v.get("span_ps")).unwrap();
        for key in [
            "count",
            "min_ps",
            "mean_ps",
            "p50_ps",
            "p99_ps",
            "p99_upper_ps",
            "max_ps",
            "overflow",
        ] {
            assert!(hist.get(key).is_some(), "hist field {key} present");
        }
        let series = scope.get("series").and_then(|v| v.get("depth")).unwrap();
        assert_eq!(series.get("offered").and_then(|v| v.as_u64()), Some(1));
    }
}
