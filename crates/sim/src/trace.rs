//! Causal packet-journey tracing: a sampled flight recorder.
//!
//! A [`JourneyTracer`] records, per sampled packet, the full causal chain of
//! hops through a switch — each hop a span with enter/exit [`SimTime`], the
//! pipe/queue identity ([`Site`]), and the queue depth / buffer-pool
//! occupancy / partition-map epoch observed at enqueue ([`HopCtx`]). Drops
//! carry a typed [`DropReason`] and are *always* captured (aggregated
//! exactly, and logged in detail up to [`DROP_LOG_CAP`]) regardless of the
//! sampling rate, so drop forensics stay complete at bounded overhead.
//! Control-plane actions (migration begin/commit/finalize, epoch bumps)
//! land as instant [`CtrlEvent`]s on a dedicated `ctrl` track.
//!
//! Sampling is deterministic and hash-based: with sampling rate `N`, packet
//! ids where `fnv(id) % N == 0` keep their hop spans (the same FNV-1a the
//! frame check uses, so the kept set is stable across runs, targets, and
//! processes). `N = 1` keeps everything — the setting under which the
//! forensic drop counts are asserted byte-identical to the metrics
//! registry's drop counters.
//!
//! The tracer is enabled per switch config, or externally via the
//! `ADCP_TRACE` environment variable: unset defers to the config flag,
//! `off`/`0`/`false` force-disables, and a number `N >= 1` force-enables
//! with sampling rate `N` (mirroring `ADCP_METRICS`).

use crate::packet::PortId;
use crate::time::SimTime;
use serde::{Map, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Hard upper bound on the hop-ring capacity, enforced (and documented)
/// here and nowhere else. [`JourneyTracer::new`] preallocates the full
/// requested capacity up to this bound — the previous implementation
/// silently preallocated at most 4096 slots while claiming more, paying
/// reallocation churn on the hot path.
pub const MAX_RING_CAPACITY: usize = 1 << 20;

/// Detailed drop records kept before truncation. Aggregated per-site/reason
/// drop *counts* are exact regardless of this cap.
pub const DROP_LOG_CAP: usize = 65_536;

/// Control-plane events kept before truncation.
pub const CTRL_LOG_CAP: usize = 4_096;

/// Where in the switch an event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Site {
    /// Received on an RX port.
    Rx(PortId),
    /// Entered an ingress pipeline.
    IngressPipe(usize),
    /// Resident in the (first) traffic manager.
    Tm1,
    /// Entered a central pipeline (ADCP only).
    CentralPipe(usize),
    /// Resident in the second traffic manager (ADCP only).
    Tm2,
    /// Entered an egress pipeline.
    EgressPipe(usize),
    /// Transmitted on a TX port.
    Tx(PortId),
    /// Sent around the recirculation path (RMT only).
    Recirculated,
    /// Dropped; the reason and death site live in the drop record.
    Dropped,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Rx(p) => write!(f, "rx({p})"),
            Site::IngressPipe(i) => write!(f, "ingress[{i}]"),
            Site::Tm1 => write!(f, "tm1"),
            Site::CentralPipe(i) => write!(f, "central[{i}]"),
            Site::Tm2 => write!(f, "tm2"),
            Site::EgressPipe(i) => write!(f, "egress[{i}]"),
            Site::Tx(p) => write!(f, "tx({p})"),
            Site::Recirculated => write!(f, "recirculate"),
            Site::Dropped => write!(f, "drop"),
        }
    }
}

/// Why a packet died. Every drop a switch counts maps to exactly one
/// variant, which is what lets the forensic aggregation be cross-checked
/// against the metrics registry's drop counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// Frame-check mismatch at the MAC — discarded before any parser,
    /// table, or register could be touched.
    FcsBad,
    /// The parser rejected the frame.
    ParseError,
    /// The shared buffer pool of traffic manager `tm` was out of cells at
    /// admission. RMT's single TM is `tm = 1`.
    BufferExhausted {
        /// Which traffic manager (1 or 2).
        tm: u8,
    },
    /// The destination queue of traffic manager `tm` was at its depth
    /// bound at admission.
    QueueTail {
        /// Which traffic manager (1 or 2).
        tm: u8,
        /// Destination queue index (central pipe for ADCP TM1, egress pipe
        /// for ADCP TM2, local port queue for RMT).
        queue: u32,
    },
    /// The program decided `Drop`.
    Filtered,
    /// No forwarding decision was made (or an empty multicast set).
    NoDecision,
    /// The forwarding decision named a port that does not exist.
    BadPort,
    /// Reserved: dropped at a live-migration fence. The current protocol
    /// *holds* fenced packets instead of dropping them, so this count must
    /// stay zero — the forensics cross-check asserts exactly that.
    MigrationFence,
}

impl DropReason {
    /// Stable machine-readable label (JSON `reason` field).
    pub fn label(&self) -> &'static str {
        match self {
            DropReason::FcsBad => "fcs_bad",
            DropReason::ParseError => "parse_error",
            DropReason::BufferExhausted { .. } => "buffer_exhausted",
            DropReason::QueueTail { .. } => "queue_tail",
            DropReason::Filtered => "filtered",
            DropReason::NoDecision => "no_decision",
            DropReason::BadPort => "bad_port",
            DropReason::MigrationFence => "migration_fence",
        }
    }

    /// The traffic manager involved, for TM-scoped reasons.
    pub fn tm(&self) -> Option<u8> {
        match self {
            DropReason::BufferExhausted { tm } | DropReason::QueueTail { tm, .. } => Some(*tm),
            _ => None,
        }
    }

    /// The destination queue, for queue-tail drops.
    pub fn queue(&self) -> Option<u32> {
        match self {
            DropReason::QueueTail { queue, .. } => Some(*queue),
            _ => None,
        }
    }
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::BufferExhausted { tm } => write!(f, "buffer_exhausted(tm{tm})"),
            DropReason::QueueTail { tm, queue } => write!(f, "queue_tail(tm{tm},q{queue})"),
            other => f.write_str(other.label()),
        }
    }
}

/// Queue/buffer/epoch context sampled where a hop (or drop) happened.
/// All fields optional: hops outside a traffic manager have none.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopCtx {
    /// Queue depth (packets across the TM's queues) observed at enqueue.
    pub queue_depth: Option<u32>,
    /// Buffer-pool occupancy (cells) observed at enqueue.
    pub buffer_cells: Option<u64>,
    /// Partition-map epoch the packet was routed under.
    pub epoch: Option<u64>,
}

impl HopCtx {
    /// No context.
    pub const NONE: HopCtx = HopCtx {
        queue_depth: None,
        buffer_cells: None,
        epoch: None,
    };
}

/// One hop of a sampled packet's journey: a span at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Which packet.
    pub pkt: u64,
    /// Where.
    pub site: Site,
    /// When the packet entered the site.
    pub enter: SimTime,
    /// When it left (equal to `enter` for instantaneous hops).
    pub exit: SimTime,
    /// Queue/buffer/epoch context at the hop.
    pub ctx: HopCtx,
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}] pkt {} @ {}",
            self.enter, self.exit, self.pkt, self.site
        )
    }
}

/// One recorded drop, with the queue state at the moment of death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// Which packet.
    pub pkt: u64,
    /// When it died.
    pub time: SimTime,
    /// Where it died.
    pub site: Site,
    /// Why.
    pub reason: DropReason,
    /// Queue/buffer/epoch context at death.
    pub ctx: HopCtx,
}

impl fmt::Display for DropRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] pkt {} dropped @ {}: {}",
            self.time, self.pkt, self.site, self.reason
        )
    }
}

/// A control-plane action, recorded as an instant on the `ctrl` track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A live migration started.
    MigrationBegin {
        /// `"drain"` or `"incremental"`.
        strategy: &'static str,
        /// The epoch the migration installs.
        epoch: u64,
    },
    /// The partition map's epoch advanced (new map in force).
    EpochBump {
        /// The epoch now in force.
        epoch: u64,
    },
    /// A drain migration committed (state moved, held packets released).
    MigrationCommit {
        /// The epoch now in force.
        epoch: u64,
        /// Register cells moved at commit.
        moved_keys: u64,
    },
    /// An incremental migration finalized (cold buckets bulk-copied).
    MigrationFinalize {
        /// The epoch in force.
        epoch: u64,
        /// Register cells moved at finalize.
        moved_keys: u64,
    },
}

impl CtrlEvent {
    /// Stable machine-readable label (JSON `event` field).
    pub fn label(&self) -> &'static str {
        match self {
            CtrlEvent::MigrationBegin { .. } => "migration_begin",
            CtrlEvent::EpochBump { .. } => "epoch_bump",
            CtrlEvent::MigrationCommit { .. } => "migration_commit",
            CtrlEvent::MigrationFinalize { .. } => "migration_finalize",
        }
    }

    /// The epoch the event refers to.
    pub fn epoch(&self) -> u64 {
        match self {
            CtrlEvent::MigrationBegin { epoch, .. }
            | CtrlEvent::EpochBump { epoch }
            | CtrlEvent::MigrationCommit { epoch, .. }
            | CtrlEvent::MigrationFinalize { epoch, .. } => *epoch,
        }
    }
}

/// The deterministic sampling hash: FNV-1a over the packet id's little-
/// endian bytes (the same function the frame check uses).
pub fn sample_hash(id: u64) -> u64 {
    crate::packet::frame_check(&id.to_le_bytes())
}

/// Span-based flight recorder with always-on drop forensics.
///
/// Three stores with different retention policies:
/// * hop spans of sampled packets — bounded ring, oldest evicted;
/// * drops — exact per-`(site, reason)` aggregation (never truncated) plus
///   a detailed log capped at [`DROP_LOG_CAP`];
/// * control-plane events — capped at [`CTRL_LOG_CAP`].
///
/// Disabled tracers cost one branch per record call.
#[derive(Debug)]
pub struct JourneyTracer {
    hops: VecDeque<Hop>,
    capacity: usize,
    sample: u64,
    enabled: bool,
    /// Hop spans offered (including ones since evicted from the ring).
    pub offered: u64,
    evicted: u64,
    drop_counts: BTreeMap<(Site, DropReason), u64>,
    drop_log: Vec<DropRecord>,
    drops_truncated: u64,
    ctrl: Vec<(SimTime, CtrlEvent)>,
    ctrl_truncated: u64,
    // Test-only sabotage: lose every other drop's forensic record while
    // the switch's counters keep incrementing (what the conformance
    // cross-check must catch).
    lose_drop_forensics: bool,
    lose_toggle: bool,
}

impl JourneyTracer {
    /// A tracer keeping the last `capacity` hop spans at sampling rate 1
    /// (every packet). Capacity above [`MAX_RING_CAPACITY`] is clamped;
    /// whatever is granted is preallocated in full.
    pub fn new(capacity: usize) -> Self {
        Self::with_sample(capacity, 1)
    }

    /// A tracer keeping hop spans only for packet ids where
    /// `fnv(id) % sample == 0`. A `sample` of 0 is treated as 1.
    pub fn with_sample(capacity: usize, sample: u64) -> Self {
        let capacity = capacity.min(MAX_RING_CAPACITY);
        JourneyTracer {
            hops: VecDeque::with_capacity(capacity),
            capacity,
            sample: sample.max(1),
            enabled: true,
            offered: 0,
            evicted: 0,
            drop_counts: BTreeMap::new(),
            drop_log: Vec::new(),
            drops_truncated: 0,
            ctrl: Vec::new(),
            ctrl_truncated: 0,
            lose_drop_forensics: false,
            lose_toggle: false,
        }
    }

    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        JourneyTracer {
            hops: VecDeque::new(),
            capacity: 0,
            sample: 1,
            enabled: false,
            offered: 0,
            evicted: 0,
            drop_counts: BTreeMap::new(),
            drop_log: Vec::new(),
            drops_truncated: 0,
            ctrl: Vec::new(),
            ctrl_truncated: 0,
            lose_drop_forensics: false,
            lose_toggle: false,
        }
    }

    /// Build from the `ADCP_TRACE` environment variable, deferring to the
    /// switch config flag when unset: `off`/`0`/`false` force-disables,
    /// a number `N >= 1` force-enables with sampling rate `N`, anything
    /// else falls back to `cfg_trace` at sampling rate 1.
    pub fn from_env(cfg_trace: bool, capacity: usize) -> Self {
        match std::env::var("ADCP_TRACE") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false") {
                    Self::disabled()
                } else if let Ok(n) = v.parse::<u64>() {
                    Self::with_sample(capacity, n)
                } else if cfg_trace {
                    Self::new(capacity)
                } else {
                    Self::disabled()
                }
            }
            Err(_) if cfg_trace => Self::new(capacity),
            Err(_) => Self::disabled(),
        }
    }

    /// Is this tracer recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The sampling rate `N` (hop spans kept where `fnv(id) % N == 0`).
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// The hop ring's granted capacity (post-clamp).
    pub fn ring_capacity(&self) -> usize {
        self.capacity
    }

    /// Does this tracer keep hop spans for packet `pkt`?
    pub fn samples(&self, pkt: u64) -> bool {
        self.enabled && sample_hash(pkt).is_multiple_of(self.sample)
    }

    /// Can hop-span recording retain anything at all? Hot paths branch on
    /// this before computing per-hop context (queue depths, buffer
    /// occupancy), making a disabled tracer cost one predictable branch
    /// per call site instead of the context computation.
    #[inline]
    pub fn hops_on(&self) -> bool {
        self.enabled && self.capacity > 0
    }

    /// Record one hop span for a packet (kept only if sampled).
    pub fn record_hop(&mut self, pkt: u64, site: Site, enter: SimTime, exit: SimTime, ctx: HopCtx) {
        if !self.samples(pkt) || self.capacity == 0 {
            return;
        }
        self.offered += 1;
        if self.hops.len() == self.capacity {
            self.hops.pop_front();
            self.evicted += 1;
        }
        self.hops.push_back(Hop {
            pkt,
            site,
            enter,
            exit,
            ctx,
        });
    }

    /// Record an instantaneous hop (enter == exit).
    pub fn record_instant(&mut self, pkt: u64, site: Site, t: SimTime, ctx: HopCtx) {
        self.record_hop(pkt, site, t, t, ctx);
    }

    /// Record a drop. Forensics (exact aggregation + detailed log) are
    /// captured for *every* drop regardless of sampling; sampled packets
    /// additionally get a terminal `Dropped` hop in the ring so their
    /// journey ends explicitly.
    pub fn record_drop(
        &mut self,
        now: SimTime,
        pkt: u64,
        site: Site,
        reason: DropReason,
        ctx: HopCtx,
    ) {
        if !self.enabled {
            return;
        }
        if self.lose_drop_forensics {
            self.lose_toggle = !self.lose_toggle;
            if self.lose_toggle {
                return;
            }
        }
        *self.drop_counts.entry((site, reason)).or_insert(0) += 1;
        if self.drop_log.len() < DROP_LOG_CAP {
            self.drop_log.push(DropRecord {
                pkt,
                time: now,
                site,
                reason,
                ctx,
            });
        } else {
            self.drops_truncated += 1;
        }
        self.record_instant(pkt, Site::Dropped, now, ctx);
    }

    /// Record a control-plane event on the `ctrl` track (always captured).
    pub fn record_ctrl(&mut self, now: SimTime, ev: CtrlEvent) {
        if !self.enabled {
            return;
        }
        if self.ctrl.len() < CTRL_LOG_CAP {
            self.ctrl.push((now, ev));
        } else {
            self.ctrl_truncated += 1;
        }
    }

    /// All retained hop spans, in record order.
    pub fn hops(&self) -> impl Iterator<Item = &Hop> {
        self.hops.iter()
    }

    /// The reconstructed journey of one packet: its retained hop spans
    /// sorted by enter time (stable, so simultaneous hops keep record
    /// order). Ends in a `Tx` or `Dropped` hop unless the terminal was
    /// evicted or the packet is still in flight.
    pub fn journey_of(&self, pkt: u64) -> Vec<Hop> {
        let mut hops: Vec<Hop> = self.hops.iter().filter(|h| h.pkt == pkt).copied().collect();
        hops.sort_by_key(|h| (h.enter, h.exit));
        hops
    }

    /// The hop-site sequence of one packet (journey order).
    pub fn path_of(&self, pkt: u64) -> Vec<Site> {
        self.journey_of(pkt).iter().map(|h| h.site).collect()
    }

    /// Sampled packet ids with at least one retained hop, ascending.
    pub fn traced_packets(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.hops.iter().map(|h| h.pkt).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Detailed drop records (first [`DROP_LOG_CAP`]; see
    /// [`JourneyTracer::drops_truncated`]).
    pub fn drops(&self) -> &[DropRecord] {
        &self.drop_log
    }

    /// Drops whose detailed record was truncated (aggregated counts still
    /// include them).
    pub fn drops_truncated(&self) -> u64 {
        self.drops_truncated
    }

    /// Exact per-`(site, reason)` drop counts — never truncated.
    pub fn drop_counts(&self) -> &BTreeMap<(Site, DropReason), u64> {
        &self.drop_counts
    }

    /// Total drops recorded in this tracer (from the exact aggregation,
    /// so unaffected by log truncation).
    pub fn total_drops(&self) -> u64 {
        self.drop_counts.values().sum()
    }

    /// Exact drop totals aggregated per `(reason label, tm)` — what the
    /// forensics report cross-checks against the metrics registry (the
    /// registry counts per reason and TM, not per queue or site). See
    /// [`drop_counter_candidates`] for the counter each pair mirrors.
    pub fn drop_totals_by_reason(&self) -> BTreeMap<(&'static str, u8), u64> {
        let mut out: BTreeMap<(&'static str, u8), u64> = BTreeMap::new();
        for (&(_, reason), &n) in &self.drop_counts {
            *out.entry((reason.label(), reason.tm().unwrap_or(0)))
                .or_insert(0) += n;
        }
        out
    }

    /// Control-plane events in record order.
    pub fn ctrl_events(&self) -> &[(SimTime, CtrlEvent)] {
        &self.ctrl
    }

    /// Number of retained hop spans.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if no hop spans retained.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Hop spans evicted from the ring.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Test-only sabotage hook for the conformance harness: when set, the
    /// forensic record of every other drop is silently lost while the
    /// switch's drop counters keep incrementing — exactly the skew the
    /// forensics↔counter cross-check exists to catch.
    #[doc(hidden)]
    pub fn set_drop_forensics_loss(&mut self, lose: bool) {
        self.lose_drop_forensics = lose;
        self.lose_toggle = false;
    }

    /// Pretty-print one packet's journey (hop table plus terminal verdict).
    pub fn format_journey(&self, pkt: u64) -> String {
        use std::fmt::Write as _;
        let hops = self.journey_of(pkt);
        let mut out = String::new();
        if hops.is_empty() {
            if self.samples(pkt) {
                let _ = writeln!(out, "pkt {pkt}: no retained hops (evicted or never seen)");
            } else {
                let _ = writeln!(
                    out,
                    "pkt {pkt}: not sampled (fnv(id) % {} != 0)",
                    self.sample
                );
            }
            return out;
        }
        let _ = writeln!(out, "pkt {pkt}:");
        for h in &hops {
            let mut ctx = String::new();
            if let Some(d) = h.ctx.queue_depth {
                let _ = write!(ctx, "  depth={d}");
            }
            if let Some(b) = h.ctx.buffer_cells {
                let _ = write!(ctx, "  buf={b}");
            }
            if let Some(e) = h.ctx.epoch {
                let _ = write!(ctx, "  epoch={e}");
            }
            if h.site == Site::Dropped {
                let reason = self
                    .drop_log
                    .iter()
                    .find(|d| d.pkt == pkt && d.time == h.enter)
                    .map(|d| format!("  {} @ {}", d.reason, d.site))
                    .unwrap_or_default();
                let _ = writeln!(out, "  {:<14} {}{}{}", "DROPPED", h.enter, reason, ctx);
            } else {
                let _ = writeln!(
                    out,
                    "  {:<14} {} .. {}{}",
                    h.site.to_string(),
                    h.enter,
                    h.exit,
                    ctx
                );
            }
        }
        out
    }

    /// Export the tracer state as JSON. Disabled tracers export a minimal
    /// `{"enabled": false}` so embedding the block in every report stays
    /// cheap. All times are picoseconds; optional context fields are
    /// omitted when absent.
    pub fn to_json(&self) -> Value {
        let mut root = Map::new();
        root.insert("enabled".into(), Value::Bool(self.enabled));
        if !self.enabled {
            return Value::Object(root);
        }
        root.insert("sample".into(), Value::U64(self.sample));
        root.insert("ring_capacity".into(), Value::U64(self.capacity as u64));
        root.insert("hops_offered".into(), Value::U64(self.offered));
        root.insert("hops_evicted".into(), Value::U64(self.evicted));
        let hops: Vec<Value> = self
            .hops
            .iter()
            .map(|h| {
                let mut o = Map::new();
                o.insert("pkt".into(), Value::U64(h.pkt));
                o.insert("site".into(), Value::String(h.site.to_string()));
                o.insert("enter_ps".into(), Value::U64(h.enter.as_ps()));
                o.insert("exit_ps".into(), Value::U64(h.exit.as_ps()));
                ctx_json(&mut o, &h.ctx);
                Value::Object(o)
            })
            .collect();
        root.insert("hops".into(), Value::Array(hops));
        let drops: Vec<Value> = self
            .drop_log
            .iter()
            .map(|d| {
                let mut o = Map::new();
                o.insert("pkt".into(), Value::U64(d.pkt));
                o.insert("time_ps".into(), Value::U64(d.time.as_ps()));
                o.insert("site".into(), Value::String(d.site.to_string()));
                o.insert("reason".into(), Value::String(d.reason.label().into()));
                if let Some(tm) = d.reason.tm() {
                    o.insert("tm".into(), Value::U64(tm as u64));
                }
                if let Some(q) = d.reason.queue() {
                    o.insert("queue".into(), Value::U64(q as u64));
                }
                ctx_json(&mut o, &d.ctx);
                Value::Object(o)
            })
            .collect();
        root.insert("drops".into(), Value::Array(drops));
        root.insert("drops_truncated".into(), Value::U64(self.drops_truncated));
        let counts: Vec<Value> = self
            .drop_counts
            .iter()
            .map(|(&(site, reason), &n)| {
                let mut o = Map::new();
                o.insert("site".into(), Value::String(site.to_string()));
                o.insert("reason".into(), Value::String(reason.label().into()));
                o.insert("tm".into(), Value::U64(reason.tm().unwrap_or(0) as u64));
                if let Some(q) = reason.queue() {
                    o.insert("queue".into(), Value::U64(q as u64));
                }
                o.insert("count".into(), Value::U64(n));
                Value::Object(o)
            })
            .collect();
        root.insert("drop_counts".into(), Value::Array(counts));
        let ctrl: Vec<Value> = self
            .ctrl
            .iter()
            .map(|&(t, ev)| {
                let mut o = Map::new();
                o.insert("time_ps".into(), Value::U64(t.as_ps()));
                o.insert("event".into(), Value::String(ev.label().into()));
                o.insert("epoch".into(), Value::U64(ev.epoch()));
                match ev {
                    CtrlEvent::MigrationBegin { strategy, .. } => {
                        o.insert("strategy".into(), Value::String(strategy.into()));
                    }
                    CtrlEvent::MigrationCommit { moved_keys, .. }
                    | CtrlEvent::MigrationFinalize { moved_keys, .. } => {
                        o.insert("moved_keys".into(), Value::U64(moved_keys));
                    }
                    CtrlEvent::EpochBump { .. } => {}
                }
                Value::Object(o)
            })
            .collect();
        root.insert("ctrl".into(), Value::Array(ctrl));
        root.insert("ctrl_truncated".into(), Value::U64(self.ctrl_truncated));
        Value::Object(root)
    }
}

fn ctx_json(o: &mut Map, ctx: &HopCtx) {
    if let Some(d) = ctx.queue_depth {
        o.insert("queue_depth".into(), Value::U64(d as u64));
    }
    if let Some(b) = ctx.buffer_cells {
        o.insert("buffer_cells".into(), Value::U64(b));
    }
    if let Some(e) = ctx.epoch {
        o.insert("epoch".into(), Value::U64(e));
    }
}

/// The registry counter each forensic drop reason mirrors, as `(reason,
/// tm) -> [(scope, name)]` candidates — the first scope present in a
/// metrics block wins (ADCP scopes its TMs `tm1`/`tm2`; the RMT
/// baseline's single TM is scoped `tm` and mapped onto tm 1). This is the
/// single source of truth for the forensics ≡ registry cross-check; the
/// bench harness (JSON-level forensics report) and the serving daemon
/// (native zero-drift soak check) both consume it.
pub fn drop_counter_candidates(reason: &str, tm: u64) -> &'static [(&'static str, &'static str)] {
    match (reason, tm) {
        ("fcs_bad", _) => &[("mac", "fcs_drops")],
        ("parse_error", _) => &[("parser", "errors")],
        ("filtered", _) => &[("drops", "filtered")],
        ("no_decision", _) => &[("drops", "no_decision")],
        ("bad_port", _) => &[("drops", "bad_port")],
        ("queue_tail", 1) => &[("tm1", "queue_drops"), ("tm", "queue_drops")],
        ("queue_tail", 2) => &[("tm2", "queue_drops")],
        ("buffer_exhausted", 1) => &[("tm1", "buffer_drops"), ("tm", "buffer_drops")],
        ("buffer_exhausted", 2) => &[("tm2", "buffer_drops")],
        _ => &[],
    }
}

/// Every `(reason, tm)` a forensics ≡ registry cross-check must consider
/// even when the forensic side recorded nothing — a counter that moved
/// without a matching forensic record is exactly the failure mode to
/// catch. (`migration_fence` has no mirrored counter; it must stay absent
/// on both sides.)
pub const DROP_CHECK_REASONS: &[(&str, u64)] = &[
    ("fcs_bad", 0),
    ("parse_error", 0),
    ("filtered", 0),
    ("no_decision", 0),
    ("bad_port", 0),
    ("queue_tail", 1),
    ("queue_tail", 2),
    ("buffer_exhausted", 1),
    ("buffer_exhausted", 2),
    ("migration_fence", 0),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(t: &mut JourneyTracer, pkt: u64, site: Site, enter: u64, exit: u64) {
        t.record_hop(pkt, site, SimTime(enter), SimTime(exit), HopCtx::NONE);
    }

    #[test]
    fn records_and_replays_journeys() {
        let mut t = JourneyTracer::new(16);
        hop(&mut t, 1, Site::Rx(PortId(0)), 0, 5);
        hop(&mut t, 1, Site::IngressPipe(0), 5, 9);
        hop(&mut t, 2, Site::Rx(PortId(1)), 6, 8);
        hop(&mut t, 1, Site::Tm1, 9, 11);
        hop(&mut t, 1, Site::Tx(PortId(3)), 11, 12);
        let path = t.path_of(1);
        assert_eq!(
            path,
            vec![
                Site::Rx(PortId(0)),
                Site::IngressPipe(0),
                Site::Tm1,
                Site::Tx(PortId(3))
            ]
        );
        assert_eq!(t.path_of(2), vec![Site::Rx(PortId(1))]);
        assert_eq!(t.len(), 5);
        let j = t.journey_of(1);
        assert!(j.windows(2).all(|w| w[0].enter <= w[1].enter));
        assert!(j.iter().all(|h| h.enter <= h.exit));
    }

    #[test]
    fn ring_evicts_oldest_and_reports_eviction() {
        let mut t = JourneyTracer::new(3);
        for i in 0..5 {
            hop(&mut t, i, Site::Tm1, i, i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.offered, 5);
        assert_eq!(t.evicted(), 2);
        let ids: Vec<u64> = t.hops().map(|h| h.pkt).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn ring_preallocates_honestly_up_to_the_cap() {
        // The satellite fix: the stated capacity is granted (and
        // preallocated) in full below MAX_RING_CAPACITY...
        let t = JourneyTracer::new(65_536);
        assert_eq!(t.ring_capacity(), 65_536);
        assert!(t.hops.capacity() >= 65_536);
        // ...and clamped (visibly, via ring_capacity) above it.
        let t = JourneyTracer::new(MAX_RING_CAPACITY + 1);
        assert_eq!(t.ring_capacity(), MAX_RING_CAPACITY);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = JourneyTracer::disabled();
        hop(&mut t, 1, Site::Tm1, 0, 0);
        t.record_drop(SimTime(1), 2, Site::Tm1, DropReason::Filtered, HopCtx::NONE);
        t.record_ctrl(SimTime(2), CtrlEvent::EpochBump { epoch: 1 });
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.offered, 0);
        assert_eq!(t.total_drops(), 0);
        assert!(t.ctrl_events().is_empty());
        let v = t.to_json();
        assert_eq!(v.get("enabled").and_then(|x| x.as_bool()), Some(false));
        assert!(v.get("hops").is_none(), "disabled export stays minimal");
    }

    #[test]
    fn sampling_is_deterministic_and_drops_are_always_captured() {
        let n = 64;
        let mut t = JourneyTracer::with_sample(1024, n);
        let mut kept = Vec::new();
        for id in 0..1000u64 {
            hop(&mut t, id, Site::Rx(PortId(0)), id, id);
            if sample_hash(id).is_multiple_of(n) {
                kept.push(id);
            }
        }
        assert!(!kept.is_empty(), "some ids must hash into the sample");
        assert!(kept.len() < 1000, "sampling must actually thin the ring");
        assert_eq!(t.traced_packets(), kept);
        // Drops of unsampled packets still reach the forensics stores.
        let unsampled = (0..1000u64)
            .find(|id| !sample_hash(*id).is_multiple_of(n))
            .unwrap();
        t.record_drop(
            SimTime(7),
            unsampled,
            Site::Tm2,
            DropReason::QueueTail { tm: 2, queue: 3 },
            HopCtx {
                queue_depth: Some(512),
                buffer_cells: Some(4096),
                epoch: None,
            },
        );
        assert_eq!(t.total_drops(), 1);
        assert_eq!(t.drops().len(), 1);
        assert_eq!(
            t.drops()[0].reason,
            DropReason::QueueTail { tm: 2, queue: 3 }
        );
        // But no hop span is burned on them.
        assert!(t.journey_of(unsampled).is_empty());
    }

    #[test]
    fn drop_aggregation_survives_log_truncation() {
        let mut t = JourneyTracer::with_sample(4, u64::MAX); // sample ~nothing
        for i in 0..(DROP_LOG_CAP as u64 + 10) {
            t.record_drop(
                SimTime(i),
                i,
                Site::Tm1,
                DropReason::BufferExhausted { tm: 1 },
                HopCtx::NONE,
            );
        }
        assert_eq!(t.drops().len(), DROP_LOG_CAP);
        assert_eq!(t.drops_truncated(), 10);
        assert_eq!(t.total_drops(), DROP_LOG_CAP as u64 + 10);
        let totals = t.drop_totals_by_reason();
        assert_eq!(totals[&("buffer_exhausted", 1)], DROP_LOG_CAP as u64 + 10);
    }

    #[test]
    fn reason_and_site_display_are_readable() {
        assert_eq!(Site::Rx(PortId(2)).to_string(), "rx(p2)");
        assert_eq!(Site::CentralPipe(1).to_string(), "central[1]");
        assert_eq!(Site::Recirculated.to_string(), "recirculate");
        assert_eq!(DropReason::FcsBad.to_string(), "fcs_bad");
        assert_eq!(
            DropReason::QueueTail { tm: 1, queue: 3 }.to_string(),
            "queue_tail(tm1,q3)"
        );
        assert_eq!(
            DropReason::BufferExhausted { tm: 2 }.to_string(),
            "buffer_exhausted(tm2)"
        );
        let h = Hop {
            pkt: 42,
            site: Site::Tm2,
            enter: SimTime(1500),
            exit: SimTime(2000),
            ctx: HopCtx::NONE,
        };
        assert_eq!(h.to_string(), "[1.500ns..2.000ns] pkt 42 @ tm2");
    }

    #[test]
    fn json_export_has_stable_shape() {
        let mut t = JourneyTracer::new(8);
        hop(&mut t, 1, Site::Rx(PortId(0)), 0, 5);
        t.record_drop(
            SimTime(9),
            1,
            Site::Tm1,
            DropReason::QueueTail { tm: 1, queue: 0 },
            HopCtx {
                queue_depth: Some(8),
                buffer_cells: Some(64),
                epoch: Some(2),
            },
        );
        t.record_ctrl(
            SimTime(10),
            CtrlEvent::MigrationBegin {
                strategy: "drain",
                epoch: 3,
            },
        );
        let v = t.to_json();
        assert_eq!(v.get("enabled").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(v.get("sample").and_then(|x| x.as_u64()), Some(1));
        let hops = v.get("hops").and_then(|x| x.as_array()).unwrap();
        assert_eq!(hops[0].get("site").and_then(|x| x.as_str()), Some("rx(p0)"));
        let drops = v.get("drops").and_then(|x| x.as_array()).unwrap();
        assert_eq!(
            drops[0].get("reason").and_then(|x| x.as_str()),
            Some("queue_tail")
        );
        assert_eq!(
            drops[0].get("queue_depth").and_then(|x| x.as_u64()),
            Some(8)
        );
        let counts = v.get("drop_counts").and_then(|x| x.as_array()).unwrap();
        assert_eq!(counts[0].get("count").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(counts[0].get("tm").and_then(|x| x.as_u64()), Some(1));
        let ctrl = v.get("ctrl").and_then(|x| x.as_array()).unwrap();
        assert_eq!(
            ctrl[0].get("event").and_then(|x| x.as_str()),
            Some("migration_begin")
        );
        assert_eq!(
            ctrl[0].get("strategy").and_then(|x| x.as_str()),
            Some("drain")
        );
    }

    #[test]
    fn forensics_loss_sabotage_skews_counts() {
        let mut t = JourneyTracer::new(8);
        t.set_drop_forensics_loss(true);
        for i in 0..10 {
            t.record_drop(SimTime(i), i, Site::Tm1, DropReason::Filtered, HopCtx::NONE);
        }
        assert_eq!(t.total_drops(), 5, "half the forensics silently lost");
    }

    #[test]
    fn env_override_controls_enablement_and_sampling() {
        // Serialized through a lock-free dance: std::env is process-global,
        // so touch a variable no other test uses.
        std::env::set_var("ADCP_TRACE", "64");
        let t = JourneyTracer::from_env(false, 128);
        assert!(t.is_enabled());
        assert_eq!(t.sample(), 64);
        std::env::set_var("ADCP_TRACE", "off");
        let t = JourneyTracer::from_env(true, 128);
        assert!(!t.is_enabled());
        std::env::remove_var("ADCP_TRACE");
        let t = JourneyTracer::from_env(true, 128);
        assert!(t.is_enabled());
        assert_eq!(t.sample(), 1);
        let t = JourneyTracer::from_env(false, 128);
        assert!(!t.is_enabled());
    }
}
