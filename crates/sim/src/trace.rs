//! Lightweight event tracing for debugging and test assertions.
//!
//! A [`Tracer`] records structured events into a bounded ring. Tests assert
//! on the sequence of hops a packet took (e.g. "this packet recirculated
//! twice on RMT, zero times on ADCP"); the examples can print traces with
//! `--trace` to show a packet walk through the architecture.

use crate::packet::PortId;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// Where in the switch an event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Received on an RX port.
    Rx(PortId),
    /// Entered an ingress pipeline.
    IngressPipe(usize),
    /// Enqueued at the (first) traffic manager.
    Tm1,
    /// Entered a central pipeline (ADCP only).
    CentralPipe(usize),
    /// Enqueued at the second traffic manager (ADCP only).
    Tm2,
    /// Entered an egress pipeline.
    EgressPipe(usize),
    /// Transmitted on a TX port.
    Tx(PortId),
    /// Sent around the recirculation path (RMT only).
    Recirculated,
    /// Dropped, with a reason site implied by the previous event.
    Dropped,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Rx(p) => write!(f, "rx({p})"),
            Site::IngressPipe(i) => write!(f, "ingress[{i}]"),
            Site::Tm1 => write!(f, "tm1"),
            Site::CentralPipe(i) => write!(f, "central[{i}]"),
            Site::Tm2 => write!(f, "tm2"),
            Site::EgressPipe(i) => write!(f, "egress[{i}]"),
            Site::Tx(p) => write!(f, "tx({p})"),
            Site::Recirculated => write!(f, "recirculate"),
            Site::Dropped => write!(f, "drop"),
        }
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which packet.
    pub pkt: u64,
    /// Where.
    pub site: Site,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] pkt {} @ {}", self.time, self.pkt, self.site)
    }
}

/// Bounded ring of trace events. Disabled tracers cost one branch per hop.
#[derive(Debug)]
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
    /// Total events offered (including ones evicted from the ring).
    pub offered: u64,
}

impl Tracer {
    /// A tracer that keeps the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            enabled: true,
            offered: 0,
        }
    }

    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer {
            events: VecDeque::new(),
            capacity: 0,
            enabled: false,
            offered: 0,
        }
    }

    /// Is this tracer recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event.
    pub fn record(&mut self, time: SimTime, pkt: u64, site: Site) {
        if !self.enabled {
            return;
        }
        self.offered += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(TraceEvent { time, pkt, site });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// The hop sequence of one packet, oldest first.
    pub fn path_of(&self, pkt: u64) -> Vec<Site> {
        self.events
            .iter()
            .filter(|e| e.pkt == pkt)
            .map(|e| e.site)
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_replays_paths() {
        let mut t = Tracer::new(16);
        t.record(SimTime(0), 1, Site::Rx(PortId(0)));
        t.record(SimTime(5), 1, Site::IngressPipe(0));
        t.record(SimTime(6), 2, Site::Rx(PortId(1)));
        t.record(SimTime(9), 1, Site::Tm1);
        t.record(SimTime(12), 1, Site::Tx(PortId(3)));
        let path = t.path_of(1);
        assert_eq!(
            path,
            vec![
                Site::Rx(PortId(0)),
                Site::IngressPipe(0),
                Site::Tm1,
                Site::Tx(PortId(3))
            ]
        );
        assert_eq!(t.path_of(2), vec![Site::Rx(PortId(1))]);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::new(3);
        for i in 0..5 {
            t.record(SimTime(i), i, Site::Tm1);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.offered, 5);
        let ids: Vec<u64> = t.events().map(|e| e.pkt).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime(0), 1, Site::Tm1);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.offered, 0);
    }

    #[test]
    fn site_display_is_readable() {
        assert_eq!(Site::Rx(PortId(2)).to_string(), "rx(p2)");
        assert_eq!(Site::CentralPipe(1).to_string(), "central[1]");
        assert_eq!(Site::Recirculated.to_string(), "recirculate");
        let e = TraceEvent {
            time: SimTime(1500),
            pkt: 42,
            site: Site::Tm2,
        };
        assert_eq!(e.to_string(), "[1.500ns] pkt 42 @ tm2");
    }
}
