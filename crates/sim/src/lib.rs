//! # adcp-sim — simulation substrate
//!
//! Cycle-level simulation primitives shared by the RMT baseline
//! (`adcp-rmt`) and the ADCP switch model (`adcp-core`):
//!
//! * [`time`] — picosecond timestamps, frequencies, clocks, and multi-clock
//!   domains (the currency of the paper's Tables 2 and 3).
//! * [`packet`] — packets, flows, coflows, and forwarding specs.
//! * [`port`] — RX/TX link models with exact serialization timing.
//! * [`link`] — inter-switch cables (store-and-forward serialization plus
//!   propagation latency) for multi-switch fabrics.
//! * [`queue`] — bounded queues and shared-memory buffer pools.
//! * [`sched`] — FIFO / strict-priority / DRR / order-preserving-merge
//!   schedulers (the last is the §3.1 "expanded TM semantics").
//! * [`fault`] — drop/corrupt/delay fault injection.
//! * [`stats`] — counters, throughput meters, latency histograms.
//! * [`metrics`] — per-stage metrics registry (counters, gauges, span
//!   histograms, queue-depth series) with uniform JSON export.
//! * [`trace`] — sampled packet-journey flight recorder with always-on
//!   drop forensics and control-plane instants.
//! * [`int`] — in-band network telemetry: per-hop stamps the datapath
//!   writes onto transiting packets, postcards for collectors, and the
//!   per-flow aggregation cells ADCP keeps in central register state.
//! * [`telemetry`] — the INT collector: drain postcards into per-flow
//!   paths and per-queue depth series, detect microbursts, path changes
//!   and drop hotspots, and emit schema-validated reports.
//! * [`rng`] — deterministic, forkable randomness.
//! * [`shutdown`] — cooperative SIGINT/SIGTERM shutdown flag for the
//!   long-running binaries (`adcpd`, `adcp-trace`, `conformance`).
//!
//! Everything is synchronous, allocation-light, and deterministic given a
//! seed; the models that build on it are CPU-bound state machines, so there
//! is deliberately no async runtime here.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the `shutdown` module registers POSIX
// signal handlers through one audited `unsafe extern` block (std links
// libc but exposes no safe wrapper, and the build environment is offline
// so no signal-handling crate can be added). Everything else stays safe.
#![deny(unsafe_code)]

pub mod event;
pub mod fault;
pub mod int;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod port;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod schema;
pub mod shaper;
pub mod shutdown;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use fault::{FaultConfig, FaultInjector, FaultOutcome};
pub use int::{IntFlowTable, IntKnob, IntStack, IntStamp, Postcard, INT_MAX_HOPS};
pub use link::Link;
pub use metrics::{CounterId, GaugeId, HistId, MetricsRegistry, ScopeId, SeriesId, TimeSeries};
pub use packet::{
    synthetic_packet, CoflowId, EgressSpec, FlowId, Packet, PacketMeta, PortId, MIN_WIRE_BYTES,
};
pub use port::{LinkSpeed, RxPort, TxPort};
pub use queue::{BoundedQueue, BufferPool, EnqueueResult};
pub use rng::SimRng;
pub use sched::{Policy, ScheduledQueues};
pub use shaper::TokenBucket;
pub use stats::{Counter, LatencyHist, LatencySummary, Meter};
pub use time::{Clock, ClockId, ClockSet, Duration, Freq, SimTime};
pub use trace::{CtrlEvent, DropReason, Hop, HopCtx, JourneyTracer, Site};
