//! Measurement primitives: counters, meters, and latency histograms.
//!
//! The regenerators in `adcp-bench` report packets/s, keys/s, Gbps, goodput,
//! and latency percentiles; all of those are computed from the types here.

use crate::time::{Duration, SimTime};
use serde::Serialize;

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone, Copy, Serialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Tracks bytes and packets over simulated time and converts to rates.
#[derive(Debug, Default, Clone, Serialize)]
pub struct Meter {
    /// Packets observed.
    pub pkts: u64,
    /// Wire bytes observed.
    pub wire_bytes: u64,
    /// Application-payload bytes observed.
    pub goodput_bytes: u64,
    /// Application data elements (keys, weights, rows) observed — the unit
    /// the paper argues switches should be rated in (§3.2: "the performance
    /// of a switch is connected to the rate of *keys* rather than the
    /// packets it can process").
    pub elements: u64,
}

impl Meter {
    /// Record one packet's contribution.
    pub fn record(&mut self, wire_bytes: u32, goodput_bytes: u32, elements: u32) {
        self.pkts += 1;
        self.wire_bytes += wire_bytes as u64;
        self.goodput_bytes += goodput_bytes as u64;
        self.elements += elements as u64;
    }

    /// Packets per second over the elapsed simulated time.
    pub fn pps(&self, elapsed: Duration) -> f64 {
        per_sec(self.pkts, elapsed)
    }

    /// Wire throughput in Gbps.
    pub fn gbps(&self, elapsed: Duration) -> f64 {
        per_sec(self.wire_bytes * 8, elapsed) / 1e9
    }

    /// Goodput in Gbps.
    pub fn goodput_gbps(&self, elapsed: Duration) -> f64 {
        per_sec(self.goodput_bytes * 8, elapsed) / 1e9
    }

    /// Data elements (keys) per second.
    pub fn elements_per_sec(&self, elapsed: Duration) -> f64 {
        per_sec(self.elements, elapsed)
    }

    /// Goodput fraction of wire bytes, in `[0, 1]`.
    pub fn goodput_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            0.0
        } else {
            self.goodput_bytes as f64 / self.wire_bytes as f64
        }
    }
}

fn per_sec(count: u64, elapsed: Duration) -> f64 {
    let s = elapsed.as_secs_f64();
    if s <= 0.0 {
        0.0
    } else {
        count as f64 / s
    }
}

/// Log-linear latency histogram over picosecond durations.
///
/// Buckets: 64 per power-of-two decade, covering 1 ps to ~18 s. Error per
/// recorded sample is under 1.6%, plenty for percentile reporting.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
    /// Samples beyond the last bucket's range, clamped into it on `record`.
    /// A nonzero count means the top percentiles are range-limited.
    overflow: u64,
}

const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: vec![0; ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
            overflow: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let decade = (msb - SUB_BITS + 1) as u64;
        let sub = v >> (decade - 1); // in [SUB_BUCKETS, 2*SUB_BUCKETS)
        (decade * SUB_BUCKETS + (sub - SUB_BUCKETS)) as usize
    }

    fn bucket_low(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB_BUCKETS {
            return idx;
        }
        let decade = idx / SUB_BUCKETS;
        let sub = idx % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << (decade - 1)
    }

    /// Largest value that lands in bucket `idx` (inclusive upper bound).
    fn bucket_high(idx: usize) -> u64 {
        if idx + 1 >= ((64 - SUB_BITS as usize) + 1) * SUB_BUCKETS as usize {
            return u64::MAX;
        }
        Self::bucket_low(idx + 1) - 1
    }

    /// Center of bucket `idx`: the unbiased point estimate for any sample
    /// that landed there. (The lower bound — what `percentile_ps` used to
    /// return — biases every reported percentile low by up to one bucket
    /// width, ~1.6%.)
    fn bucket_mid(idx: usize) -> u64 {
        let low = Self::bucket_low(idx);
        let high = Self::bucket_high(idx);
        low + (high - low) / 2
    }

    /// Record a duration.
    pub fn record(&mut self, d: Duration) {
        let v = d.as_ps();
        let idx = Self::bucket_of(v);
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            // Beyond the histogram's range: clamp into the last bucket, but
            // count the clamp so range saturation is visible instead of
            // silently folding into an apparently in-range percentile.
            *self.counts.last_mut().unwrap() += 1;
            self.overflow += 1;
        }
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Record the time between two simulation points.
    ///
    /// `to` must not precede `from`: debug builds assert, release builds
    /// saturate the span to zero — either way a mis-ordered timestamp pair
    /// can never underflow into a garbage bucket.
    pub fn record_span(&mut self, from: SimTime, to: SimTime) {
        debug_assert!(
            to >= from,
            "record_span: to ({to}) precedes from ({from}); span would underflow"
        );
        self.record(to.saturating_since(from));
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest sample (ps), 0 if empty.
    pub fn min_ps(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (ps), 0 if empty (consistent with [`min_ps`]).
    ///
    /// [`min_ps`]: LatencyHist::min_ps
    pub fn max_ps(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Samples that exceeded the histogram's range and were clamped into
    /// the last bucket by [`record`]. Nonzero means the top percentiles are
    /// range-limited and should be read as lower bounds.
    ///
    /// [`record`]: LatencyHist::record
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Mean sample (ps), 0 if empty.
    pub fn mean_ps(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Bucket index holding the sample at quantile `q`, or `None` if empty.
    fn percentile_bucket(&self, q: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        None
    }

    /// Approximate percentile (`q` in `[0, 1]`), returned as picoseconds.
    ///
    /// Returns the *midpoint* of the bucket holding the rank-`q` sample,
    /// clamped to the observed `[min, max]` so the tails never report a
    /// value outside what was actually recorded. (Returning the bucket
    /// lower bound, as this used to, biased every percentile low by up to
    /// a full bucket width.)
    pub fn percentile_ps(&self, q: f64) -> u64 {
        match self.percentile_bucket(q) {
            None => 0,
            Some(i) => Self::bucket_mid(i).clamp(self.min, self.max),
        }
    }

    /// Conservative upper bound on the percentile: the inclusive upper edge
    /// of the bucket holding the rank-`q` sample, clamped to the observed
    /// maximum. The true quantile is never above this value.
    pub fn percentile_upper_ps(&self, q: f64) -> u64 {
        match self.percentile_bucket(q) {
            None => 0,
            Some(i) => Self::bucket_high(i).min(self.max),
        }
    }

    /// Fold another histogram into this one. Because both sides share the
    /// same fixed bucket layout the merge is exact: percentiles of the
    /// merged histogram equal percentiles over the union of the two sample
    /// streams (to within the usual one-bucket resolution). This is what
    /// makes sliding-window SLO tracking cheap — keep one histogram per
    /// time slice and merge the window's slices on demand.
    pub fn merge(&mut self, other: &LatencyHist) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.sum += other.sum;
        self.overflow += other.overflow;
    }
}

/// A compact summary row suitable for JSON output from the regenerators.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Minimum, in nanoseconds.
    pub min_ns: f64,
    /// Mean, in nanoseconds.
    pub mean_ns: f64,
    /// Median, in nanoseconds.
    pub p50_ns: f64,
    /// 99th percentile, in nanoseconds.
    pub p99_ns: f64,
    /// Maximum, in nanoseconds.
    pub max_ns: f64,
}

impl From<&LatencyHist> for LatencySummary {
    fn from(h: &LatencyHist) -> Self {
        LatencySummary {
            count: h.count(),
            min_ns: h.min_ps() as f64 / 1e3,
            mean_ns: h.mean_ps() / 1e3,
            p50_ns: h.percentile_ps(0.50) as f64 / 1e3,
            p99_ns: h.percentile_ps(0.99) as f64 / 1e3,
            max_ns: h.max_ps() as f64 / 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_equals_union_of_streams() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut union = LatencyHist::new();
        for i in 0..5_000u64 {
            let d = Duration(1 + i * 37 % 900_000);
            if i % 3 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            union.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), union.count());
        assert_eq!(a.min_ps(), union.min_ps());
        assert_eq!(a.max_ps(), union.max_ps());
        assert_eq!(a.mean_ps(), union.mean_ps());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile_ps(q), union.percentile_ps(q), "q={q}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyHist::new();
        a.record(Duration(123));
        a.record(Duration(456));
        let before = (a.count(), a.min_ps(), a.max_ps(), a.percentile_ps(0.5));
        a.merge(&LatencyHist::new());
        assert_eq!(
            before,
            (a.count(), a.min_ps(), a.max_ps(), a.percentile_ps(0.5))
        );
        let mut empty = LatencyHist::new();
        empty.merge(&a);
        assert_eq!(empty.count(), a.count());
        assert_eq!(empty.min_ps(), a.min_ps());
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn meter_rates() {
        let mut m = Meter::default();
        // 1000 packets of 84 wire bytes / 32 goodput bytes / 8 elements
        // over 1 microsecond.
        for _ in 0..1000 {
            m.record(84, 32, 8);
        }
        let dt = Duration::from_us(1);
        assert!((m.pps(dt) - 1e9).abs() < 1.0);
        assert!((m.gbps(dt) - 672.0).abs() < 0.01);
        assert!((m.elements_per_sec(dt) - 8e9).abs() < 1.0);
        assert!((m.goodput_ratio() - 32.0 / 84.0).abs() < 1e-12);
        assert_eq!(m.pps(Duration::ZERO), 0.0);
    }

    #[test]
    fn hist_percentiles_roughly_correct() {
        let mut h = LatencyHist::new();
        for i in 1..=10_000u64 {
            h.record(Duration(i));
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.percentile_ps(0.5);
        assert!(
            (4_500..=5_500).contains(&p50),
            "p50 = {p50}, expected ~5000"
        );
        let p99 = h.percentile_ps(0.99);
        assert!(
            (9_300..=10_000).contains(&p99),
            "p99 = {p99}, expected ~9900"
        );
        assert_eq!(h.min_ps(), 1);
        assert_eq!(h.max_ps(), 10_000);
        assert!((h.mean_ps() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn hist_handles_extremes() {
        let mut h = LatencyHist::new();
        h.record(Duration(0));
        h.record(Duration(u64::MAX / 2));
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_ps(), 0);
        assert!(h.percentile_ps(1.0) > 0);
        assert!(h.percentile_ps(1.0) <= h.max_ps());
        // Full u64 range fits in the bucket table, so nothing clamps.
        assert_eq!(h.overflow_count(), 0);
    }

    #[test]
    fn empty_hist_is_safe() {
        let h = LatencyHist::new();
        assert_eq!(h.percentile_ps(0.5), 0);
        assert_eq!(h.percentile_upper_ps(0.5), 0);
        assert_eq!(h.min_ps(), 0);
        assert_eq!(h.max_ps(), 0);
        assert_eq!(h.mean_ps(), 0.0);
        assert_eq!(h.overflow_count(), 0);
        let s = LatencySummary::from(&h);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0.0);
    }

    #[test]
    fn percentile_uses_bucket_midpoint_clamped_to_samples() {
        // A single repeated value: min == max, so every percentile must be
        // exactly that value (the midpoint clamp pins it).
        let mut h = LatencyHist::new();
        for _ in 0..100 {
            h.record(Duration(9_000));
        }
        assert_eq!(h.percentile_ps(0.5), 9_000);
        assert_eq!(h.percentile_ps(0.99), 9_000);
        assert_eq!(h.percentile_upper_ps(0.5), 9_000);

        // Uniform samples: the midpoint estimate must not sit at the bucket
        // lower bound (the old bias) and must bracket the true quantile
        // within one bucket width.
        let mut h = LatencyHist::new();
        for i in 1..=10_000u64 {
            h.record(Duration(i));
        }
        let p50 = h.percentile_ps(0.5);
        let p50_hi = h.percentile_upper_ps(0.5);
        assert!(p50 <= p50_hi, "midpoint {p50} above upper bound {p50_hi}");
        // The rank-5000 sample is 5000; its bucket is [4992, 5056).
        assert!(p50 > 4_992, "p50 = {p50} still sits at bucket_low");
        assert!((5_000..=5_056).contains(&p50_hi));
    }

    #[test]
    fn record_counts_range_overflow() {
        // The full-size table covers all of u64, so force the clamp path by
        // shrinking the table the way a smaller build profile might.
        let mut h = LatencyHist::new();
        h.counts.truncate(2 * SUB_BUCKETS as usize);
        h.record(Duration(5));
        h.record(Duration(u64::MAX / 4));
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow_count(), 1);
        // The clamped sample still lands in the last bucket.
        assert_eq!(*h.counts.last().unwrap(), 1);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "record_span"))]
    fn reversed_span_asserts_in_debug_and_saturates_in_release() {
        let mut h = LatencyHist::new();
        // A mis-ordered timestamp pair: debug builds trip the assert
        // (caught here), release builds saturate to a zero-width span
        // instead of underflowing into the top bucket.
        h.record_span(SimTime(100), SimTime(40));
        assert_eq!(h.count(), 1);
        assert_eq!(h.max_ps(), 0);
        assert_eq!(h.overflow_count(), 0);
    }

    #[test]
    fn summary_converts_units() {
        let mut h = LatencyHist::new();
        h.record_span(SimTime::ZERO, SimTime::from_ns(1000));
        let s = LatencySummary::from(&h);
        assert_eq!(s.count, 1);
        assert!((s.max_ns - 1000.0).abs() < 20.0, "log-linear bucket error");
    }
}
