//! A deterministic discrete-event queue.
//!
//! Both switch models are event-driven simulations: packets move between
//! resources (ports, pipelines, traffic managers) at computed times. The
//! queue orders events by `(time, sequence)` so that simultaneous events
//! fire in insertion order — which, combined with [`crate::rng::SimRng`],
//! makes whole runs reproducible bit-for-bit.
//!
//! # Calendar-queue scheduler
//!
//! The implementation is a calendar queue (Brown 1988) tuned for the event
//! mass a switch simulation produces: almost everything is scheduled within
//! a few pipeline periods or one packet serialization time of `now`, with a
//! thin tail of far-future timers (merge-order patience, control-plane
//! ticks). Three tiers:
//!
//! * **Ring buckets** — the near horizon is divided into `DAYS` "days" of
//!   `1 << DAY_SHIFT` picoseconds each; the day of a timestamp is a shift,
//!   and each day maps to one ring slot, so a push into the window is an
//!   O(1) `Vec::push`. A two-level occupancy bitmap (one bit per slot plus
//!   a summary word with one bit per bitmap word) finds the next non-empty
//!   day in O(1) — two `trailing_zeros` — and an empty ring skips even
//!   that via a ring-resident event count.
//! * **Current-day drain** — entering a day moves its bucket (plus any
//!   overflow events that matured into it) into a reusable deque, sorted
//!   once, ascending, by `(time, seq)`: a pop is `pop_front`. Pushes that
//!   land in the open day carry the largest `seq` yet issued, so they are
//!   usually a plain `push_back` (an insert only when an event later in
//!   the day is already pending); past times clamp to `now` and `seq`
//!   grows monotonically, so FIFO order is preserved exactly.
//! * **Overflow heap** — events beyond the ring window go to a binary heap
//!   keyed by `(time, seq)`. They are merged into the drain when their day
//!   opens. Only far-future outliers pay the O(log n) heap cost.
//!
//! Unlike the original `BinaryHeap` + slab design, nothing here retains a
//! slot per popped event: drained buckets are empty `Vec`s that recycle
//! their capacity, so retained storage is bounded by the maximum number of
//! *simultaneously pending* events, not by the total ever scheduled (see
//! `million_event_run_keeps_storage_bounded`).

use crate::time::SimTime;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the width of one calendar day, in picoseconds. 2^16 ps ≈ 65.5 ns
/// is about one MTU serialization time at 100 Gb/s, so a day typically
/// holds a batch of pipeline events worth sorting together.
const DAY_SHIFT: u32 = 16;
/// Number of ring days (power of two). Window = DAYS << DAY_SHIFT ≈ 268 µs,
/// wide enough that workload injection schedules laid out at line rate stay
/// in the ring instead of spilling to the overflow heap.
const DAYS: u64 = 4096;
const DAY_MASK: u64 = DAYS - 1;
const WORDS: usize = (DAYS / 64) as usize;
// The two-level occupancy bitmap keeps one summary bit per word, so the
// summary must itself fit one word.
const _: () = assert!(WORDS == 64);

#[inline]
fn day_of(t: SimTime) -> u64 {
    t.0 >> DAY_SHIFT
}

/// A far-future event parked in the overflow heap. Ordered by `(time, seq)`
/// inverted, so the `BinaryHeap` max is the earliest event; `seq` is
/// unique, which makes the ordering total without requiring `E: Ord`.
#[derive(Debug)]
struct Far<E> {
    t: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Far<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Far<E> {}
impl<E> PartialOrd for Far<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Far<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of day buckets; slot `d & DAY_MASK` holds day `d`'s events,
    /// unsorted. A slot only ever holds events of a single absolute day:
    /// pushes beyond the window go to `overflow`, and a day's slot cannot
    /// be reused until the drain has moved past that day.
    ring: Vec<Vec<(SimTime, u64, E)>>,
    /// Occupancy bitmap over ring slots.
    occ: [u64; WORDS],
    /// Summary bitmap: bit `w` set iff `occ[w] != 0`. Makes the next-day
    /// scan O(1) instead of a walk over all words.
    occ_sum: u64,
    /// Events currently stored in ring buckets (excludes `drain` and
    /// `overflow`); lets an empty ring skip the bitmap scan entirely.
    ring_len: usize,
    /// The day currently being drained.
    cur_day: u64,
    /// Events of `cur_day`, sorted ascending by `(time, seq)`; the next
    /// event to fire is `drain.front()`. A deque so that the common push
    /// into the open day — a fresh event with the largest `(time, seq)` so
    /// far — is an O(1) `push_back` rather than a front-of-buffer memmove.
    drain: VecDeque<(SimTime, u64, E)>,
    /// Events beyond the ring window, earliest on top.
    overflow: BinaryHeap<Far<E>>,
    /// Pending-event count across all tiers.
    len: usize,
    /// High-water mark of `len`; budgets how much bucket capacity the ring
    /// may retain.
    hwm: usize,
    /// Total capacity currently retained across ring buckets.
    ring_cap: usize,
    seq: u64,
    now: SimTime,
    /// Total events ever scheduled.
    pub scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            ring: (0..DAYS).map(|_| Vec::new()).collect(),
            occ: [0; WORDS],
            occ_sum: 0,
            ring_len: 0,
            cur_day: 0,
            drain: VecDeque::new(),
            overflow: BinaryHeap::new(),
            len: 0,
            hwm: 0,
            ring_cap: 0,
            seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at `t`. Scheduling in the past is clamped to `now`
    /// (a resource that frees up "already" fires immediately).
    pub fn push(&mut self, t: SimTime, ev: E) {
        let t = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.len += 1;
        self.hwm = self.hwm.max(self.len);
        let d = day_of(t);
        if d == self.cur_day {
            // The open day. `seq` is the largest ever issued, so unless an
            // event *later in the day* is already pending this is a plain
            // append; otherwise insert at the (ascending) sorted position.
            match self.drain.back() {
                Some(&(bt, bs, _)) if (bt, bs) > (t, seq) => {
                    let at = self
                        .drain
                        .partition_point(|&(et, es, _)| (et, es) < (t, seq));
                    self.drain.insert(at, (t, seq, ev));
                }
                _ => self.drain.push_back((t, seq, ev)),
            }
        } else if d.wrapping_sub(self.cur_day) < DAYS {
            let slot = (d & DAY_MASK) as usize;
            let before = self.ring[slot].capacity();
            self.ring[slot].push((t, seq, ev));
            self.ring_cap += self.ring[slot].capacity() - before;
            self.ring_len += 1;
            self.occ[slot / 64] |= 1 << (slot % 64);
            self.occ_sum |= 1 << (slot / 64);
        } else {
            self.overflow.push(Far { t, seq, ev });
        }
    }

    /// Absolute day of the next non-empty ring slot at or after `cur_day`,
    /// if any. O(1): a masked probe of the starting word, then the summary
    /// bitmap picks the next occupied word in one `trailing_zeros`.
    fn next_ring_day(&self) -> Option<u64> {
        if self.ring_len == 0 {
            return None;
        }
        let start = (self.cur_day & DAY_MASK) as usize;
        let w0 = start / 64;
        let head = self.occ[w0] & (!0u64 << (start % 64));
        let slot = if head != 0 {
            w0 * 64 + head.trailing_zeros() as usize
        } else {
            // Rotate the summary so bit k maps to word (w0 + 1 + k) % 64;
            // the search order then matches the ring's wrap-around order,
            // ending back at w0 itself (whose remaining bits are all below
            // `start`, i.e. logically a full window ahead).
            let rot = self.occ_sum.rotate_right((w0 as u32 + 1) % 64);
            debug_assert!(rot != 0, "ring_len > 0 but no occupied word");
            let w = (w0 + 1 + rot.trailing_zeros() as usize) % WORDS;
            w * 64 + self.occ[w].trailing_zeros() as usize
        };
        let off = (slot as u64).wrapping_sub(self.cur_day) & DAY_MASK;
        Some(self.cur_day + off)
    }

    /// Open the next day that has events, filling `drain`. Returns `false`
    /// when the queue is empty.
    fn refill(&mut self) -> bool {
        self.drain.clear();
        if self.len == 0 {
            return false;
        }
        let ring_day = self.next_ring_day();
        let over_day = self.overflow.peek().map(|f| day_of(f.t));
        let d = match (ring_day, over_day) {
            (Some(r), Some(o)) => r.min(o),
            (Some(r), None) => r,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 but no events found"),
        };
        self.cur_day = d;
        let slot = (d & DAY_MASK) as usize;
        if self.occ[slot / 64] & (1 << (slot % 64)) != 0 {
            // Move the bucket's events out. The emptied bucket keeps its
            // capacity for reuse when the ring wraps around — unless the
            // ring's total retained capacity has outgrown the pending-event
            // high-water mark, in which case it is released. This is what
            // keeps long runs' retained storage proportional to peak
            // concurrency rather than to the slot count times per-slot
            // bursts (the old slab leaked a slot per event ever scheduled).
            let mut bucket = std::mem::take(&mut self.ring[slot]);
            self.ring_len -= bucket.len();
            self.drain.extend(bucket.drain(..));
            if self.ring_cap > 8 * self.hwm.max(64) {
                self.ring_cap -= bucket.capacity();
                bucket = Vec::new();
            }
            self.ring[slot] = bucket;
            self.occ[slot / 64] &= !(1 << (slot % 64));
            if self.occ[slot / 64] == 0 {
                self.occ_sum &= !(1 << (slot / 64));
            }
        }
        while let Some(top) = self.overflow.peek() {
            if day_of(top.t) != d {
                break;
            }
            let Far { t, seq, ev } = self.overflow.pop().unwrap();
            self.drain.push_back((t, seq, ev));
        }
        self.drain
            .make_contiguous()
            .sort_unstable_by_key(|e| (e.0, e.1));
        true
    }

    /// Pop the next event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.drain.is_empty() && !self.refill() {
            return None;
        }
        let (t, _, ev) = self.drain.pop_front().expect("refill produced events");
        self.now = t;
        self.len -= 1;
        Some((t, ev))
    }

    /// Pop every event sharing the next (minimal) timestamp into `batch`,
    /// advancing `now` to that time. The batch is cleared first; events
    /// appear in FIFO `seq` order. Handlers may push new events while the
    /// batch is being consumed — a push at the same timestamp gets a larger
    /// `seq`, lands after the current batch, and is returned by the *next*
    /// call, which is exactly the order the one-at-a-time loop produces.
    ///
    /// Multi-queue use (fabrics): when several switches each own a queue
    /// and a driving loop advances all of them to the *global* minimum
    /// `peek_time` before exchanging link events, the interleaving of
    /// batches across queues preserves the global `(time, seq)` order a
    /// single merged queue would produce — provided cross-queue events are
    /// always scheduled strictly after the time already drained (positive
    /// link latency guarantees this). Pinned against the `BinaryHeap`
    /// oracle in `merged_queues_preserve_global_order_through_link_events`.
    pub fn pop_batch(&mut self, batch: &mut Vec<E>) -> Option<SimTime> {
        batch.clear();
        if self.drain.is_empty() && !self.refill() {
            return None;
        }
        let t = self.drain.front().expect("refill produced events").0;
        self.now = t;
        // The drain is ascending, so the run of events at `t` is the head,
        // already in FIFO `seq` order.
        let k = self.drain.partition_point(|&(et, _, _)| et <= t);
        batch.extend(self.drain.drain(..k).map(|(_, _, ev)| ev));
        self.len -= batch.len();
        Some(t)
    }

    /// Time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(&(t, _, _)) = self.drain.front() {
            return Some(t);
        }
        if self.len == 0 {
            return None;
        }
        let over_t = self.overflow.peek().map(|f| f.t);
        match self.next_ring_day() {
            None => over_t,
            Some(d) => {
                let slot = (d & DAY_MASK) as usize;
                let ring_min = self.ring[slot]
                    .iter()
                    .map(|&(t, _, _)| t)
                    .min()
                    .expect("occupied slot is non-empty");
                match over_t {
                    Some(ot) if ot < ring_min => Some(ot),
                    _ => Some(ring_min),
                }
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total event-storage capacity currently retained (ring buckets, the
    /// drain buffer, and the overflow heap). Bounded by the high-water mark
    /// of *concurrently pending* events — not by `scheduled` — which the
    /// slab regression test asserts.
    pub fn storage_capacity(&self) -> usize {
        self.ring.iter().map(|b| b.capacity()).sum::<usize>()
            + self.drain.capacity()
            + self.overflow.capacity()
    }
}

/// The original `BinaryHeap` + slab implementation, kept as a test oracle:
/// the calendar queue must reproduce its `(time, seq)` pop sequence
/// bit-for-bit (see `calendar_queue_matches_heap_oracle`).
#[cfg(test)]
pub mod oracle {
    use crate::time::SimTime;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Key(SimTime, u64);

    /// Reference queue: `BinaryHeap` keyed by `(time, seq)` over a slab.
    #[derive(Debug)]
    pub struct HeapQueue<E> {
        heap: BinaryHeap<Reverse<(Key, usize)>>,
        slots: Vec<Option<E>>,
        free: Vec<usize>,
        seq: u64,
        now: SimTime,
    }

    impl<E> Default for HeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> HeapQueue<E> {
        /// An empty oracle queue.
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                seq: 0,
                now: SimTime::ZERO,
            }
        }

        /// Schedule `ev` at `t` (clamped to now), FIFO among ties.
        pub fn push(&mut self, t: SimTime, ev: E) {
            let t = t.max(self.now);
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slots[i] = Some(ev);
                    i
                }
                None => {
                    self.slots.push(Some(ev));
                    self.slots.len() - 1
                }
            };
            self.heap.push(Reverse((Key(t, self.seq), idx)));
            self.seq += 1;
        }

        /// Pop the earliest `(time, seq)` event.
        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            let Reverse((Key(t, _), idx)) = self.heap.pop()?;
            self.now = t;
            let ev = self.slots[idx]
                .take()
                .expect("slot holds a scheduled event");
            self.free.push(idx);
            Some((t, ev))
        }

        /// Slab footprint: one slot per event ever scheduled (the leak the
        /// calendar queue designs away).
        pub fn slab_len(&self) -> usize {
            self.slots.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_and_past_clamps() {
        let mut q = EventQueue::new();
        q.push(SimTime(100), 1);
        assert_eq!(q.pop().unwrap().0, SimTime(100));
        assert_eq!(q.now(), SimTime(100));
        // Scheduling "in the past" fires at now.
        q.push(SimTime(50), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime(100));
        assert_eq!(e, 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_payloads_straight() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), "x");
        q.pop();
        q.push(SimTime(2), "y");
        q.push(SimTime(3), "z");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
        assert_eq!(q.scheduled, 3);
    }

    #[test]
    fn peek_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), 0);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
    }

    #[test]
    fn peek_time_across_tiers() {
        let mut q: EventQueue<u8> = EventQueue::new();
        // Far-future event (overflow tier).
        q.push(SimTime(500_000_000_000), 9);
        assert_eq!(q.peek_time(), Some(SimTime(500_000_000_000)));
        // Nearer event in a ring bucket beats it.
        q.push(SimTime(40_000), 1);
        assert_eq!(q.peek_time(), Some(SimTime(40_000)));
        // Same-day event in the open drain beats both.
        q.push(SimTime(3), 0);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        assert_eq!(q.pop().unwrap(), (SimTime(3), 0));
        assert_eq!(q.pop().unwrap(), (SimTime(40_000), 1));
        assert_eq!(q.pop().unwrap(), (SimTime(500_000_000_000), 9));
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_and_window_wrap() {
        let mut q = EventQueue::new();
        let window = DAYS << DAY_SHIFT;
        // One event far past the ring window, one just inside, one now.
        q.push(SimTime(window * 3 + 17), "far");
        q.push(SimTime(window - 1), "edge");
        q.push(SimTime(0), "now");
        assert_eq!(q.pop().unwrap().1, "now");
        assert_eq!(q.pop().unwrap().1, "edge");
        // After advancing, pushing within the new window lands in the ring.
        q.push(SimTime(window + 5), "next");
        assert_eq!(q.pop().unwrap().1, "next");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_matches_single_pop_order() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let mut rng = SimRng::seed_from(11);
        for i in 0..500u32 {
            let t = SimTime(rng.range(0..50u64) * 1000);
            a.push(t, i);
            b.push(t, i);
        }
        let mut singles = Vec::new();
        while let Some((t, e)) = a.pop() {
            singles.push((t, e));
        }
        let mut batched = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = b.pop_batch(&mut batch) {
            for e in batch.drain(..) {
                batched.push((t, e));
            }
        }
        assert_eq!(singles, batched);
    }

    #[test]
    fn pop_batch_only_drains_one_timestamp() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(10), 2);
        q.push(SimTime(20), 3);
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime(10)));
        assert_eq!(batch, vec![1, 2]);
        // A same-time push made while consuming the batch fires in the
        // next batch — the same order the one-at-a-time loop yields.
        q.push(SimTime(10), 4);
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime(10)));
        assert_eq!(batch, vec![4]);
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime(20)));
        assert_eq!(batch, vec![3]);
        assert_eq!(q.pop_batch(&mut batch), None);
    }

    /// Satellite: multi-switch interleavings. Two queues (two "switches")
    /// are driven in lockstep — advance to the global minimum `peek_time`,
    /// drain that timestamp from whichever queues hold it, and merge the
    /// batches by a global push tag. Events may spawn "link events" on the
    /// *other* queue, strictly later (positive link latency). The merged
    /// drain must reproduce, bit for bit, the `(time, tag)` pop sequence
    /// of a single `BinaryHeap` oracle that saw every push — i.e. the
    /// fabric driving loop's split queues preserve global `(time, seq)`
    /// order.
    #[test]
    fn merged_queues_preserve_global_order_through_link_events() {
        for seed in [2u64, 13, 77, 123, 2026] {
            let mut rng = SimRng::seed_from(seed);
            let mut qa: EventQueue<u64> = EventQueue::new();
            let mut qb: EventQueue<u64> = EventQueue::new();
            let mut ora: oracle::HeapQueue<u64> = oracle::HeapQueue::new();
            let mut tag = 0u64;
            // Initial "injections" land on one of the two switches; the
            // oracle sees every push, in the same global order.
            for _ in 0..200 {
                let t = SimTime(rng.range(0..50u64) * 10_000);
                if rng.chance(0.5) {
                    qa.push(t, tag);
                } else {
                    qb.push(t, tag);
                }
                ora.push(t, tag);
                tag += 1;
            }
            let mut batch_a = Vec::new();
            let mut batch_b = Vec::new();
            let mut recorded = Vec::new();
            loop {
                let t = match (qa.peek_time(), qb.peek_time()) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => break,
                };
                batch_a.clear();
                batch_b.clear();
                if qa.peek_time() == Some(t) {
                    assert_eq!(qa.pop_batch(&mut batch_a), Some(t));
                }
                if qb.peek_time() == Some(t) {
                    assert_eq!(qb.pop_batch(&mut batch_b), Some(t));
                }
                // Each queue's batch is FIFO by its own seq; restricted to
                // one queue that is ascending global-tag order, so a sorted
                // merge by tag reproduces the single-queue interleaving.
                let mut merged: Vec<u64> = batch_a.iter().chain(batch_b.iter()).copied().collect();
                merged.sort_unstable();
                for ev in merged {
                    recorded.push((t, ev));
                    // Some events cross the link to the other switch,
                    // strictly later — the positive-latency hand-off.
                    if tag < 1_200 && rng.chance(0.3) {
                        let arrive = SimTime(t.0 + rng.range(1..5_000u64));
                        if batch_a.contains(&ev) {
                            qb.push(arrive, tag);
                        } else {
                            qa.push(arrive, tag);
                        }
                        ora.push(arrive, tag);
                        tag += 1;
                    }
                }
            }
            let mut expect = Vec::new();
            while let Some((t, ev)) = ora.pop() {
                expect.push((t, ev));
            }
            assert_eq!(recorded, expect, "seed {seed}: merged order diverged");
        }
    }

    /// Satellite: scheduler equivalence. The calendar queue must produce
    /// exactly the oracle heap's `(time, seq)` pop sequence for seeded
    /// random schedules, including same-timestamp bursts and far-future
    /// outliers, under interleaved push/pop.
    #[test]
    fn calendar_queue_matches_heap_oracle() {
        for seed in [1u64, 7, 42, 99, 2026] {
            let mut rng = SimRng::seed_from(seed);
            let mut cal: EventQueue<u32> = EventQueue::new();
            let mut ora: oracle::HeapQueue<u32> = oracle::HeapQueue::new();
            let mut id = 0u32;
            let mut base = 0u64;
            for _round in 0..200 {
                // A burst of pushes around the current time...
                for _ in 0..rng.range(1..20) {
                    let t = match rng.range(0..10) {
                        // same-timestamp burst
                        0..=3 => SimTime(base),
                        // near horizon (a few days out)
                        4..=7 => SimTime(base + rng.range(0..100_000u64)),
                        // window edge
                        8 => SimTime(base + (DAYS << DAY_SHIFT) - rng.range(0..3u64)),
                        // far-future outlier, well past the ring window
                        _ => SimTime(base + (DAYS << DAY_SHIFT) * rng.range(1..5u64) + 13),
                    };
                    cal.push(t, id);
                    ora.push(t, id);
                    id += 1;
                }
                // ...then a few interleaved pops.
                for _ in 0..rng.range(0..15) {
                    let c = cal.pop();
                    let o = ora.pop();
                    assert_eq!(c, o, "seed {seed}: pop diverged");
                    if let Some((t, _)) = c {
                        base = t.0;
                    } else {
                        break;
                    }
                }
            }
            // Drain both to the end.
            loop {
                let c = cal.pop();
                let o = ora.pop();
                assert_eq!(c, o, "seed {seed}: drain diverged");
                if c.is_none() {
                    break;
                }
            }
        }
    }

    /// Satellite: the slab-growth pathology regression. The old design
    /// retained one slab slot per event *ever scheduled*; the calendar
    /// queue must keep retained storage proportional to the high-water
    /// mark of pending events across a 10⁶-event run.
    #[test]
    fn million_event_run_keeps_storage_bounded() {
        const TOTAL: u64 = 1_000_000;
        const OUTSTANDING: usize = 1024;
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SimRng::seed_from(3);
        let mut pushed = 0u64;
        while pushed < TOTAL || !q.is_empty() {
            while pushed < TOTAL && q.len() < OUTSTANDING {
                let t = q.now().0 + rng.range(0..200_000u64);
                q.push(SimTime(t), pushed);
                pushed += 1;
            }
            for _ in 0..rng.range(1..OUTSTANDING as u64) {
                if q.pop().is_none() {
                    break;
                }
            }
        }
        assert_eq!(q.scheduled, TOTAL);
        // Retained capacity must track the pending high-water mark (with
        // slack for per-bucket rounding), not the million-event total.
        let cap = q.storage_capacity();
        assert!(
            cap < 64 * OUTSTANDING,
            "storage capacity {cap} grew far past the {OUTSTANDING}-event high-water mark"
        );
    }
}
