//! A deterministic discrete-event queue.
//!
//! Both switch models are event-driven simulations: packets move between
//! resources (ports, pipelines, traffic managers) at computed times. The
//! queue orders events by `(time, sequence)` so that simultaneous events
//! fire in insertion order — which, combined with [`crate::rng::SimRng`],
//! makes whole runs reproducible bit-for-bit.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

/// A time-ordered event queue with FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    /// Slab of payloads; index stored in the heap keeps `E: Ord` unneeded.
    slots: Vec<Option<E>>,
    free: Vec<usize>,
    seq: u64,
    now: SimTime,
    /// Total events ever scheduled.
    pub scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled: 0,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at `t`. Scheduling in the past is clamped to `now`
    /// (a resource that frees up "already" fires immediately).
    pub fn push(&mut self, t: SimTime, ev: E) {
        let t = t.max(self.now);
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(ev);
                i
            }
            None => {
                self.slots.push(Some(ev));
                self.slots.len() - 1
            }
        };
        self.heap.push(Reverse((Key(t, self.seq), idx)));
        self.seq += 1;
        self.scheduled += 1;
    }

    /// Pop the next event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((Key(t, _), idx)) = self.heap.pop()?;
        self.now = t;
        let ev = self.slots[idx]
            .take()
            .expect("slot holds a scheduled event");
        self.free.push(idx);
        Some((t, ev))
    }

    /// Time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((Key(t, _), _))| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_and_past_clamps() {
        let mut q = EventQueue::new();
        q.push(SimTime(100), 1);
        assert_eq!(q.pop().unwrap().0, SimTime(100));
        assert_eq!(q.now(), SimTime(100));
        // Scheduling "in the past" fires at now.
        q.push(SimTime(50), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime(100));
        assert_eq!(e, 2);
    }

    #[test]
    fn slot_reuse_keeps_payloads_straight() {
        let mut q = EventQueue::new();
        q.push(SimTime(1), "x");
        q.pop();
        q.push(SimTime(2), "y");
        q.push(SimTime(3), "z");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "y");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
        assert_eq!(q.scheduled, 3);
    }

    #[test]
    fn peek_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(7), 0);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
    }
}
