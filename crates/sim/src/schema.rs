//! A minimal JSON-Schema-subset validator for exported artifacts.
//!
//! The container is offline, so rather than a full `jsonschema` dependency
//! this implements exactly the keywords the checked-in schemas use:
//! `type` (string or array of strings), `properties`, `required`,
//! `additionalProperties` (boolean or schema — the schema form doubles as
//! our "map with arbitrary keys" pattern), `items`, `minItems` and
//! `maxItems`. Unknown keywords are ignored, like real JSON Schema.
//!
//! It lives in the substrate (rather than the bench harness, where it
//! started) because every consumer of the simulator's JSON exports wants
//! it: `adcp-trace --validate`, the conformance harness, and the serving
//! daemon's rotating metrics stream all validate against
//! `schemas/*.schema.json` before writing.

use serde::Value;

/// Validate `value` against a (subset) JSON schema. Returns every
/// violation found, each prefixed with a `/`-separated path from the root,
/// or `Ok(())` when the document conforms.
pub fn validate(value: &Value, schema: &Value) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    check(value, schema, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::U64(_) | Value::U128(_) | Value::I64(_) => "integer",
        Value::F64(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

fn type_matches(v: &Value, want: &str) -> bool {
    match want {
        // JSON Schema: every integer is also a number.
        "number" => matches!(type_name(v), "integer" | "number"),
        w => type_name(v) == w,
    }
}

fn check(value: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    let Some(schema_obj) = schema.as_object() else {
        // Boolean schemas: `true` accepts anything, `false` nothing.
        if schema.as_bool() == Some(false) {
            errors.push(format!("{path}: schema forbids any value here"));
        }
        return;
    };

    if let Some(t) = schema_obj.get("type") {
        let wanted: Vec<&str> = match t {
            Value::String(s) => vec![s.as_str()],
            Value::Array(ts) => ts.iter().filter_map(Value::as_str).collect(),
            _ => vec![],
        };
        if !wanted.is_empty() && !wanted.iter().any(|w| type_matches(value, w)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                wanted.join("|"),
                type_name(value)
            ));
            return; // Structural keywords below assume the right type.
        }
    }

    if let Some(obj) = value.as_object() {
        if let Some(req) = schema_obj.get("required").and_then(Value::as_array) {
            for key in req.iter().filter_map(Value::as_str) {
                if obj.get(key).is_none() {
                    errors.push(format!("{path}: missing required member {key:?}"));
                }
            }
        }
        let props = schema_obj.get("properties").and_then(Value::as_object);
        let additional = schema_obj.get("additionalProperties");
        for (key, member) in obj.iter() {
            let member_path = format!("{path}/{key}");
            match props.and_then(|p| p.get(key)) {
                Some(sub) => check(member, sub, &member_path, errors),
                None => match additional {
                    Some(Value::Bool(false)) => {
                        errors.push(format!("{path}: unexpected member {key:?}"));
                    }
                    Some(sub @ Value::Object(_)) => check(member, sub, &member_path, errors),
                    _ => {}
                },
            }
        }
    }

    if let Some(items) = value.as_array() {
        if let Some(min) = schema_obj.get("minItems").and_then(Value::as_u64) {
            if (items.len() as u64) < min {
                errors.push(format!("{path}: fewer than {min} items"));
            }
        }
        if let Some(max) = schema_obj.get("maxItems").and_then(Value::as_u64) {
            if (items.len() as u64) > max {
                errors.push(format!("{path}: more than {max} items"));
            }
        }
        if let Some(item_schema) = schema_obj.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item, item_schema, &format!("{path}/{i}"), errors);
            }
        }
    }
}

/// Load a checked-in schema by workspace-relative path (walks up from the
/// current directory until the file is found, so both `cargo run` and CI
/// work).
pub fn load_schema(rel: &str) -> Result<Value, String> {
    let rel = std::path::Path::new(rel);
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let candidate = dir.join(rel);
        if candidate.exists() {
            let text = std::fs::read_to_string(&candidate).map_err(|e| e.to_string())?;
            return serde_json::from_str(&text)
                .map_err(|e| format!("{}: {e:?}", candidate.display()));
        }
        if !dir.pop() {
            return Err(format!("{} not found above current dir", rel.display()));
        }
    }
}

/// The checked-in metrics schema (`schemas/metrics.schema.json`).
pub fn load_metrics_schema() -> Result<Value, String> {
    load_schema("schemas/metrics.schema.json")
}

/// The checked-in Chrome trace-event schema
/// (`schemas/chrome_trace.schema.json`), which `adcp-trace --chrome`
/// output and the daemon's journey stream are validated against before
/// they are written.
pub fn load_chrome_trace_schema() -> Result<Value, String> {
    load_schema("schemas/chrome_trace.schema.json")
}

/// The checked-in INT telemetry schema (`schemas/telemetry.schema.json`),
/// which the collector's report and the daemon's streamed telemetry
/// snapshots are validated against before they are written.
pub fn load_telemetry_schema() -> Result<Value, String> {
    load_schema("schemas/telemetry.schema.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Value {
        serde_json::from_str(
            r#"{
              "type": "object",
              "required": ["a", "b"],
              "additionalProperties": false,
              "properties": {
                "a": {"type": "integer"},
                "b": {
                  "type": "array",
                  "minItems": 1,
                  "items": {"type": ["string", "number"]}
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_conforming_document() {
        let doc = serde_json::from_str(r#"{"a": 3, "b": ["x", 1.5]}"#).unwrap();
        assert_eq!(validate(&doc, &schema()), Ok(()));
    }

    #[test]
    fn reports_each_violation_with_path() {
        let doc = serde_json::from_str(r#"{"a": "oops", "b": [], "c": 1}"#).unwrap();
        let errs = validate(&doc, &schema()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.contains("$/a") && e.contains("integer")));
        assert!(errs.iter().any(|e| e.contains("fewer than 1")));
        assert!(errs.iter().any(|e| e.contains("\"c\"")));
    }

    #[test]
    fn integer_is_a_number_but_not_vice_versa() {
        let s: Value = serde_json::from_str(r#"{"type": "number"}"#).unwrap();
        assert_eq!(validate(&Value::U64(7), &s), Ok(()));
        let s: Value = serde_json::from_str(r#"{"type": "integer"}"#).unwrap();
        assert!(validate(&Value::F64(7.5), &s).is_err());
    }
}
