//! Port and link models.
//!
//! Ports are where the paper's line-rate arithmetic becomes concrete: a port
//! of speed `R` Gbps serializes a `B`-byte wire packet in `8·B/R` ns, so its
//! maximum packet rate is `R / (8·B_min)` — the quantity Table 2 trades
//! against pipeline clock frequency.

use crate::packet::{Packet, PortId};
use crate::time::{Duration, SimTime};
use std::fmt;

/// Link speed in gigabits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkSpeed {
    gbps: u32,
}

impl LinkSpeed {
    /// 10 Gbps — the original RMT paper's port speed.
    pub const G10: LinkSpeed = LinkSpeed { gbps: 10 };
    /// 100 Gbps.
    pub const G100: LinkSpeed = LinkSpeed { gbps: 100 };
    /// 400 Gbps.
    pub const G400: LinkSpeed = LinkSpeed { gbps: 400 };
    /// 800 Gbps.
    pub const G800: LinkSpeed = LinkSpeed { gbps: 800 };
    /// 1.6 Tbps — the "upcoming" port speed in §3.3.
    pub const G1600: LinkSpeed = LinkSpeed { gbps: 1600 };

    /// Arbitrary speed in Gbps.
    pub fn gbps(g: u32) -> Self {
        assert!(g > 0, "link speed must be positive");
        LinkSpeed { gbps: g }
    }

    /// Speed in Gbps.
    pub fn as_gbps(self) -> u32 {
        self.gbps
    }

    /// Speed in bits per second.
    pub fn bits_per_sec(self) -> u64 {
        self.gbps as u64 * 1_000_000_000
    }

    /// Time to serialize `bits` onto this link.
    ///
    /// `ps = bits × 1000 / gbps` (exact for the powers of ten used here;
    /// rounded up otherwise so a link can never exceed its physical rate).
    pub fn serialize(self, bits: u64) -> Duration {
        let num = bits * 1_000;
        Duration(num.div_ceil(self.gbps as u64))
    }

    /// Serialization time of one packet's wire footprint.
    pub fn packet_time(self, p: &Packet) -> Duration {
        self.serialize(p.wire_bits())
    }

    /// Maximum packets/s at a given minimum on-wire size.
    pub fn max_pps(self, min_wire_bytes: u32) -> f64 {
        self.bits_per_sec() as f64 / (min_wire_bytes as f64 * 8.0)
    }
}

impl fmt::Display for LinkSpeed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gbps >= 1000 && self.gbps.is_multiple_of(100) {
            write!(f, "{:.1}Tbps", self.gbps as f64 / 1000.0)
        } else {
            write!(f, "{}Gbps", self.gbps)
        }
    }
}

/// Transmit side of a port: serializes packets one at a time.
///
/// A `TxPort` is a simple busy-until model: offering a packet at time `t`
/// schedules its last bit at `max(t, busy_until) + serialize(pkt)`. The TM
/// asks [`TxPort::ready_at`] before dequeuing so that it never over-runs the
/// line.
#[derive(Debug, Clone)]
pub struct TxPort {
    id: PortId,
    speed: LinkSpeed,
    busy_until: SimTime,
    /// Packets fully transmitted.
    pub pkts: u64,
    /// Wire bytes transmitted (including overhead and padding).
    pub wire_bytes: u64,
    /// Application-payload bytes transmitted (goodput numerator).
    pub goodput_bytes: u64,
}

impl TxPort {
    /// New idle TX port.
    pub fn new(id: PortId, speed: LinkSpeed) -> Self {
        TxPort {
            id,
            speed,
            busy_until: SimTime::ZERO,
            pkts: 0,
            wire_bytes: 0,
            goodput_bytes: 0,
        }
    }

    /// Port identity.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Link speed.
    pub fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Earliest time a new packet could start serializing.
    pub fn ready_at(&self) -> SimTime {
        self.busy_until
    }

    /// True if the port can start a packet at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Transmit a packet starting no earlier than `now`; returns the time
    /// the last bit leaves the port.
    pub fn transmit(&mut self, p: &Packet, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + self.speed.packet_time(p);
        self.busy_until = done;
        self.pkts += 1;
        self.wire_bytes += p.wire_bytes() as u64;
        self.goodput_bytes += p.meta.goodput_bytes as u64;
        done
    }

    /// Achieved throughput in Gbps over `[0, now]`.
    pub fn throughput_gbps(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.wire_bytes as f64 * 8.0 / secs / 1e9
    }

    /// Achieved goodput in Gbps over `[0, now]`.
    pub fn goodput_gbps(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.goodput_bytes as f64 * 8.0 / secs / 1e9
    }
}

/// Receive side of a port: paces packet arrivals at line rate.
///
/// Sources hand the RX port a packet; the port reports when its last bit has
/// arrived (which is when the parser may begin).
#[derive(Debug, Clone)]
pub struct RxPort {
    id: PortId,
    speed: LinkSpeed,
    busy_until: SimTime,
    /// Packets fully received.
    pub pkts: u64,
    /// Wire bytes received.
    pub wire_bytes: u64,
}

impl RxPort {
    /// New idle RX port.
    pub fn new(id: PortId, speed: LinkSpeed) -> Self {
        RxPort {
            id,
            speed,
            busy_until: SimTime::ZERO,
            pkts: 0,
            wire_bytes: 0,
        }
    }

    /// Port identity.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Link speed.
    pub fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Earliest time a new arrival could begin.
    pub fn ready_at(&self) -> SimTime {
        self.busy_until
    }

    /// Receive a packet whose first bit arrives no earlier than `now`;
    /// returns the completion time and stamps `meta.arrived`.
    pub fn receive(&mut self, p: &mut Packet, now: SimTime) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + self.speed.packet_time(p);
        self.busy_until = done;
        self.pkts += 1;
        self.wire_bytes += p.wire_bytes() as u64;
        p.meta.ingress_port = Some(self.id);
        p.meta.arrived = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{synthetic_packet, FlowId};

    #[test]
    fn serialization_times() {
        // 84 B on wire at 10 Gbps = 67.2 ns.
        let p = synthetic_packet(1, FlowId(1), 64);
        let d = LinkSpeed::G10.packet_time(&p);
        assert_eq!(d.as_ps(), 67_200);
        // Same packet at 800 Gbps = 0.84 ns.
        let d = LinkSpeed::G800.packet_time(&p);
        assert_eq!(d.as_ps(), 840);
    }

    #[test]
    fn tx_port_paces_back_to_back() {
        let mut tx = TxPort::new(PortId(0), LinkSpeed::G100);
        let p = synthetic_packet(1, FlowId(1), 64); // 84 B → 6.72 ns at 100G
        let t1 = tx.transmit(&p, SimTime::ZERO);
        assert_eq!(t1.as_ps(), 6_720);
        // Offered immediately again: starts only after the first finishes.
        let t2 = tx.transmit(&p, SimTime::ZERO);
        assert_eq!(t2.as_ps(), 13_440);
        assert_eq!(tx.pkts, 2);
        assert_eq!(tx.wire_bytes, 168);
    }

    #[test]
    fn tx_throughput_at_line_rate() {
        let mut tx = TxPort::new(PortId(0), LinkSpeed::G10);
        let p = synthetic_packet(1, FlowId(1), 1500);
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            now = tx.transmit(&p, now);
        }
        let gbps = tx.throughput_gbps(now);
        assert!((gbps - 10.0).abs() < 0.01, "gbps = {gbps}");
    }

    #[test]
    fn rx_stamps_arrival_metadata() {
        let mut rx = RxPort::new(PortId(5), LinkSpeed::G400);
        let mut p = synthetic_packet(1, FlowId(2), 256);
        let done = rx.receive(&mut p, SimTime::from_ns(10));
        assert_eq!(p.meta.ingress_port, Some(PortId(5)));
        assert_eq!(p.meta.arrived, done);
        assert!(done > SimTime::from_ns(10));
    }

    #[test]
    fn max_pps_matches_table2_row1() {
        // One pipeline of 64×10G at 84 B → 0.952 Gpps (Table 2 row 1).
        let per_port = LinkSpeed::G10.max_pps(84);
        let total = per_port * 64.0;
        assert!((total / 1e9 - 0.952).abs() < 0.001);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LinkSpeed::G10.to_string(), "10Gbps");
        assert_eq!(LinkSpeed::G1600.to_string(), "1.6Tbps");
    }
}
