//! In-band network telemetry (INT): datapath-stamped per-hop metadata.
//!
//! The journey tracer ([`crate::trace`]) is the *simulator's* flight
//! recorder — omniscient out-of-band instrumentation that sees the truth
//! by construction. This module models the opposite regime: telemetry the
//! **datapath itself** writes onto transiting packets, hop by hop, the way
//! an INT-capable ASIC pushes metadata words onto an INT header stack.
//! Each stamping switch appends an [`IntStamp`] (device id, site,
//! enter/exit times, queue/buffer/epoch context) to the packet's bounded
//! [`IntStack`]; at TX the switch emits a [`Postcard`] — a sink-style
//! export of the accumulated stack — for the collector to drain.
//!
//! Because the simulator knows the ground truth, the INT subsystem gets a
//! conformance obligation no real deployment can have: every stamp must
//! match the journey tracer's hop record byte for byte (site, times,
//! context), and the `int/*` metrics counters must agree with what a
//! collector actually drains. A datapath that stamps *plausible* but
//! wrong telemetry is a lying datapath, and the harness must catch it.
//!
//! # Modeling choice: stamps ride packet metadata, not frame bytes
//!
//! Real INT rewrites the wire frame (and the sink strips the stack before
//! host delivery, so hosts never see it). This repository pins delivered
//! frames byte-identical across targets and against the one-big-switch
//! fabric reference; an in-frame stack would make every INT run a
//! different wire program. The stack therefore rides [`PacketMeta`]
//! (`meta.int`) — the post-sink view — while the bounded-capacity,
//! truncation-counted behavior of a real header region is preserved.
//! [`int_shim`] and [`int_hop`] (in `adcp-lang::protocols`) define the
//! canonical wire layout a real shim would use; their widths are what
//! [`INT_MAX_HOPS`] bounds.
//!
//! [`PacketMeta`]: crate::packet::PacketMeta
//! [`int_shim`]: ../adcp_lang/protocols/fn.int_shim.html
//! [`int_hop`]: ../adcp_lang/protocols/fn.int_hop.html

use crate::time::SimTime;
use crate::trace::{sample_hash, HopCtx, Site};
use serde::{Map, Value};

/// Maximum stamps one packet can carry — the modeled INT header region
/// holds this many metadata words; further hops increment the stack's
/// truncation count instead of growing it (mirroring a real INT shim's
/// remaining-hop-count field reaching zero).
pub const INT_MAX_HOPS: usize = 32;

/// Capacity of a switch's postcard sink FIFO. A real sink streams
/// postcards to an off-switch collector; when nobody drains the FIFO it
/// fills and further postcards are shed (counted, not silently lost).
/// Bounding it also keeps INT-on memory flat on runs whose harness never
/// drains — the postcard buffer is the only per-run-unbounded INT state.
pub const POSTCARDS_CAP: usize = 65_536;

/// Typical stamp count of a single-switch traversal (rx, ingress, tm1,
/// central, tm2, egress, tx) — the initial stack capacity, so the common
/// path allocates once and only multi-device or recirculating journeys
/// regrow.
pub const INT_TYPICAL_HOPS: usize = 8;

/// A stable numeric code for a [`Site`], folded into path digests.
/// Distinct sites (including distinct pipes/ports) map to distinct codes.
pub fn site_code(site: Site) -> u64 {
    match site {
        Site::Rx(p) => (1 << 32) | p.0 as u64,
        Site::IngressPipe(i) => (2 << 32) | i as u64,
        Site::Tm1 => 3 << 32,
        Site::CentralPipe(i) => (4 << 32) | i as u64,
        Site::Tm2 => 5 << 32,
        Site::EgressPipe(i) => (6 << 32) | i as u64,
        Site::Tx(p) => (7 << 32) | p.0 as u64,
        Site::Recirculated => 8 << 32,
        Site::Dropped => 9 << 32,
    }
}

/// One hop's worth of datapath-stamped telemetry: which device, where in
/// it, the span, and the queue/buffer/epoch context observed at the hop.
/// Field-for-field this is a [`crate::trace::Hop`] plus the device id —
/// deliberately, so the honesty conformance check can compare the two
/// representations exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntStamp {
    /// Stamping device (single switch: 0; fabric: leaf `l` = `l`,
    /// spine `s` = `n_leaves + s`).
    pub device: u16,
    /// Where in the device.
    pub site: Site,
    /// When the packet entered the site.
    pub enter: SimTime,
    /// When it left.
    pub exit: SimTime,
    /// Queue depth / buffer cells / partition epoch observed at the hop.
    pub ctx: HopCtx,
}

/// The bounded INT header region of one transiting packet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntStack {
    /// Stamps in hop order (capped at [`INT_MAX_HOPS`]).
    pub stamps: Vec<IntStamp>,
    /// Stamps that did not fit the header region.
    pub truncated: u16,
}

impl IntStack {
    /// An empty stack.
    pub fn new() -> Self {
        IntStack::default()
    }

    /// An empty stack pre-sized for a typical single-switch traversal
    /// ([`INT_TYPICAL_HOPS`]) — what datapaths allocate on first stamp.
    pub fn with_typical_capacity() -> Self {
        IntStack {
            stamps: Vec::with_capacity(INT_TYPICAL_HOPS),
            truncated: 0,
        }
    }

    /// Append a stamp; returns `false` (and counts the truncation) when
    /// the header region is full.
    pub fn push(&mut self, stamp: IntStamp) -> bool {
        if self.stamps.len() >= INT_MAX_HOPS {
            self.truncated = self.truncated.saturating_add(1);
            return false;
        }
        self.stamps.push(stamp);
        true
    }

    /// FNV-1a digest over the `(device, site)` sequence — the path
    /// fingerprint the collector watches for flips. Context and times are
    /// deliberately excluded: the digest identifies the *route*, not the
    /// conditions along it.
    pub fn path_digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for s in &self.stamps {
            for b in (s.device as u64)
                .to_le_bytes()
                .into_iter()
                .chain(site_code(s.site).to_le_bytes())
            {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// The maximum TM queue depth any stamp observed, if any did.
    pub fn max_queue_depth(&self) -> Option<u32> {
        self.stamps.iter().filter_map(|s| s.ctx.queue_depth).max()
    }
}

/// A sink export: when a stamping switch transmits a sampled packet, it
/// emits the accumulated stack (plus identity) for the collector. In a
/// fabric every device postcards at its own TX, so the collector sees the
/// path grow hop by hop — INT-XD style — while the final host-delivery
/// postcard carries the complete end-to-end chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postcard {
    /// The transmitting device.
    pub device: u16,
    /// Packet id.
    pub pkt: u64,
    /// Flow id.
    pub flow: u64,
    /// TX port on the transmitting device.
    pub port: u16,
    /// Transmit-complete time.
    pub time: SimTime,
    /// Snapshot of the packet's INT stack at transmit.
    pub stack: IntStack,
}

impl Postcard {
    /// JSON shape consumed by telemetry tooling (times in picoseconds).
    pub fn to_json(&self) -> Value {
        let mut o = Map::new();
        o.insert("device".into(), Value::U64(self.device as u64));
        o.insert("pkt".into(), Value::U64(self.pkt));
        o.insert("flow".into(), Value::U64(self.flow));
        o.insert("port".into(), Value::U64(self.port as u64));
        o.insert("time_ps".into(), Value::U64(self.time.as_ps()));
        o.insert("path_digest".into(), Value::U64(self.stack.path_digest()));
        o.insert("truncated".into(), Value::U64(self.stack.truncated as u64));
        let stamps: Vec<Value> = self
            .stack
            .stamps
            .iter()
            .map(|s| {
                let mut m = Map::new();
                m.insert("device".into(), Value::U64(s.device as u64));
                m.insert("site".into(), Value::String(s.site.to_string()));
                m.insert("enter_ps".into(), Value::U64(s.enter.as_ps()));
                m.insert("exit_ps".into(), Value::U64(s.exit.as_ps()));
                if let Some(d) = s.ctx.queue_depth {
                    m.insert("queue_depth".into(), Value::U64(d as u64));
                }
                if let Some(b) = s.ctx.buffer_cells {
                    m.insert("buffer_cells".into(), Value::U64(b));
                }
                if let Some(e) = s.ctx.epoch {
                    m.insert("epoch".into(), Value::U64(e));
                }
                Value::Object(m)
            })
            .collect();
        o.insert("stamps".into(), Value::Array(stamps));
        Value::Object(o)
    }
}

/// The `ADCP_INT` knob: whether a switch stamps, and at what sampling
/// rate. Mirrors the `ADCP_TRACE` / `ADCP_METRICS` conventions — unset
/// defers to the switch config flag, `off`/`0`/`false` force-disables,
/// `on`/`true` force-enables at rate 1, a number `N` force-enables with
/// sampling rate `N` (stamp packet ids where `fnv(id) % N == 0`, the same
/// deterministic hash the tracer samples with, so the stamped set and the
/// traced set coincide when the rates agree).
#[derive(Debug, Clone, Copy)]
pub struct IntKnob {
    enabled: bool,
    sample: u64,
}

impl IntKnob {
    /// An enabled knob at sampling rate `sample` (0 is treated as 1).
    pub fn with_sample(sample: u64) -> Self {
        IntKnob {
            enabled: true,
            sample: sample.max(1),
        }
    }

    /// A disabled knob (stamps nothing; one branch per call site).
    pub fn disabled() -> Self {
        IntKnob {
            enabled: false,
            sample: 1,
        }
    }

    /// Resolve from the `ADCP_INT` environment variable, deferring to the
    /// switch config flag when unset or unparseable.
    pub fn from_env(cfg_int: bool) -> Self {
        match std::env::var("ADCP_INT") {
            Ok(v) => {
                let v = v.trim();
                if v.eq_ignore_ascii_case("off") || v == "0" || v.eq_ignore_ascii_case("false") {
                    Self::disabled()
                } else if v.eq_ignore_ascii_case("on") || v.eq_ignore_ascii_case("true") {
                    Self::with_sample(1)
                } else if let Ok(n) = v.parse::<u64>() {
                    Self::with_sample(n)
                } else if cfg_int {
                    Self::with_sample(1)
                } else {
                    Self::disabled()
                }
            }
            Err(_) if cfg_int => Self::with_sample(1),
            Err(_) => Self::disabled(),
        }
    }

    /// Is stamping active at all? Hot paths branch on this before
    /// computing per-hop context, so a disabled knob costs one
    /// predictable branch per call site.
    #[inline]
    pub fn on(&self) -> bool {
        self.enabled
    }

    /// The sampling rate `N`.
    pub fn sample(&self) -> u64 {
        self.sample
    }

    /// Does this knob stamp packet `pkt`?
    #[inline]
    pub fn samples(&self, pkt: u64) -> bool {
        self.enabled && sample_hash(pkt).is_multiple_of(self.sample)
    }
}

/// Per-flow telemetry aggregated in central register state (ADCP only):
/// a fixed array of cells indexed by `fnv(flow) % cells`, each tracking
/// the flow's worst observed queue depth, hop count, current path digest,
/// and how many times that digest flipped — the switch-resident summary
/// the paper argues stateful central pipes exist to hold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntFlowCell {
    /// A flow has landed in this cell.
    pub active: bool,
    /// Worst TM queue depth any of the flow's stamps observed.
    pub max_queue_depth: u32,
    /// Hops on the flow's most recent packet.
    pub hop_count: u32,
    /// Path digest of the flow's most recent packet.
    pub path_digest: u64,
    /// Digest flips observed (path changes).
    pub path_changes: u64,
    /// Packets folded into this cell.
    pub packets: u64,
}

/// The central-register-resident per-flow aggregation table.
#[derive(Debug, Clone)]
pub struct IntFlowTable {
    cells: Vec<IntFlowCell>,
}

impl IntFlowTable {
    /// A table of `cells` flow slots (flows hash onto slots; collisions
    /// merge, as they would in real register state).
    pub fn new(cells: usize) -> Self {
        IntFlowTable {
            cells: vec![IntFlowCell::default(); cells.max(1)],
        }
    }

    /// The cell index flow `flow` hashes onto.
    pub fn slot_of(&self, flow: u64) -> usize {
        (sample_hash(flow) % self.cells.len() as u64) as usize
    }

    /// Fold one completed packet's stack into the flow's cell. Returns
    /// `true` when the fold flipped the flow's path digest (a path
    /// change).
    pub fn fold(&mut self, flow: u64, stack: &IntStack) -> bool {
        let slot = self.slot_of(flow);
        let cell = &mut self.cells[slot];
        let digest = stack.path_digest();
        let mut flipped = false;
        if cell.active && cell.path_digest != digest {
            cell.path_changes += 1;
            flipped = true;
        }
        cell.active = true;
        cell.path_digest = digest;
        cell.hop_count = stack.stamps.len() as u32;
        if let Some(d) = stack.max_queue_depth() {
            cell.max_queue_depth = cell.max_queue_depth.max(d);
        }
        cell.packets += 1;
        flipped
    }

    /// The cell flow `flow` hashes onto.
    pub fn cell(&self, flow: u64) -> &IntFlowCell {
        &self.cells[self.slot_of(flow)]
    }

    /// All cells (slot order).
    pub fn cells(&self) -> &[IntFlowCell] {
        &self.cells
    }

    /// Cells with at least one flow folded in.
    pub fn active_cells(&self) -> u64 {
        self.cells.iter().filter(|c| c.active).count() as u64
    }

    /// Total path changes across every cell.
    pub fn total_path_changes(&self) -> u64 {
        self.cells.iter().map(|c| c.path_changes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PortId;

    fn stamp(device: u16, site: Site, t: u64) -> IntStamp {
        IntStamp {
            device,
            site,
            enter: SimTime(t),
            exit: SimTime(t + 1),
            ctx: HopCtx::NONE,
        }
    }

    #[test]
    fn stack_bounds_and_counts_truncation() {
        let mut st = IntStack::new();
        for i in 0..(INT_MAX_HOPS as u64 + 5) {
            st.push(stamp(0, Site::Tm1, i));
        }
        assert_eq!(st.stamps.len(), INT_MAX_HOPS);
        assert_eq!(st.truncated, 5);
    }

    #[test]
    fn path_digest_tracks_route_not_conditions() {
        let mut a = IntStack::new();
        a.push(stamp(0, Site::Rx(PortId(1)), 0));
        a.push(stamp(0, Site::Tx(PortId(2)), 5));
        let mut b = IntStack::new();
        // Same route, different times and context.
        b.push(IntStamp {
            ctx: HopCtx {
                queue_depth: Some(9),
                buffer_cells: Some(100),
                epoch: Some(3),
            },
            ..stamp(0, Site::Rx(PortId(1)), 50)
        });
        b.push(stamp(0, Site::Tx(PortId(2)), 80));
        assert_eq!(a.path_digest(), b.path_digest());
        // Different route (other TX port) digests differently.
        let mut c = IntStack::new();
        c.push(stamp(0, Site::Rx(PortId(1)), 0));
        c.push(stamp(0, Site::Tx(PortId(3)), 5));
        assert_ne!(a.path_digest(), c.path_digest());
        // Different device, same sites: also a different path.
        let mut d = IntStack::new();
        d.push(stamp(1, Site::Rx(PortId(1)), 0));
        d.push(stamp(1, Site::Tx(PortId(2)), 5));
        assert_ne!(a.path_digest(), d.path_digest());
    }

    #[test]
    fn knob_env_semantics_mirror_trace() {
        std::env::set_var("ADCP_INT", "8");
        let k = IntKnob::from_env(false);
        assert!(k.on());
        assert_eq!(k.sample(), 8);
        std::env::set_var("ADCP_INT", "off");
        assert!(!IntKnob::from_env(true).on());
        std::env::set_var("ADCP_INT", "on");
        let k = IntKnob::from_env(false);
        assert!(k.on());
        assert_eq!(k.sample(), 1);
        std::env::remove_var("ADCP_INT");
        assert!(IntKnob::from_env(true).on());
        assert!(!IntKnob::from_env(false).on());
    }

    #[test]
    fn knob_sampling_matches_tracer_hash() {
        let k = IntKnob::with_sample(64);
        for id in 0..500u64 {
            assert_eq!(k.samples(id), sample_hash(id).is_multiple_of(64));
        }
        assert!(!IntKnob::disabled().samples(0));
    }

    #[test]
    fn flow_table_folds_and_detects_path_changes() {
        let mut t = IntFlowTable::new(64);
        let mut a = IntStack::new();
        a.push(IntStamp {
            ctx: HopCtx {
                queue_depth: Some(4),
                buffer_cells: None,
                epoch: None,
            },
            ..stamp(0, Site::Tm1, 1)
        });
        a.push(stamp(0, Site::Tx(PortId(0)), 2));
        assert!(!t.fold(7, &a), "first fold is never a path change");
        assert!(!t.fold(7, &a), "same route again: no change");
        let mut b = IntStack::new();
        b.push(stamp(0, Site::Tm1, 1));
        b.push(stamp(0, Site::Tx(PortId(1)), 2));
        assert!(t.fold(7, &b), "route flip must be detected");
        let c = t.cell(7);
        assert_eq!(c.path_changes, 1);
        assert_eq!(c.packets, 3);
        assert_eq!(c.max_queue_depth, 4);
        assert_eq!(c.hop_count, 2);
        assert_eq!(t.total_path_changes(), 1);
        assert_eq!(t.active_cells(), 1);
    }

    #[test]
    fn postcard_json_has_stable_shape() {
        let mut st = IntStack::new();
        st.push(IntStamp {
            ctx: HopCtx {
                queue_depth: Some(2),
                buffer_cells: Some(16),
                epoch: Some(1),
            },
            ..stamp(3, Site::Tm1, 10)
        });
        let pc = Postcard {
            device: 3,
            pkt: 42,
            flow: 7,
            port: 1,
            time: SimTime(99),
            stack: st,
        };
        let v = pc.to_json();
        assert_eq!(v.get("device").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("pkt").and_then(|x| x.as_u64()), Some(42));
        let stamps = v.get("stamps").and_then(|x| x.as_array()).unwrap();
        assert_eq!(stamps.len(), 1);
        assert_eq!(stamps[0].get("site").and_then(|x| x.as_str()), Some("tm1"));
        assert_eq!(
            stamps[0].get("queue_depth").and_then(|x| x.as_u64()),
            Some(2)
        );
        assert!(v.get("path_digest").is_some());
    }
}
