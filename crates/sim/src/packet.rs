//! Packets, flows, and coflows.
//!
//! A [`Packet`] is a byte buffer plus simulation metadata. The byte buffer is
//! what parsers (in `adcp-lang`) extract header fields from; the metadata is
//! simulation bookkeeping: identity, flow/coflow membership, timestamps, and
//! the forwarding decision the switch has made so far.
//!
//! Coflows follow Chowdhury & Stoica's definition (the paper's reference
//! [6]): a set of flows that belong to one application-level exchange and
//! complete together. The paper's core argument is that switches should
//! process *coflows*, not independent flows, so coflow identity is first
//! class here.

use std::fmt;
use std::sync::Arc;

use crate::time::SimTime;

/// Ethernet framing overhead on the wire: 7 B preamble + 1 B SFD + 12 B
/// inter-frame gap. This is why the paper's Table 2 lists the minimum
/// 10 Gbps packet as 84 B: a 64 B minimum frame plus this 20 B overhead.
pub const WIRE_OVERHEAD_BYTES: u32 = 20;

/// Minimum Ethernet frame size (without wire overhead).
pub const MIN_FRAME_BYTES: u32 = 64;

/// Minimum on-wire footprint of any packet: 64 + 20 = 84 B.
pub const MIN_WIRE_BYTES: u32 = MIN_FRAME_BYTES + WIRE_OVERHEAD_BYTES;

/// Identifies a physical switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies a flow (5-tuple stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Identifies a coflow: a set of flows that form one application exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoflowId(pub u32);

/// The forwarding decision attached to a packet as it moves through a switch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum EgressSpec {
    /// No decision yet (packet still in ingress processing).
    #[default]
    Unset,
    /// Forward to one TX port.
    Unicast(PortId),
    /// Replicate to several TX ports (the ADCP TM2 supports this natively;
    /// the parameter-server example uses it to broadcast aggregated weights).
    Multicast(Vec<PortId>),
    /// Drop the packet (filtered, or resource exhaustion).
    Drop,
    /// Send the packet back through the ingress pipeline (the RMT workaround
    /// the paper calls out as having "a great bandwidth and application
    /// complexity cost").
    Recirculate,
}

impl EgressSpec {
    /// Ports this spec will transmit on (empty for non-transmitting specs).
    pub fn ports(&self) -> &[PortId] {
        match self {
            EgressSpec::Unicast(p) => std::slice::from_ref(p),
            EgressSpec::Multicast(ps) => ps,
            _ => &[],
        }
    }
}

/// Simulation metadata carried alongside the packet bytes.
#[derive(Debug, Clone)]
pub struct PacketMeta {
    /// Unique packet id (assigned by the source).
    pub id: u64,
    /// Flow membership.
    pub flow: FlowId,
    /// Coflow membership, if the packet belongs to a coordinated exchange.
    pub coflow: Option<CoflowId>,
    /// RX port the switch received the packet on.
    pub ingress_port: Option<PortId>,
    /// Time the packet was created at its source.
    pub created: SimTime,
    /// Time the packet finished arriving at the switch.
    pub arrived: SimTime,
    /// Forwarding decision so far.
    pub egress: EgressSpec,
    /// Sort key for order-preserving merge scheduling (§3.1: the first TM
    /// "could keep a sort order while it merges flows that are themselves
    /// sorted").
    pub sort_key: Option<u64>,
    /// Number of recirculation passes this packet has taken (RMT only).
    pub recirc_count: u8,
    /// Switch-internal: this packet asked for another ingress pass.
    pub recirculate: bool,
    /// Switch-internal: central pipeline chosen by the program (ADCP) or
    /// the pipe hosting the coflow state (RMT recirculation).
    pub central_pipe: Option<u32>,
    /// Application data elements carried (keys/weights/rows) — the §3.2
    /// unit of switch performance.
    pub elements: u32,
    /// Bytes of application payload (goodput accounting); headers and
    /// padding are excluded.
    pub goodput_bytes: u32,
    /// Frame check sequence stamped by the sender over `data` (the FCS
    /// stand-in: real NICs append a CRC32; the simulator uses a 64-bit
    /// FNV-1a over the frame bytes). `None` means the source did not seal
    /// the frame, and switches skip the integrity check — legacy workloads
    /// keep working. Fault-injected bit flips leave the stamp stale, which
    /// is exactly how switches detect and discard corrupted frames.
    pub fcs: Option<u64>,
    /// Buffer-pool allocation token: the cell count charged when this packet
    /// was admitted to a traffic manager. Release must return exactly this
    /// many cells — recomputing from the frame length at release time drifts
    /// whenever the frame was rewritten (deparse writeback, header grow or
    /// shrink) while buffered. `None` when the packet holds no cells.
    pub buf_cells: Option<u32>,
    /// Time the packet was admitted to the traffic manager it currently sits
    /// in (or last sat in). Used for TM-residency stage spans.
    pub tm_enqueued: SimTime,
    /// Queue depth (packets across the TM's queues, this one included)
    /// observed when the packet was admitted. Carried so the journey
    /// tracer can attach enqueue-time context to the TM-residency hop it
    /// records at dequeue. `None` while not TM-resident.
    pub tm_q_depth: Option<u32>,
    /// Buffer-pool occupancy (cells, this packet's included) observed when
    /// the packet was admitted to the traffic manager.
    pub tm_buf_used: Option<u64>,
    /// Switch-internal (ADCP): the partition-map bucket TM1 routed this
    /// packet under. Drives the in-flight fence of the live-migration
    /// protocol. `None` until TM1 routes the packet, or when no partition
    /// map is installed.
    pub part_bucket: Option<u32>,
    /// Switch-internal (ADCP): the partition-map epoch in force when TM1
    /// routed this packet. Epoch-tagging is what guarantees no packet ever
    /// observes a half-applied map: a central pipe can always tell whether
    /// a dequeued packet was routed under the previous map.
    pub map_epoch: Option<u64>,
    /// In-band telemetry header region: the bounded stack of per-hop
    /// stamps the datapath has written onto this packet so far. `None`
    /// (8 bytes, no allocation) for unstamped packets — see
    /// [`crate::int`] for why the stack rides metadata rather than frame
    /// bytes.
    pub int: Option<Box<crate::int::IntStack>>,
}

impl PacketMeta {
    fn new(id: u64, flow: FlowId) -> Self {
        PacketMeta {
            id,
            flow,
            coflow: None,
            ingress_port: None,
            created: SimTime::ZERO,
            arrived: SimTime::ZERO,
            egress: EgressSpec::Unset,
            sort_key: None,
            recirc_count: 0,
            recirculate: false,
            central_pipe: None,
            elements: 0,
            goodput_bytes: 0,
            fcs: None,
            buf_cells: None,
            tm_enqueued: SimTime::ZERO,
            tm_q_depth: None,
            tm_buf_used: None,
            part_bucket: None,
            map_epoch: None,
            int: None,
        }
    }
}

/// Compute the frame check sequence over frame bytes: 64-bit FNV-1a.
///
/// Any stable hash works here — the FCS only needs to make a corrupted
/// frame (one flipped bit) disagree with its stamp deterministically.
pub fn frame_check(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frame bytes of one packet: either an exclusively-owned buffer or a
/// shared immutable one.
///
/// The hot path — deparse writeback at the end of every pipeline traversal
/// — wants an *owned* `Vec<u8>` it can recycle through a [`PacketStore`]
/// instead of allocating a fresh `Arc<[u8]>` (allocation + full copy) per
/// traversal. The multicast path wants *shared* bytes so replicating a
/// packet to `n` ports bumps a refcount `n` times instead of copying the
/// frame `n` times. This enum gives each path its shape: buffers start
/// `Owned`, [`FrameBuf::make_shared`] converts once before a fan-out, and
/// clones of a `Shared` buffer stay cheap.
#[derive(Debug, Clone)]
pub enum FrameBuf {
    /// Exclusively owned, mutable in place, recyclable.
    Owned(Vec<u8>),
    /// Refcounted immutable bytes (multicast copies, long-lived captures).
    Shared(Arc<[u8]>),
}

impl FrameBuf {
    /// Convert to the shared representation in place (idempotent; one
    /// allocation + copy when currently owned) so that subsequent clones
    /// are refcount bumps.
    pub fn make_shared(&mut self) {
        if let FrameBuf::Owned(v) = self {
            *self = FrameBuf::Shared(std::mem::take(v).into());
        }
    }

    /// Extract the bytes as an `Arc<[u8]>`, copying only if still owned.
    pub fn into_arc(self) -> Arc<[u8]> {
        match self {
            FrameBuf::Owned(v) => v.into(),
            FrameBuf::Shared(a) => a,
        }
    }

    /// Take the owned buffer out for recycling, if this frame is the
    /// exclusive owner of its bytes.
    pub fn take_owned(&mut self) -> Option<Vec<u8>> {
        match self {
            FrameBuf::Owned(v) => Some(std::mem::take(v)),
            FrameBuf::Shared(_) => None,
        }
    }
}

impl std::ops::Deref for FrameBuf {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        match self {
            FrameBuf::Owned(v) => v,
            FrameBuf::Shared(a) => a,
        }
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(v: Vec<u8>) -> Self {
        FrameBuf::Owned(v)
    }
}

impl From<Arc<[u8]>> for FrameBuf {
    fn from(a: Arc<[u8]>) -> Self {
        FrameBuf::Shared(a)
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(s: &[u8]) -> Self {
        FrameBuf::Owned(s.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for FrameBuf {
    fn from(a: [u8; N]) -> Self {
        FrameBuf::Owned(a.to_vec())
    }
}

/// Recycling arena for frame buffers.
///
/// Each switch owns one; the deparser takes a cleared buffer from the free
/// list instead of allocating, and writeback/delivery paths return the
/// packet's previous owned buffer to it. Under steady load the free list
/// reaches the in-flight high-water mark and the per-traversal allocation
/// rate drops to zero (the `deparse_allocs` counter keeps reporting
/// *logical* rebuilds, which is what the conformance goldens pin).
#[derive(Debug, Default)]
pub struct PacketStore {
    free: Vec<Vec<u8>>,
    /// Buffers handed out (logical rebuilds served by the arena).
    pub taken: u64,
    /// Hand-outs served from the free list rather than a fresh allocation.
    pub recycled: u64,
}

/// Free-list depth cap: past this the arena stops hoarding. Generous
/// relative to realistic in-flight packet counts; it only bounds pathology.
const STORE_MAX_FREE: usize = 4096;

impl PacketStore {
    /// Fresh empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get an empty buffer, reusing a recycled one when available.
    pub fn take(&mut self) -> Vec<u8> {
        self.taken += 1;
        match self.free.pop() {
            Some(buf) => {
                self.recycled += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the free list (cleared, capacity kept).
    pub fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.free.len() < STORE_MAX_FREE && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently parked in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

/// A simulated packet: bytes plus metadata.
///
/// The payload is a [`FrameBuf`]: owned along the straight-line pipeline
/// path (so deparse writeback can recycle buffers through a
/// [`PacketStore`]), converted to shared refcounted bytes once when a
/// multicast fan-out is about to clone it.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Frame contents (headers followed by payload).
    pub data: FrameBuf,
    /// Simulation bookkeeping.
    pub meta: PacketMeta,
}

impl Packet {
    /// Build a packet from raw bytes.
    pub fn new(id: u64, flow: FlowId, data: impl Into<FrameBuf>) -> Self {
        Packet {
            data: data.into(),
            meta: PacketMeta::new(id, flow),
        }
    }

    /// Builder-style: set coflow membership.
    pub fn with_coflow(mut self, c: CoflowId) -> Self {
        self.meta.coflow = Some(c);
        self
    }

    /// Builder-style: set creation timestamp.
    pub fn with_created(mut self, t: SimTime) -> Self {
        self.meta.created = t;
        self
    }

    /// Builder-style: set sort key for merge scheduling.
    pub fn with_sort_key(mut self, k: u64) -> Self {
        self.meta.sort_key = Some(k);
        self
    }

    /// Builder-style: set goodput byte count.
    pub fn with_goodput(mut self, bytes: u32) -> Self {
        self.meta.goodput_bytes = bytes;
        self
    }

    /// Builder-style: set the carried data-element count.
    pub fn with_elements(mut self, n: u32) -> Self {
        self.meta.elements = n;
        self
    }

    /// Builder-style: stamp the frame check sequence over the current
    /// frame bytes. Switch models verify sealed frames on injection and
    /// discard mismatches (counted as `fcs_drops`) before any table or
    /// register state can be touched.
    pub fn seal(mut self) -> Self {
        self.reseal();
        self
    }

    /// Re-stamp the frame check sequence after a legitimate in-switch
    /// rewrite (deparse writeback changes the bytes on purpose; the
    /// transmitting switch re-seals like a NIC recomputing the CRC).
    pub fn reseal(&mut self) {
        self.meta.fcs = Some(frame_check(&self.data));
    }

    /// Does the frame pass its integrity check? Unsealed frames
    /// (`fcs: None`) vacuously pass — the check is opt-in per source.
    pub fn fcs_ok(&self) -> bool {
        match self.meta.fcs {
            Some(stamp) => frame_check(&self.data) == stamp,
            None => true,
        }
    }

    /// Frame length in bytes (as stored; below-minimum frames are padded on
    /// the wire but not in the buffer).
    pub fn frame_bytes(&self) -> u32 {
        self.data.len() as u32
    }

    /// On-wire footprint: frame length padded to the Ethernet minimum, plus
    /// preamble and inter-frame gap. This is the size that determines
    /// serialization delay and the packet rates in the paper's Table 2.
    pub fn wire_bytes(&self) -> u32 {
        self.frame_bytes().max(MIN_FRAME_BYTES) + WIRE_OVERHEAD_BYTES
    }

    /// Bits on the wire.
    pub fn wire_bits(&self) -> u64 {
        self.wire_bytes() as u64 * 8
    }
}

/// Convenience constructor for test/synthetic packets of a given size.
pub fn synthetic_packet(id: u64, flow: FlowId, frame_len: usize) -> Packet {
    let mut buf = vec![0u8; frame_len];
    // Stamp the id into the first bytes so that corrupt/reorder faults are
    // observable in tests.
    let stamp = id.to_be_bytes();
    let n = stamp.len().min(frame_len);
    buf[..n].copy_from_slice(&stamp[..n]);
    Packet::new(id, flow, buf)
}

/// Maximum packet rate (packets per second) of a link, given its rate in
/// gigabits per second and the assumed minimum on-wire packet size in bytes.
///
/// This is the arithmetic behind the paper's scalability argument (§2 issue
/// ③): `64 × 10 Gbps` ports at 84 B minimum packets generate
/// `640e9 / (84 × 8) ≈ 952 Mpps`, hence the original RMT's ~1 GHz pipeline.
pub fn max_packet_rate_pps(gbps: f64, min_wire_bytes: u32) -> f64 {
    (gbps * 1e9) / (min_wire_bytes as f64 * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_overhead_and_padding() {
        let p = synthetic_packet(1, FlowId(1), 64);
        assert_eq!(p.wire_bytes(), 84);
        let tiny = synthetic_packet(2, FlowId(1), 10);
        assert_eq!(tiny.wire_bytes(), 84, "padded to minimum frame");
        let big = synthetic_packet(3, FlowId(1), 1500);
        assert_eq!(big.wire_bytes(), 1520);
    }

    #[test]
    fn packet_rate_matches_paper_examples() {
        // §2 ③: "64x 10 Gbps ... around 952 Mpps".
        let pps = max_packet_rate_pps(640.0, 84);
        assert!((pps / 1e6 - 952.38).abs() < 0.5, "pps = {pps}");
        // "64x 100 Gbps ports can generate just about 9.5 Bpps".
        let pps = max_packet_rate_pps(6400.0, 84);
        assert!((pps / 1e9 - 9.52).abs() < 0.05, "pps = {pps}");
        // §3.3: "1.6 Tbps ... around 2.38 Bpps using the smallest packet".
        let pps = max_packet_rate_pps(1600.0, 84);
        assert!((pps / 1e9 - 2.38).abs() < 0.01, "pps = {pps}");
    }

    #[test]
    fn egress_spec_ports() {
        assert!(EgressSpec::Unset.ports().is_empty());
        assert!(EgressSpec::Drop.ports().is_empty());
        assert_eq!(EgressSpec::Unicast(PortId(3)).ports(), &[PortId(3)]);
        let m = EgressSpec::Multicast(vec![PortId(1), PortId(2)]);
        assert_eq!(m.ports().len(), 2);
    }

    #[test]
    fn fcs_seal_check_and_reseal() {
        let p = synthetic_packet(5, FlowId(2), 96);
        assert!(p.fcs_ok(), "unsealed frames pass vacuously");
        assert_eq!(p.meta.fcs, None);

        let sealed = p.seal();
        assert!(sealed.fcs_ok());

        // A single flipped bit must be detected.
        let mut corrupted = sealed.clone();
        let mut buf = corrupted.data.to_vec();
        buf[40] ^= 0x01;
        corrupted.data = buf.into();
        assert!(!corrupted.fcs_ok());

        // Resealing blesses the new bytes (the deparse-writeback path).
        corrupted.reseal();
        assert!(corrupted.fcs_ok());
    }

    #[test]
    fn builder_sets_meta() {
        let p = synthetic_packet(9, FlowId(4), 128)
            .with_coflow(CoflowId(7))
            .with_created(SimTime::from_ns(5))
            .with_sort_key(44)
            .with_goodput(100);
        assert_eq!(p.meta.coflow, Some(CoflowId(7)));
        assert_eq!(p.meta.created, SimTime::from_ns(5));
        assert_eq!(p.meta.sort_key, Some(44));
        assert_eq!(p.meta.goodput_bytes, 100);
        assert_eq!(&p.data[..8], &9u64.to_be_bytes());
    }
}
