//! The INT collector: turn datapath postcards into operator-facing
//! telemetry.
//!
//! Switches stamp per-hop INT records into transiting packets (see
//! [`crate::int`]) and emit a [`Postcard`] at every TX for sampled
//! packets. Because the stamp stack rides packet metadata across fabric
//! links, a packet crossing leaf→spine→leaf produces three postcards whose
//! stacks are *prefixes of each other* — the final host-delivery postcard
//! carries the whole end-to-end chain. The collector exploits exactly that
//! structure:
//!
//! * **dedup by suffix** — per packet it only processes stamps beyond the
//!   longest stack seen so far, so drain order (leaves before spines, or
//!   any other) never double-counts a hop;
//! * **per-flow paths** — the final (longest) stack per packet yields the
//!   path digest and hop chain; folding packets per flow in delivery order
//!   detects **path changes** (digest flips) with the before/after chains;
//! * **per-queue series** — every TM-residency stamp contributes its queue
//!   depth to a per-`(device, site)` series; an EWMA baseline flags
//!   **microbursts** (depth ≥ `burst_factor`× the baseline and above an
//!   absolute floor);
//! * **drop hotspots** — exact per-`(site, reason)` drop totals ingested
//!   from each device's trace block, ranked.
//!
//! [`Collector::report`] emits one JSON document validated against
//! `schemas/telemetry.schema.json` before anyone writes it;
//! [`Collector::chrome_overlay_events`] emits the same anomalies as
//! Chrome-trace instants (pid = device) to overlay on a fabric trace.

use serde::{Map, Value};
use std::collections::BTreeMap;

use crate::int::Postcard;
use crate::time::SimTime;

/// Detection knobs. The defaults are deliberately conservative: a
/// microburst must stand `burst_factor`× above the EWMA baseline *and*
/// clear an absolute depth floor, so an idle queue's first packet (EWMA 0)
/// is never an anomaly.
#[derive(Debug, Clone, Copy)]
pub struct CollectorCfg {
    /// EWMA smoothing factor for the per-queue depth baseline.
    pub ewma_alpha: f64,
    /// A sample is a microburst when `depth >= burst_factor * ewma`.
    pub burst_factor: f64,
    /// ... and at least this deep (absolute floor).
    pub min_burst_depth: u32,
    /// Cap on retained events per category (excess is counted, not kept).
    pub max_events: usize,
    /// Cap on per-flow summaries in the report (largest flows win).
    pub max_flow_summaries: usize,
}

impl Default for CollectorCfg {
    fn default() -> Self {
        CollectorCfg {
            ewma_alpha: 0.3,
            burst_factor: 4.0,
            min_burst_depth: 8,
            max_events: 4096,
            max_flow_summaries: 64,
        }
    }
}

/// One microburst: a queue-depth sample far above its EWMA baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Microburst {
    /// Stamping device.
    pub device: u16,
    /// Site within the device (e.g. `"tm1"`).
    pub site: String,
    /// When the packet entered the queue.
    pub time: SimTime,
    /// The packet that observed the burst.
    pub pkt: u64,
    /// Observed depth.
    pub depth: u32,
    /// Baseline at the moment of observation.
    pub ewma: f64,
}

/// One path change: a flow whose packets started taking a different route.
#[derive(Debug, Clone, PartialEq)]
pub struct PathChange {
    /// The flow that moved.
    pub flow: u64,
    /// The device that delivered the first packet on the new path.
    pub device: u16,
    /// First packet seen on the new path.
    pub pkt: u64,
    /// Delivery time of that packet.
    pub time: SimTime,
    /// Digest of the old route.
    pub old_digest: u64,
    /// Digest of the new route.
    pub new_digest: u64,
    /// The new hop chain, as `"dev/site"` strings.
    pub path: Vec<String>,
}

/// Exact drop total at one `(device, site, reason)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DropHotspot {
    /// Device the drops happened on.
    pub device: u16,
    /// Death site.
    pub site: String,
    /// Typed reason label.
    pub reason: String,
    /// Exact count (from the tracer's always-on drop aggregation).
    pub count: u64,
}

/// Per-packet record: the longest stack seen so far and what it implies.
struct PktRecord {
    flow: u64,
    stamps_seen: usize,
    truncated: u16,
    digest: u64,
    path: Vec<String>,
    max_queue_depth: u32,
    final_time: SimTime,
    last_device: u16,
}

/// Per-`(device, site)` queue-depth series (kept sorted at report time).
#[derive(Default)]
struct QueueSeries {
    /// `(enter, pkt, depth)` samples.
    samples: Vec<(SimTime, u64, u32)>,
}

/// Per-flow aggregate built at report time from delivered packets.
struct FlowAgg {
    packets: u64,
    hop_count: usize,
    max_queue_depth: u32,
    digest: u64,
    path: Vec<String>,
}

/// The collector. Feed it postcards (and optionally trace blocks for drop
/// hotspots), then ask for [`report`](Collector::report) /
/// [`chrome_overlay_events`](Collector::chrome_overlay_events).
pub struct Collector {
    cfg: CollectorCfg,
    names: BTreeMap<u16, String>,
    pkts: BTreeMap<u64, PktRecord>,
    queues: BTreeMap<(u16, String), QueueSeries>,
    drops: BTreeMap<(u16, String, String), u64>,
    postcards: u64,
    stamps: u64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new(CollectorCfg::default())
    }
}

impl Collector {
    /// A collector with the given detection knobs.
    pub fn new(cfg: CollectorCfg) -> Self {
        Collector {
            cfg,
            names: BTreeMap::new(),
            pkts: BTreeMap::new(),
            queues: BTreeMap::new(),
            drops: BTreeMap::new(),
            postcards: 0,
            stamps: 0,
        }
    }

    /// Register a display name for a device (e.g. `"leaf0"`, `"spine1"`).
    /// Unnamed devices render as `"dev<N>"`.
    pub fn set_device_name(&mut self, device: u16, name: impl Into<String>) {
        self.names.insert(device, name.into());
    }

    fn device_name(&self, device: u16) -> String {
        self.names
            .get(&device)
            .cloned()
            .unwrap_or_else(|| format!("dev{device}"))
    }

    /// Ingest one postcard. Stamps already seen for this packet (a shorter
    /// prefix stack from an upstream device's TX) are skipped, so every
    /// hop is counted exactly once regardless of drain order.
    pub fn ingest(&mut self, pc: &Postcard) {
        self.postcards += 1;
        let rec = self.pkts.entry(pc.pkt).or_insert_with(|| PktRecord {
            flow: pc.flow,
            stamps_seen: 0,
            truncated: 0,
            digest: 0,
            path: Vec::new(),
            max_queue_depth: 0,
            final_time: SimTime(0),
            last_device: pc.device,
        });
        let stamps = &pc.stack.stamps;
        if stamps.len() > rec.stamps_seen {
            for s in &stamps[rec.stamps_seen..] {
                self.stamps += 1;
                rec.path.push(format!(
                    "{}/{}",
                    self.names
                        .get(&s.device)
                        .cloned()
                        .unwrap_or_else(|| format!("dev{}", s.device)),
                    s.site
                ));
                if let Some(d) = s.ctx.queue_depth {
                    rec.max_queue_depth = rec.max_queue_depth.max(d);
                    self.queues
                        .entry((s.device, s.site.to_string()))
                        .or_default()
                        .samples
                        .push((s.enter, pc.pkt, d));
                }
            }
            rec.stamps_seen = stamps.len();
            rec.digest = pc.stack.path_digest();
            rec.truncated = rec.truncated.max(pc.stack.truncated);
        }
        if pc.time > rec.final_time {
            rec.final_time = pc.time;
            rec.last_device = pc.device;
        }
    }

    /// Ingest the drop side of one device's `trace_json()` block: the
    /// exact per-`(site, reason)` totals (complete at any sampling rate).
    pub fn ingest_drops(&mut self, device: u16, trace: &Value) {
        let empty = Vec::new();
        let counts = trace
            .get("drop_counts")
            .and_then(Value::as_array)
            .unwrap_or(&empty);
        for c in counts {
            let site = c.get("site").and_then(Value::as_str).unwrap_or("?");
            let reason = c.get("reason").and_then(Value::as_str).unwrap_or("?");
            let n = c.get("count").and_then(Value::as_u64).unwrap_or(0);
            *self
                .drops
                .entry((device, site.to_string(), reason.to_string()))
                .or_insert(0) += n;
        }
    }

    /// `(stamps, postcards, truncated)` ingested so far, deduplicated —
    /// the numbers the honesty conformance compares against the datapath's
    /// `int/*` counters.
    pub fn totals(&self) -> (u64, u64, u64) {
        let truncated: u64 = self.pkts.values().map(|r| r.truncated as u64).sum();
        (self.stamps, self.postcards, truncated)
    }

    /// Distinct packets with at least one ingested postcard.
    pub fn pkts(&self) -> usize {
        self.pkts.len()
    }

    /// Detect microbursts: per `(device, site)` series in time order, flag
    /// samples ≥ `burst_factor`× the running EWMA (and above the floor).
    pub fn microbursts(&self) -> (Vec<Microburst>, u64) {
        let mut out = Vec::new();
        let mut suppressed = 0u64;
        for ((device, site), series) in &self.queues {
            let mut samples = series.samples.clone();
            samples.sort_by_key(|&(t, pkt, _)| (t, pkt));
            let mut ewma: Option<f64> = None;
            for (t, pkt, depth) in samples {
                if let Some(base) = ewma {
                    if depth >= self.cfg.min_burst_depth
                        && (depth as f64) >= self.cfg.burst_factor * base
                    {
                        if out.len() < self.cfg.max_events {
                            out.push(Microburst {
                                device: *device,
                                site: site.clone(),
                                time: t,
                                pkt,
                                depth,
                                ewma: base,
                            });
                        } else {
                            suppressed += 1;
                        }
                    }
                }
                let a = self.cfg.ewma_alpha;
                ewma = Some(match ewma {
                    None => depth as f64,
                    Some(base) => a * depth as f64 + (1.0 - a) * base,
                });
            }
        }
        out.sort_by_key(|m| (m.time, m.device, m.pkt));
        (out, suppressed)
    }

    /// Detect path changes: fold each flow's packets in delivery order and
    /// flag digest flips.
    pub fn path_changes(&self) -> (Vec<PathChange>, u64) {
        let mut by_time: Vec<(&u64, &PktRecord)> = self.pkts.iter().collect();
        by_time.sort_by_key(|(pkt, r)| (r.final_time, **pkt));
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        let mut out = Vec::new();
        let mut suppressed = 0u64;
        for (pkt, r) in by_time {
            match last.insert(r.flow, r.digest) {
                Some(prev) if prev != r.digest => {
                    if out.len() < self.cfg.max_events {
                        out.push(PathChange {
                            flow: r.flow,
                            device: r.last_device,
                            pkt: *pkt,
                            time: r.final_time,
                            old_digest: prev,
                            new_digest: r.digest,
                            path: r.path.clone(),
                        });
                    } else {
                        suppressed += 1;
                    }
                }
                _ => {}
            }
        }
        (out, suppressed)
    }

    /// Drop hotspots, largest first.
    pub fn drop_hotspots(&self) -> Vec<DropHotspot> {
        let mut out: Vec<DropHotspot> = self
            .drops
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|((device, site, reason), &count)| DropHotspot {
                device: *device,
                site: site.clone(),
                reason: reason.clone(),
                count,
            })
            .collect();
        out.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| (a.device, &a.site, &a.reason).cmp(&(b.device, &b.site, &b.reason)))
        });
        out
    }

    fn flow_aggs(&self) -> BTreeMap<u64, FlowAgg> {
        let mut by_time: Vec<&PktRecord> = self.pkts.values().collect();
        by_time.sort_by_key(|r| (r.final_time, r.flow));
        let mut flows: BTreeMap<u64, FlowAgg> = BTreeMap::new();
        for r in by_time {
            let agg = flows.entry(r.flow).or_insert_with(|| FlowAgg {
                packets: 0,
                hop_count: 0,
                max_queue_depth: 0,
                digest: 0,
                path: Vec::new(),
            });
            agg.packets += 1;
            agg.hop_count = r.stamps_seen;
            agg.max_queue_depth = agg.max_queue_depth.max(r.max_queue_depth);
            agg.digest = r.digest;
            agg.path = r.path.clone();
        }
        flows
    }

    /// The telemetry report, shaped to `schemas/telemetry.schema.json`.
    pub fn report(&self) -> Value {
        let (stamps, postcards, truncated) = self.totals();
        let (bursts, bursts_suppressed) = self.microbursts();
        let (changes, changes_suppressed) = self.path_changes();
        let flows = self.flow_aggs();

        let mut root = Map::new();
        root.insert("version".into(), Value::U64(1));
        root.insert("postcards".into(), Value::U64(postcards));
        root.insert("stamps".into(), Value::U64(stamps));
        root.insert("truncated".into(), Value::U64(truncated));
        root.insert("pkts".into(), Value::U64(self.pkts.len() as u64));
        root.insert("flows".into(), Value::U64(flows.len() as u64));

        let mut queues = Vec::new();
        for ((device, site), series) in &self.queues {
            let n = series.samples.len() as u64;
            let max = series.samples.iter().map(|&(_, _, d)| d).max().unwrap_or(0);
            let sum: u64 = series.samples.iter().map(|&(_, _, d)| d as u64).sum();
            let mut q = Map::new();
            q.insert("device".into(), Value::U64(*device as u64));
            q.insert("name".into(), Value::String(self.device_name(*device)));
            q.insert("site".into(), Value::String(site.clone()));
            q.insert("samples".into(), Value::U64(n));
            q.insert("max_depth".into(), Value::U64(max as u64));
            q.insert(
                "mean_depth".into(),
                Value::F64(if n == 0 { 0.0 } else { sum as f64 / n as f64 }),
            );
            queues.push(Value::Object(q));
        }
        root.insert("queues".into(), Value::Array(queues));

        let mut mb = Vec::new();
        for b in &bursts {
            let mut o = Map::new();
            o.insert("device".into(), Value::U64(b.device as u64));
            o.insert("name".into(), Value::String(self.device_name(b.device)));
            o.insert("site".into(), Value::String(b.site.clone()));
            o.insert("time_ps".into(), Value::U64(b.time.0));
            o.insert("pkt".into(), Value::U64(b.pkt));
            o.insert("depth".into(), Value::U64(b.depth as u64));
            o.insert("ewma".into(), Value::F64(b.ewma));
            mb.push(Value::Object(o));
        }
        root.insert("microbursts".into(), Value::Array(mb));
        root.insert(
            "microbursts_suppressed".into(),
            Value::U64(bursts_suppressed),
        );

        let mut pc = Vec::new();
        for c in &changes {
            let mut o = Map::new();
            o.insert("flow".into(), Value::U64(c.flow));
            o.insert("pkt".into(), Value::U64(c.pkt));
            o.insert("time_ps".into(), Value::U64(c.time.0));
            o.insert("old_digest".into(), Value::U64(c.old_digest));
            o.insert("new_digest".into(), Value::U64(c.new_digest));
            o.insert(
                "path".into(),
                Value::Array(c.path.iter().map(|s| Value::String(s.clone())).collect()),
            );
            pc.push(Value::Object(o));
        }
        root.insert("path_changes".into(), Value::Array(pc));
        root.insert(
            "path_changes_suppressed".into(),
            Value::U64(changes_suppressed),
        );

        let mut hs = Vec::new();
        for h in self.drop_hotspots() {
            let mut o = Map::new();
            o.insert("device".into(), Value::U64(h.device as u64));
            o.insert("name".into(), Value::String(self.device_name(h.device)));
            o.insert("site".into(), Value::String(h.site.clone()));
            o.insert("reason".into(), Value::String(h.reason.clone()));
            o.insert("count".into(), Value::U64(h.count));
            hs.push(Value::Object(o));
        }
        root.insert("drop_hotspots".into(), Value::Array(hs));

        let mut rows: Vec<(u64, FlowAgg)> = flows.into_iter().collect();
        rows.sort_by(|a, b| b.1.packets.cmp(&a.1.packets).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(self.cfg.max_flow_summaries);
        let mut fs = Vec::new();
        for (flow, agg) in rows {
            let mut o = Map::new();
            o.insert("flow".into(), Value::U64(flow));
            o.insert("packets".into(), Value::U64(agg.packets));
            o.insert("hop_count".into(), Value::U64(agg.hop_count as u64));
            o.insert(
                "max_queue_depth".into(),
                Value::U64(agg.max_queue_depth as u64),
            );
            o.insert("path_digest".into(), Value::U64(agg.digest));
            o.insert(
                "path".into(),
                Value::Array(agg.path.iter().map(|s| Value::String(s.clone())).collect()),
            );
            fs.push(Value::Object(o));
        }
        root.insert("flow_summaries".into(), Value::Array(fs));

        Value::Object(root)
    }

    /// The detected anomalies as Chrome-trace instants (pid = device, one
    /// `telemetry` track per device) for overlaying on a fabric trace.
    pub fn chrome_overlay_events(&self, tid: u64) -> Vec<Value> {
        const PS_PER_US: f64 = 1e6;
        let mut events = Vec::new();
        let (bursts, _) = self.microbursts();
        for b in &bursts {
            let mut o = Map::new();
            o.insert(
                "name".into(),
                Value::String(format!("microburst: {} depth {}", b.site, b.depth)),
            );
            o.insert("cat".into(), Value::String("telemetry".into()));
            o.insert("ph".into(), Value::String("i".into()));
            o.insert("ts".into(), Value::F64(b.time.0 as f64 / PS_PER_US));
            o.insert("pid".into(), Value::U64(b.device as u64));
            o.insert("tid".into(), Value::U64(tid));
            o.insert("s".into(), Value::String("p".into()));
            let mut args = Map::new();
            args.insert("pkt".into(), Value::U64(b.pkt));
            args.insert("depth".into(), Value::U64(b.depth as u64));
            args.insert("ewma".into(), Value::F64(b.ewma));
            o.insert("args".into(), Value::Object(args));
            events.push(Value::Object(o));
        }
        let (changes, _) = self.path_changes();
        for c in &changes {
            let mut o = Map::new();
            o.insert(
                "name".into(),
                Value::String(format!("path change: flow {}", c.flow)),
            );
            o.insert("cat".into(), Value::String("telemetry".into()));
            o.insert("ph".into(), Value::String("i".into()));
            o.insert("ts".into(), Value::F64(c.time.0 as f64 / PS_PER_US));
            o.insert("pid".into(), Value::U64(c.device as u64));
            o.insert("tid".into(), Value::U64(tid));
            o.insert("s".into(), Value::String("g".into()));
            let mut args = Map::new();
            args.insert("flow".into(), Value::U64(c.flow));
            args.insert("pkt".into(), Value::U64(c.pkt));
            o.insert("args".into(), Value::Object(args));
            events.push(Value::Object(o));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int::{IntStack, IntStamp};
    use crate::trace::{HopCtx, Site};
    use crate::PortId;

    fn stamp(device: u16, site: Site, enter: u64, depth: Option<u32>) -> IntStamp {
        IntStamp {
            device,
            site,
            enter: SimTime(enter),
            exit: SimTime(enter + 100),
            ctx: HopCtx {
                queue_depth: depth,
                buffer_cells: None,
                epoch: None,
            },
        }
    }

    fn postcard(device: u16, pkt: u64, flow: u64, time: u64, stamps: Vec<IntStamp>) -> Postcard {
        let mut stack = IntStack::default();
        for s in stamps {
            stack.push(s);
        }
        Postcard {
            device,
            pkt,
            flow,
            port: 0,
            time: SimTime(time),
            stack,
        }
    }

    /// Two postcards for one packet — the spine's stack extends the
    /// leaf's — must count each hop once, whatever the drain order.
    #[test]
    fn prefix_stacks_dedupe_in_any_order() {
        let leaf_stamps = vec![
            stamp(0, Site::Rx(PortId(0)), 0, None),
            stamp(0, Site::Tm1, 200, Some(3)),
        ];
        let mut spine_stamps = leaf_stamps.clone();
        spine_stamps.push(stamp(4, Site::Tm1, 900, Some(5)));
        for order in [[0usize, 1], [1, 0]] {
            let cards = [
                postcard(0, 7, 42, 500, leaf_stamps.clone()),
                postcard(4, 7, 42, 1_200, spine_stamps.clone()),
            ];
            let mut c = Collector::default();
            for &i in &order {
                c.ingest(&cards[i]);
            }
            let (stamps, postcards, truncated) = c.totals();
            assert_eq!((stamps, postcards, truncated), (3, 2, 0), "order {order:?}");
            assert_eq!(c.pkts(), 1);
            let report = c.report();
            let q = report.get("queues").and_then(Value::as_array).unwrap();
            assert_eq!(q.len(), 2, "tm1 on device 0 and device 4");
        }
    }

    #[test]
    fn microburst_needs_a_baseline_and_a_floor() {
        let mut c = Collector::default();
        // A steady series of depth 2 then one spike to 20: one burst.
        for (i, depth) in [2u32, 2, 2, 2, 20, 2].iter().enumerate() {
            c.ingest(&postcard(
                0,
                i as u64,
                1,
                1_000 * (i as u64 + 1),
                vec![stamp(0, Site::Tm1, 1_000 * (i as u64 + 1), Some(*depth))],
            ));
        }
        let (bursts, suppressed) = c.microbursts();
        assert_eq!(suppressed, 0);
        assert_eq!(bursts.len(), 1, "{bursts:?}");
        assert_eq!(bursts[0].depth, 20);
        assert!(bursts[0].ewma < 3.0);
        // The first sample of an idle queue is never a burst, however deep.
        let mut c = Collector::default();
        c.ingest(&postcard(
            0,
            0,
            1,
            1_000,
            vec![stamp(0, Site::Tm1, 1_000, Some(100))],
        ));
        assert!(c.microbursts().0.is_empty());
    }

    #[test]
    fn path_change_fires_on_digest_flip_only() {
        let mut c = Collector::default();
        c.set_device_name(0, "leaf0");
        c.set_device_name(4, "spine0");
        c.set_device_name(5, "spine1");
        let via = |spine: u16, pkt: u64, t: u64| {
            postcard(
                1,
                pkt,
                9,
                t,
                vec![
                    stamp(0, Site::Rx(PortId(0)), t - 900, None),
                    stamp(spine, Site::Tm1, t - 500, None),
                    stamp(1, Site::Tx(PortId(1)), t - 100, None),
                ],
            )
        };
        c.ingest(&via(4, 1, 1_000));
        c.ingest(&via(4, 2, 2_000));
        c.ingest(&via(5, 3, 3_000)); // flow moves to the other spine
        c.ingest(&via(5, 4, 4_000));
        let (changes, _) = c.path_changes();
        assert_eq!(changes.len(), 1, "{changes:?}");
        assert_eq!(changes[0].flow, 9);
        assert_eq!(changes[0].pkt, 3);
        assert_ne!(changes[0].old_digest, changes[0].new_digest);
        assert!(changes[0].path.iter().any(|h| h == "spine1/tm1"));
    }

    #[test]
    fn report_validates_against_the_checked_in_schema() {
        let mut c = Collector::default();
        c.set_device_name(0, "leaf0");
        c.ingest(&postcard(
            0,
            1,
            5,
            2_000,
            vec![
                stamp(0, Site::Rx(PortId(0)), 0, None),
                stamp(0, Site::Tm1, 500, Some(4)),
                stamp(0, Site::Tx(PortId(2)), 1_500, None),
            ],
        ));
        let trace: Value = serde_json::from_str(
            r#"{"enabled": true, "drop_counts": [
                {"site": "tm1", "reason": "queue_tail", "tm": 1, "queue": 0, "count": 3}
            ]}"#,
        )
        .unwrap();
        c.ingest_drops(0, &trace);
        let report = c.report();
        let schema = crate::schema::load_telemetry_schema().unwrap();
        crate::schema::validate(&report, &schema).expect("telemetry report conforms");
        let hs = report
            .get("drop_hotspots")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].get("count").and_then(Value::as_u64), Some(3));
        let fs = report
            .get("flow_summaries")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(fs[0].get("hop_count").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn chrome_overlay_events_fit_the_trace_schema() {
        let mut c = Collector::default();
        for (i, depth) in [1u32, 1, 1, 16].iter().enumerate() {
            c.ingest(&postcard(
                2,
                i as u64,
                1,
                1_000 * (i as u64 + 1),
                vec![stamp(2, Site::Tm2, 1_000 * (i as u64 + 1), Some(*depth))],
            ));
        }
        let events = c.chrome_overlay_events(900);
        assert!(!events.is_empty());
        let mut root = Map::new();
        root.insert("traceEvents".into(), Value::Array(events));
        root.insert("displayTimeUnit".into(), Value::String("ns".into()));
        let schema = crate::schema::load_chrome_trace_schema().unwrap();
        crate::schema::validate(&Value::Object(root), &schema).expect("overlay conforms");
    }
}
