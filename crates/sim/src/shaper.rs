//! Token-bucket rate shaping.
//!
//! Models end-host pacing and rate limiting (the smoltcp examples expose
//! the same knobs as `--tx-rate-limit`/`--shaping-interval`). Sources use
//! a [`TokenBucket`] to decide *when* each packet may enter the switch;
//! the group-communication example uses it to model senders that pace to
//! a receiver's advertised rate.

use crate::packet::Packet;
use crate::time::{Duration, SimTime};

/// A token bucket: `rate_bps` sustained, `burst_bytes` of slack.
///
/// ```
/// use adcp_sim::shaper::TokenBucket;
/// use adcp_sim::packet::{synthetic_packet, FlowId};
/// use adcp_sim::time::SimTime;
///
/// // 1 Gbps with one packet of burst: the second back-to-back packet
/// // is released one wire-time later.
/// let mut bucket = TokenBucket::new(1_000_000_000, 1520);
/// let p = synthetic_packet(0, FlowId(0), 1500);
/// assert_eq!(bucket.admit(&p, SimTime::ZERO), SimTime::ZERO);
/// let t = bucket.admit(&p, SimTime::ZERO);
/// assert!((12.0..12.5).contains(&t.as_us_f64()));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_tokens: f64,
    tokens: f64,
    last_refill: SimTime,
    /// Packets released without waiting.
    pub passed_immediately: u64,
    /// Packets that had to wait for tokens.
    pub delayed: u64,
}

impl TokenBucket {
    /// Bucket sustaining `rate_bps` with `burst_bytes` of burst allowance.
    /// Starts full.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> Self {
        assert!(rate_bps > 0);
        let burst = (burst_bytes * 8) as f64;
        TokenBucket {
            rate_bps,
            burst_tokens: burst.max(1.0),
            tokens: burst.max(1.0),
            last_refill: SimTime::ZERO,
            passed_immediately: 0,
            delayed: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = now.saturating_since(self.last_refill).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_bps as f64).min(self.burst_tokens);
            self.last_refill = now;
        }
    }

    /// Earliest time at or after `now` the packet may be sent; debits the
    /// bucket. Calling in non-decreasing `now` order gives a conforming
    /// (rate-bounded) release schedule.
    pub fn admit(&mut self, p: &Packet, now: SimTime) -> SimTime {
        self.refill(now);
        let need = p.wire_bits() as f64;
        if self.tokens >= need {
            self.tokens -= need;
            self.passed_immediately += 1;
            return now;
        }
        // Wait for the deficit to accumulate.
        let deficit = need - self.tokens;
        let wait_s = deficit / self.rate_bps as f64;
        let at = now + Duration((wait_s * 1e12).ceil() as u64);
        self.tokens = 0.0;
        self.last_refill = at;
        self.delayed += 1;
        at
    }

    /// Tokens currently available, in bits.
    pub fn available_bits(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{synthetic_packet, FlowId};

    fn pkt(len: usize) -> Packet {
        synthetic_packet(0, FlowId(0), len)
    }

    #[test]
    fn burst_passes_then_paces() {
        // 1 Gbps bucket with 2 full packets of burst.
        let mut b = TokenBucket::new(1_000_000_000, 2 * 1520);
        let p = pkt(1500); // 1520 wire bytes = 12,160 bits
        let t0 = b.admit(&p, SimTime::ZERO);
        let t1 = b.admit(&p, SimTime::ZERO);
        assert_eq!(t0, SimTime::ZERO);
        assert_eq!(t1, SimTime::ZERO);
        assert_eq!(b.passed_immediately, 2);
        // Third packet must wait ~12.16 us at 1 Gbps.
        let t2 = b.admit(&p, SimTime::ZERO);
        assert!(t2 > SimTime::ZERO);
        let us = t2.as_us_f64();
        assert!((12.0..12.5).contains(&us), "wait = {us}us");
        assert_eq!(b.delayed, 1);
    }

    #[test]
    fn sustained_rate_is_honored() {
        let rate = 10_000_000_000u64; // 10 Gbps
        let mut b = TokenBucket::new(rate, 1520);
        let p = pkt(1500);
        let mut t = SimTime::ZERO;
        let n = 1000;
        for _ in 0..n {
            t = b.admit(&p, t);
        }
        let achieved = (n as f64 * p.wire_bits() as f64) / t.as_secs_f64();
        assert!(
            (achieved / rate as f64 - 1.0).abs() < 0.01,
            "achieved {:.2e} vs rate {rate}",
            achieved
        );
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut b = TokenBucket::new(1_000_000_000, 3 * 1520);
        let p = pkt(1500);
        // Drain the bucket.
        for _ in 0..3 {
            b.admit(&p, SimTime::ZERO);
        }
        assert!(b.available_bits() < p.wire_bits() as f64);
        // A long idle period refills to (and not beyond) the burst size.
        let later = SimTime::from_ms(10);
        b.refill(later);
        assert_eq!(b.available_bits(), (3 * 1520 * 8) as f64);
        let t = b.admit(&p, later);
        assert_eq!(t, later);
    }

    #[test]
    fn schedule_is_monotone() {
        let mut b = TokenBucket::new(500_000_000, 1520);
        let p = pkt(800);
        let mut last = SimTime::ZERO;
        for i in 0..100u64 {
            let offered = SimTime(i * 1_000_000); // 1us apart
            let granted = b.admit(&p, offered.max(last));
            assert!(granted >= last);
            last = granted;
        }
    }
}
