//! Inter-switch links for multi-switch fabrics.
//!
//! A [`Link`] models one direction of a point-to-point cable between two
//! switches: a serialization stage at the link speed plus a fixed
//! propagation latency. The model is **store-and-forward**: the sending
//! switch's TX port serializes the frame into the switch edge, and the link
//! then re-serializes it onto the wire (back-to-back frames queue behind
//! `busy_until`, exactly like [`crate::port::TxPort`]) before the
//! propagation delay. Latency must be strictly positive — that is what
//! makes a lockstep fabric driving loop causal: every frame handed to a
//! peer switch arrives strictly after the time the fabric has already
//! simulated up to.

use crate::packet::Packet;
use crate::port::LinkSpeed;
use crate::time::{Duration, SimTime};

/// One direction of an inter-switch cable.
#[derive(Debug, Clone)]
pub struct Link {
    speed: LinkSpeed,
    latency: Duration,
    /// When the wire finishes serializing the last accepted frame.
    busy_until: SimTime,
    /// Frames carried.
    pub frames: u64,
    /// Wire bytes carried (frame + minimum-size padding + overhead).
    pub wire_bytes: u64,
}

impl Link {
    /// A link with the given speed and propagation latency.
    ///
    /// Panics if `latency` is zero: a zero-latency link would let a frame
    /// arrive at the peer at the very timestamp the fabric loop is
    /// draining, breaking the strictly-causal hand-off argument.
    pub fn new(speed: LinkSpeed, latency: Duration) -> Self {
        assert!(
            latency.as_ps() > 0,
            "inter-switch links need positive latency"
        );
        Link {
            speed,
            latency,
            busy_until: SimTime::ZERO,
            frames: 0,
            wire_bytes: 0,
        }
    }

    /// Link speed.
    pub fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Propagation latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// When the wire is next free.
    pub fn ready_at(&self) -> SimTime {
        self.busy_until
    }

    /// Carry `p`, whose last bit left the sending switch at `tx_done`.
    /// Returns the arrival time at the peer switch: serialization onto the
    /// wire (queued behind any frame still being serialized) plus the
    /// propagation latency. Strictly greater than `tx_done`.
    pub fn transfer(&mut self, p: &Packet, tx_done: SimTime) -> SimTime {
        let depart = tx_done.max(self.busy_until);
        let done = depart + self.speed.packet_time(p);
        self.busy_until = done;
        self.frames += 1;
        self.wire_bytes += p.wire_bytes() as u64;
        done + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{synthetic_packet, FlowId};

    fn pkt(id: u64) -> Packet {
        synthetic_packet(id, FlowId(1), 128)
    }

    #[test]
    fn arrival_is_strictly_after_tx_done() {
        let mut l = Link::new(LinkSpeed::gbps(400), Duration::from_ns(200));
        let t0 = SimTime(1_000_000);
        let arrive = l.transfer(&pkt(0), t0);
        let p = pkt(0);
        assert_eq!(
            arrive,
            t0 + LinkSpeed::gbps(400).packet_time(&p) + Duration::from_ns(200)
        );
        assert!(arrive > t0);
    }

    #[test]
    fn back_to_back_frames_queue_on_the_wire() {
        let mut l = Link::new(LinkSpeed::gbps(100), Duration::from_ns(50));
        let t0 = SimTime(0);
        let a1 = l.transfer(&pkt(0), t0);
        // Same tx_done: the second frame waits for the wire.
        let a2 = l.transfer(&pkt(1), t0);
        let ser = LinkSpeed::gbps(100).packet_time(&pkt(0));
        assert_eq!(a2, a1 + ser);
        assert_eq!(l.frames, 2);
        assert_eq!(l.wire_bytes, 2 * pkt(0).wire_bytes() as u64);
    }

    #[test]
    fn idle_wire_does_not_delay() {
        let mut l = Link::new(LinkSpeed::gbps(100), Duration::from_ns(50));
        l.transfer(&pkt(0), SimTime(0));
        // A much later frame sees an idle wire again.
        let late = SimTime(1_000_000_000);
        let a = l.transfer(&pkt(1), late);
        assert_eq!(
            a,
            late + LinkSpeed::gbps(100).packet_time(&pkt(1)) + Duration::from_ns(50)
        );
    }

    #[test]
    #[should_panic(expected = "positive latency")]
    fn zero_latency_rejected() {
        let _ = Link::new(LinkSpeed::gbps(100), Duration::from_ns(0));
    }
}
