//! Schedulers over sets of queues.
//!
//! Both traffic managers are built from a [`ScheduledQueues`]: a vector of
//! bounded FIFOs plus a service discipline. The classic disciplines (FIFO,
//! strict priority, deficit round-robin) cover what the paper calls the
//! "classic scheduler" role of the second TM; [`Policy::MergeOrder`]
//! implements the expanded semantics §3.1 proposes for the *first* TM — "it
//! could keep a sort order while it merges flows that are themselves
//! sorted" — a k-way streaming merge by each packet's `sort_key`.

use crate::packet::Packet;
use crate::queue::{BoundedQueue, EnqueueResult};
use std::collections::VecDeque;

/// Service discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Serve packets in global arrival order regardless of queue.
    Fifo,
    /// Always serve the lowest-indexed non-empty queue.
    StrictPriority,
    /// Deficit round-robin with the given per-round byte quantum.
    Drr {
        /// Bytes of credit a queue earns per scheduling round.
        quantum: u32,
    },
    /// Order-preserving k-way merge by `meta.sort_key` (§3.1). Exact when
    /// every input queue is backlogged or has been [`ScheduledQueues::
    /// mark_ended`]; a streaming approximation otherwise.
    MergeOrder,
    /// A push-in-first-out queue (Sivaraman et al., the paper's [27] and
    /// its §5 call for programmable schedulers): every buffered packet is
    /// ranked by `meta.sort_key` and the global minimum departs first,
    /// regardless of arrival order or input queue. The rank is computed by
    /// the program (`SetSortKey`), which makes the scheduling policy
    /// itself programmable — e.g. coflow-aware shortest-coflow-first.
    Pifo,
}

/// A set of bounded queues served by one scheduler.
#[derive(Debug)]
pub struct ScheduledQueues {
    queues: Vec<BoundedQueue>,
    policy: Policy,
    /// Arrival order of queue indices (FIFO policy).
    arrivals: VecDeque<usize>,
    /// DRR state.
    deficits: Vec<u64>,
    cursor: usize,
    /// DRR: has the cursor queue received its quantum for this visit?
    topped_up: bool,
    /// MergeOrder: queues whose input flow has finished.
    ended: Vec<bool>,
    /// Pifo: (rank, seq, source queue) heap over every buffered packet.
    /// The queue membership is still tracked by the per-queue FIFOs so
    /// byte accounting and bounds behave identically; the heap only
    /// decides departure order.
    pifo: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
    pifo_seq: u64,
}

impl ScheduledQueues {
    /// `n` queues, each bounded to `per_queue_pkts` packets.
    pub fn new(n: usize, per_queue_pkts: usize, policy: Policy) -> Self {
        ScheduledQueues {
            queues: (0..n).map(|_| BoundedQueue::new(per_queue_pkts)).collect(),
            policy,
            arrivals: VecDeque::new(),
            deficits: vec![0; n],
            cursor: 0,
            topped_up: false,
            ended: vec![false; n],
            pifo: std::collections::BinaryHeap::new(),
            pifo_seq: 0,
        }
    }

    /// Number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Direct read access to one queue (for stats / assertions).
    pub fn queue(&self, i: usize) -> &BoundedQueue {
        &self.queues[i]
    }

    /// Total packets buffered across queues.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Total tail drops across queues.
    pub fn drops(&self) -> u64 {
        self.queues.iter().map(|q| q.drops).sum()
    }

    /// Enqueue into queue `i`.
    pub fn enqueue(&mut self, i: usize, p: Packet) -> EnqueueResult {
        let rank = p.meta.sort_key.unwrap_or(u64::MAX);
        let r = self.queues[i].push(p);
        if r.is_ok() {
            self.arrivals.push_back(i);
            if self.policy == Policy::Pifo {
                self.pifo.push(std::cmp::Reverse((rank, self.pifo_seq, i)));
                self.pifo_seq += 1;
            }
        }
        r
    }

    /// Declare that queue `i` will receive no further packets (MergeOrder
    /// uses this to release the merge when a flow finishes).
    pub fn mark_ended(&mut self, i: usize) {
        self.ended[i] = true;
    }

    /// Dequeue the next packet under the active policy. Returns the queue it
    /// came from and the packet.
    pub fn dequeue(&mut self) -> Option<(usize, Packet)> {
        match self.policy {
            Policy::Fifo => self.dequeue_fifo(),
            Policy::StrictPriority => self.dequeue_priority(),
            Policy::Drr { quantum } => self.dequeue_drr(quantum),
            Policy::MergeOrder => self.dequeue_merge(),
            Policy::Pifo => self.dequeue_pifo(),
        }
    }

    fn dequeue_fifo(&mut self) -> Option<(usize, Packet)> {
        let i = self.arrivals.pop_front()?;
        // The arrival list and the queues are kept in lockstep: an entry is
        // pushed only on successful enqueue and popped exactly once here.
        let p = self.queues[i]
            .pop()
            .expect("arrival list out of sync with queues");
        Some((i, p))
    }

    fn dequeue_priority(&mut self) -> Option<(usize, Packet)> {
        // Consume the arrival entry belonging to the queue we pop so FIFO
        // bookkeeping stays consistent if the policy were switched.
        let i = (0..self.queues.len()).find(|&i| !self.queues[i].is_empty())?;
        self.remove_arrival(i);
        Some((i, self.queues[i].pop().unwrap()))
    }

    fn dequeue_drr(&mut self, quantum: u32) -> Option<(usize, Packet)> {
        if self.is_empty() {
            return None;
        }
        let n = self.queues.len();
        // Classic DRR: each *visit* to a queue tops its deficit up by one
        // quantum; the queue is then served while the deficit covers its
        // head. `topped_up` distinguishes "still serving the cursor queue
        // within this visit" from "arriving at it fresh".
        //
        // The visit bound covers the worst case of a head many quanta large:
        // each revisit adds one quantum, so `max_head/quantum` extra rounds
        // suffice. Cap generously and fall back to plain round-robin so a
        // mis-configured (tiny) quantum can never wedge the scheduler.
        let max_head = self
            .queues
            .iter()
            .filter_map(|q| q.peek().map(|p| p.frame_bytes() as u64))
            .max()
            .unwrap_or(0);
        let rounds_needed = max_head / quantum.max(1) as u64 + 2;
        let visit_budget = rounds_needed.saturating_mul(n as u64).min(1_000_000);
        for _ in 0..visit_budget {
            let i = self.cursor;
            match self.queues[i].peek() {
                Some(head) => {
                    if !self.topped_up {
                        self.deficits[i] += quantum as u64;
                        self.topped_up = true;
                    }
                    let need = head.frame_bytes() as u64;
                    if self.deficits[i] >= need {
                        self.deficits[i] -= need;
                        self.remove_arrival(i);
                        return Some((i, self.queues[i].pop().unwrap()));
                    }
                }
                None => {
                    // Idle queues do not accumulate credit.
                    self.deficits[i] = 0;
                }
            }
            self.cursor = (self.cursor + 1) % n;
            self.topped_up = false;
        }
        // Pathological quantum: serve the next non-empty queue round-robin.
        let i = (0..n)
            .map(|k| (self.cursor + k) % n)
            .find(|&i| !self.queues[i].is_empty())?;
        self.deficits[i] = 0;
        self.cursor = (i + 1) % n;
        self.topped_up = false;
        self.remove_arrival(i);
        Some((i, self.queues[i].pop().unwrap()))
    }

    fn dequeue_merge(&mut self) -> Option<(usize, Packet)> {
        // Exact merge requires every un-ended queue to be non-empty;
        // otherwise we serve the minimum among available heads (streaming
        // approximation, documented in DESIGN.md).
        let mut best: Option<(usize, u64)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(head) = q.peek() {
                let key = head.meta.sort_key.unwrap_or(u64::MAX);
                match best {
                    Some((_, bk)) if bk <= key => {}
                    _ => best = Some((i, key)),
                }
            }
        }
        let (i, _) = best?;
        self.remove_arrival(i);
        Some((i, self.queues[i].pop().unwrap()))
    }

    fn dequeue_pifo(&mut self) -> Option<(usize, Packet)> {
        // The heap orders departures; the per-queue FIFO still stores the
        // packets. Entries can go stale when a packet leaves through
        // [`ScheduledQueues::dequeue_queue`] (TM port gating); stale
        // entries are skipped lazily.
        while let Some(std::cmp::Reverse((rank, _, qi))) = self.pifo.pop() {
            if let Some(p) =
                self.queues[qi].take_first(|p| p.meta.sort_key.unwrap_or(u64::MAX) == rank)
            {
                self.remove_arrival(qi);
                return Some((qi, p));
            }
        }
        None
    }

    /// Pop the head of one specific queue, bypassing the cross-queue
    /// policy. Traffic managers use this when the *port* behind a queue
    /// gates departure (a busy link cannot accept the policy's pick);
    /// within the queue FIFO order is preserved.
    pub fn dequeue_queue(&mut self, i: usize) -> Option<Packet> {
        let p = self.queues[i].pop()?;
        self.remove_arrival(i);
        Some(p)
    }

    /// True when a MergeOrder dequeue would be *exact*: every queue either
    /// has a head or has been marked ended.
    pub fn merge_ready(&self) -> bool {
        self.queues
            .iter()
            .zip(&self.ended)
            .all(|(q, &e)| e || !q.is_empty())
    }

    fn remove_arrival(&mut self, i: usize) {
        if let Some(pos) = self.arrivals.iter().position(|&x| x == i) {
            self.arrivals.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{synthetic_packet, FlowId};

    fn pkt(id: u64, len: usize) -> Packet {
        synthetic_packet(id, FlowId(id), len)
    }

    fn keyed(id: u64, key: u64) -> Packet {
        synthetic_packet(id, FlowId(id), 64).with_sort_key(key)
    }

    #[test]
    fn fifo_preserves_global_arrival_order() {
        let mut s = ScheduledQueues::new(3, 16, Policy::Fifo);
        s.enqueue(2, pkt(0, 64)).is_ok().then_some(()).unwrap();
        s.enqueue(0, pkt(1, 64));
        s.enqueue(1, pkt(2, 64));
        s.enqueue(0, pkt(3, 64));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|(_, p)| p.meta.id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn strict_priority_prefers_low_queues() {
        let mut s = ScheduledQueues::new(2, 16, Policy::StrictPriority);
        s.enqueue(1, pkt(0, 64));
        s.enqueue(0, pkt(1, 64));
        s.enqueue(1, pkt(2, 64));
        assert_eq!(s.dequeue().unwrap().1.meta.id, 1);
        assert_eq!(s.dequeue().unwrap().1.meta.id, 0);
        assert_eq!(s.dequeue().unwrap().1.meta.id, 2);
    }

    #[test]
    fn drr_shares_bandwidth_fairly() {
        let mut s = ScheduledQueues::new(2, 1024, Policy::Drr { quantum: 1500 });
        // Queue 0 sends 1500 B packets, queue 1 sends 500 B packets.
        for i in 0..30 {
            s.enqueue(0, pkt(i, 1500));
            s.enqueue(1, pkt(100 + i * 3, 500));
            s.enqueue(1, pkt(101 + i * 3, 500));
            s.enqueue(1, pkt(102 + i * 3, 500));
        }
        let mut bytes = [0u64; 2];
        for _ in 0..40 {
            let (q, p) = s.dequeue().unwrap();
            bytes[q] += p.frame_bytes() as u64;
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "DRR byte shares should be near-equal, got {bytes:?}"
        );
    }

    #[test]
    fn drr_makes_progress_on_oversized_heads() {
        let mut s = ScheduledQueues::new(1, 8, Policy::Drr { quantum: 10 });
        s.enqueue(0, pkt(0, 1500));
        assert!(s.dequeue().is_some(), "oversized head must still be served");
    }

    #[test]
    fn merge_emits_sorted_union_of_sorted_inputs() {
        let mut s = ScheduledQueues::new(3, 64, Policy::MergeOrder);
        // Three flows, each sorted by key.
        for (q, keys) in [(0usize, [1u64, 5, 9]), (1, [2, 6, 10]), (2, [3, 4, 11])] {
            for (j, k) in keys.iter().enumerate() {
                s.enqueue(q, keyed(q as u64 * 10 + j as u64, *k));
            }
        }
        assert!(s.merge_ready());
        let keys: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|(_, p)| p.meta.sort_key.unwrap())
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 9, 10, 11]);
    }

    #[test]
    fn merge_ready_respects_ended_queues() {
        let mut s = ScheduledQueues::new(2, 8, Policy::MergeOrder);
        s.enqueue(0, keyed(0, 5));
        assert!(!s.merge_ready(), "queue 1 empty and not ended");
        s.mark_ended(1);
        assert!(s.merge_ready());
    }

    #[test]
    fn pifo_departs_by_global_rank() {
        let mut s = ScheduledQueues::new(3, 64, Policy::Pifo);
        // Ranks arrive thoroughly out of order, across queues.
        for (q, id, rank) in [
            (0usize, 1u64, 50u64),
            (1, 2, 10),
            (2, 3, 99),
            (0, 4, 5),
            (1, 5, 70),
            (2, 6, 10), // tie with id 2: arrival order breaks it
        ] {
            s.enqueue(q, keyed(id, rank));
        }
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| s.dequeue())
            .map(|(_, p)| (p.meta.sort_key.unwrap(), p.meta.id))
            .collect();
        assert_eq!(
            order,
            vec![(5, 4), (10, 2), (10, 6), (50, 1), (70, 5), (99, 3)]
        );
    }

    #[test]
    fn pifo_unranked_packets_depart_last() {
        let mut s = ScheduledQueues::new(1, 8, Policy::Pifo);
        s.enqueue(0, pkt(1, 64)); // no sort key -> rank MAX
        s.enqueue(0, keyed(2, 3));
        assert_eq!(s.dequeue().unwrap().1.meta.id, 2);
        assert_eq!(s.dequeue().unwrap().1.meta.id, 1);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn pifo_byte_accounting_stays_exact() {
        let mut s = ScheduledQueues::new(2, 64, Policy::Pifo);
        s.enqueue(0, synthetic_packet(1, FlowId(1), 100).with_sort_key(9));
        s.enqueue(0, synthetic_packet(2, FlowId(1), 200).with_sort_key(1));
        s.enqueue(1, synthetic_packet(3, FlowId(2), 300).with_sort_key(5));
        assert_eq!(s.queue(0).bytes(), 300);
        // Rank 1 departs from the *interior* of queue 0.
        let (q, p) = s.dequeue().unwrap();
        assert_eq!((q, p.meta.id), (0, 2));
        assert_eq!(s.queue(0).bytes(), 100);
        assert_eq!(s.dequeue().unwrap().1.meta.id, 3);
        assert_eq!(s.dequeue().unwrap().1.meta.id, 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn drops_counted_across_queues() {
        let mut s = ScheduledQueues::new(2, 1, Policy::Fifo);
        s.enqueue(0, pkt(0, 64));
        s.enqueue(0, pkt(1, 64)); // dropped
        s.enqueue(1, pkt(2, 64));
        assert_eq!(s.drops(), 1);
        assert_eq!(s.len(), 2);
    }
}
