//! Deterministic randomness for the simulator.
//!
//! Every source of randomness in the reproduction flows through [`SimRng`],
//! seeded explicitly, so that a run is exactly reproducible from its seed.
//! This is the invariant the determinism tests in `tests/` rely on.
//!
//! The generator is a self-contained xoshiro256** (Blackman & Vigna) seeded
//! through SplitMix64 — the offline build environment cannot fetch the `rand`
//! crate, and owning the generator also pins the random streams across
//! platforms and toolchain upgrades.

/// A seeded pseudo-random number generator.
///
/// Same seed → same stream, everywhere, forever; experiment reproducibility
/// depends on it. Provides the handful of draws the simulator needs so call
/// sites never touch raw generator state.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        SimRng {
            s: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child generator. Used to give each traffic
    /// source its own stream so adding a source does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform value in `[0, n)` without modulo bias (rejection sampling).
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Uniform draw from a (half-open or inclusive) range.
    pub fn range<T, R>(&mut self, r: R) -> T
    where
        R: RangeSample<T>,
    {
        r.sample(self)
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Raw 64-bit draw.
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick a uniformly random element index for a non-empty slice length.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from empty range");
        self.bounded(len as u64) as usize
    }
}

/// Ranges [`SimRng::range`] can sample from, implemented for half-open and
/// inclusive ranges over the integer types the simulator uses.
pub trait RangeSample<T> {
    /// Draw a uniform sample from this range.
    fn sample(self, rng: &mut SimRng) -> T;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.bounded(span) as $t)
            }
        }
        impl RangeSample<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded(span) as $t)
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize, i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(7);
        let mut parent2 = SimRng::seed_from(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.u64(), c2.u64());
        }
        // A different salt gives a different stream.
        let mut parent3 = SimRng::seed_from(7);
        let mut c3 = parent3.fork(4);
        let equal = (0..32).filter(|_| c1.u64() == c3.u64()).count();
        assert!(equal < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from(13);
        for _ in 0..1000 {
            let x = r.range(10..20u32);
            assert!((10..20).contains(&x));
            assert_eq!(r.range(5..=5u64), 5);
            let z = r.range(-4..4i32);
            assert!((-4..4).contains(&z));
        }
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut r = SimRng::seed_from(17);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.index(8)] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket = {b}");
        }
    }
}
