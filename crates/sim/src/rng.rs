//! Deterministic randomness for the simulator.
//!
//! Every source of randomness in the reproduction flows through [`SimRng`],
//! seeded explicitly, so that a run is exactly reproducible from its seed.
//! This is the invariant the determinism tests in `tests/` rely on.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded pseudo-random number generator.
///
/// Thin wrapper over `rand::StdRng` that (a) forces explicit seeding and
/// (b) provides the handful of draws the simulator needs, so call sites do
/// not each import `rand` traits.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. Used to give each traffic
    /// source its own stream so adding a source does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform draw from a range.
    pub fn range<T, R>(&mut self, r: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(r)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Raw 64-bit draw.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Shuffle a slice in place (Fisher–Yates via `rand`).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        use rand::seq::SliceRandom;
        xs.shuffle(&mut self.inner);
    }

    /// Pick a uniformly random element index for a non-empty slice length.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from empty range");
        self.inner.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(7);
        let mut parent2 = SimRng::seed_from(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.u64(), c2.u64());
        }
        // A different salt gives a different stream.
        let mut parent3 = SimRng::seed_from(7);
        let mut c3 = parent3.fork(4);
        let equal = (0..32).filter(|_| c1.u64() == c3.u64()).count();
        assert!(equal < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }
}
