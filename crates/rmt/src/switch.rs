//! The event-driven RMT switch model (the paper's Figure 1).
//!
//! Packet life cycle:
//!
//! ```text
//! inject -> RX port (serialization) -> parser -> ingress pipeline
//!        -> [recirculation loop?] -> traffic manager (shared buffer)
//!        -> egress pipeline -> TX port -> delivered
//! ```
//!
//! The architectural constraints the paper criticizes are *enforced*, not
//! merely documented:
//!
//! * ports are statically multiplexed `ports_per_pipe` to an ingress
//!   pipeline — coflows arriving on different pipelines cannot meet in
//!   ingress state (Fig. 2);
//! * every pipeline retires at most one PHV per clock cycle (line rate);
//! * pipeline state is shared-nothing — each pipeline has its own
//!   [`RegionState`];
//! * a packet reaches egress state only in the pipeline that owns its
//!   TX port (egress pinning);
//! * the only way to reshuffle flows is recirculation, which consumes an
//!   ingress slot per extra pass (the bandwidth tax of §1).

use adcp_lang::phv::Phv;
use adcp_lang::target::TargetModel;
use adcp_lang::PhvLayout;
use adcp_lang::{
    compile, deparse_into, CentralImpl, CompileError, CompileOptions, Entry, Placement, Program,
    RegId, Region, RegionState, RegisterFile, TableError,
};
use adcp_sim::event::EventQueue;
use adcp_sim::int::{IntKnob, IntStack, IntStamp, Postcard, POSTCARDS_CAP};
use adcp_sim::metrics::{CounterId, GaugeId, HistId, MetricsRegistry, SeriesId};
use adcp_sim::packet::{EgressSpec, FrameBuf, Packet, PacketStore, PortId};
use adcp_sim::port::{RxPort, TxPort};
use adcp_sim::queue::BufferPool;
use adcp_sim::sched::ScheduledQueues;
use adcp_sim::stats::{LatencyHist, Meter};
use adcp_sim::time::{Duration, SimTime};
use adcp_sim::trace::{DropReason, HopCtx, JourneyTracer, Site};
use std::sync::Arc;

/// Retained points per queue-depth/buffer-occupancy time series.
const SERIES_CAP: usize = 512;

/// Pre-registered handles into the per-stage [`MetricsRegistry`]. Handles
/// are plain indices, so per-event recording is array math — no string
/// lookups on the hot path.
#[derive(Clone, Copy)]
struct MetricHandles {
    rx_pkts: CounterId,
    mac_fcs_drops: CounterId,
    parse_errors: CounterId,
    parse_span: HistId,
    ingress_span: HistId,
    recirc_passes: CounterId,
    tm_drops: CounterId,
    tm_queue_drops: CounterId,
    tm_residency: HistId,
    tm_queue_depth: SeriesId,
    tm_buffer: SeriesId,
    tm_buffer_gauge: GaugeId,
    tm_mcast_copies: CounterId,
    egress_span: HistId,
    deparse_allocs: CounterId,
    mat_lookups: CounterId,
    mat_hits: CounterId,
    drops_filtered: CounterId,
    drops_no_decision: CounterId,
    drops_bad_port: CounterId,
    tx_pkts: CounterId,
    tx_latency: HistId,
    int_stamps: CounterId,
    int_postcards: CounterId,
    int_truncated: CounterId,
    int_postcards_dropped: CounterId,
    /// Per-region pipeline occupancy (total busy cycles, busiest pipe),
    /// in ingress/egress order. Pre-registered so the end-of-run mirror is
    /// handle writes, not name lookups.
    busy: [(CounterId, GaugeId); 2],
}

fn register_metrics(m: &mut MetricsRegistry) -> MetricHandles {
    let rx = m.scope("rx");
    let mac = m.scope("mac");
    let parser = m.scope("parser");
    let ingress = m.scope("ingress");
    let recirc = m.scope("recirc");
    let tm = m.scope("tm");
    let egress = m.scope("egress");
    let deparser = m.scope("deparser");
    let mat = m.scope("mat");
    let drops = m.scope("drops");
    let tx = m.scope("tx");
    let int = m.scope("int");
    MetricHandles {
        rx_pkts: m.counter(rx, "packets"),
        mac_fcs_drops: m.counter(mac, "fcs_drops"),
        parse_errors: m.counter(parser, "errors"),
        parse_span: m.hist(parser, "span_ps"),
        ingress_span: m.hist(ingress, "span_ps"),
        recirc_passes: m.counter(recirc, "passes"),
        tm_drops: m.counter(tm, "buffer_drops"),
        tm_queue_drops: m.counter(tm, "queue_drops"),
        tm_residency: m.hist(tm, "residency_ps"),
        tm_queue_depth: m.series(tm, "queue_pkts", SERIES_CAP),
        tm_buffer: m.series(tm, "buffer_cells", SERIES_CAP),
        tm_buffer_gauge: m.gauge(tm, "buffer_cells"),
        tm_mcast_copies: m.counter(tm, "mcast_copies"),
        egress_span: m.hist(egress, "span_ps"),
        deparse_allocs: m.counter(deparser, "allocs"),
        mat_lookups: m.counter(mat, "lookups"),
        mat_hits: m.counter(mat, "hits"),
        drops_filtered: m.counter(drops, "filtered"),
        drops_no_decision: m.counter(drops, "no_decision"),
        drops_bad_port: m.counter(drops, "bad_port"),
        tx_pkts: m.counter(tx, "packets"),
        tx_latency: m.hist(tx, "latency_ps"),
        int_stamps: m.counter(int, "stamps"),
        int_postcards: m.counter(int, "postcards"),
        int_truncated: m.counter(int, "stack_truncated"),
        int_postcards_dropped: m.counter(int, "postcards_dropped"),
        busy: [
            (
                m.counter(ingress, "busy_cycles"),
                m.gauge(ingress, "busy_cycles_max_pipe"),
            ),
            (
                m.counter(egress, "busy_cycles"),
                m.gauge(egress, "busy_cycles_max_pipe"),
            ),
        ],
    }
}

/// Tuning knobs for an [`RmtSwitch`].
#[derive(Debug, Clone)]
pub struct RmtConfig {
    /// Shared TM buffer: number of cells.
    pub tm_cells: u64,
    /// Shared TM buffer: bytes per cell.
    pub cell_bytes: u32,
    /// Per-egress-queue depth in packets.
    pub queue_depth: usize,
    /// Loop latency of the recirculation path.
    pub recirc_latency: Duration,
    /// Retain a packet-walk trace (costs memory; used by tests/examples).
    pub trace: bool,
    /// Stamp in-band telemetry ([`adcp_sim::int`]) onto transiting
    /// packets. The `ADCP_INT` environment variable overrides it (`off`
    /// disables, `on` enables at rate 1, a number `N` samples 1-in-`N`).
    pub int: bool,
    /// Device id written into every INT stamp this switch produces.
    pub device: u16,
    /// Per-port speed overrides (port, speed) — models hosts with slower
    /// NICs than the switch's native port rate.
    pub port_speeds: Vec<(u16, adcp_sim::port::LinkSpeed)>,
}

impl Default for RmtConfig {
    fn default() -> Self {
        RmtConfig {
            tm_cells: 65_536,
            cell_bytes: 80,
            queue_depth: 512,
            recirc_latency: Duration::from_ns(400),
            trace: false,
            int: false,
            device: 0,
            port_speeds: Vec::new(),
        }
    }
}

/// Aggregate drop/flow accounting. The conservation invariant is
/// `injected + mcast_copies == delivered + Σ drops + in_flight`; at idle
/// `in_flight` is zero and [`RmtSwitch::check_conservation`] asserts it.
#[derive(Debug, Clone, Default)]
pub struct SwitchCounters {
    /// Packets handed to [`RmtSwitch::inject`].
    pub injected: u64,
    /// Extra packet copies created by multicast replication.
    pub mcast_copies: u64,
    /// Packets delivered out TX ports.
    pub delivered: u64,
    /// Parse failures.
    pub parse_errors: u64,
    /// Sealed frames whose check sequence failed on injection (corrupted
    /// on the wire); discarded before touching any table or register.
    pub fcs_drops: u64,
    /// Dropped by a program `Drop` action.
    pub filtered: u64,
    /// Finished ingress with no forwarding decision.
    pub no_decision: u64,
    /// Forwarding decision named a nonexistent port.
    pub bad_port: u64,
    /// TM shared-buffer exhaustion.
    pub tm_drops: u64,
    /// Per-queue tail drops.
    pub queue_drops: u64,
    /// Total recirculation passes taken.
    pub recirc_passes: u64,
    /// Match-table key lookups executed, all regions and lanes (refreshed
    /// at quiescence from the per-table counters).
    pub mat_lookups: u64,
    /// Match-table lookups that hit an installed entry.
    pub mat_hits: u64,
    /// Frame buffers rebuilt by the deparser — the hot path's remaining
    /// per-pass allocation (delivery and multicast copies share payload
    /// buffers instead of allocating).
    pub deparse_allocs: u64,
}

impl SwitchCounters {
    /// Fraction of match-table lookups that hit (0 when none ran).
    pub fn mat_hit_rate(&self) -> f64 {
        if self.mat_lookups == 0 {
            0.0
        } else {
            self.mat_hits as f64 / self.mat_lookups as f64
        }
    }

    /// Sum of all drop classes.
    pub fn total_drops(&self) -> u64 {
        self.parse_errors
            + self.fcs_drops
            + self.filtered
            + self.no_decision
            + self.bad_port
            + self.tm_drops
            + self.queue_drops
    }
}

/// A packet that left the switch.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// TX port it left on.
    pub port: PortId,
    /// Time its last bit left.
    pub time: SimTime,
    /// Final frame contents (post-deparse; moved from the in-switch
    /// packet — taking delivery does not copy the payload).
    pub data: FrameBuf,
    /// Final metadata.
    pub meta: adcp_sim::packet::PacketMeta,
}

/// Per-ingress-pipeline state.
struct IngressPipe {
    next_slot: SimTime,
    busy_cycles: u64,
    /// Ingress-region tables (pass 0).
    state: RegionState,
    /// Central-region tables executed on recirculation passes.
    central: RegionState,
}

/// Per-egress-pipeline state.
struct EgressPipe {
    next_slot: SimTime,
    busy_cycles: u64,
    /// Round-robin cursor over the pipe's local ports.
    port_cursor: usize,
    /// Central tables when the compiler egress-pinned them.
    central: RegionState,
    /// Egress-region tables.
    state: RegionState,
    queues: ScheduledQueues,
    pull_scheduled: bool,
}

enum Ev {
    Inject { port: u16, pkt: Packet },
    IngressEnter { pipe: usize, pkt: Packet, pass: u8 },
    IngressOut { pipe: usize, pkt: Packet, pass: u8 },
    PullEgress { pipe: usize },
    EgressOut { pipe: usize, pkt: Packet },
}

/// The RMT switch.
pub struct RmtSwitch {
    target: TargetModel,
    /// Shared, immutable after build: pipelines borrow it per event instead
    /// of cloning.
    program: Arc<Program>,
    layout: PhvLayout,
    /// Compilation result the switch was built from.
    pub placement: Placement,
    cfg: RmtConfig,
    rx: Vec<RxPort>,
    tx: Vec<TxPort>,
    ingress: Vec<IngressPipe>,
    egress: Vec<EgressPipe>,
    /// Shared match-table copies, one per region. Tables are installed
    /// identically into every pipeline (`install_all` is the only install
    /// path), so pipes run against a single copy; register state — the
    /// shared-nothing part the paper's Fig. 2 argument depends on — stays
    /// per-pipe in `IngressPipe`/`EgressPipe`.
    ing_tables: RegionState,
    central_tables: RegionState,
    eg_tables: RegionState,
    pool: BufferPool,
    events: EventQueue<Ev>,
    /// Reusable same-timestamp dispatch batch for `run_until_idle`.
    batch: Vec<Ev>,
    /// Recycling arena for deparse frame buffers.
    store: PacketStore,
    /// Recycled PHV + extracted-header scratch for the parse hot path.
    scratch: Option<(Phv, Vec<adcp_lang::HeaderId>)>,
    period: Duration,
    /// Drop/flow accounting.
    pub counters: SwitchCounters,
    /// Throughput/goodput/keys meter over delivered packets.
    pub out_meter: Meter,
    /// End-to-end latency (created -> last bit out).
    pub latency: LatencyHist,
    /// Sampled packet-journey flight recorder with always-on drop
    /// forensics (see [`JourneyTracer`]).
    pub tracer: JourneyTracer,
    /// In-band telemetry knob (resolved from `ADCP_INT` / `cfg.int`).
    int: IntKnob,
    /// Postcards emitted at TX for sampled packets, awaiting a collector.
    postcards: Vec<Postcard>,
    /// Stamps successfully written into packet header regions.
    int_stamps: u64,
    /// Postcards emitted at TX.
    int_postcards: u64,
    /// Stamps that found the header region full.
    int_truncated: u64,
    /// Postcards shed because the sink FIFO was full ([`POSTCARDS_CAP`]).
    int_postcards_dropped: u64,
    /// Sabotage hook: report TM queue depths one higher than observed.
    int_lie_queue_depth: bool,
    /// Per-stage metrics registry (spans, queue depths, drop classes).
    metrics: MetricsRegistry,
    mh: MetricHandles,
    delivered: Vec<Delivered>,
    in_flight: u64,
    last_delivery: SimTime,
}

impl RmtSwitch {
    /// Build a switch for `program` on `target`, compiling with `opts`.
    pub fn new(
        program: Program,
        target: TargetModel,
        opts: CompileOptions,
        cfg: RmtConfig,
    ) -> Result<Self, CompileError> {
        let placement = compile(&program, &target, opts)?;
        let layout = program.layout();
        let n_pipes = target.num_pipes() as usize;
        let ports_per_pipe = target.ports_per_pipe as usize;
        let speed_of = |p: u16| {
            cfg.port_speeds
                .iter()
                .find(|(port, _)| *port == p)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| target.port_speed())
        };
        let rx = (0..target.ports)
            .map(|p| RxPort::new(PortId(p), speed_of(p)))
            .collect();
        let tx = (0..target.ports)
            .map(|p| TxPort::new(PortId(p), speed_of(p)))
            .collect();
        let ingress = (0..n_pipes)
            .map(|_| IngressPipe {
                next_slot: SimTime::ZERO,
                busy_cycles: 0,
                state: RegionState::new(&program, Region::Ingress),
                central: RegionState::new(&program, Region::Central),
            })
            .collect();
        let tm2 = program.tm2.policy;
        let egress = (0..n_pipes)
            .map(|_| EgressPipe {
                next_slot: SimTime::ZERO,
                busy_cycles: 0,
                port_cursor: 0,
                central: RegionState::new(&program, Region::Central),
                state: RegionState::new(&program, Region::Egress),
                queues: ScheduledQueues::new(ports_per_pipe, cfg.queue_depth, tm2),
                pull_scheduled: false,
            })
            .collect();
        let pool = BufferPool::new(cfg.tm_cells, cfg.cell_bytes);
        let period = target.pipe_freq().period();
        let tracer = JourneyTracer::from_env(cfg.trace, 65_536);
        let int = IntKnob::from_env(cfg.int);
        let mut metrics = MetricsRegistry::from_env();
        let mh = register_metrics(&mut metrics);
        let ing_tables = RegionState::new(&program, Region::Ingress);
        let central_tables = RegionState::new(&program, Region::Central);
        let eg_tables = RegionState::new(&program, Region::Egress);
        Ok(RmtSwitch {
            target,
            program: Arc::new(program),
            layout,
            placement,
            cfg,
            rx,
            tx,
            ingress,
            egress,
            ing_tables,
            central_tables,
            eg_tables,
            pool,
            events: EventQueue::new(),
            batch: Vec::new(),
            store: PacketStore::new(),
            scratch: None,
            period,
            counters: SwitchCounters::default(),
            out_meter: Meter::default(),
            latency: LatencyHist::new(),
            tracer,
            int,
            postcards: Vec::new(),
            int_stamps: 0,
            int_postcards: 0,
            int_truncated: 0,
            int_postcards_dropped: 0,
            int_lie_queue_depth: false,
            metrics,
            mh,
            delivered: Vec::new(),
            in_flight: 0,
            last_delivery: SimTime::ZERO,
        })
    }

    /// The target this switch models.
    pub fn target(&self) -> &TargetModel {
        &self.target
    }

    /// The program it runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Ingress pipeline serving a port.
    pub fn pipe_of_port(&self, port: PortId) -> usize {
        (port.0 / self.target.ports_per_pipe) as usize
    }

    /// Ports attached to an egress pipeline — the only ports a packet
    /// processed there can leave from (Fig. 2).
    pub fn ports_of_pipe(&self, pipe: usize) -> Vec<PortId> {
        let ppp = self.target.ports_per_pipe;
        (0..ppp).map(|i| PortId(pipe as u16 * ppp + i)).collect()
    }

    // ---------------- control plane ----------------

    /// Install a table entry into every pipeline that hosts the table.
    pub fn install_all(&mut self, table: &str, entry: Entry) -> Result<(), TableError> {
        let RmtSwitch {
            program,
            ing_tables,
            central_tables,
            eg_tables,
            ..
        } = self;
        let gi = program
            .tables
            .iter()
            .position(|t| t.name == table)
            .unwrap_or_else(|| panic!("no table named {table}"));
        // One shared copy per region serves every pipe (the same entries
        // went everywhere before), making installs O(1) in the pipe count.
        // The central copy serves both lowerings: recirculation passes in
        // the ingress pipes and `CentralImpl::EgressPinned` egress runs.
        match program.tables[gi].region {
            Region::Ingress => ing_tables.install(program, gi, entry)?,
            Region::Central => central_tables.install(program, gi, entry)?,
            Region::Egress => eg_tables.install(program, gi, entry)?,
        }
        Ok(())
    }

    /// Read a central-region register file as seen by one pipeline. With
    /// `CentralImpl::EgressPinned` the live copy is in the egress pipes;
    /// with `Recirculated` it is in the ingress pipes.
    pub fn central_register(&self, pipe: usize, reg: RegId) -> &RegisterFile {
        match self.placement.central_impl {
            CentralImpl::EgressPinned => self.egress[pipe].central.register(reg),
            _ => self.ingress[pipe].central.register(reg),
        }
    }

    /// Read an egress-region register file of one pipeline.
    pub fn egress_register(&self, pipe: usize, reg: RegId) -> &RegisterFile {
        self.egress[pipe].state.register(reg)
    }

    /// Read an ingress-region register file of one pipeline.
    pub fn ingress_register(&self, pipe: usize, reg: RegId) -> &RegisterFile {
        self.ingress[pipe].state.register(reg)
    }

    // ---------------- data plane ----------------

    /// Offer a packet to an RX port at `t` (its first bit arrives then).
    pub fn inject(&mut self, port: PortId, mut pkt: Packet, t: SimTime) {
        assert!(
            (port.0 as usize) < self.rx.len(),
            "inject on nonexistent {port}"
        );
        if pkt.meta.created == SimTime::ZERO {
            pkt.meta.created = t;
        }
        self.counters.injected += 1;
        self.in_flight += 1;
        self.events.push(t, Ev::Inject { port: port.0, pkt });
    }

    /// Run until no events remain; returns quiescence time — the later of
    /// the last event and the last bit serialized out a TX port.
    pub fn run_until_idle(&mut self) -> SimTime {
        let mut last = self.events.now();
        // Batched dispatch: drain every event sharing the minimal timestamp
        // in one calendar-queue operation, then dispatch from a reusable
        // buffer. Handlers that push more work at the same timestamp get a
        // later seq, so those land in the *next* batch — the dispatch order
        // is identical to the one-event-at-a-time loop.
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            batch.clear();
            let Some(t) = self.events.pop_batch(&mut batch) else {
                break;
            };
            for ev in batch.drain(..) {
                self.handle(t, ev);
            }
            last = t;
        }
        self.batch = batch;
        self.refresh_mat_counters();
        self.sync_metrics();
        last.max(self.last_delivery)
    }

    /// Run every event scheduled at or before `t`, then stop — lets a
    /// driver interleave chunked injection (or observation) with live
    /// traffic. Returns the time of the last handled event.
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        let mut last = self.events.now();
        let mut batch = std::mem::take(&mut self.batch);
        while self.events.peek_time().is_some_and(|pt| pt <= t) {
            batch.clear();
            let Some(bt) = self.events.pop_batch(&mut batch) else {
                break;
            };
            for ev in batch.drain(..) {
                self.handle(bt, ev);
            }
            last = bt;
        }
        self.batch = batch;
        self.refresh_mat_counters();
        self.sync_metrics();
        last
    }

    /// Mirror the ad-hoc [`SwitchCounters`] and per-pipe busy cycles into
    /// the metrics registry, so the JSON export is the one complete metrics
    /// path. Values are monotone totals; re-assigning is idempotent.
    fn sync_metrics(&mut self) {
        let c = self.counters.clone();
        let mh = self.mh;
        let m = &mut self.metrics;
        m.set_counter(mh.rx_pkts, c.injected);
        m.set_counter(mh.mac_fcs_drops, c.fcs_drops);
        m.set_counter(mh.parse_errors, c.parse_errors);
        m.set_counter(mh.recirc_passes, c.recirc_passes);
        m.set_counter(mh.tm_drops, c.tm_drops);
        m.set_counter(mh.tm_queue_drops, c.queue_drops);
        m.set_counter(mh.tm_mcast_copies, c.mcast_copies);
        m.set_counter(mh.deparse_allocs, c.deparse_allocs);
        m.set_counter(mh.mat_lookups, c.mat_lookups);
        m.set_counter(mh.mat_hits, c.mat_hits);
        m.set_counter(mh.drops_filtered, c.filtered);
        m.set_counter(mh.drops_no_decision, c.no_decision);
        m.set_counter(mh.drops_bad_port, c.bad_port);
        m.set_counter(mh.tx_pkts, c.delivered);
        m.set_gauge(mh.tm_buffer_gauge, self.pool.used());
        m.set_counter(mh.int_stamps, self.int_stamps);
        m.set_counter(mh.int_postcards, self.int_postcards);
        m.set_counter(mh.int_truncated, self.int_truncated);
        m.set_counter(mh.int_postcards_dropped, self.int_postcards_dropped);
        // Pipeline occupancy, aggregated (per-pipe cardinality would bloat
        // every report on 64-port targets): total busy cycles plus the
        // busiest pipe, per region.
        let stages: [(usize, u64, u64); 2] = [
            (
                0,
                self.ingress.iter().map(|p| p.busy_cycles).sum(),
                self.ingress
                    .iter()
                    .map(|p| p.busy_cycles)
                    .max()
                    .unwrap_or(0),
            ),
            (
                1,
                self.egress.iter().map(|p| p.busy_cycles).sum(),
                self.egress.iter().map(|p| p.busy_cycles).max().unwrap_or(0),
            ),
        ];
        for (region, total, max) in stages {
            let (id, g) = mh.busy[region];
            self.metrics.set_counter(id, total);
            self.metrics.set_gauge(g, max);
        }
    }

    /// Export the per-stage metrics block (see
    /// [`MetricsRegistry::to_json`]), synchronizing mirrored counters
    /// first so the snapshot is complete at any point.
    pub fn metrics_json(&mut self) -> serde::Value {
        self.refresh_mat_counters();
        self.sync_metrics();
        self.metrics.to_json()
    }

    /// Shared access to the per-stage metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Export the journey tracer's state (sampled hops, drop forensics) as
    /// JSON. See [`JourneyTracer::to_json`].
    pub fn trace_json(&self) -> serde::Value {
        self.tracer.to_json()
    }

    /// The in-band telemetry knob in force (resolved from `ADCP_INT` at
    /// construction, falling back to [`RmtConfig::int`]).
    pub fn int_knob(&self) -> IntKnob {
        self.int
    }

    /// Device id this switch writes into its INT stamps.
    pub fn device(&self) -> u16 {
        self.cfg.device
    }

    /// Drain the postcards emitted since the last call (sink exports of
    /// sampled packets' INT stacks at TX).
    pub fn take_postcards(&mut self) -> Vec<Postcard> {
        std::mem::take(&mut self.postcards)
    }

    /// INT totals: (stamps written, postcards emitted, stamps truncated).
    pub fn int_totals(&self) -> (u64, u64, u64) {
        (self.int_stamps, self.int_postcards, self.int_truncated)
    }

    /// Postcards shed because the sink FIFO was full (nothing drained
    /// [`RmtSwitch::take_postcards`] for [`POSTCARDS_CAP`] sampled
    /// transmissions).
    pub fn int_postcards_dropped(&self) -> u64 {
        self.int_postcards_dropped
    }

    /// Sabotage hook for the conformance harness: when set, every INT
    /// stamp reports a TM queue depth one higher than actually observed.
    #[doc(hidden)]
    pub fn set_int_lie_queue_depth(&mut self, lie: bool) {
        self.int_lie_queue_depth = lie;
    }

    /// Append one INT stamp to a sampled packet's bounded header region.
    /// `ctx` must be the same value handed to the journey tracer for this
    /// hop — the honesty conformance check compares the two byte for byte.
    fn int_stamp(
        &mut self,
        pkt: &mut Packet,
        site: Site,
        enter: SimTime,
        exit: SimTime,
        ctx: HopCtx,
    ) {
        if !self.int.samples(pkt.meta.id) {
            return;
        }
        let ctx = if self.int_lie_queue_depth {
            HopCtx {
                queue_depth: ctx.queue_depth.map(|d| d + 1),
                ..ctx
            }
        } else {
            ctx
        };
        let stack = pkt
            .meta
            .int
            .get_or_insert_with(|| Box::new(IntStack::with_typical_capacity()));
        let stamp = IntStamp {
            device: self.cfg.device,
            site,
            enter,
            exit,
            ctx,
        };
        if stack.push(stamp) {
            self.int_stamps += 1;
        } else {
            self.int_truncated += 1;
        }
    }

    /// Copy the per-table lookup/hit totals into [`SwitchCounters`] so a
    /// counters snapshot taken at quiescence is complete. Totals are
    /// monotone, so re-assigning on every call is idempotent.
    fn refresh_mat_counters(&mut self) {
        let stats = self
            .ingress
            .iter()
            .flat_map(|p| [&p.state.stats, &p.central.stats])
            .chain(
                self.egress
                    .iter()
                    .flat_map(|p| [&p.central.stats, &p.state.stats]),
            );
        let (mut lookups, mut hits) = (0, 0);
        for s in stats {
            lookups += s.lookups;
            hits += s.hits;
        }
        self.counters.mat_lookups = lookups;
        self.counters.mat_hits = hits;
    }

    /// Drain packets delivered so far.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Packets currently inside the switch.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Panic unless every injected packet is accounted for. Call at idle.
    pub fn check_conservation(&self) {
        let c = &self.counters;
        assert_eq!(
            c.injected + c.mcast_copies,
            c.delivered + c.total_drops() + self.in_flight,
            "conservation violated: {c:?} in_flight={}",
            self.in_flight
        );
    }

    /// High-water mark of the TM's shared buffer, in cells.
    pub fn tm_buffer_hwm(&self) -> u64 {
        self.pool.hwm_cells
    }

    /// Utilization (busy cycles / elapsed cycles) of an ingress pipeline.
    pub fn ingress_utilization(&self, pipe: usize, now: SimTime) -> f64 {
        let total = now.as_ps() / self.period.as_ps().max(1);
        if total == 0 {
            0.0
        } else {
            self.ingress[pipe].busy_cycles as f64 / total as f64
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Inject { port, pkt } => self.on_inject(now, port, pkt),
            Ev::IngressEnter { pipe, pkt, pass } => self.on_ingress_enter(now, pipe, pkt, pass),
            Ev::IngressOut { pipe, pkt, pass } => self.on_ingress_out(now, pipe, pkt, pass),
            Ev::PullEgress { pipe } => self.on_pull_egress(now, pipe),
            Ev::EgressOut { pipe, pkt } => self.on_egress_out(now, pipe, pkt),
        }
    }

    fn on_inject(&mut self, now: SimTime, port: u16, mut pkt: Packet) {
        if !pkt.fcs_ok() {
            // Corrupted on the wire: discard at the MAC, before the packet
            // can reach a parser, table, or register.
            self.counters.fcs_drops += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Rx(PortId(port)),
                DropReason::FcsBad,
                HopCtx::NONE,
            );
            return;
        }
        let done = self.rx[port as usize].receive(&mut pkt, now);
        if self.tracer.hops_on() {
            self.tracer
                .record_hop(pkt.meta.id, Site::Rx(PortId(port)), now, done, HopCtx::NONE);
        }
        self.int_stamp(&mut pkt, Site::Rx(PortId(port)), now, done, HopCtx::NONE);
        let pipe = self.pipe_of_port(PortId(port));
        self.events
            .push(done, Ev::IngressEnter { pipe, pkt, pass: 0 });
    }

    /// Parse and run the pass's region, then occupy a pipeline slot.
    fn on_ingress_enter(&mut self, now: SimTime, pipe: usize, pkt: Packet, pass: u8) {
        let (sphv, sext) = self
            .scratch
            .take()
            .unwrap_or_else(|| (Phv::empty(), Vec::new()));
        let parsed = self.program.parser.parse_reusing(
            &self.program.headers,
            &self.layout,
            &pkt.data,
            sphv,
            sext,
        );
        let Ok(out) = parsed else {
            self.counters.parse_errors += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::IngressPipe(pipe),
                DropReason::ParseError,
                HopCtx::NONE,
            );
            return;
        };
        let mut phv = out.phv;
        phv.intr.ingress_port = pkt.meta.ingress_port;
        // Parse latency scales with structural depth, not port speed (§3.3).
        let parse_cost = Duration(out.depth as u64 * self.period.as_ps());
        if self.metrics.enabled() {
            self.metrics.record(self.mh.parse_span, parse_cost);
        }
        let parse_done = now + parse_cost;

        let p = &mut self.ingress[pipe];
        let entry = parse_done.max(p.next_slot);
        p.next_slot = entry + self.period;
        p.busy_cycles += 1;

        // Run the region at entry (stage traversal is a fixed latency; the
        // state mutation order equals the slot order).
        let (state, tables, depth) = if pass == 0 {
            (
                &mut p.state,
                &self.ing_tables,
                self.placement.ingress.depth().max(1),
            )
        } else {
            (
                &mut p.central,
                &self.central_tables,
                self.placement.central.depth().max(1),
            )
        };
        state.run_with_tables(tables, &self.program, &self.layout, &mut phv);

        // Deparse: the pipeline's modifications become the packet. The
        // rebuilt frame reuses a buffer recycled through the arena.
        let mut buf = self.store.take();
        let payload = &pkt.data[out.consumed.min(pkt.data.len())..];
        deparse_into(
            &mut buf,
            &self.program.headers,
            &self.layout,
            &phv,
            &out.extracted,
            payload,
        );
        let mut pkt = pkt;
        if let FrameBuf::Owned(v) = std::mem::replace(&mut pkt.data, FrameBuf::Owned(buf)) {
            self.store.recycle(v);
        }
        self.counters.deparse_allocs += 1;
        pkt.meta.egress = std::mem::take(&mut phv.intr.egress);
        pkt.meta.recirculate = phv.intr.recirculate;
        pkt.meta.central_pipe = phv.intr.central_pipe;
        if let Some(k) = phv.intr.sort_key {
            pkt.meta.sort_key = Some(k);
        }
        pkt.meta.elements = pkt.meta.elements.max(phv.intr.elements);
        self.scratch = Some((phv, out.extracted));

        let exit = entry + Duration(depth as u64 * self.period.as_ps());
        if self.tracer.hops_on() {
            self.tracer.record_hop(
                pkt.meta.id,
                Site::IngressPipe(pipe),
                entry,
                exit,
                HopCtx::NONE,
            );
        }
        self.int_stamp(&mut pkt, Site::IngressPipe(pipe), entry, exit, HopCtx::NONE);
        self.events.push(exit, Ev::IngressOut { pipe, pkt, pass });
    }

    fn on_ingress_out(&mut self, now: SimTime, pipe: usize, mut pkt: Packet, pass: u8) {
        if pass == 0 && self.metrics.enabled() {
            // Stage span: RX handoff -> first ingress pass exit (parse
            // included; recirculation passes are counted separately).
            self.metrics
                .record_span(self.mh.ingress_span, pkt.meta.arrived, now);
        }
        if pkt.meta.recirculate && pass == 0 {
            // Recirculation: loop back into the ingress pipeline that hosts
            // the coflow state (chosen by the program via central_pipe),
            // consuming one of its slots — the bandwidth tax.
            let target = pkt
                .meta
                .central_pipe
                .map(|c| c as usize % self.ingress.len())
                .unwrap_or(pipe);
            pkt.meta.recirculate = false;
            pkt.meta.recirc_count += 1;
            self.counters.recirc_passes += 1;
            if self.tracer.hops_on() {
                self.tracer
                    .record_hop(pkt.meta.id, Site::Recirculated, now, now, HopCtx::NONE);
            }
            self.int_stamp(&mut pkt, Site::Recirculated, now, now, HopCtx::NONE);
            let at = now + self.cfg.recirc_latency;
            self.events.push(
                at,
                Ev::IngressEnter {
                    pipe: target,
                    pkt,
                    pass: 1,
                },
            );
            return;
        }
        self.tm_admit(now, pkt);
    }

    fn tm_admit(&mut self, now: SimTime, mut pkt: Packet) {
        // Move the decision out rather than cloning it (a Multicast spec
        // owns a port list).
        match std::mem::take(&mut pkt.meta.egress) {
            EgressSpec::Unset | EgressSpec::Recirculate => {
                self.counters.no_decision += 1;
                self.drop_packet(
                    now,
                    pkt.meta.id,
                    Site::Tm1,
                    DropReason::NoDecision,
                    HopCtx::NONE,
                );
            }
            EgressSpec::Drop => {
                self.counters.filtered += 1;
                self.drop_packet(
                    now,
                    pkt.meta.id,
                    Site::Tm1,
                    DropReason::Filtered,
                    HopCtx::NONE,
                );
            }
            EgressSpec::Unicast(p) => {
                pkt.meta.egress = EgressSpec::Unicast(p);
                self.tm_admit_one(now, p, pkt);
            }
            EgressSpec::Multicast(ports) => {
                if ports.is_empty() {
                    self.counters.no_decision += 1;
                    self.drop_packet(
                        now,
                        pkt.meta.id,
                        Site::Tm1,
                        DropReason::NoDecision,
                        HopCtx::NONE,
                    );
                    return;
                }
                // The TM replicates; each copy is accounted separately and
                // shares the frame bytes (made refcounted once here, so a
                // Packet clone bumps the refcount instead of copying).
                self.counters.mcast_copies += ports.len() as u64 - 1;
                self.in_flight += ports.len() as u64 - 1;
                pkt.data.make_shared();
                for p in ports {
                    let mut copy = pkt.clone();
                    copy.meta.egress = EgressSpec::Unicast(p);
                    self.tm_admit_one(now, p, copy);
                }
            }
        }
    }

    fn tm_admit_one(&mut self, now: SimTime, port: PortId, mut pkt: Packet) {
        if port.0 as usize >= self.tx.len() {
            self.counters.bad_port += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm1,
                DropReason::BadPort,
                HopCtx::NONE,
            );
            return;
        }
        let pipe = self.pipe_of_port(port);
        let local = (port.0 % self.target.ports_per_pipe) as usize;
        if !self.egress[pipe].queues.queue(local).has_room(&pkt) {
            self.counters.queue_drops += 1;
            let ctx = HopCtx {
                queue_depth: Some(self.egress[pipe].queues.len() as u32),
                buffer_cells: Some(self.pool.used()),
                epoch: None,
            };
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm1,
                DropReason::QueueTail {
                    tm: 1,
                    queue: port.0 as u32,
                },
                ctx,
            );
            return;
        }
        if !self.pool.try_alloc(&mut pkt) {
            self.counters.tm_drops += 1;
            let ctx = HopCtx {
                queue_depth: Some(self.egress[pipe].queues.len() as u32),
                buffer_cells: Some(self.pool.used()),
                epoch: None,
            };
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm1,
                DropReason::BufferExhausted { tm: 1 },
                ctx,
            );
            return;
        }
        pkt.meta.tm_enqueued = now;
        // `ScheduledQueues::len` walks every queue, so only pay for it when
        // a knob will consume the value.
        if self.tracer.hops_on() || self.int.samples(pkt.meta.id) {
            pkt.meta.tm_q_depth = Some(self.egress[pipe].queues.len() as u32 + 1);
            pkt.meta.tm_buf_used = Some(self.pool.used());
        }
        let accepted = self.egress[pipe].queues.enqueue(local, pkt).is_ok();
        debug_assert!(accepted, "room was checked above");
        if self.metrics.enabled() {
            let depth = self.egress[pipe].queues.len() as u64;
            self.metrics.sample(self.mh.tm_queue_depth, now, depth);
            self.metrics
                .sample(self.mh.tm_buffer, now, self.pool.used());
            self.metrics
                .set_gauge(self.mh.tm_buffer_gauge, self.pool.used());
        }
        self.schedule_pull(now, pipe);
    }

    fn schedule_pull(&mut self, now: SimTime, pipe: usize) {
        if !self.egress[pipe].pull_scheduled {
            self.egress[pipe].pull_scheduled = true;
            let at = now.max(self.egress[pipe].next_slot);
            self.events.push(at, Ev::PullEgress { pipe });
        }
    }

    fn on_pull_egress(&mut self, now: SimTime, pipe: usize) {
        self.egress[pipe].pull_scheduled = false;
        if now < self.egress[pipe].next_slot {
            self.schedule_pull(self.egress[pipe].next_slot, pipe);
            return;
        }
        // A queue may only depart when its TX port can accept the packet:
        // busy links backpressure into the TM buffer (which is where the
        // buffering physically lives). Round-robin over ready ports.
        let ppp = self.target.ports_per_pipe as usize;
        let mut chosen: Option<usize> = None;
        let mut earliest_ready = SimTime::NEVER;
        for k in 0..ppp {
            let i = (self.egress[pipe].port_cursor + k) % ppp;
            if self.egress[pipe].queues.queue(i).is_empty() {
                continue;
            }
            let port = pipe * ppp + i;
            // Overlap pipeline flight with the link: the port must be
            // free by the time the packet exits the egress stages.
            let flight = (self.placement.central.depth() + self.placement.egress.depth()).max(1)
                as u64
                * self.period.as_ps();
            let ready = self.tx[port].ready_at();
            if ready.as_ps() <= now.as_ps() + flight {
                chosen = Some(i);
                break;
            }
            earliest_ready = earliest_ready.min(SimTime(ready.as_ps() - flight));
        }
        let Some(local) = chosen else {
            if earliest_ready != SimTime::NEVER {
                // Every backlogged port is mid-serialization; retry when
                // the first frees up.
                self.egress[pipe].pull_scheduled = true;
                self.events.push(earliest_ready, Ev::PullEgress { pipe });
            }
            return;
        };
        self.egress[pipe].port_cursor = (local + 1) % ppp;
        let Some(mut pkt) = self.egress[pipe].queues.dequeue_queue(local) else {
            return;
        };
        self.pool.release(&mut pkt);
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.tm_residency, pkt.meta.tm_enqueued, now);
            self.metrics
                .sample(self.mh.tm_buffer, now, self.pool.used());
        }
        // TM-residency hop with enqueue-time queue/buffer context. The RMT
        // baseline has a single TM, mapped onto the journey model's TM1.
        // One context computation feeds both the tracer and the INT stamp.
        if self.tracer.hops_on() || self.int.on() {
            let enq = pkt.meta.tm_enqueued;
            let ctx = HopCtx {
                queue_depth: pkt.meta.tm_q_depth.take(),
                buffer_cells: pkt.meta.tm_buf_used.take(),
                epoch: None,
            };
            if self.tracer.hops_on() {
                self.tracer
                    .record_hop(pkt.meta.id, Site::Tm1, enq, now, ctx);
            }
            self.int_stamp(&mut pkt, Site::Tm1, enq, now, ctx);
        }
        pkt.meta.tm_enqueued = now; // egress-stage entry, for its span
        let p = &mut self.egress[pipe];
        let entry = now.max(p.next_slot);
        p.next_slot = entry + self.period;
        p.busy_cycles += 1;
        let depth = (self.placement.central.depth() + self.placement.egress.depth()).max(1);
        let exit = entry + Duration(depth as u64 * self.period.as_ps());
        if self.tracer.hops_on() {
            self.tracer.record_hop(
                pkt.meta.id,
                Site::EgressPipe(pipe),
                entry,
                exit,
                HopCtx::NONE,
            );
        }
        self.int_stamp(&mut pkt, Site::EgressPipe(pipe), entry, exit, HopCtx::NONE);
        self.events.push(exit, Ev::EgressOut { pipe, pkt });
        if !self.egress[pipe].queues.is_empty() {
            let next = self.egress[pipe].next_slot;
            self.schedule_pull(next, pipe);
        }
    }

    fn on_egress_out(&mut self, now: SimTime, pipe: usize, mut pkt: Packet) {
        // Egress parse + region execution.
        let (sphv, sext) = self
            .scratch
            .take()
            .unwrap_or_else(|| (Phv::empty(), Vec::new()));
        let parsed = self.program.parser.parse_reusing(
            &self.program.headers,
            &self.layout,
            &pkt.data,
            sphv,
            sext,
        );
        let Ok(out) = parsed else {
            self.counters.parse_errors += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::EgressPipe(pipe),
                DropReason::ParseError,
                HopCtx::NONE,
            );
            return;
        };
        let mut phv: Phv = out.phv;
        phv.intr.ingress_port = pkt.meta.ingress_port;
        // The TM's forwarding decision picks the TX port; the egress region
        // sees it (and may turn it into a drop) but cannot redirect.
        let dest = match pkt.meta.egress {
            EgressSpec::Unicast(p) => Some(p),
            _ => None,
        };
        phv.intr.egress = std::mem::take(&mut pkt.meta.egress);
        // Egress-pinned central tables run first (Fig. 2 lowering).
        if self.placement.central_impl == CentralImpl::EgressPinned {
            self.egress[pipe].central.run_with_tables(
                &self.central_tables,
                &self.program,
                &self.layout,
                &mut phv,
            );
        }
        self.egress[pipe].state.run_with_tables(
            &self.eg_tables,
            &self.program,
            &self.layout,
            &mut phv,
        );
        if phv.intr.egress == EgressSpec::Drop {
            self.counters.filtered += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::EgressPipe(pipe),
                DropReason::Filtered,
                HopCtx::NONE,
            );
            return;
        }
        let mut buf = self.store.take();
        let payload = &pkt.data[out.consumed.min(pkt.data.len())..];
        deparse_into(
            &mut buf,
            &self.program.headers,
            &self.layout,
            &phv,
            &out.extracted,
            payload,
        );
        if let FrameBuf::Owned(v) = std::mem::replace(&mut pkt.data, FrameBuf::Owned(buf)) {
            self.store.recycle(v);
        }
        self.counters.deparse_allocs += 1;
        pkt.meta.elements = pkt.meta.elements.max(phv.intr.elements);
        self.scratch = Some((phv, out.extracted));

        let Some(port) = dest else {
            self.counters.no_decision += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::EgressPipe(pipe),
                DropReason::NoDecision,
                HopCtx::NONE,
            );
            return;
        };
        pkt.meta.egress = EgressSpec::Unicast(port);
        // Egress pinning invariant: the port belongs to this pipeline.
        debug_assert_eq!(self.pipe_of_port(port), pipe, "egress pinning violated");
        // Stage span: egress pipeline entry -> exit.
        let done = self.tx[port.0 as usize].transmit(&pkt, now);
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.egress_span, pkt.meta.tm_enqueued, now);
            self.metrics
                .record_span(self.mh.tx_latency, pkt.meta.created, done);
        }
        if self.tracer.hops_on() {
            self.tracer
                .record_hop(pkt.meta.id, Site::Tx(port), now, done, HopCtx::NONE);
        }
        self.int_stamp(&mut pkt, Site::Tx(port), now, done, HopCtx::NONE);
        if self.int.samples(pkt.meta.id) {
            // Sink export: emit the accumulated stack for the collector.
            // Bounded FIFO: an undrained collector sheds postcards
            // (counted) and the shed path skips the stack clone.
            if self.postcards.len() < POSTCARDS_CAP {
                let stack = pkt.meta.int.as_deref().cloned().unwrap_or_default();
                self.postcards.push(Postcard {
                    device: self.cfg.device,
                    pkt: pkt.meta.id,
                    flow: pkt.meta.flow.0,
                    port: port.0,
                    time: done,
                    stack,
                });
                self.int_postcards += 1;
            } else {
                self.int_postcards_dropped += 1;
            }
        }
        self.counters.delivered += 1;
        self.in_flight -= 1;
        self.out_meter
            .record(pkt.wire_bytes(), pkt.meta.goodput_bytes, pkt.meta.elements);
        self.latency.record(done.saturating_since(pkt.meta.created));
        self.last_delivery = self.last_delivery.max(done);
        if pkt.meta.fcs.is_some() {
            // Deparse writebacks changed the bytes on purpose; re-stamp the
            // frame check like a NIC recomputing the CRC on transmit.
            pkt.reseal();
        }
        self.delivered.push(Delivered {
            port,
            time: done,
            data: pkt.data,
            meta: pkt.meta,
        });
    }

    /// Account one dropped packet: decrement in-flight and hand the typed
    /// reason (plus queue state at the moment of death) to the journey
    /// tracer's forensics. Every ad-hoc drop counter increment is paired
    /// 1:1 with a call here carrying the matching reason — that pairing is
    /// what the forensics↔counter cross-check asserts.
    fn drop_packet(&mut self, now: SimTime, id: u64, site: Site, reason: DropReason, ctx: HopCtx) {
        self.in_flight -= 1;
        self.tracer.record_drop(now, id, site, reason, ctx);
    }
}
