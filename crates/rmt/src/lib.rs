//! # adcp-rmt — the baseline RMT switch model
//!
//! A cycle-level, event-driven model of a classic RMT switch (Bosshart et
//! al.; the paper's Figure 1): `n` ports multiplexed `n/p` per ingress
//! pipeline, shared-nothing pipelines of match-action stages, one
//! shared-memory traffic manager, egress pipelines pinned to their ports,
//! and a recirculation path as the only way to reshuffle flows.
//!
//! This is the comparison baseline for every experiment: the limitations
//! the paper numbers ① – ③ in §2 are enforced by construction here, and the
//! ADCP model in `adcp-core` lifts them one by one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod switch;

pub use switch::{Delivered, RmtConfig, RmtSwitch, SwitchCounters};

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_lang::{
        ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
        KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, RegAluOp,
        RegId, Region, RegisterDef, RmtCentralStrategy, TableDef, TargetModel,
    };
    use adcp_sim::packet::{FlowId, Packet, PortId};
    use adcp_sim::time::SimTime;

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(adcp_lang::HeaderId(h), FieldId(f))
    }

    /// Minimal L2-ish program: header {dst:16, pad:16}; exact-match route
    /// table (dst -> egress port or multicast group); miss drops.
    fn route_program(mcast: Vec<Vec<PortId>>) -> Program {
        let mut b = ProgramBuilder::new("route");
        let h = b.header(HeaderDef::new(
            "fwd",
            vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
        ));
        b.parser(ParserSpec::single(h));
        let mut actions = vec![
            ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("drop", vec![ActionOp::Drop]),
        ];
        for g in 0..mcast.len() {
            actions.push(ActionDef::new(
                format!("mcast{g}"),
                vec![ActionOp::SetMulticast(Operand::Const(g as u64))],
            ));
        }
        for g in mcast {
            b.mcast_group(g);
        }
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 0),
                kind: MatchKind::Exact,
                bits: 16,
            }),
            actions,
            default_action: 1,
            default_params: vec![],
            size: 1024,
        });
        b.build()
    }

    fn pkt(id: u64, dst: u16, len: usize) -> Packet {
        let mut data = vec![0u8; len.max(4)];
        data[..2].copy_from_slice(&dst.to_be_bytes());
        Packet::new(id, FlowId(dst as u64), data)
    }

    fn route_entry(dst: u16, port: u16) -> Entry {
        Entry {
            value: MatchValue::Exact(dst as u64),
            action: 0,
            params: vec![port as u64],
        }
    }

    fn build(program: Program) -> RmtSwitch {
        RmtSwitch::new(
            program,
            TargetModel::rmt_12t(),
            CompileOptions::default(),
            RmtConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn unicast_end_to_end() {
        let mut sw = build(route_program(vec![]));
        sw.install_all("route", route_entry(7, 13)).unwrap();
        sw.inject(PortId(0), pkt(1, 7, 128), SimTime::ZERO);
        sw.run_until_idle();
        let out = sw.take_delivered();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId(13));
        assert!(out[0].time > SimTime::ZERO);
        assert_eq!(sw.counters.delivered, 1);
        sw.check_conservation();
        // dst field survives the two deparse/parse round trips.
        assert_eq!(&out[0].data[..2], &7u16.to_be_bytes());
    }

    #[test]
    fn unmatched_packets_filtered() {
        let mut sw = build(route_program(vec![]));
        sw.inject(PortId(0), pkt(1, 99, 64), SimTime::ZERO);
        sw.run_until_idle();
        assert_eq!(sw.counters.filtered, 1);
        assert_eq!(sw.counters.delivered, 0);
        sw.check_conservation();
    }

    #[test]
    fn multicast_replicates_at_tm() {
        let group = vec![PortId(1), PortId(9), PortId(17)]; // 3 pipes
        let mut sw = build(route_program(vec![group.clone()]));
        sw.install_all(
            "route",
            Entry {
                value: MatchValue::Exact(5),
                action: 2, // mcast0
                params: vec![],
            },
        )
        .unwrap();
        sw.inject(PortId(0), pkt(1, 5, 200), SimTime::ZERO);
        sw.run_until_idle();
        let mut ports: Vec<_> = sw.take_delivered().iter().map(|d| d.port).collect();
        ports.sort();
        assert_eq!(ports, group);
        assert_eq!(sw.counters.mcast_copies, 2);
        assert_eq!(sw.counters.delivered, 3);
        sw.check_conservation();
    }

    #[test]
    fn pipeline_retires_one_phv_per_cycle() {
        let mut sw = build(route_program(vec![]));
        sw.install_all("route", route_entry(1, 31)).unwrap();
        // 64 packets on 8 ports of pipe 0, all arriving "at once":
        // the pipeline must serialize them one per 617 ps cycle.
        for i in 0..64u64 {
            sw.inject(PortId((i % 8) as u16), pkt(i, 1, 64), SimTime::ZERO);
        }
        let end = sw.run_until_idle();
        assert_eq!(sw.counters.delivered, 64);
        // 64 slots at 617 ps each is a hard lower bound on the makespan.
        assert!(
            end.as_ps() >= 63 * 617,
            "makespan {end} too short for line-rate pacing"
        );
        assert!(sw.ingress_utilization(0, end) > 0.0);
        sw.check_conservation();
    }

    #[test]
    fn latency_accounts_pipeline_depth() {
        let mut sw = build(route_program(vec![]));
        sw.install_all("route", route_entry(2, 8)).unwrap();
        sw.inject(PortId(0), pkt(1, 2, 64), SimTime::ZERO);
        sw.run_until_idle();
        let out = sw.take_delivered();
        let d = &out[0];
        // RX serialization (84B at 400G = 1.68ns) + parse + 1-stage ingress
        // + 1-stage egress + TX: strictly more than two pipeline periods.
        assert!(d.time.as_ps() > 2 * 617, "latency = {}", d.time);
        assert_eq!(sw.latency.count(), 1);
    }

    /// Program whose packets all take one recirculation pass: ingress
    /// marks Recirculate; the central table (pass 1) counts and forwards.
    fn recirc_program() -> Program {
        let mut b = ProgramBuilder::new("recirc");
        let h = b.header(HeaderDef::new(
            "fwd",
            vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
        ));
        b.parser(ParserSpec::single(h));
        let ctr = b.register(RegisterDef::new("coflow_ctr", 16, 64));
        b.table(TableDef {
            name: "mark".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "mark",
                vec![
                    ActionOp::SetCentralPipe(Operand::Const(2)),
                    ActionOp::Recirculate,
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "coflow_count".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "count_and_fwd",
                vec![
                    ActionOp::RegRmw {
                        reg: ctr,
                        index: Operand::Const(0),
                        op: RegAluOp::Add,
                        value: Operand::Const(1),
                        fetch: None,
                    },
                    ActionOp::SetEgress(Operand::Field(fr(0, 0))),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    #[test]
    fn recirculation_converges_coflow_state_at_a_cost() {
        let opts = CompileOptions {
            rmt_central: RmtCentralStrategy::Recirculate,
        };
        let mut sw = RmtSwitch::new(
            recirc_program(),
            TargetModel::rmt_12t(),
            opts,
            RmtConfig::default(),
        )
        .unwrap();
        // Packets from ports on *different* ingress pipelines; dst=3.
        for (i, port) in [0u16, 8, 16, 24].iter().enumerate() {
            sw.inject(PortId(*port), pkt(i as u64, 3, 64), SimTime::ZERO);
        }
        sw.run_until_idle();
        assert_eq!(sw.counters.delivered, 4);
        assert_eq!(sw.counters.recirc_passes, 4, "every packet looped once");
        // All four converged on pipe 2's central state despite arriving on
        // four different pipelines — recirculation pays for convergence.
        assert_eq!(sw.central_register(2, RegId(0)).peek(0), 4);
        for p in [0usize, 1, 3] {
            assert_eq!(sw.central_register(p, RegId(0)).peek(0), 0);
        }
        sw.check_conservation();
    }

    /// Same central counter, default (egress-pin) lowering: state splits
    /// across egress pipelines — the Fig. 2 limitation, observable.
    #[test]
    fn egress_pinning_splits_coflow_state() {
        let mut b = ProgramBuilder::new("pinned");
        let h = b.header(HeaderDef::new(
            "fwd",
            vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
        ));
        b.parser(ParserSpec::single(h));
        let ctr = b.register(RegisterDef::new("coflow_ctr", 16, 64));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "fwd",
                vec![ActionOp::SetEgress(Operand::Field(fr(0, 0)))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "coflow_count".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "count",
                vec![ActionOp::RegRmw {
                    reg: ctr,
                    index: Operand::Const(0),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: None,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        let mut sw = build(b.build());
        assert_eq!(
            sw.placement.central_impl,
            adcp_lang::CentralImpl::EgressPinned
        );
        // Two packets to port 0 (egress pipe 0), two to port 8 (pipe 1).
        sw.inject(PortId(0), pkt(1, 0, 64), SimTime::ZERO);
        sw.inject(PortId(1), pkt(2, 0, 64), SimTime::ZERO);
        sw.inject(PortId(2), pkt(3, 8, 64), SimTime::ZERO);
        sw.inject(PortId(3), pkt(4, 8, 64), SimTime::ZERO);
        sw.run_until_idle();
        assert_eq!(sw.counters.delivered, 4);
        // The coflow counter never reaches 4 anywhere: it split 2/2.
        assert_eq!(sw.central_register(0, RegId(0)).peek(0), 2);
        assert_eq!(sw.central_register(1, RegId(0)).peek(0), 2);
        sw.check_conservation();
    }

    #[test]
    fn tm_pool_exhaustion_drops_and_conserves() {
        let cfg = RmtConfig {
            tm_cells: 4, // tiny shared buffer
            ..Default::default()
        };
        let mut sw = RmtSwitch::new(
            route_program(vec![]),
            TargetModel::rmt_12t(),
            CompileOptions::default(),
            cfg,
        )
        .unwrap();
        sw.install_all("route", route_entry(1, 0)).unwrap();
        // 24 ports across 3 ingress pipelines all target port 0: arrivals
        // (~3.7 pkts/ns) outpace the egress pipeline drain (1.62 pkts/ns),
        // so the 4-cell pool must refuse admissions.
        for i in 0..240u64 {
            sw.inject(PortId((i % 24) as u16 + 8), pkt(i, 1, 300), SimTime::ZERO);
        }
        sw.run_until_idle();
        assert!(sw.counters.tm_drops > 0, "tiny pool must drop");
        assert!(sw.counters.delivered > 0, "but some get through");
        sw.check_conservation();
    }

    #[test]
    fn queue_overflow_drops_and_conserves() {
        let cfg = RmtConfig {
            queue_depth: 1,
            ..Default::default()
        };
        let mut sw = RmtSwitch::new(
            route_program(vec![]),
            TargetModel::rmt_12t(),
            CompileOptions::default(),
            cfg,
        )
        .unwrap();
        sw.install_all("route", route_entry(1, 0)).unwrap();
        // Everything funnels to one TX port; its queue holds one packet.
        for i in 0..40u64 {
            sw.inject(PortId((i % 32) as u16), pkt(i, 1, 1500), SimTime::ZERO);
        }
        sw.run_until_idle();
        assert!(sw.counters.queue_drops > 0);
        sw.check_conservation();
    }

    #[test]
    fn recirculation_doubles_ingress_slot_usage() {
        // The §1 bandwidth tax, measured at the pipeline: N packets that
        // each recirculate once consume 2N ingress slots.
        let opts = CompileOptions {
            rmt_central: RmtCentralStrategy::Recirculate,
        };
        let mut sw = RmtSwitch::new(
            recirc_program(),
            TargetModel::rmt_12t(),
            opts,
            RmtConfig::default(),
        )
        .unwrap();
        let n = 100u64;
        for i in 0..n {
            // All from pipe 0; program sends the second pass to pipe 2.
            sw.inject(PortId((i % 8) as u16), pkt(i, 3, 64), SimTime::ZERO);
        }
        let end = sw.run_until_idle();
        assert_eq!(sw.counters.delivered, n);
        let slots: u64 = (0..4)
            .map(|p| (sw.ingress_utilization(p, end) * (end.as_ps() / 617) as f64) as u64)
            .sum();
        assert!(
            (2 * n - 4..=2 * n + 4).contains(&slots),
            "2 ingress slots per packet, got {slots} for {n} packets"
        );
        sw.check_conservation();
    }

    #[test]
    fn bad_port_decision_is_counted() {
        let mut sw = build(route_program(vec![]));
        sw.install_all("route", route_entry(1, 999)).unwrap(); // no port 999
        sw.inject(PortId(0), pkt(1, 1, 64), SimTime::ZERO);
        sw.run_until_idle();
        assert_eq!(sw.counters.bad_port, 1);
        assert_eq!(sw.counters.delivered, 0);
        sw.check_conservation();
    }

    #[test]
    fn runt_packet_fails_parsing() {
        let mut sw = build(route_program(vec![]));
        // The fwd header needs 4 bytes; send 2.
        let runt = Packet::new(1, FlowId(0), vec![0u8; 2]);
        sw.inject(PortId(0), runt, SimTime::ZERO);
        sw.run_until_idle();
        assert_eq!(sw.counters.parse_errors, 1);
        sw.check_conservation();
    }

    #[test]
    fn empty_multicast_group_counts_no_decision() {
        let mut sw = build(route_program(vec![vec![]]));
        sw.install_all(
            "route",
            Entry {
                value: MatchValue::Exact(5),
                action: 2,
                params: vec![],
            },
        )
        .unwrap();
        sw.inject(PortId(0), pkt(1, 5, 64), SimTime::ZERO);
        sw.run_until_idle();
        assert_eq!(sw.counters.no_decision, 1);
        sw.check_conservation();
    }

    #[test]
    fn tx_port_serializes_back_to_back_deliveries() {
        let mut sw = build(route_program(vec![]));
        sw.install_all("route", route_entry(1, 5)).unwrap();
        for i in 0..10u64 {
            sw.inject(PortId((i % 4) as u16 + 8), pkt(i, 1, 1500), SimTime::ZERO);
        }
        sw.run_until_idle();
        let out = sw.take_delivered();
        assert_eq!(out.len(), 10);
        // 1520 wire bytes at 400G = 30.4 ns per packet on the TX port.
        let mut times: Vec<u64> = out.iter().map(|d| d.time.as_ps()).collect();
        times.sort_unstable();
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 30_400, "TX pacing violated: {w:?}");
        }
    }

    #[test]
    fn deterministic_given_same_input() {
        let run = || {
            let mut sw = build(route_program(vec![]));
            sw.install_all("route", route_entry(4, 20)).unwrap();
            for i in 0..100u64 {
                sw.inject(
                    PortId((i % 32) as u16),
                    pkt(i, 4, 64 + (i as usize % 9) * 100),
                    SimTime(i * 100),
                );
            }
            let end = sw.run_until_idle();
            let out = sw.take_delivered();
            (
                end,
                out.len(),
                out.iter().map(|d| d.time.as_ps()).sum::<u64>(),
            )
        };
        assert_eq!(run(), run());
    }
}
