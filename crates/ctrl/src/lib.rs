//! Control plane for the global partitioned area.
//!
//! The data plane (`adcp-core`) executes whatever partition map it is
//! given; this crate decides *which* map and *when*. A [`Controller`]
//! periodically observes per-bucket load on a live [`AdcpSwitch`], detects
//! skew against a [`SkewPolicy`], plans a better owner assignment
//! ([`plan_rebalance`], [`plan_scale_to`]) and drives the switch's
//! epoch-versioned migration protocol (`begin_migration` /
//! `finalize_migration`) to make it take effect under traffic.
//!
//! Planning is deliberately separated from actuation: the planners are
//! pure functions from `(map, loads)` to a candidate map, so they can be
//! unit-tested and reused by experiments that want a precomputed plan
//! (equal final balance across strategies) rather than a closed loop.
//!
//! Every actuation the controller drives also lands on the journey
//! tracer's control-plane track (`adcp_sim::trace::CtrlEvent`: migration
//! begin / epoch bump / commit / finalize, with strategy and moved-key
//! counts), so a rebalance can be laid over the per-packet journeys it
//! fenced — `adcp-trace --chrome` renders both on one timeline.

use adcp_core::{AdcpSwitch, MigrateError, MigrationStrategy, PartitionMap, PartitionScheme};
use adcp_sim::time::SimTime;
use serde::Serialize;

/// A point-in-time view of partitioned-area load, read off the switch's
/// per-bucket packet counters (which reset whenever a new map takes
/// effect, so the snapshot always describes the *current* epoch).
#[derive(Debug, Clone)]
pub struct LoadSnapshot {
    /// Packets routed per partition bucket since the current map took effect.
    pub bucket_pkts: Vec<u64>,
    /// The same traffic aggregated by owning central pipe.
    pub pipe_pkts: Vec<u64>,
    /// Total packets observed.
    pub total: u64,
}

impl LoadSnapshot {
    /// Read the current snapshot. `None` when no partition map is installed.
    pub fn from_switch(sw: &AdcpSwitch) -> Option<Self> {
        let map = sw.partition_map()?;
        let bucket_pkts = sw.bucket_loads()?.to_vec();
        let mut pipe_pkts = vec![0u64; sw.num_central()];
        for (b, &n) in bucket_pkts.iter().enumerate() {
            pipe_pkts[map.owner_of_bucket(b as u32) as usize] += n;
        }
        let total = bucket_pkts.iter().sum();
        Some(LoadSnapshot {
            bucket_pkts,
            pipe_pkts,
            total,
        })
    }

    /// Load skew: hottest pipe over mean pipe load. `1.0` is perfectly
    /// balanced; `n_pipes` means one pipe takes everything. Returns `1.0`
    /// when no traffic has been observed.
    pub fn skew(&self) -> f64 {
        if self.total == 0 || self.pipe_pkts.is_empty() {
            return 1.0;
        }
        let max = *self.pipe_pkts.iter().max().unwrap() as f64;
        let mean = self.total as f64 / self.pipe_pkts.len() as f64;
        max / mean
    }
}

/// When and how the controller reacts to load skew.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SkewPolicy {
    /// Trigger threshold: rebalance when hottest-pipe load exceeds this
    /// multiple of the mean.
    pub max_over_mean: f64,
    /// Minimum packets observed in the current epoch before the skew
    /// estimate is trusted (avoids thrashing on startup noise).
    pub min_samples: u64,
    /// How state follows the new map.
    pub strategy: MigrationStrategy,
}

impl Default for SkewPolicy {
    fn default() -> Self {
        SkewPolicy {
            max_over_mean: 1.25,
            min_samples: 64,
            strategy: MigrationStrategy::Incremental,
        }
    }
}

/// Why the controller actuated a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RebalanceKind {
    /// Same pipe count, load skew crossed the policy threshold.
    Skew,
    /// SLO burn rate demanded another central pipe.
    ScaleUp,
    /// Sustained headroom allowed retiring a central pipe.
    ScaleDown,
}

/// Record of one rebalance decision the controller actuated.
#[derive(Debug, Clone, Serialize)]
pub struct RebalanceEvent {
    /// Simulated time (ns) of the decision.
    pub at_ns: u64,
    /// Epoch of the map the migration installs.
    pub to_epoch: u64,
    /// Skew observed at decision time.
    pub skew: f64,
    /// Buckets whose owner changes.
    pub moved_buckets: usize,
    /// Strategy used.
    pub strategy: MigrationStrategy,
    /// What triggered the move.
    pub kind: RebalanceKind,
    /// Distinct central pipes owning buckets once the new map is in force.
    pub pipes: u32,
}

fn owners_of(map: &PartitionMap) -> Vec<u32> {
    match map.scheme() {
        PartitionScheme::Hash { owners } | PartitionScheme::Range { owners, .. } => owners.clone(),
    }
}

/// Number of distinct central pipes that own at least one bucket — the
/// "active" pipe count the autoscaler grows and shrinks.
pub fn active_pipes(map: &PartitionMap) -> u32 {
    let mut owners = owners_of(map);
    owners.sort_unstable();
    owners.dedup();
    owners.len() as u32
}

fn with_owners(map: &PartitionMap, owners: Vec<u32>) -> PartitionMap {
    match map.scheme() {
        PartitionScheme::Hash { .. } => PartitionMap::from_buckets(owners),
        PartitionScheme::Range { bounds, .. } => PartitionMap::from_ranges(bounds.clone(), owners),
    }
}

/// Plan a minimal-movement rebalance: repeatedly hand the heaviest
/// movable bucket of the hottest pipe to the coldest pipe, as long as
/// that strictly narrows the hot/cold gap. Keeps the bucket structure
/// (hash or range) and moves as few buckets as the load shape allows.
///
/// Returns `None` when no single move improves the imbalance (already
/// balanced, or one bucket alone is the hotspot and splitting — not
/// reassignment — would be needed).
pub fn plan_rebalance(
    map: &PartitionMap,
    bucket_load: &[u64],
    n_pipes: u32,
) -> Option<PartitionMap> {
    assert!(n_pipes > 0);
    let mut owners = owners_of(map);
    assert_eq!(owners.len(), bucket_load.len());
    let mut pipe_load = vec![0u64; n_pipes as usize];
    for (b, &o) in owners.iter().enumerate() {
        pipe_load[o as usize] += bucket_load[b];
    }
    let mut moved_any = false;
    loop {
        let hot = (0..pipe_load.len()).max_by_key(|&p| pipe_load[p]).unwrap();
        let cold = (0..pipe_load.len()).min_by_key(|&p| pipe_load[p]).unwrap();
        let gap = pipe_load[hot] - pipe_load[cold];
        // Heaviest bucket on the hot pipe whose move strictly shrinks the
        // gap: after moving load l the pair differs by |gap - 2l|, so any
        // 0 < l < gap improves it.
        let best = owners
            .iter()
            .enumerate()
            .filter(|&(b, &o)| o as usize == hot && bucket_load[b] > 0 && bucket_load[b] < gap)
            .max_by_key(|&(b, _)| bucket_load[b])
            .map(|(b, _)| b);
        let Some(b) = best else { break };
        owners[b] = cold as u32;
        pipe_load[hot] -= bucket_load[b];
        pipe_load[cold] += bucket_load[b];
        moved_any = true;
    }
    moved_any.then(|| with_owners(map, owners))
}

/// Plan a scale-up/scale-down: repack every bucket onto `n_pipes` pipes
/// with longest-processing-time-first packing (heaviest bucket to the
/// currently lightest pipe). Produces a near-balanced assignment
/// regardless of the old owner layout — use [`plan_rebalance`] when
/// minimizing movement matters more than the pipe count changing.
pub fn plan_scale_to(map: &PartitionMap, bucket_load: &[u64], n_pipes: u32) -> PartitionMap {
    assert!(n_pipes > 0);
    let n_buckets = owners_of(map).len();
    assert_eq!(n_buckets, bucket_load.len());
    let mut order: Vec<usize> = (0..n_buckets).collect();
    order.sort_by_key(|&b| (std::cmp::Reverse(bucket_load[b]), b));
    let mut owners = vec![0u32; n_buckets];
    let mut pipe_load = vec![0u64; n_pipes as usize];
    let mut rr = 0usize; // spread zero-load buckets round-robin
    for b in order {
        let p = if bucket_load[b] == 0 {
            let p = rr % n_pipes as usize;
            rr += 1;
            p
        } else {
            (0..pipe_load.len()).min_by_key(|&p| pipe_load[p]).unwrap()
        };
        owners[b] = p as u32;
        pipe_load[p] += bucket_load[b];
    }
    with_owners(map, owners)
}

/// Split one bucket of a range map in two at key `at` (the new bound).
/// Both halves keep the original owner, so nothing moves until a later
/// rebalance reassigns one of them — splitting is how a single hot range
/// becomes movable. `None` if the map is not range-partitioned or `at`
/// does not fall strictly inside the bucket.
pub fn split_range_bucket(map: &PartitionMap, bucket: u32, at: u64) -> Option<PartitionMap> {
    let PartitionScheme::Range { bounds, owners } = map.scheme() else {
        return None;
    };
    let b = bucket as usize;
    if b >= owners.len() {
        return None;
    }
    let lo = if b == 0 { 0 } else { bounds[b - 1] };
    let hi = bounds.get(b).copied().unwrap_or(u64::MAX);
    if at <= lo || at >= hi {
        return None;
    }
    let mut bounds = bounds.clone();
    let mut owners = owners.clone();
    bounds.insert(b, at);
    owners.insert(b, owners[b]);
    Some(PartitionMap::from_ranges(bounds, owners))
}

/// Merge bucket `b` of a range map with its right neighbour `b + 1`; the
/// merged bucket keeps `b`'s owner. `None` if the map is not
/// range-partitioned or `b + 1` does not exist.
pub fn merge_range_buckets(map: &PartitionMap, bucket: u32) -> Option<PartitionMap> {
    let PartitionScheme::Range { bounds, owners } = map.scheme() else {
        return None;
    };
    let b = bucket as usize;
    if b + 1 >= owners.len() {
        return None;
    }
    let mut bounds = bounds.clone();
    let mut owners = owners.clone();
    bounds.remove(b);
    owners.remove(b + 1);
    Some(PartitionMap::from_ranges(bounds, owners))
}

/// SLO-aware autoscaling policy: when to grow or shrink the set of
/// active central pipes in response to the observed burn rate.
///
/// Hysteresis comes from three sides: distinct up/down thresholds, a
/// cooldown between scale actions, and the migration fence itself (no new
/// plan while one is in flight), so a noisy burn signal cannot thrash the
/// partition map.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ScalePolicy {
    /// Never shrink below this many active pipes.
    pub min_pipes: u32,
    /// Never grow beyond this many (additionally clamped to the switch's
    /// physical central pipe count).
    pub max_pipes: u32,
    /// Scale up when the SLO burn rate reaches this fraction.
    pub burn_up: f64,
    /// Scale down when the burn rate is at or below this fraction.
    pub burn_down: f64,
    /// Serving ticks that must pass after a scale action before the next
    /// one is considered.
    pub cooldown_ticks: u64,
    /// How state follows a scale migration.
    pub strategy: MigrationStrategy,
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy {
            min_pipes: 1,
            max_pipes: 4,
            burn_up: 0.5,
            burn_down: 0.05,
            cooldown_ticks: 8,
            strategy: MigrationStrategy::Incremental,
        }
    }
}

/// What the serving layer observed about its SLO over the sliding window,
/// fed into [`Controller::tick_serving`] each slice.
#[derive(Debug, Clone, Copy)]
pub struct SloSignal {
    /// Fraction of recent window slices that violated the latency SLO,
    /// in `[0, 1]` — the burn rate of the error budget.
    pub burn_rate: f64,
    /// True once the window holds enough slices to trust the burn rate.
    pub window_full: bool,
}

/// Retained [`RebalanceEvent`] cap: hours-long soaks must hold
/// steady-state memory, so the in-controller log keeps the most recent
/// decisions and [`Controller::events_total`] keeps the exact count.
pub const EVENT_LOG_CAP: usize = 1_024;

/// Closed-loop controller: observe, plan, actuate.
///
/// Call [`Controller::tick`] between traffic batches (e.g. after every
/// `run_until`). Each tick does one of three things: finalizes an
/// in-flight incremental migration, starts a rebalance when the policy's
/// skew threshold is crossed, or nothing. A serving loop calls
/// [`Controller::tick_serving`] instead, which adds the SLO-driven
/// scale-up/scale-down decision in front of the skew check.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Trigger policy.
    pub policy: SkewPolicy,
    /// Autoscaling policy for [`Controller::tick_serving`].
    pub scale: ScalePolicy,
    events: Vec<RebalanceEvent>,
    events_total: u64,
    ticks: u64,
    last_scale_tick: Option<u64>,
}

impl Controller {
    /// Controller with the given skew policy and default scale policy.
    pub fn new(policy: SkewPolicy) -> Self {
        Self::with_scale(policy, ScalePolicy::default())
    }

    /// Controller with explicit skew and scale policies.
    pub fn with_scale(policy: SkewPolicy, scale: ScalePolicy) -> Self {
        Controller {
            policy,
            scale,
            events: Vec::new(),
            events_total: 0,
            ticks: 0,
            last_scale_tick: None,
        }
    }

    /// The most recent rebalances actuated (capped at [`EVENT_LOG_CAP`]),
    /// in order.
    pub fn events(&self) -> &[RebalanceEvent] {
        &self.events
    }

    /// Exact number of rebalances actuated over the controller's lifetime,
    /// unaffected by the event-log cap.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    fn push_event(&mut self, ev: RebalanceEvent) {
        if self.events.len() == EVENT_LOG_CAP {
            self.events.remove(0);
        }
        self.events.push(ev);
        self.events_total += 1;
    }

    /// One control-loop iteration against a live switch. Returns the
    /// event if this tick *started* a migration.
    pub fn tick(&mut self, sw: &mut AdcpSwitch, now: SimTime) -> Option<RebalanceEvent> {
        self.skew_tick(sw, now, None)
    }

    /// The skew check behind [`Controller::tick`]. `within_pipes` limits
    /// the pipes a rebalance may spread onto; `None` allows every
    /// physical central pipe. The serving loop passes the active set so a
    /// skew fix cannot silently undo an SLO-driven scale-down.
    fn skew_tick(
        &mut self,
        sw: &mut AdcpSwitch,
        now: SimTime,
        within_pipes: Option<u32>,
    ) -> Option<RebalanceEvent> {
        if sw.migration_active() {
            // Drain migrations self-commit; incremental ones stay open
            // until finalized. Busy/InProgress just mean "not yet".
            match sw.finalize_migration() {
                Ok(()) | Err(MigrateError::InProgress) | Err(MigrateError::Busy) => {}
                Err(e) => debug_assert!(false, "unexpected finalize error: {e}"),
            }
            return None;
        }
        let snap = LoadSnapshot::from_switch(sw)?;
        if snap.total < self.policy.min_samples {
            return None;
        }
        let skew = snap.skew();
        if skew < self.policy.max_over_mean {
            return None;
        }
        let map = sw.partition_map()?;
        let n_pipes = within_pipes.unwrap_or(sw.num_central() as u32);
        let next = plan_rebalance(map, &snap.bucket_pkts, n_pipes)?;
        let moved = map.moved_buckets(&next).len();
        let ev = RebalanceEvent {
            at_ns: now.as_ps() / 1000,
            to_epoch: map.epoch + 1,
            skew,
            moved_buckets: moved,
            strategy: self.policy.strategy,
            kind: RebalanceKind::Skew,
            pipes: active_pipes(&next),
        };
        match sw.begin_migration(next, self.policy.strategy) {
            Ok(()) => {
                self.push_event(ev.clone());
                Some(ev)
            }
            // Old-epoch packets still in flight: retry on a later tick.
            Err(MigrateError::Busy) => None,
            Err(e) => {
                debug_assert!(false, "unexpected begin error: {e}");
                None
            }
        }
    }

    /// One serving-loop iteration: the SLO-driven autoscaler in front of
    /// the skew rebalancer.
    ///
    /// Decision order each tick:
    ///
    /// 1. **In-flight migration** → try to finalize, decide nothing. This
    ///    is the scale-down safety story: a shrink can never start while
    ///    packets are fenced behind a previous map change, because
    ///    planning only happens on a quiescent partition map.
    /// 2. **Burn rate ≥ `burn_up`** and below the pipe ceiling, cooldown
    ///    elapsed → repack onto one more pipe ([`plan_scale_to`]).
    /// 3. **Burn rate ≤ `burn_down`** and above the floor, cooldown
    ///    elapsed → repack onto one fewer pipe.
    /// 4. Otherwise fall through to the plain skew check of
    ///    [`Controller::tick`].
    ///
    /// Scale decisions are driven by the SLO signal, not by load volume,
    /// so they are *not* gated on `SkewPolicy::min_samples`; the window
    /// must simply be full enough to trust (`SloSignal::window_full`).
    pub fn tick_serving(
        &mut self,
        sw: &mut AdcpSwitch,
        now: SimTime,
        slo: &SloSignal,
    ) -> Option<RebalanceEvent> {
        self.ticks += 1;
        if sw.migration_active() {
            match sw.finalize_migration() {
                Ok(()) | Err(MigrateError::InProgress) | Err(MigrateError::Busy) => {}
                Err(e) => debug_assert!(false, "unexpected finalize error: {e}"),
            }
            return None;
        }
        let cooled = self
            .last_scale_tick
            .is_none_or(|t| self.ticks - t >= self.scale.cooldown_ticks);
        if slo.window_full && cooled {
            let map = sw.partition_map()?;
            let active = active_pipes(map);
            let ceiling = self.scale.max_pipes.min(sw.num_central() as u32);
            let target = if slo.burn_rate >= self.scale.burn_up && active < ceiling {
                Some((active + 1, RebalanceKind::ScaleUp))
            } else if slo.burn_rate <= self.scale.burn_down && active > self.scale.min_pipes {
                Some((active - 1, RebalanceKind::ScaleDown))
            } else {
                None
            };
            if let Some((pipes, kind)) = target {
                let snap = LoadSnapshot::from_switch(sw)?;
                let next = plan_scale_to(map, &snap.bucket_pkts, pipes);
                let ev = RebalanceEvent {
                    at_ns: now.as_ps() / 1000,
                    to_epoch: map.epoch + 1,
                    skew: snap.skew(),
                    moved_buckets: map.moved_buckets(&next).len(),
                    strategy: self.scale.strategy,
                    kind,
                    pipes,
                };
                return match sw.begin_migration(next, self.scale.strategy) {
                    Ok(()) => {
                        self.last_scale_tick = Some(self.ticks);
                        self.push_event(ev.clone());
                        Some(ev)
                    }
                    // Old-epoch packets still draining: retry next slice.
                    Err(MigrateError::Busy) => None,
                    Err(e) => {
                        debug_assert!(false, "unexpected begin error: {e}");
                        None
                    }
                };
            }
        }
        // No scale action: let the skew rebalancer look at the same tick,
        // constrained to the pipes that are currently active (owner sets
        // are kept contiguous by `plan_scale_to`, so `max_owner + 1` is
        // exactly the active set).
        let within = sw.partition_map().map(|m| m.max_owner() + 1);
        self.skew_tick(sw, now, within)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_core::{AdcpConfig, AdcpSwitch};
    use adcp_lang::{
        ActionDef, ActionOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
        Operand, ParserSpec, ProgramBuilder, RegAluOp, RegId, Region, RegisterDef, TableDef,
        TargetModel,
    };
    use adcp_sim::packet::{FlowId, Packet, PortId};

    fn fr(f: u16) -> FieldRef {
        FieldRef::new(HeaderId(0), FieldId(f))
    }

    /// Minimal shard-counting program: ingress partitions on the key
    /// field, central counts per key (cell == key).
    fn counting_switch() -> AdcpSwitch {
        let mut b = ProgramBuilder::new("ctrl-test");
        let h = b.header(HeaderDef::new(
            "k",
            vec![FieldDef::scalar("dst", 16), FieldDef::scalar("key", 16)],
        ));
        b.parser(ParserSpec::single(h));
        let cnt = b.register(RegisterDef::new("cnt", 64, 32));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "r",
                vec![ActionOp::SetCentralPipe(Operand::Field(fr(1)))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "count".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "c",
                vec![
                    ActionOp::RegRmw {
                        reg: cnt,
                        index: Operand::Field(fr(1)),
                        op: RegAluOp::Add,
                        value: Operand::Const(1),
                        fetch: None,
                    },
                    ActionOp::SetEgress(Operand::Field(fr(0))),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        AdcpSwitch::new(
            b.build(),
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig::default(),
        )
        .unwrap()
    }

    fn pkt(id: u64, key: u16) -> Packet {
        let mut data = Vec::with_capacity(12);
        data.extend_from_slice(&1u16.to_be_bytes());
        data.extend_from_slice(&key.to_be_bytes());
        data.extend_from_slice(&[0u8; 8]);
        Packet::new(id, FlowId(key as u64), data)
    }

    #[test]
    fn rebalance_moves_hot_buckets_to_cold_pipes() {
        let map = PartitionMap::from_buckets(vec![0, 0, 1, 1]);
        // Pipe 0 holds 90% of the load, split across two buckets.
        let load = [450, 450, 50, 50];
        let next = plan_rebalance(&map, &load, 2).expect("imbalance is fixable");
        let moved = map.moved_buckets(&next);
        assert!(moved.len() <= 2, "few moves suffice: {moved:?}");
        let mut pipe = [0u64; 2];
        for b in 0..4u32 {
            pipe[next.owner_of_bucket(b) as usize] += load[b as usize];
        }
        assert_eq!(pipe, [500, 500], "greedy reaches the perfect split");
    }

    #[test]
    fn rebalance_of_balanced_load_is_none() {
        let map = PartitionMap::from_buckets(vec![0, 1, 0, 1]);
        assert!(plan_rebalance(&map, &[10, 10, 10, 10], 2).is_none());
        // A single hot bucket cannot be improved by reassignment either.
        assert!(plan_rebalance(&map, &[100, 0, 0, 0], 2).is_none());
    }

    #[test]
    fn scale_to_packs_onto_new_pipe_count() {
        let map = PartitionMap::uniform(8, 4);
        let load = [8, 7, 6, 5, 4, 3, 2, 1];
        let two = plan_scale_to(&map, &load, 2);
        assert_eq!(two.max_owner(), 1);
        let mut pipe = [0u64; 2];
        for b in 0..8u32 {
            pipe[two.owner_of_bucket(b) as usize] += load[b as usize];
        }
        assert_eq!(pipe[0] + pipe[1], 36);
        assert!(pipe[0].abs_diff(pipe[1]) <= 2, "LPT packs evenly: {pipe:?}");
        // Scale back up to 6 pipes: every pipe gets something.
        let six = plan_scale_to(&map, &load, 6);
        let used: std::collections::BTreeSet<u32> =
            (0..8u32).map(|b| six.owner_of_bucket(b)).collect();
        assert_eq!(used.len(), 6);
    }

    #[test]
    fn range_split_and_merge() {
        let map = PartitionMap::from_ranges(vec![100], vec![0, 1]);
        let split = split_range_bucket(&map, 0, 50).unwrap();
        assert_eq!(split.num_buckets(), 3);
        assert_eq!(split.owner(10), 0);
        assert_eq!(split.owner(60), 0, "both halves keep the owner");
        assert_eq!(split.owner(200), 1);
        assert!(
            split_range_bucket(&map, 0, 100).is_none(),
            "bound not inside"
        );
        assert!(split_range_bucket(&map, 5, 50).is_none(), "no such bucket");
        let merged = merge_range_buckets(&split, 1).unwrap();
        assert_eq!(merged.num_buckets(), 2);
        assert_eq!(merged.owner(60), 0);
        assert_eq!(merged.owner(200), 0, "merged keeps left owner");
        assert!(merge_range_buckets(&map, 1).is_none(), "no right neighbour");
        let hash = PartitionMap::uniform(4, 2);
        assert!(split_range_bucket(&hash, 0, 1).is_none());
        assert!(merge_range_buckets(&hash, 0).is_none());
    }

    #[test]
    fn serving_autoscaler_scales_up_then_down() {
        let mut sw = counting_switch();
        sw.install_partition_map(PartitionMap::uniform(64, 1))
            .unwrap();
        let mut ctl = Controller::with_scale(
            SkewPolicy::default(),
            ScalePolicy {
                min_pipes: 1,
                max_pipes: 4,
                burn_up: 0.5,
                burn_down: 0.05,
                cooldown_ticks: 2,
                strategy: MigrationStrategy::Incremental,
            },
        );
        // A little traffic so the load snapshot has something to pack on.
        let mut t = 0u64;
        for i in 0..32u64 {
            sw.inject(PortId((i % 4) as u16), pkt(i, (i % 16) as u16), SimTime(t));
            t += 20_000;
        }
        sw.run_until_idle();

        let hot = SloSignal {
            burn_rate: 1.0,
            window_full: true,
        };
        let ev = ctl
            .tick_serving(&mut sw, SimTime(t), &hot)
            .expect("burning SLO must scale up");
        assert_eq!(ev.kind, RebalanceKind::ScaleUp);
        assert_eq!(ev.pipes, 2);
        // Within the cooldown no further scale action fires, even hot.
        assert!(ctl.tick_serving(&mut sw, SimTime(t), &hot).is_none());
        sw.run_until_idle();
        // Let the incremental migration finalize (first call finalizes,
        // then the cooldown expires tick by tick). A burn rate between the
        // two thresholds asks for no scale action either way.
        let steady = SloSignal {
            burn_rate: 0.2,
            window_full: true,
        };
        for _ in 0..3 {
            assert!(ctl.tick_serving(&mut sw, SimTime(t), &steady).is_none());
            sw.run_until_idle();
        }
        assert!(!sw.migration_active());
        assert_eq!(active_pipes(sw.partition_map().unwrap()), 2);

        let idle = SloSignal {
            burn_rate: 0.0,
            window_full: true,
        };
        let ev = ctl
            .tick_serving(&mut sw, SimTime(t), &idle)
            .expect("sustained headroom must scale down");
        assert_eq!(ev.kind, RebalanceKind::ScaleDown);
        assert_eq!(ev.pipes, 1);
        assert_eq!(ctl.events_total(), 2);
        assert_eq!(sw.migration_stats().misroutes, 0);
    }

    #[test]
    fn serving_respects_floor_ceiling_and_fences() {
        let mut sw = counting_switch();
        sw.install_partition_map(PartitionMap::uniform(64, 1))
            .unwrap();
        let mut ctl = Controller::with_scale(
            SkewPolicy::default(),
            ScalePolicy {
                min_pipes: 1,
                max_pipes: 1, // floor == ceiling: no scale action possible
                burn_up: 0.5,
                burn_down: 0.05,
                cooldown_ticks: 0,
                strategy: MigrationStrategy::Drain,
            },
        );
        let hot = SloSignal {
            burn_rate: 1.0,
            window_full: true,
        };
        let idle = SloSignal {
            burn_rate: 0.0,
            window_full: true,
        };
        assert!(ctl.tick_serving(&mut sw, SimTime::ZERO, &hot).is_none());
        assert!(ctl.tick_serving(&mut sw, SimTime::ZERO, &idle).is_none());
        assert_eq!(ctl.events_total(), 0);

        // An un-full window never drives a scale decision.
        ctl.scale.max_pipes = 4;
        let blind = SloSignal {
            burn_rate: 1.0,
            window_full: false,
        };
        assert!(ctl.tick_serving(&mut sw, SimTime::ZERO, &blind).is_none());

        // While a migration is in flight, a tick only tries to finalize —
        // scale-down safety around the fence.
        let ev = ctl.tick_serving(&mut sw, SimTime::ZERO, &hot).unwrap();
        assert_eq!(ev.kind, RebalanceKind::ScaleUp);
        if sw.migration_active() {
            assert!(ctl.tick_serving(&mut sw, SimTime::ZERO, &idle).is_none());
        }
    }

    #[test]
    fn event_log_is_bounded_with_exact_total() {
        let mut ctl = Controller::new(SkewPolicy::default());
        for i in 0..(EVENT_LOG_CAP as u64 + 100) {
            ctl.push_event(RebalanceEvent {
                at_ns: i,
                to_epoch: i,
                skew: 1.0,
                moved_buckets: 0,
                strategy: MigrationStrategy::Drain,
                kind: RebalanceKind::Skew,
                pipes: 1,
            });
        }
        assert_eq!(ctl.events().len(), EVENT_LOG_CAP);
        assert_eq!(ctl.events_total(), EVENT_LOG_CAP as u64 + 100);
        // Oldest entries were evicted: the log starts at event 100.
        assert_eq!(ctl.events()[0].at_ns, 100);
    }

    #[test]
    fn controller_detects_skew_and_rebalances_live_switch() {
        let mut sw = counting_switch();
        sw.install_partition_map(PartitionMap::uniform(64, 4))
            .unwrap();
        let mut ctl = Controller::new(SkewPolicy {
            max_over_mean: 1.5,
            min_samples: 32,
            strategy: MigrationStrategy::Incremental,
        });
        // Skewed phase: keys 0, 4, 8, 12 all land on pipe 0.
        let mut id = 0u64;
        let mut t = 0u64;
        for round in 0..64u64 {
            let key = ((round % 4) * 4) as u16;
            sw.inject(PortId((round % 4) as u16), pkt(id, key), SimTime(t));
            id += 1;
            t += 20_000;
        }
        let now = sw.run_until(SimTime(t));
        let before = LoadSnapshot::from_switch(&sw).unwrap();
        assert!(
            before.skew() > 3.0,
            "all load on one pipe: {}",
            before.skew()
        );
        let ev = ctl.tick(&mut sw, now).expect("controller must react");
        assert!(ev.moved_buckets > 0);
        assert_eq!(ev.to_epoch, 1);
        // Keep traffic flowing on the same keys, then let the controller
        // finalize the incremental migration.
        for round in 0..64u64 {
            let key = ((round % 4) * 4) as u16;
            sw.inject(PortId((round % 4) as u16), pkt(id, key), SimTime(t));
            id += 1;
            t += 20_000;
        }
        sw.run_until_idle();
        ctl.tick(&mut sw, SimTime(t));
        assert!(!sw.migration_active(), "tick finalizes the migration");
        assert_eq!(sw.partition_epoch(), 1);
        let stats = sw.migration_stats();
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.misroutes, 0);
        // No update lost: the four hot keys absorbed 32 adds each.
        let sum: u64 = (0..4)
            .map(|c| {
                (0..4u64)
                    .map(|k| sw.central_register(c, RegId(0)).unwrap().peek(k * 4))
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(sum, 128);
        // And the post-migration placement actually spreads the hot keys.
        let after = LoadSnapshot::from_switch(&sw).unwrap();
        assert!(
            after.skew() < before.skew(),
            "skew {} -> {}",
            before.skew(),
            after.skew()
        );
        assert_eq!(ctl.events().len(), 1);
    }
}
