//! # adcp-core — the Application-Defined Coflow Processor
//!
//! The paper's proposed switch architecture (Figure 4), executable:
//!
//! * a second traffic manager creating **central pipelines** — the *global
//!   partitioned area* where coflow state can be arranged by application
//!   criteria without giving up forwarding freedom (§3.1);
//! * **array-capable match-action stages**: one shared table copy serves a
//!   whole array of keys per packet, and wide register ops aggregate
//!   arrays in a single traversal (§3.2);
//! * **port demultiplexing**: each port feeds `m` slower pipelines, so
//!   clock frequency scales down as port speed scales up (§3.3).
//!
//! The model is event-driven and cycle-level, built on `adcp-sim`, and runs
//! the same `adcp-lang` programs as the RMT baseline in `adcp-rmt`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod partition;
pub mod switch;

pub use partition::{MigrateError, MigrationStrategy, PartitionMap, PartitionScheme};
pub use switch::{AdcpConfig, AdcpCounters, AdcpSwitch, Delivered, DemuxPolicy, MigrationStats};

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_lang::{
        ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
        KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, RegAluOp,
        RegId, Region, RegisterDef, TableDef, TargetModel, TmSpec,
    };
    use adcp_sim::packet::{FlowId, Packet, PortId};
    use adcp_sim::sched::Policy as SchedPolicy;
    use adcp_sim::time::SimTime;

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(adcp_lang::HeaderId(h), FieldId(f))
    }

    /// Header {dst:16, key:16, slot:32, vals: 4x32} — 24 bytes.
    fn header() -> HeaderDef {
        HeaderDef::new(
            "co",
            vec![
                FieldDef::scalar("dst", 16),
                FieldDef::scalar("key", 16),
                FieldDef::scalar("slot", 32),
                FieldDef::array("vals", 32, 4),
            ],
        )
    }

    fn pkt_with(id: u64, flow: u64, dst: u16, key: u16, slot: u32, vals: [u32; 4]) -> Packet {
        let mut data = Vec::with_capacity(24 + 8);
        data.extend_from_slice(&dst.to_be_bytes());
        data.extend_from_slice(&key.to_be_bytes());
        data.extend_from_slice(&slot.to_be_bytes());
        for v in vals {
            data.extend_from_slice(&v.to_be_bytes());
        }
        data.extend_from_slice(&[0u8; 8]); // payload
        Packet::new(id, FlowId(flow), data)
    }

    fn read_vals(data: &[u8]) -> [u32; 4] {
        let mut out = [0u32; 4];
        for (i, o) in out.iter_mut().enumerate() {
            let s = 8 + i * 4;
            *o = u32::from_be_bytes(data[s..s + 4].try_into().unwrap());
        }
        out
    }

    /// Coflow aggregation program: ingress hashes key -> central pipe and
    /// sets sort key; central aggregates vals into a register array with
    /// readback and forwards to dst; egress empty.
    fn aggregate_program(tm1: SchedPolicy) -> Program {
        let mut b = ProgramBuilder::new("aggregate");
        let h = b.header(header());
        b.parser(ParserSpec::single(h));
        b.tm1(TmSpec { policy: tm1 });
        let acc = b.register(RegisterDef::new("acc", 4096, 32));
        b.table(TableDef {
            name: "partition".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "part",
                vec![
                    ActionOp::Hash {
                        dst: fr(0, 1),
                        fields: vec![fr(0, 1)],
                        modulo: 4,
                    },
                    ActionOp::SetCentralPipe(Operand::Field(fr(0, 1))),
                    ActionOp::SetSortKey(Operand::Field(fr(0, 2))),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "aggregate".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "agg",
                vec![
                    ActionOp::RegArray {
                        reg: acc,
                        base: Operand::Field(fr(0, 2)),
                        op: RegAluOp::Add,
                        values: fr(0, 3),
                        readback: true,
                    },
                    ActionOp::CountElements(Operand::Const(4)),
                    ActionOp::SetEgress(Operand::Field(fr(0, 0))),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    fn build(p: Program) -> AdcpSwitch {
        AdcpSwitch::new(
            p,
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_through_central() {
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        sw.inject(
            PortId(0),
            pkt_with(1, 1, 9, 5, 0, [1, 2, 3, 4]),
            SimTime::ZERO,
        );
        sw.run_until_idle();
        let out = sw.take_delivered();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].port, PortId(9));
        assert_eq!(read_vals(&out[0].data), [1, 2, 3, 4]);
        assert_eq!(out[0].meta.elements, 4);
        sw.check_conservation();
    }

    #[test]
    fn coflow_state_converges_globally() {
        // Packets from EVERY port, same key -> same central pipe: the
        // aggregate converges without recirculation (unlike RMT).
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        let n_ports = sw.target().ports;
        for p in 0..n_ports {
            sw.inject(
                PortId(p),
                pkt_with(p as u64, p as u64, 0, 42, 100, [1, 1, 1, 1]),
                SimTime::ZERO,
            );
        }
        sw.run_until_idle();
        assert_eq!(sw.counters.delivered, n_ports as u64);
        // All contributions landed on one central pipe's register shard.
        let total: u64 = (0..sw.num_central())
            .map(|c| sw.central_register(c, RegId(0)).unwrap().peek(100))
            .sum();
        assert_eq!(total, n_ports as u64);
        let max: u64 = (0..sw.num_central())
            .map(|c| sw.central_register(c, RegId(0)).unwrap().peek(100))
            .max()
            .unwrap();
        assert_eq!(max, n_ports as u64, "single shard holds the whole coflow");
        sw.check_conservation();
    }

    #[test]
    fn any_port_reachable_from_central() {
        // Same key (same central pipe), but results leave via every port —
        // impossible under RMT egress pinning, native here (Fig. 5).
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        let n_ports = sw.target().ports;
        for dst in 0..n_ports {
            sw.inject(
                PortId(0),
                pkt_with(dst as u64, dst as u64, dst, 7, 0, [0; 4]),
                SimTime::ZERO,
            );
        }
        sw.run_until_idle();
        let mut ports: Vec<u16> = sw.take_delivered().iter().map(|d| d.port.0).collect();
        ports.sort_unstable();
        assert_eq!(ports, (0..n_ports).collect::<Vec<_>>());
        sw.check_conservation();
    }

    #[test]
    fn array_aggregation_reads_back_running_sums() {
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        // Two workers aggregate into slot 8 — space injections so the
        // first fully traverses before the second (readback order).
        sw.inject(
            PortId(0),
            pkt_with(1, 1, 3, 0, 8, [1, 2, 3, 4]),
            SimTime::ZERO,
        );
        sw.inject(
            PortId(1),
            pkt_with(2, 1, 3, 0, 8, [10, 20, 30, 40]),
            SimTime::from_us(1),
        );
        sw.run_until_idle();
        let out = sw.take_delivered();
        assert_eq!(out.len(), 2);
        assert_eq!(read_vals(&out[0].data), [1, 2, 3, 4]);
        assert_eq!(read_vals(&out[1].data), [11, 22, 33, 44]);
        sw.check_conservation();
    }

    #[test]
    fn tm1_merge_emits_globally_sorted_stream() {
        // Two ports send streams sorted by slot; TM1 MergeOrder interleaves
        // them into one globally sorted stream (§3.1).
        let prog = aggregate_program(SchedPolicy::MergeOrder);
        let mut sw = AdcpSwitch::new(
            prog,
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig {
                demux: DemuxPolicy::FlowHash,
                ..Default::default()
            },
        )
        .unwrap();
        // Same key => same central pipe; slots interleave across ports.
        let a = [1u32, 4, 7, 10, 13];
        let b_ = [2u32, 5, 8, 11, 14];
        for (i, s) in a.iter().enumerate() {
            sw.inject(
                PortId(0),
                pkt_with(i as u64, 1, 3, 9, *s, [0; 4]),
                SimTime(i as u64 * 10),
            );
        }
        for (i, s) in b_.iter().enumerate() {
            sw.inject(
                PortId(1),
                pkt_with(100 + i as u64, 2, 3, 9, *s, [0; 4]),
                SimTime(i as u64 * 10),
            );
        }
        sw.run_until_idle();
        let out = sw.take_delivered();
        assert_eq!(out.len(), 10);
        let keys: Vec<u64> = out.iter().map(|d| d.meta.sort_key.unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "merge order violated: {keys:?}");
        sw.check_conservation();
    }

    #[test]
    fn demux_spreads_a_port_over_its_pipelines() {
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        for i in 0..100u64 {
            sw.inject(
                PortId(0),
                pkt_with(i, i, 1, i as u16, 0, [0; 4]),
                SimTime::ZERO,
            );
        }
        sw.run_until_idle();
        let pipes: Vec<usize> = sw.pipes_of_port(PortId(0)).collect();
        assert_eq!(pipes.len(), 2, "1:2 demux");
        for p in &pipes {
            assert!(
                sw.ingress_busy_cycles(*p) >= 40,
                "pipe {p} underused: {}",
                sw.ingress_busy_cycles(*p)
            );
        }
        sw.check_conservation();
    }

    #[test]
    fn multicast_from_central_to_every_port() {
        // Central table multicasts the result to a declared group.
        let mut b = ProgramBuilder::new("mcast");
        let h = b.header(header());
        b.parser(ParserSpec::single(h));
        let every: Vec<PortId> = (0..16).map(PortId).collect();
        let g = b.mcast_group(every.clone());
        b.table(TableDef {
            name: "bcast".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "bcast",
                vec![ActionOp::SetMulticast(Operand::Const(g as u64))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        let mut sw = build(b.build());
        sw.inject(PortId(5), pkt_with(1, 1, 0, 0, 0, [9; 4]), SimTime::ZERO);
        sw.run_until_idle();
        let out = sw.take_delivered();
        assert_eq!(out.len(), 16);
        assert_eq!(sw.counters.mcast_copies, 15);
        let mut ports: Vec<u16> = out.iter().map(|d| d.port.0).collect();
        ports.sort_unstable();
        assert_eq!(ports, (0..16).collect::<Vec<_>>());
        sw.check_conservation();
    }

    #[test]
    fn partitioned_table_entries_per_central_pipe() {
        // install_central_at shards a lookup table across central pipes.
        let mut b = ProgramBuilder::new("shard");
        let h = b.header(header());
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "part".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "p",
                vec![ActionOp::SetCentralPipe(Operand::Field(fr(0, 1)))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "lookup".into(),
            region: Region::Central,
            key: Some(KeySpec {
                field: fr(0, 1),
                kind: MatchKind::Exact,
                bits: 16,
            }),
            actions: vec![
                ActionDef::new("hit", vec![ActionOp::SetEgress(Operand::Param(0))]),
                ActionDef::new("miss", vec![ActionOp::Drop]),
            ],
            default_action: 1,
            default_params: vec![],
            size: 64,
        });
        let mut sw = build(b.build());
        // Shard: key k lives only on central pipe k % 4 — which is exactly
        // where the partition action sends it, so every lookup hits.
        for k in 0..8u16 {
            sw.install_central_at(
                (k % 4) as usize,
                "lookup",
                Entry {
                    value: MatchValue::Exact(k as u64),
                    action: 0,
                    params: vec![(k % 16) as u64],
                },
            )
            .unwrap();
        }
        for k in 0..8u16 {
            sw.inject(
                PortId(0),
                pkt_with(k as u64, k as u64, 0, k, 0, [0; 4]),
                SimTime::ZERO,
            );
        }
        sw.run_until_idle();
        assert_eq!(sw.counters.delivered, 8);
        assert_eq!(sw.counters.filtered, 0);
        sw.check_conservation();
    }

    #[test]
    fn flow_hash_demux_keeps_flow_order() {
        // FlowHash demux pins a flow to one ingress pipeline, so per-flow
        // delivery order matches injection order even under load.
        let mut sw = AdcpSwitch::new(
            aggregate_program(SchedPolicy::Fifo),
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig {
                demux: DemuxPolicy::FlowHash,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..200u64 {
            // Two flows interleaved; slot encodes per-flow sequence.
            let flow = i % 2;
            sw.inject(
                PortId(flow as u16),
                pkt_with(i, flow, 3, 9, (i / 2) as u32, [0; 4]),
                SimTime(i * 10),
            );
        }
        sw.run_until_idle();
        let out = sw.take_delivered();
        let mut last_slot = [0i64; 2];
        for d in &out {
            let flow = (d.meta.flow.0 % 2) as usize;
            let slot = d.meta.sort_key.unwrap() as i64;
            assert!(slot >= last_slot[flow], "flow {flow} reordered");
            last_slot[flow] = slot;
        }
        sw.check_conservation();
    }

    #[test]
    fn parse_error_counted_and_conserved() {
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        sw.inject(
            PortId(0),
            Packet::new(1, FlowId(0), vec![0u8; 3]),
            SimTime::ZERO,
        );
        sw.run_until_idle();
        assert_eq!(sw.counters.parse_errors, 1);
        sw.check_conservation();
    }

    #[test]
    fn filtered_in_central_counted() {
        // A program whose central region drops everything.
        let mut b = ProgramBuilder::new("dropper");
        let h = b.header(header());
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "drop_all".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new("d", vec![ActionOp::Drop])],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        let mut sw = build(b.build());
        for i in 0..10u64 {
            sw.inject(PortId(0), pkt_with(i, i, 1, 0, 0, [0; 4]), SimTime::ZERO);
        }
        sw.run_until_idle();
        assert_eq!(sw.counters.filtered, 10);
        assert_eq!(sw.counters.delivered, 0);
        sw.check_conservation();
    }

    /// Shard-keyed counting program for migration tests: ingress partitions
    /// on the key field itself, central counts per key (cell == key, the
    /// partitioned-area convention) and exposes the pre-op count in the
    /// slot field, so delivered frames witness per-key update order.
    fn migrate_program() -> Program {
        let mut b = ProgramBuilder::new("migrate");
        let h = b.header(header());
        b.parser(ParserSpec::single(h));
        let cnt = b.register(RegisterDef::new("cnt", 64, 32));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "r",
                vec![ActionOp::SetCentralPipe(Operand::Field(fr(0, 1)))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "count".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "c",
                vec![
                    ActionOp::RegRmw {
                        reg: cnt,
                        index: Operand::Field(fr(0, 1)),
                        op: RegAluOp::Add,
                        value: Operand::Const(1),
                        fetch: Some(fr(0, 2)),
                    },
                    ActionOp::SetEgress(Operand::Field(fr(0, 0))),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    /// Per-pipe cell values, and the merged (summed) view.
    fn cell_views(sw: &AdcpSwitch, cell: u64) -> (Vec<u64>, u64) {
        let per: Vec<u64> = (0..sw.num_central())
            .map(|c| sw.central_register(c, RegId(0)).unwrap().peek(cell))
            .collect();
        let sum = per.iter().sum();
        (per, sum)
    }

    #[test]
    fn central_control_plane_is_bounds_checked() {
        let mut sw = build(aggregate_program(SchedPolicy::Fifo));
        let n = sw.num_central();
        assert!(sw.central_register(n, RegId(0)).is_none());
        assert!(sw.central_register_mut(n + 3, RegId(0)).is_none());
        assert!(sw.central_register(0, RegId(0)).is_some());
        let mut sw2 = build(migrate_program());
        let entry = Entry {
            value: MatchValue::Exact(0),
            action: 0,
            params: vec![],
        };
        assert_eq!(
            sw2.install_central_at(99, "count", entry),
            Err(adcp_lang::TableError::NoSuchPipe { pipe: 99, have: n }),
        );
    }

    #[test]
    fn uniform_partition_map_reproduces_legacy_routing() {
        let run = |with_map: bool| {
            let mut sw = build(migrate_program());
            if with_map {
                sw.install_partition_map(PartitionMap::uniform(64, 4))
                    .unwrap();
            }
            for i in 0..64u64 {
                let key = (i % 8) as u16;
                sw.inject(
                    PortId((i % 4) as u16),
                    pkt_with(i, key as u64, 1, key, 0, [0; 4]),
                    SimTime(i * 100_000),
                );
            }
            sw.run_until_idle();
            let regs: Vec<Vec<u64>> = (0..sw.num_central())
                .map(|c| sw.central_register(c, RegId(0)).unwrap().snapshot())
                .collect();
            let frames: Vec<(u64, Vec<u8>)> = sw
                .take_delivered()
                .iter()
                .map(|d| (d.meta.id, d.data.to_vec()))
                .collect();
            (regs, frames)
        };
        assert_eq!(run(false), run(true));
    }

    fn run_migration(strategy: MigrationStrategy) -> AdcpSwitch {
        let mut sw = build(migrate_program());
        sw.install_partition_map(PartitionMap::uniform(64, 4))
            .unwrap();
        // 8 hot keys, packets spaced closely enough that some are in
        // flight when the migration begins mid-stream.
        let n = 256u64;
        for i in 0..n {
            let key = (i % 8) as u16;
            sw.inject(
                PortId((i % 4) as u16),
                pkt_with(i, key as u64, 1, key, 0, [0; 4]),
                SimTime(i * 20_000),
            );
        }
        sw.run_until(SimTime(n * 20_000 / 2));
        // Rotate every bucket's owner: all 64 cells move.
        let next = PartitionMap::from_buckets((0..64u32).map(|b| (b % 4 + 1) % 4).collect());
        sw.begin_migration(next, strategy).unwrap();
        sw.run_until_idle();
        if strategy == MigrationStrategy::Incremental {
            sw.finalize_migration().unwrap();
        }
        sw.run_until_idle();
        sw.check_conservation();
        sw
    }

    #[test]
    fn drain_migration_preserves_counts_and_moves_state() {
        let mut sw = run_migration(MigrationStrategy::Drain);
        assert_eq!(sw.counters.delivered, 256);
        let stats = sw.migration_stats().clone();
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.misroutes, 0);
        assert_eq!(stats.moved_keys, 64);
        assert_eq!(sw.partition_epoch(), 1);
        for key in 0..8u64 {
            let (per, sum) = cell_views(&sw, key);
            assert_eq!(sum, 32, "every update for key {key} applied once");
            // State ended up at the NEW owner only.
            let owner = ((key % 4 + 1) % 4) as usize;
            assert_eq!(per[owner], 32, "key {key} lives at its new owner");
        }
        // Per-key fetch sequence in delivered frames is 0,1,2,... — no
        // update lost, duplicated, or reordered across the migration.
        let mut next_count = [0u64; 8];
        let mut out = sw.take_delivered();
        out.sort_by_key(|d| d.meta.id);
        for d in &out {
            let key = u16::from_be_bytes(d.data[2..4].try_into().unwrap()) as usize;
            let fetched = u32::from_be_bytes(d.data[4..8].try_into().unwrap()) as u64;
            assert_eq!(fetched, next_count[key], "key {key} update order");
            next_count[key] += 1;
        }
    }

    #[test]
    fn incremental_migration_preserves_counts_and_moves_state() {
        let mut sw = run_migration(MigrationStrategy::Incremental);
        assert_eq!(sw.counters.delivered, 256);
        let stats = sw.migration_stats().clone();
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.misroutes, 0);
        assert_eq!(stats.moved_keys, 64);
        assert!(
            stats.redirected_pkts > 0,
            "mid-stream traffic must trigger first-touch copies"
        );
        assert_eq!(sw.partition_epoch(), 1);
        for key in 0..8u64 {
            let (per, sum) = cell_views(&sw, key);
            assert_eq!(sum, 32, "every update for key {key} applied once");
            let owner = ((key % 4 + 1) % 4) as usize;
            assert_eq!(per[owner], 32, "key {key} lives at its new owner");
        }
        let mut next_count = [0u64; 8];
        let mut out = sw.take_delivered();
        out.sort_by_key(|d| d.meta.id);
        for d in &out {
            let key = u16::from_be_bytes(d.data[2..4].try_into().unwrap()) as usize;
            let fetched = u32::from_be_bytes(d.data[4..8].try_into().unwrap()) as u64;
            assert_eq!(fetched, next_count[key], "key {key} update order");
            next_count[key] += 1;
        }
    }

    #[test]
    fn migration_guards() {
        let mut sw = build(migrate_program());
        let next = PartitionMap::uniform(64, 4);
        assert_eq!(
            sw.begin_migration(next.clone(), MigrationStrategy::Drain),
            Err(MigrateError::NoMap)
        );
        sw.install_partition_map(PartitionMap::uniform(64, 4))
            .unwrap();
        assert_eq!(sw.finalize_migration(), Err(MigrateError::NoMigration));
        assert_eq!(
            sw.begin_migration(
                PartitionMap::from_buckets(vec![7]),
                MigrationStrategy::Drain
            ),
            Err(MigrateError::BadOwner { owner: 7, pipes: 4 })
        );
        let rotated = PartitionMap::from_buckets((0..64u32).map(|b| (b % 4 + 1) % 4).collect());
        sw.begin_migration(rotated.clone(), MigrationStrategy::Incremental)
            .unwrap();
        assert!(sw.migration_active());
        assert_eq!(
            sw.begin_migration(rotated, MigrationStrategy::Drain),
            Err(MigrateError::InProgress)
        );
        sw.finalize_migration().unwrap();
        assert!(!sw.migration_active());
        assert_eq!(sw.partition_epoch(), 1);
    }

    #[test]
    fn deterministic_given_same_input() {
        let run = || {
            let mut sw = build(aggregate_program(SchedPolicy::Fifo));
            for i in 0..200u64 {
                sw.inject(
                    PortId((i % 16) as u16),
                    pkt_with(
                        i,
                        i % 7,
                        (i % 16) as u16,
                        (i % 32) as u16,
                        (i % 64) as u32,
                        [i as u32, 1, 2, 3],
                    ),
                    SimTime(i * 50),
                );
            }
            let end = sw.run_until_idle();
            let out = sw.take_delivered();
            (
                end,
                out.len(),
                out.iter().map(|d| d.time.as_ps()).sum::<u64>(),
            )
        };
        assert_eq!(run(), run());
    }
}
