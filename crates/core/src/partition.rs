//! Epoch-versioned partition maps for the global partitioned area (§3.1).
//!
//! TM1 places packets (and therefore the register state they touch) onto
//! central pipelines. At program-install time the placement is whatever the
//! program computes (`SetCentralPipe`) folded modulo the pipe count; a
//! [`PartitionMap`] makes that placement a first-class, *versioned* control
//! plane object so it can be changed under live traffic:
//!
//! * the **logical partition key** of a packet is the program's
//!   `SetCentralPipe` value (pre-modulo), else its flow hash;
//! * keys fold into **buckets** (hash scheme: `key % B`; range scheme:
//!   binary search over sorted bounds) and every bucket has one owning
//!   central pipe;
//! * each map carries an **epoch**. TM1 stamps every packet with the epoch
//!   it routed under, so a central pipe can always tell whether a dequeued
//!   packet predates the current map — no packet ever observes a
//!   half-applied map.
//!
//! State association: the partitioned-area convention is that register
//! cell `c` belongs to partition key `c` (programs index their shard state
//! by the same value they partition on), so the cells a migration must
//! move are exactly those whose owner differs between two maps
//! ([`PartitionMap::moved_cells`]).

use serde::Serialize;

/// Default bucket count for [`PartitionMap::uniform`]. 64 matches the
/// register-file sizes the conformance harness exercises, but any count
/// works — buckets are a routing-granularity choice, not a state size.
pub const DEFAULT_BUCKETS: u32 = 64;

/// How keys fold into buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PartitionScheme {
    /// `bucket = key % weights.len()`; `weights[b]` is the owning pipe.
    Hash {
        /// Owning central pipe per bucket.
        owners: Vec<u32>,
    },
    /// Contiguous key ranges: bucket `b` covers keys in
    /// `[bounds[b-1], bounds[b])` (bucket 0 starts at 0, the last bucket
    /// is unbounded above). `bounds` is strictly increasing and one
    /// shorter than `owners`.
    Range {
        /// Upper (exclusive) bounds of every bucket but the last.
        bounds: Vec<u64>,
        /// Owning central pipe per range bucket.
        owners: Vec<u32>,
    },
}

/// Errors from partition-map construction and migration control calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// A bucket names an owner pipe the switch does not have.
    BadOwner {
        /// The offending owner.
        owner: u32,
        /// Central pipes available.
        pipes: u32,
    },
    /// No partition map is installed (call `install_partition_map` first).
    NoMap,
    /// A migration is already in progress.
    InProgress,
    /// No migration is in progress.
    NoMigration,
    /// Packets routed under an older epoch are still in flight; retry once
    /// they drain (the switch refuses to stack migrations).
    Busy,
    /// The map can only be installed on an idle switch (no packets in
    /// flight), so the in-flight fence accounting starts complete.
    NotIdle,
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::BadOwner { owner, pipes } => {
                write!(
                    f,
                    "bucket owner {owner} out of range (have {pipes} central pipes)"
                )
            }
            MigrateError::NoMap => write!(f, "no partition map installed"),
            MigrateError::InProgress => write!(f, "a migration is already in progress"),
            MigrateError::NoMigration => write!(f, "no migration in progress"),
            MigrateError::Busy => write!(f, "older-epoch packets still in flight"),
            MigrateError::NotIdle => write!(f, "partition map must be installed while idle"),
        }
    }
}

/// How register state follows a map change (see `AdcpSwitch::begin_migration`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum MigrationStrategy {
    /// Pause–drain–copy–resume: hold moving-shard packets at TM1, wait for
    /// in-flight packets of moving buckets to drain, copy all moving cells,
    /// install the new map, release. Simple, but the pause covers the whole
    /// copy window.
    #[default]
    Drain,
    /// Install the new map immediately and copy shards on first touch: a
    /// small redirect table lists the not-yet-copied buckets, and the first
    /// packet to hit one pays the copy cost for just that bucket.
    /// `finalize_migration` bulk-copies whatever was never touched. The
    /// pause is only the in-flight fence drain.
    Incremental,
}

/// An epoch-versioned assignment of partition buckets to central pipes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PartitionMap {
    /// Version counter; bumped by the switch whenever a new map takes
    /// effect. Packets are stamped with the epoch they were routed under.
    pub epoch: u64,
    scheme: PartitionScheme,
}

impl PartitionMap {
    /// A hash map with `n_buckets` buckets dealt round-robin over
    /// `n_pipes` pipes: `owner(key) = (key % n_buckets) % n_pipes`. When
    /// `n_pipes` divides `n_buckets` this reproduces the legacy
    /// (map-less) TM1 routing `key % n_pipes` exactly.
    pub fn uniform(n_buckets: u32, n_pipes: u32) -> Self {
        assert!(n_buckets > 0 && n_pipes > 0);
        PartitionMap {
            epoch: 0,
            scheme: PartitionScheme::Hash {
                owners: (0..n_buckets).map(|b| b % n_pipes).collect(),
            },
        }
    }

    /// A hash map with an explicit per-bucket owner assignment.
    pub fn from_buckets(owners: Vec<u32>) -> Self {
        assert!(!owners.is_empty());
        PartitionMap {
            epoch: 0,
            scheme: PartitionScheme::Hash { owners },
        }
    }

    /// A range map: bucket `b` covers `[bounds[b-1], bounds[b])`, the last
    /// bucket is unbounded. `bounds` must be strictly increasing and one
    /// shorter than `owners`.
    pub fn from_ranges(bounds: Vec<u64>, owners: Vec<u32>) -> Self {
        assert_eq!(bounds.len() + 1, owners.len());
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        PartitionMap {
            epoch: 0,
            scheme: PartitionScheme::Range { bounds, owners },
        }
    }

    /// The scheme (bucket structure + owners).
    pub fn scheme(&self) -> &PartitionScheme {
        &self.scheme
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u32 {
        match &self.scheme {
            PartitionScheme::Hash { owners } | PartitionScheme::Range { owners, .. } => {
                owners.len() as u32
            }
        }
    }

    /// Bucket a logical partition key folds into.
    pub fn bucket_of(&self, key: u64) -> u32 {
        match &self.scheme {
            PartitionScheme::Hash { owners } => (key % owners.len() as u64) as u32,
            PartitionScheme::Range { bounds, .. } => bounds.partition_point(|&b| b <= key) as u32,
        }
    }

    /// Owning central pipe of a bucket.
    pub fn owner_of_bucket(&self, bucket: u32) -> u32 {
        match &self.scheme {
            PartitionScheme::Hash { owners } | PartitionScheme::Range { owners, .. } => {
                owners[bucket as usize]
            }
        }
    }

    /// Owning central pipe of a logical partition key.
    pub fn owner(&self, key: u64) -> u32 {
        self.owner_of_bucket(self.bucket_of(key))
    }

    /// Largest owner index referenced (for validation against the switch's
    /// central-pipe count).
    pub fn max_owner(&self) -> u32 {
        match &self.scheme {
            PartitionScheme::Hash { owners } | PartitionScheme::Range { owners, .. } => {
                owners.iter().copied().max().unwrap_or(0)
            }
        }
    }

    /// True when both maps share bucket *structure* (same scheme kind, same
    /// bucket count, same range bounds) and differ only in owners. When
    /// structure differs, a migration must treat every bucket as moving.
    pub fn same_structure(&self, other: &PartitionMap) -> bool {
        match (&self.scheme, &other.scheme) {
            (PartitionScheme::Hash { owners: a }, PartitionScheme::Hash { owners: b }) => {
                a.len() == b.len()
            }
            (
                PartitionScheme::Range { bounds: a, .. },
                PartitionScheme::Range { bounds: b, .. },
            ) => a == b,
            _ => false,
        }
    }

    /// Buckets (in *this* map's numbering) whose keys change owner when
    /// `next` takes effect. With matching structure this is the owner
    /// diff; with differing structure it is conservatively every bucket.
    pub fn moved_buckets(&self, next: &PartitionMap) -> Vec<u32> {
        if self.same_structure(next) {
            (0..self.num_buckets())
                .filter(|&b| self.owner_of_bucket(b) != next.owner_of_bucket(b))
                .collect()
        } else {
            (0..self.num_buckets()).collect()
        }
    }

    /// Cells of an `n_cells` register that change owner when `next` takes
    /// effect (cell `c` belongs to partition key `c`). Returns
    /// `(cell, from, to)` triples.
    pub fn moved_cells(&self, next: &PartitionMap, n_cells: usize) -> Vec<(usize, u32, u32)> {
        (0..n_cells)
            .filter_map(|c| {
                let from = self.owner(c as u64);
                let to = next.owner(c as u64);
                (from != to).then_some((c, from, to))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_legacy_modulo_routing() {
        let m = PartitionMap::uniform(64, 4);
        for key in 0..1000u64 {
            assert_eq!(m.owner(key), (key % 4) as u32, "key {key}");
        }
        assert_eq!(m.num_buckets(), 64);
        assert_eq!(m.max_owner(), 3);
    }

    #[test]
    fn range_scheme_buckets_by_bounds() {
        let m = PartitionMap::from_ranges(vec![10, 100], vec![2, 0, 1]);
        assert_eq!(m.bucket_of(0), 0);
        assert_eq!(m.bucket_of(9), 0);
        assert_eq!(m.bucket_of(10), 1);
        assert_eq!(m.bucket_of(99), 1);
        assert_eq!(m.bucket_of(100), 2);
        assert_eq!(m.bucket_of(u64::MAX), 2);
        assert_eq!(m.owner(5), 2);
        assert_eq!(m.owner(50), 0);
        assert_eq!(m.owner(1000), 1);
    }

    #[test]
    fn moved_buckets_same_structure_is_owner_diff() {
        let a = PartitionMap::from_buckets(vec![0, 1, 0, 1]);
        let b = PartitionMap::from_buckets(vec![0, 1, 1, 1]);
        assert_eq!(a.moved_buckets(&b), vec![2]);
        assert_eq!(a.moved_cells(&b, 8), vec![(2, 0, 1), (6, 0, 1)]);
    }

    #[test]
    fn moved_buckets_structural_change_moves_everything() {
        let a = PartitionMap::from_buckets(vec![0, 1]);
        let b = PartitionMap::from_ranges(vec![1], vec![0, 1]);
        assert_eq!(a.moved_buckets(&b), vec![0, 1]);
        // But per-cell the owner may coincide: cell 0 -> pipe 0 and cell 1
        // -> pipe 1 under both, so nothing actually copies.
        assert!(a.moved_cells(&b, 2).is_empty());
        let c = PartitionMap::from_ranges(vec![1], vec![1, 0]);
        assert_eq!(a.moved_cells(&c, 2), vec![(0, 0, 1), (1, 1, 0)]);
    }

    #[test]
    fn scale_down_moves_orphaned_buckets() {
        let a = PartitionMap::uniform(8, 4);
        // Scale to 2 pipes: owners 2 and 3 disappear.
        let b = PartitionMap::from_buckets((0..8u32).map(|i| (i % 4) % 2).collect());
        assert_eq!(b.max_owner(), 1);
        let moved = a.moved_buckets(&b);
        assert_eq!(moved, vec![2, 3, 6, 7]);
    }
}
