//! The event-driven ADCP switch model (the paper's Figure 4).
//!
//! Packet life cycle:
//!
//! ```text
//! inject -> RX port -> 1:m demux -> ingress pipeline (port_rate/m clock)
//!        -> TM1 (application-defined partition + schedule)
//!        -> central pipeline  (the global partitioned area, §3.1)
//!        -> TM2 (classic any-port scheduler, multicast-capable)
//!        -> egress pipeline -> m:1 mux -> TX port -> delivered
//! ```
//!
//! Differences from [`adcp-rmt`]'s model, each lifting one RMT limitation:
//!
//! * **Two traffic managers** create the central pipelines. State placed
//!   there by TM1 (by hash, range, or merge order — the program decides via
//!   `SetCentralPipe`/`SetSortKey`) can still be forwarded to *any* egress
//!   port by TM2, including multicast (fixes Fig. 2).
//! * **Array MAUs**: stages match array fields natively, one lane per
//!   element, against a single shared table copy (fixes Fig. 3); wide
//!   register ops aggregate whole arrays in one traversal (§3.2).
//! * **Port demultiplexing**: each port feeds `m` pipelines, so the
//!   pipeline clock is `port_rate/m` — Table 3's scaling story (§3.3).

use crate::partition::{MigrateError, MigrationStrategy, PartitionMap};
use adcp_lang::phv::Phv;
use adcp_lang::target::TargetModel;
use adcp_lang::{
    compile, deparse_into, ActionOp, CompileError, CompileOptions, Entry, Placement, Program,
    RegId, Region, RegionState, RegisterFile, TableError,
};
use adcp_sim::event::EventQueue;
use adcp_sim::int::{
    IntFlowCell, IntFlowTable, IntKnob, IntStack, IntStamp, Postcard, POSTCARDS_CAP,
};
use adcp_sim::metrics::{CounterId, GaugeId, HistId, MetricsRegistry, SeriesId};
use adcp_sim::packet::{EgressSpec, FrameBuf, Packet, PacketStore, PortId};
use adcp_sim::port::{RxPort, TxPort};
use adcp_sim::queue::BufferPool;
use adcp_sim::sched::ScheduledQueues;
use adcp_sim::stats::{LatencyHist, Meter};
use adcp_sim::time::{Duration, SimTime};
use adcp_sim::trace::{CtrlEvent, DropReason, HopCtx, JourneyTracer, Site};
use std::sync::Arc;

/// Retained points per queue-depth/buffer-occupancy time series.
const SERIES_CAP: usize = 512;

/// Pipe cycles charged per register cell copied during a state migration.
/// Both strategies pay it — drain as one bulk window at commit, incremental
/// spread over first touches — so the exp_migrate comparison is apples to
/// apples.
const CELL_COPY_CYCLES: u64 = 8;

/// Slots in the central-register-resident per-flow INT aggregation table
/// (flows hash onto slots; collisions merge, as real register state would).
const INT_FLOW_CELLS: usize = 1024;

/// Pre-registered handles into the per-stage [`MetricsRegistry`]. Handles
/// are plain indices, so per-event recording is array math — no string
/// lookups on the hot path.
#[derive(Clone, Copy)]
struct MetricHandles {
    rx_pkts: CounterId,
    mac_fcs_drops: CounterId,
    parse_errors: CounterId,
    parse_span: HistId,
    ingress_span: HistId,
    tm1_drops: CounterId,
    tm1_queue_drops: CounterId,
    tm1_residency: HistId,
    tm1_queue_depth: SeriesId,
    tm1_buffer: SeriesId,
    tm1_buffer_gauge: GaugeId,
    central_span: HistId,
    tm2_drops: CounterId,
    tm2_queue_drops: CounterId,
    tm2_mcast_copies: CounterId,
    tm2_residency: HistId,
    tm2_queue_depth: SeriesId,
    tm2_buffer: SeriesId,
    tm2_buffer_gauge: GaugeId,
    egress_span: HistId,
    deparse_allocs: CounterId,
    mat_lookups: CounterId,
    mat_hits: CounterId,
    drops_filtered: CounterId,
    drops_no_decision: CounterId,
    drops_bad_port: CounterId,
    tx_pkts: CounterId,
    tx_latency: HistId,
    ctrl_migrations: CounterId,
    ctrl_moved_keys: CounterId,
    ctrl_paused_ns: CounterId,
    ctrl_redirected_pkts: CounterId,
    ctrl_held_pkts: CounterId,
    ctrl_misroutes: CounterId,
    ctrl_epoch: GaugeId,
    int_stamps: CounterId,
    int_postcards: CounterId,
    int_truncated: CounterId,
    int_postcards_dropped: CounterId,
    int_path_changes: CounterId,
    int_flows: GaugeId,
    /// Per-region pipeline occupancy (total busy cycles, busiest pipe),
    /// in ingress/central/egress order. Pre-registered so the end-of-run
    /// mirror is handle writes, not name lookups.
    busy: [(CounterId, GaugeId); 3],
}

fn register_metrics(m: &mut MetricsRegistry) -> MetricHandles {
    let rx = m.scope("rx");
    let mac = m.scope("mac");
    let parser = m.scope("parser");
    let ingress = m.scope("ingress");
    let tm1 = m.scope("tm1");
    let central = m.scope("central");
    let tm2 = m.scope("tm2");
    let egress = m.scope("egress");
    let deparser = m.scope("deparser");
    let mat = m.scope("mat");
    let drops = m.scope("drops");
    let tx = m.scope("tx");
    let ctrl = m.scope("ctrl");
    let int = m.scope("int");
    MetricHandles {
        rx_pkts: m.counter(rx, "packets"),
        mac_fcs_drops: m.counter(mac, "fcs_drops"),
        parse_errors: m.counter(parser, "errors"),
        parse_span: m.hist(parser, "span_ps"),
        ingress_span: m.hist(ingress, "span_ps"),
        tm1_drops: m.counter(tm1, "buffer_drops"),
        tm1_queue_drops: m.counter(tm1, "queue_drops"),
        tm1_residency: m.hist(tm1, "residency_ps"),
        tm1_queue_depth: m.series(tm1, "queue_pkts", SERIES_CAP),
        tm1_buffer: m.series(tm1, "buffer_cells", SERIES_CAP),
        tm1_buffer_gauge: m.gauge(tm1, "buffer_cells"),
        central_span: m.hist(central, "span_ps"),
        tm2_drops: m.counter(tm2, "buffer_drops"),
        tm2_queue_drops: m.counter(tm2, "queue_drops"),
        tm2_mcast_copies: m.counter(tm2, "mcast_copies"),
        tm2_residency: m.hist(tm2, "residency_ps"),
        tm2_queue_depth: m.series(tm2, "queue_pkts", SERIES_CAP),
        tm2_buffer: m.series(tm2, "buffer_cells", SERIES_CAP),
        tm2_buffer_gauge: m.gauge(tm2, "buffer_cells"),
        egress_span: m.hist(egress, "span_ps"),
        deparse_allocs: m.counter(deparser, "allocs"),
        mat_lookups: m.counter(mat, "lookups"),
        mat_hits: m.counter(mat, "hits"),
        drops_filtered: m.counter(drops, "filtered"),
        drops_no_decision: m.counter(drops, "no_decision"),
        drops_bad_port: m.counter(drops, "bad_port"),
        tx_pkts: m.counter(tx, "packets"),
        tx_latency: m.hist(tx, "latency_ps"),
        ctrl_migrations: m.counter(ctrl, "migrations"),
        ctrl_moved_keys: m.counter(ctrl, "moved_keys"),
        ctrl_paused_ns: m.counter(ctrl, "paused_ns"),
        ctrl_redirected_pkts: m.counter(ctrl, "redirected_pkts"),
        ctrl_held_pkts: m.counter(ctrl, "held_pkts"),
        ctrl_misroutes: m.counter(ctrl, "misroutes"),
        ctrl_epoch: m.gauge(ctrl, "epoch"),
        int_stamps: m.counter(int, "stamps"),
        int_postcards: m.counter(int, "postcards"),
        int_truncated: m.counter(int, "stack_truncated"),
        int_postcards_dropped: m.counter(int, "postcards_dropped"),
        int_path_changes: m.counter(int, "path_changes"),
        int_flows: m.gauge(int, "active_flow_cells"),
        busy: [
            (
                m.counter(ingress, "busy_cycles"),
                m.gauge(ingress, "busy_cycles_max_pipe"),
            ),
            (
                m.counter(central, "busy_cycles"),
                m.gauge(central, "busy_cycles_max_pipe"),
            ),
            (
                m.counter(egress, "busy_cycles"),
                m.gauge(egress, "busy_cycles_max_pipe"),
            ),
        ],
    }
}

/// Registers referenced by central-region table actions, with cell counts:
/// the state the global partitioned area shards, and therefore the state a
/// migration must move.
fn central_registers(program: &Program) -> Vec<(RegId, usize)> {
    fn collect(ops: &[ActionOp], out: &mut Vec<RegId>) {
        for op in ops {
            match op {
                ActionOp::RegRead { reg, .. }
                | ActionOp::RegRmw { reg, .. }
                | ActionOp::RegArray { reg, .. } => out.push(*reg),
                ActionOp::IfEq { then, .. } => collect(then, out),
                _ => {}
            }
        }
    }
    let mut regs = Vec::new();
    for t in program
        .tables
        .iter()
        .filter(|t| t.region == Region::Central)
    {
        for a in &t.actions {
            collect(&a.ops, &mut regs);
        }
    }
    regs.sort_unstable();
    regs.dedup();
    regs.into_iter()
        .map(|r| (r, program.registers[r.0 as usize].entries as usize))
        .collect()
}

/// How the RX side spreads a port's packets over its `m` pipelines (§3.3:
/// "an application must define how to separate the packet contents").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemuxPolicy {
    /// Alternate pipelines packet by packet (maximum load spread).
    #[default]
    RoundRobin,
    /// Pin each flow to one pipeline (preserves per-flow order end-to-end).
    FlowHash,
}

/// Tuning knobs for an [`AdcpSwitch`].
#[derive(Debug, Clone)]
pub struct AdcpConfig {
    /// Cells in each TM's shared buffer.
    pub tm_cells: u64,
    /// Bytes per buffer cell.
    pub cell_bytes: u32,
    /// Per-queue depth in packets (both TMs).
    pub queue_depth: usize,
    /// RX demultiplexing policy.
    pub demux: DemuxPolicy,
    /// Retain a packet-walk trace.
    pub trace: bool,
    /// Stamp in-band telemetry ([`adcp_sim::int`]) onto transiting
    /// packets. Like `trace`, this is the config default — the `ADCP_INT`
    /// environment variable overrides it (`off` disables, `on` enables at
    /// rate 1, a number `N` enables with 1-in-`N` sampling).
    pub int: bool,
    /// Device id written into every INT stamp this switch produces. A
    /// standalone switch is device 0; a fabric assigns leaf `l` = `l` and
    /// spine `s` = `n_leaves + s`.
    pub device: u16,
    /// Per-port speed overrides (port, speed) — models hosts with slower
    /// NICs than the switch's native port rate (the Table 1 group-
    /// communication scenario).
    pub port_speeds: Vec<(u16, adcp_sim::port::LinkSpeed)>,
    /// With a `MergeOrder` TM1: how long a central pipeline may stall
    /// waiting for every un-ended input queue to present a head (the
    /// exact-merge precondition) before proceeding with the streaming
    /// approximation. Applications that want exact merges mark unused
    /// inputs ended and terminate streams with end-of-stream records.
    pub merge_patience: Duration,
    /// Worker threads for central-pipeline execution (§3.1: central pipes
    /// are architecturally independent between TM1 and TM2). `1` keeps the
    /// fully serial event loop; `>1` runs the compute-heavy part of
    /// same-timestamp central pulls (parse + MAU region) on scoped worker
    /// threads, with all observable effects (event pushes, counters,
    /// metrics, drops) replayed on the coordinator in the exact serial
    /// order — output is byte-identical for any worker count. The serial
    /// path is used automatically while a migration is in flight or the
    /// journey tracer is retaining hops.
    pub central_workers: usize,
}

impl Default for AdcpConfig {
    fn default() -> Self {
        AdcpConfig {
            tm_cells: 65_536,
            cell_bytes: 80,
            queue_depth: 512,
            demux: DemuxPolicy::default(),
            trace: false,
            int: false,
            device: 0,
            port_speeds: Vec::new(),
            merge_patience: Duration::from_us(2),
            central_workers: 1,
        }
    }
}

/// Drop/flow accounting; see [`AdcpSwitch::check_conservation`].
#[derive(Debug, Clone, Default)]
pub struct AdcpCounters {
    /// Packets injected.
    pub injected: u64,
    /// Extra copies created by TM2 multicast.
    pub mcast_copies: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Parse failures (any pipeline).
    pub parse_errors: u64,
    /// Sealed frames whose check sequence failed on injection (corrupted
    /// on the wire); discarded before touching any table or register.
    pub fcs_drops: u64,
    /// Dropped by a program `Drop` action.
    pub filtered: u64,
    /// Reached TM2 with no forwarding decision.
    pub no_decision: u64,
    /// Forwarding decision named a nonexistent port.
    pub bad_port: u64,
    /// TM1 buffer exhaustion.
    pub tm1_drops: u64,
    /// TM1 per-queue tail drops.
    pub tm1_queue_drops: u64,
    /// TM2 buffer exhaustion.
    pub tm2_drops: u64,
    /// TM2 per-queue tail drops.
    pub tm2_queue_drops: u64,
    /// Match-table key lookups executed, all regions and lanes (refreshed
    /// at quiescence from the per-table counters).
    pub mat_lookups: u64,
    /// Match-table lookups that hit an installed entry.
    pub mat_hits: u64,
    /// Frame buffers rebuilt by the deparser — the hot path's remaining
    /// per-region-exit allocation (delivery and multicast copies share
    /// payload buffers instead of allocating).
    pub deparse_allocs: u64,
}

impl AdcpCounters {
    /// Fraction of match-table lookups that hit (0 when none ran).
    pub fn mat_hit_rate(&self) -> f64 {
        if self.mat_lookups == 0 {
            0.0
        } else {
            self.mat_hits as f64 / self.mat_lookups as f64
        }
    }

    /// Sum of all drop classes.
    pub fn total_drops(&self) -> u64 {
        self.parse_errors
            + self.fcs_drops
            + self.filtered
            + self.no_decision
            + self.bad_port
            + self.tm1_drops
            + self.tm1_queue_drops
            + self.tm2_drops
            + self.tm2_queue_drops
    }
}

/// A packet that left the switch.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// TX port it left on.
    pub port: PortId,
    /// Time its last bit left.
    pub time: SimTime,
    /// Final frame contents (moved from the in-switch packet — taking
    /// delivery does not copy the payload).
    pub data: FrameBuf,
    /// Final metadata.
    pub meta: adcp_sim::packet::PacketMeta,
}

struct IngressPipe {
    next_slot: SimTime,
    busy_cycles: u64,
    state: RegionState,
}

struct CentralPipe {
    next_slot: SimTime,
    busy_cycles: u64,
    /// MergeOrder: when the current wait-for-merge-ready began.
    merge_wait_since: Option<SimTime>,
    state: RegionState,
    /// One queue per ingress pipeline feeding this central pipe, so the
    /// order-preserving merge has per-input streams to merge (§3.1).
    queues: ScheduledQueues,
    pull_scheduled: bool,
}

struct EgressPipe {
    next_slot: SimTime,
    busy_cycles: u64,
    state: RegionState,
    queues: ScheduledQueues,
    pull_scheduled: bool,
}

/// Outcome of the serial head of a central pull (see
/// [`AdcpSwitch::pull_central_prologue`]).
// `Work(Packet)` lives only across one central pull; boxing it would cost
// a heap round-trip per central event on the hot path.
#[allow(clippy::large_enum_variant)]
enum CentralStage {
    /// Nothing to do (queue empty).
    Idle,
    /// Re-arm the pull at this time — deferred so the sharded path can
    /// replay every event push in serial order during the epilogue.
    Reschedule(SimTime),
    /// A packet dequeued and accounted, ready for parse + region compute.
    Work(Packet),
}

/// Result of the shardable compute stage of a central pull: the parsed and
/// region-processed PHV plus everything the serial epilogue needs to
/// deparse, trace, and schedule.
struct CentralRun {
    phv: Phv,
    extracted: Vec<adcp_lang::HeaderId>,
    consumed: usize,
    depth: u32,
    entry: SimTime,
}

/// The compute-heavy middle of a central pull: parse, PHV intrinsics
/// setup, pipeline-slot bump, and the central MAU region. Touches only the
/// one pipe's state (plus shared read-only program/layout), so a sharded
/// batch can run it for distinct pipes on worker threads; the serial path
/// calls it inline with the switch's recycled scratch PHV.
fn central_compute(
    program: &Program,
    layout: &adcp_lang::PhvLayout,
    period: Duration,
    now: SimTime,
    pipe: &mut CentralPipe,
    pkt: &mut Packet,
    scratch: (Phv, Vec<adcp_lang::HeaderId>),
) -> Result<CentralRun, ()> {
    let (sphv, sext) = scratch;
    let Ok(out) = program
        .parser
        .parse_reusing(&program.headers, layout, &pkt.data, sphv, sext)
    else {
        return Err(());
    };
    let mut phv = out.phv;
    phv.intr.ingress_port = pkt.meta.ingress_port;
    // Move (not clone) the forwarding decision into the PHV; writeback
    // moves it back.
    phv.intr.egress = std::mem::take(&mut pkt.meta.egress);
    let entry = now.max(pipe.next_slot);
    pipe.next_slot = entry + period;
    pipe.busy_cycles += 1;
    pipe.state.run(program, layout, &mut phv);
    Ok(CentralRun {
        phv,
        extracted: out.extracted,
        consumed: out.consumed,
        depth: out.depth,
        entry,
    })
}

enum Ev {
    Inject {
        port: u16,
        pkt: Packet,
    },
    IngressEnter {
        pipe: usize,
        pkt: Packet,
    },
    IngressOut {
        pipe: usize,
        pkt: Packet,
    },
    PullCentral {
        cpipe: usize,
    },
    CentralOut {
        cpipe: usize,
        pkt: Packet,
    },
    PullEgress {
        epipe: usize,
    },
    EgressOut {
        epipe: usize,
        pkt: Packet,
    },
    /// Drain-strategy commit point: the in-flight fence has drained and the
    /// bulk copy window has elapsed — move state, install the next map,
    /// release held packets.
    MigrateCommit,
}

/// Control-plane migration totals, mirrored into the `ctrl` metrics scope.
#[derive(Debug, Clone, Default)]
pub struct MigrationStats {
    /// Completed migrations.
    pub migrations: u64,
    /// Register cells moved between central pipes.
    pub moved_keys: u64,
    /// Nanoseconds during which moving shards were unavailable (packets
    /// held at TM1): fence-drain plus copy window for drain, fence-drain
    /// only for incremental.
    pub paused_ns: u64,
    /// Incremental first touches: packets that hit a not-yet-copied bucket
    /// and triggered its copy.
    pub redirected_pkts: u64,
    /// Packets held at TM1 during migrations.
    pub held_pkts: u64,
    /// Packets dequeued by a central pipe that the epoch-consistent map
    /// says should not own them. Always zero unless the protocol is broken;
    /// exported so tests and conformance can assert on it.
    pub misroutes: u64,
}

/// One in-progress migration (see `AdcpSwitch::begin_migration`).
struct MigrationState {
    strategy: MigrationStrategy,
    /// Map in force when the migration began (the routing map until a
    /// drain commits; the stamp-decoder for old-epoch packets afterwards).
    prev: PartitionMap,
    /// Drain only: the map to install at commit.
    next_pending: Option<PartitionMap>,
    begun: SimTime,
    /// Moving buckets in `prev` numbering, sorted — the in-flight fence.
    fence_prev: Vec<u32>,
    /// Old-epoch packets of fence buckets still queued at their old owner.
    fence_left: u64,
    /// Cells still to move: `(reg, cell, from_pipe, to_pipe)`.
    moving_cells: Vec<(RegId, usize, u32, u32)>,
    /// Incremental only: next-map buckets whose cells are not yet copied
    /// (the redirect table), sorted.
    dirty: Vec<u32>,
    /// Packets held at TM1 (with their ingress pipe) until the shard is
    /// consistent again. Released in arrival order.
    held: Vec<(usize, Packet)>,
    /// Incremental only: the fence drained during the current central
    /// pull's prologue — release `held` once that pull's register updates
    /// have been applied (`finish_central`), never before. Releasing in
    /// the prologue would let the first released packet copy-on-first-
    /// touch the moving cells *under* the final fence packet's pending
    /// RMW, stranding its increment on the old owner.
    release_at_exec: bool,
    /// Incremental only: when the current hold window started.
    pause_started: Option<SimTime>,
}

/// Partition-map routing state (present once `install_partition_map` ran).
struct PartitionRuntime {
    map: PartitionMap,
    /// TM1-enqueued, not yet centrally processed, per current-map bucket
    /// (current epoch stamps only).
    inflight: Vec<u64>,
    /// Same, for packets stamped with an older epoch (bucket numbering may
    /// no longer apply, so they are counted in aggregate).
    inflight_old: u64,
    /// Packets routed per bucket since this map took effect (the load
    /// signal a controller rebalances on).
    bucket_pkts: Vec<u64>,
    mig: Option<MigrationState>,
}

/// The Application-Defined Coflow Processor.
pub struct AdcpSwitch {
    target: TargetModel,
    /// Shared, immutable after build: pipelines borrow it per event instead
    /// of cloning (the per-event `Program` clone dominated the old hot
    /// path).
    program: Arc<Program>,
    layout: adcp_lang::PhvLayout,
    /// Compilation result the switch was built from.
    pub placement: Placement,
    cfg: AdcpConfig,
    rx: Vec<RxPort>,
    tx: Vec<TxPort>,
    ingress: Vec<IngressPipe>,
    central: Vec<CentralPipe>,
    egress: Vec<EgressPipe>,
    /// One shared copy of the ingress-region match tables. Every ingress
    /// pipeline runs against it (tables are installed identically into all
    /// pipes, so duplicating the entries per pipe only multiplied install
    /// cost and memory); register state stays per-pipe in `IngressPipe`.
    ing_tables: RegionState,
    /// Shared egress-region match tables (same reasoning).
    eg_tables: RegionState,
    pool1: BufferPool,
    pool2: BufferPool,
    events: EventQueue<Ev>,
    /// Reusable same-timestamp dispatch batch for `run_until_idle`.
    batch: Vec<Ev>,
    /// Recycling arena for deparse frame buffers.
    store: PacketStore,
    /// Recycled parse scratch (PHV + extraction list): parse-to-writeback
    /// is straight-line within one handler, so a single slot suffices.
    scratch: Option<(Phv, Vec<adcp_lang::HeaderId>)>,
    period: Duration,
    demux_rr: Vec<u16>,
    /// Drop/flow accounting.
    pub counters: AdcpCounters,
    /// Meter over delivered packets (throughput, goodput, keys/s).
    pub out_meter: Meter,
    /// End-to-end latency (created -> last bit out).
    pub latency: LatencyHist,
    /// Packet-journey flight recorder (sampled hop spans, always-on drop
    /// forensics, control-plane instants).
    pub tracer: JourneyTracer,
    /// In-band telemetry knob (resolved from `ADCP_INT` / `cfg.int`).
    int: IntKnob,
    /// Postcards emitted at TX for sampled packets, awaiting a collector
    /// ([`AdcpSwitch::take_postcards`]).
    postcards: Vec<Postcard>,
    /// Central-register-resident per-flow INT aggregation (§3.1: the
    /// stateful summary the central pipes hold in register state).
    int_flows: IntFlowTable,
    /// Stamps successfully written into packet header regions.
    int_stamps: u64,
    /// Postcards emitted at TX.
    int_postcards: u64,
    /// Stamps that found the header region full.
    int_truncated: u64,
    /// Postcards shed because the sink FIFO was full ([`POSTCARDS_CAP`]).
    int_postcards_dropped: u64,
    /// Sabotage hook: report TM queue depths one higher than observed.
    int_lie_queue_depth: bool,
    /// Per-stage metrics registry (spans, queue depths, drop classes).
    metrics: MetricsRegistry,
    mh: MetricHandles,
    delivered: Vec<Delivered>,
    in_flight: u64,
    last_delivery: SimTime,
    /// Partition-map routing + migration machinery; `None` keeps the
    /// legacy modulo routing (and zero per-packet overhead).
    part: Option<PartitionRuntime>,
    /// Migration totals, mirrored into the `ctrl` metrics scope.
    mig_stats: MigrationStats,
    /// Registers referenced by central-region tables with their cell
    /// counts — the state a migration moves.
    central_regs: Vec<(RegId, usize)>,
}

impl AdcpSwitch {
    /// Build a switch for `program` on `target` (must be an ADCP target).
    pub fn new(
        program: Program,
        target: TargetModel,
        opts: CompileOptions,
        cfg: AdcpConfig,
    ) -> Result<Self, CompileError> {
        assert!(
            target.has_central() || !program.uses_central(),
            "ADCP targets should declare central pipelines"
        );
        let placement = compile(&program, &target, opts)?;
        let layout = program.layout();
        let n_ing = target.num_pipes() as usize;
        let n_central = target.central_pipes.max(1) as usize;
        let speed_of = |p: u16| {
            cfg.port_speeds
                .iter()
                .find(|(port, _)| *port == p)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| target.port_speed())
        };
        let rx = (0..target.ports)
            .map(|p| RxPort::new(PortId(p), speed_of(p)))
            .collect();
        let tx = (0..target.ports)
            .map(|p| TxPort::new(PortId(p), speed_of(p)))
            .collect();
        let ingress = (0..n_ing)
            .map(|_| IngressPipe {
                next_slot: SimTime::ZERO,
                busy_cycles: 0,
                state: RegionState::new(&program, Region::Ingress),
            })
            .collect();
        let tm1 = program.tm1.policy;
        let central = (0..n_central)
            .map(|_| CentralPipe {
                next_slot: SimTime::ZERO,
                busy_cycles: 0,
                merge_wait_since: None,
                state: RegionState::new(&program, Region::Central),
                queues: ScheduledQueues::new(n_ing, cfg.queue_depth, tm1),
                pull_scheduled: false,
            })
            .collect();
        let tm2 = program.tm2.policy;
        let egress = (0..n_ing)
            .map(|_| EgressPipe {
                next_slot: SimTime::ZERO,
                busy_cycles: 0,
                state: RegionState::new(&program, Region::Egress),
                queues: ScheduledQueues::new(1, cfg.queue_depth, tm2),
                pull_scheduled: false,
            })
            .collect();
        let pool1 = BufferPool::new(cfg.tm_cells, cfg.cell_bytes);
        let pool2 = BufferPool::new(cfg.tm_cells, cfg.cell_bytes);
        let period = target.pipe_freq().period();
        let tracer = JourneyTracer::from_env(cfg.trace, 65_536);
        let int = IntKnob::from_env(cfg.int);
        let demux_rr = vec![0; target.ports as usize];
        let mut metrics = MetricsRegistry::from_env();
        let mh = register_metrics(&mut metrics);
        let central_regs = central_registers(&program);
        let ing_tables = RegionState::new(&program, Region::Ingress);
        let eg_tables = RegionState::new(&program, Region::Egress);
        Ok(AdcpSwitch {
            target,
            program: Arc::new(program),
            layout,
            placement,
            cfg,
            rx,
            tx,
            ingress,
            central,
            egress,
            ing_tables,
            eg_tables,
            pool1,
            pool2,
            events: EventQueue::new(),
            batch: Vec::new(),
            store: PacketStore::new(),
            scratch: None,
            period,
            demux_rr,
            counters: AdcpCounters::default(),
            out_meter: Meter::default(),
            latency: LatencyHist::new(),
            tracer,
            int,
            postcards: Vec::new(),
            int_flows: IntFlowTable::new(INT_FLOW_CELLS),
            int_stamps: 0,
            int_postcards: 0,
            int_truncated: 0,
            int_postcards_dropped: 0,
            int_lie_queue_depth: false,
            metrics,
            mh,
            delivered: Vec::new(),
            in_flight: 0,
            last_delivery: SimTime::ZERO,
            part: None,
            mig_stats: MigrationStats::default(),
            central_regs,
        })
    }

    /// The target this switch models.
    pub fn target(&self) -> &TargetModel {
        &self.target
    }

    /// The program it runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of central pipelines.
    pub fn num_central(&self) -> usize {
        self.central.len()
    }

    /// The `m` ingress pipelines fed by a port (1:m demux, §3.3).
    pub fn pipes_of_port(&self, port: PortId) -> std::ops::Range<usize> {
        let m = self.target.demux_factor as usize;
        let base = port.0 as usize * m;
        base..base + m
    }

    // ---------------- control plane ----------------

    /// Install a table entry into every pipeline hosting the table.
    pub fn install_all(&mut self, table: &str, entry: Entry) -> Result<(), TableError> {
        let AdcpSwitch {
            program,
            ing_tables,
            central,
            eg_tables,
            ..
        } = self;
        let gi = program
            .tables
            .iter()
            .position(|t| t.name == table)
            .unwrap_or_else(|| panic!("no table named {table}"));
        match program.tables[gi].region {
            // Ingress/egress tables are installed identically everywhere, so
            // one shared copy serves every pipe — a control-plane install is
            // O(1) in the pipe count instead of cloning the entry per pipe.
            Region::Ingress => ing_tables.install(program, gi, entry)?,
            Region::Central => {
                // Central tables stay per-pipe: §3.1 partitions this state.
                for p in central.iter_mut() {
                    p.state.install(program, gi, entry.clone())?;
                }
            }
            Region::Egress => eg_tables.install(program, gi, entry)?,
        }
        Ok(())
    }

    /// Install an entry into a single central pipeline (the partitioned
    /// placement of §3.1: each central pipe owns a shard of the state).
    /// Out-of-range pipe indices return [`TableError::NoSuchPipe`].
    pub fn install_central_at(
        &mut self,
        cpipe: usize,
        table: &str,
        entry: Entry,
    ) -> Result<(), TableError> {
        let AdcpSwitch {
            program, central, ..
        } = self;
        let gi = program
            .tables
            .iter()
            .position(|t| t.name == table)
            .unwrap_or_else(|| panic!("no table named {table}"));
        let have = central.len();
        let Some(pipe) = central.get_mut(cpipe) else {
            return Err(TableError::NoSuchPipe { pipe: cpipe, have });
        };
        pipe.state.install(program, gi, entry)
    }

    /// Read a central pipeline's register file. `None` when `cpipe` is out
    /// of range.
    pub fn central_register(&self, cpipe: usize, reg: RegId) -> Option<&RegisterFile> {
        self.central.get(cpipe).map(|p| p.state.register(reg))
    }

    /// Mutable access to a central register file (epoch resets). `None`
    /// when `cpipe` is out of range.
    pub fn central_register_mut(&mut self, cpipe: usize, reg: RegId) -> Option<&mut RegisterFile> {
        self.central
            .get_mut(cpipe)
            .map(|p| p.state.register_mut(reg))
    }

    // ---------------- partition control plane ----------------

    /// Install a partition map, switching TM1 from the legacy
    /// `key % n_central` fold to epoch-versioned bucket routing. Must be
    /// called while the switch is idle so the in-flight fence accounting
    /// starts complete; [`crate::partition::PartitionMap::uniform`] with a
    /// bucket count divisible by `num_central` reproduces the legacy
    /// routing exactly. The installed map starts at epoch 0.
    pub fn install_partition_map(&mut self, mut map: PartitionMap) -> Result<(), MigrateError> {
        let pipes = self.central.len() as u32;
        if map.max_owner() >= pipes {
            return Err(MigrateError::BadOwner {
                owner: map.max_owner(),
                pipes,
            });
        }
        if self.in_flight != 0 {
            return Err(MigrateError::NotIdle);
        }
        map.epoch = 0;
        let b = map.num_buckets() as usize;
        self.part = Some(PartitionRuntime {
            map,
            inflight: vec![0; b],
            inflight_old: 0,
            bucket_pkts: vec![0; b],
            mig: None,
        });
        Ok(())
    }

    /// The installed partition map, if any.
    pub fn partition_map(&self) -> Option<&PartitionMap> {
        self.part.as_ref().map(|rt| &rt.map)
    }

    /// Epoch of the map in force (0 when no map is installed).
    pub fn partition_epoch(&self) -> u64 {
        self.part.as_ref().map_or(0, |rt| rt.map.epoch)
    }

    /// Packets routed per bucket since the current map took effect — the
    /// per-shard load signal a controller rebalances on.
    pub fn bucket_loads(&self) -> Option<&[u64]> {
        self.part.as_ref().map(|rt| rt.bucket_pkts.as_slice())
    }

    /// True while a migration is in progress (drain awaiting commit, or
    /// incremental awaiting `finalize_migration`).
    pub fn migration_active(&self) -> bool {
        self.part.as_ref().is_some_and(|rt| rt.mig.is_some())
    }

    /// Set the central-pipeline worker count (see
    /// [`AdcpConfig::central_workers`]). Output is byte-identical for any
    /// value; `>1` parallelizes the central compute stage. Safe to call at
    /// runtime between events — the serving daemon retunes it whenever the
    /// autoscaler grows or shrinks the active pipe set, so the execution
    /// engine's parallelism follows the data plane's.
    pub fn set_central_workers(&mut self, n: usize) {
        self.cfg.central_workers = n.max(1);
    }

    /// Current central-pipeline worker count.
    pub fn central_workers(&self) -> usize {
        self.cfg.central_workers
    }

    /// Distinct central pipes owning at least one partition bucket under
    /// the map in force — the autoscaler's "active" pipe count. Falls back
    /// to the physical pipe count when no map is installed (every pipe is
    /// addressable then).
    pub fn active_central_pipes(&self) -> usize {
        match self.partition_map() {
            Some(map) => {
                let mut owners: Vec<u32> = (0..map.num_buckets())
                    .map(|b| map.owner_of_bucket(b))
                    .collect();
                owners.sort_unstable();
                owners.dedup();
                owners.len()
            }
            None => self.num_central(),
        }
    }

    /// Migration totals (also mirrored into the `ctrl` metrics scope).
    pub fn migration_stats(&self) -> &MigrationStats {
        &self.mig_stats
    }

    /// Begin migrating to `next` under live traffic.
    ///
    /// **Drain**: packets for moving buckets are held at TM1; once every
    /// already-queued packet of those buckets has been processed by its old
    /// owner (the in-flight *fence*) and the bulk copy window has elapsed,
    /// state moves, the new map (epoch + 1) takes effect, and held packets
    /// are released in arrival order. Completion is event-driven — just
    /// keep running the switch.
    ///
    /// **Incremental**: the new map takes effect immediately; packets for
    /// not-yet-copied buckets are held only while the fence drains, after
    /// which the first packet to touch a bucket pays that bucket's copy
    /// cost (copy-on-first-touch against the redirect table). Call
    /// [`AdcpSwitch::finalize_migration`] to bulk-copy whatever was never
    /// touched.
    pub fn begin_migration(
        &mut self,
        mut next: PartitionMap,
        strategy: MigrationStrategy,
    ) -> Result<(), MigrateError> {
        let pipes = self.central.len() as u32;
        if next.max_owner() >= pipes {
            return Err(MigrateError::BadOwner {
                owner: next.max_owner(),
                pipes,
            });
        }
        let now = self.events.now();
        let central_regs = self.central_regs.clone();
        let rt = self.part.as_mut().ok_or(MigrateError::NoMap)?;
        if rt.mig.is_some() {
            return Err(MigrateError::InProgress);
        }
        if rt.inflight_old > 0 {
            return Err(MigrateError::Busy);
        }
        next.epoch = rt.map.epoch + 1;
        let new_epoch = next.epoch;
        let fence_prev = rt.map.moved_buckets(&next);
        let fence_left: u64 = fence_prev.iter().map(|&b| rt.inflight[b as usize]).sum();
        let moving_cells: Vec<(RegId, usize, u32, u32)> = central_regs
            .iter()
            .flat_map(|&(r, n)| {
                rt.map
                    .moved_cells(&next, n)
                    .into_iter()
                    .map(move |(c, from, to)| (r, c, from, to))
            })
            .collect();
        let n_moving = moving_cells.len();
        match strategy {
            MigrationStrategy::Drain => {
                rt.mig = Some(MigrationState {
                    strategy,
                    prev: rt.map.clone(),
                    next_pending: Some(next),
                    begun: now,
                    fence_prev,
                    fence_left,
                    moving_cells,
                    dirty: Vec::new(),
                    held: Vec::new(),
                    release_at_exec: false,
                    pause_started: None,
                });
                if fence_left == 0 {
                    let at = now + self.copy_cost(n_moving);
                    self.events.push(at, Ev::MigrateCommit);
                }
            }
            MigrationStrategy::Incremental => {
                let mut dirty: Vec<u32> = moving_cells
                    .iter()
                    .map(|&(_, c, _, _)| next.bucket_of(c as u64))
                    .collect();
                dirty.sort_unstable();
                dirty.dedup();
                let b = next.num_buckets() as usize;
                let prev = std::mem::replace(&mut rt.map, next);
                rt.inflight_old += rt.inflight.iter().sum::<u64>();
                rt.inflight = vec![0; b];
                rt.bucket_pkts = vec![0; b];
                rt.mig = Some(MigrationState {
                    strategy,
                    prev,
                    next_pending: None,
                    begun: now,
                    fence_prev,
                    fence_left,
                    moving_cells,
                    dirty,
                    held: Vec::new(),
                    release_at_exec: false,
                    pause_started: (fence_left > 0).then_some(now),
                });
            }
        }
        // Control-plane instants on the `ctrl` track. For the incremental
        // strategy the new map (and its epoch) takes effect immediately;
        // drain bumps the epoch only at commit time.
        let label = match strategy {
            MigrationStrategy::Drain => "drain",
            MigrationStrategy::Incremental => "incremental",
        };
        self.tracer.record_ctrl(
            now,
            CtrlEvent::MigrationBegin {
                strategy: label,
                epoch: new_epoch,
            },
        );
        if strategy == MigrationStrategy::Incremental {
            self.tracer
                .record_ctrl(now, CtrlEvent::EpochBump { epoch: new_epoch });
        }
        Ok(())
    }

    /// Complete an incremental migration by bulk-copying every bucket that
    /// was never touched. Errors: [`MigrateError::Busy`] while the fence is
    /// still draining (keep running), [`MigrateError::InProgress`] for a
    /// drain migration (its commit is event-driven), and
    /// [`MigrateError::NoMigration`] when nothing is in progress.
    pub fn finalize_migration(&mut self) -> Result<(), MigrateError> {
        let rt = self.part.as_mut().ok_or(MigrateError::NoMap)?;
        let Some(mig) = &rt.mig else {
            return Err(MigrateError::NoMigration);
        };
        if mig.strategy == MigrationStrategy::Drain {
            return Err(MigrateError::InProgress);
        }
        if mig.fence_left > 0 {
            return Err(MigrateError::Busy);
        }
        let mut mig = rt.mig.take().expect("checked above");
        let moves = std::mem::take(&mut mig.moving_cells);
        self.apply_moves(&moves);
        self.mig_stats.moved_keys += moves.len() as u64;
        self.mig_stats.migrations += 1;
        // Defensive: a pending release is normally drained by the event
        // loop before control-plane code can run, but never strand a held
        // packet — the cells just moved, so plain routing is consistent.
        for (pipe, pkt) in std::mem::take(&mut mig.held) {
            self.tm1_route(self.events.now(), pipe, pkt);
        }
        self.tracer.record_ctrl(
            self.events.now(),
            CtrlEvent::MigrationFinalize {
                epoch: self.partition_epoch(),
                moved_keys: moves.len() as u64,
            },
        );
        // Finalize is a control-plane call outside the event loop, so the
        // run loop's end-of-run sync has already happened: re-mirror here
        // or the ctrl scope would under-report the completed migration.
        self.sync_metrics();
        Ok(())
    }

    /// Simulated cost of copying `cells` register cells between pipes.
    fn copy_cost(&self, cells: usize) -> Duration {
        Duration(cells as u64 * CELL_COPY_CYCLES * self.period.as_ps())
    }

    /// Move cells between central pipes via the control-plane
    /// extract/restore path (does not count as data-plane register ops).
    fn apply_moves(&mut self, moves: &[(RegId, usize, u32, u32)]) {
        for &(reg, cell, from, to) in moves {
            let v = self.central[from as usize]
                .state
                .register_mut(reg)
                .extract(cell);
            self.central[to as usize]
                .state
                .register_mut(reg)
                .restore(cell, v);
        }
    }

    /// Declare that ingress pipe `ipipe` will send no more packets to
    /// central pipe `cpipe` (releases an exact order-preserving merge).
    pub fn tm1_mark_ended(&mut self, cpipe: usize, ipipe: usize) {
        self.central[cpipe].queues.mark_ended(ipipe);
    }

    // ---------------- data plane ----------------

    /// Offer a packet to an RX port at `t`.
    pub fn inject(&mut self, port: PortId, mut pkt: Packet, t: SimTime) {
        assert!((port.0 as usize) < self.rx.len());
        if pkt.meta.created == SimTime::ZERO {
            pkt.meta.created = t;
        }
        self.counters.injected += 1;
        self.in_flight += 1;
        self.events.push(t, Ev::Inject { port: port.0, pkt });
    }

    /// Run until no events remain; returns quiescence time — the later of
    /// the last event and the last bit serialized out a TX port.
    pub fn run_until_idle(&mut self) -> SimTime {
        let mut last = self.events.now();
        // Batched dispatch: drain every event sharing the minimal timestamp
        // in one calendar-queue operation, then dispatch from a reusable
        // buffer. Handlers that push more work at the same timestamp get a
        // later seq, so those land in the *next* batch — the dispatch order
        // is identical to the one-event-at-a-time loop.
        let mut batch = std::mem::take(&mut self.batch);
        let mut run: Vec<Ev> = Vec::new();
        loop {
            batch.clear();
            let Some(t) = self.events.pop_batch(&mut batch) else {
                break;
            };
            self.dispatch_batch(t, &mut batch, &mut run);
            last = t;
        }
        self.batch = batch;
        self.refresh_mat_counters();
        self.sync_metrics();
        last.max(self.last_delivery)
    }

    /// Run every event scheduled at or before `t`, then stop — the hook a
    /// control loop uses to interleave observation and reconfiguration
    /// with live traffic. Returns the time of the last handled event.
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        let mut last = self.events.now();
        let mut batch = std::mem::take(&mut self.batch);
        let mut run: Vec<Ev> = Vec::new();
        while self.events.peek_time().is_some_and(|pt| pt <= t) {
            batch.clear();
            let Some(bt) = self.events.pop_batch(&mut batch) else {
                break;
            };
            self.dispatch_batch(bt, &mut batch, &mut run);
            last = bt;
        }
        self.batch = batch;
        self.refresh_mat_counters();
        self.sync_metrics();
        last
    }

    /// Dispatch one same-timestamp batch. With central workers enabled,
    /// runs of consecutive central events (`PullCentral` interleaved with
    /// `CentralOut`, the steady-state cadence of a loaded switch) are
    /// buffered and executed as one sharded barrier; any other event kind
    /// flushes the buffer first so relative order is untouched. Sharding
    /// applies only when it cannot change observable behavior: never while
    /// a migration's fences are in flight (commit/hold release must
    /// interleave exactly), never while the journey tracer retains
    /// hops (its ring is a single flat insertion-ordered log), and never
    /// while INT stamping is on (stamps and postcards must land in exact
    /// serial order for the honesty conformance check).
    fn dispatch_batch(&mut self, t: SimTime, batch: &mut Vec<Ev>, run: &mut Vec<Ev>) {
        let shard = self.cfg.central_workers > 1
            && !self.tracer.hops_on()
            && !self.int.on()
            && !self.migration_active();
        for ev in batch.drain(..) {
            if shard {
                if matches!(ev, Ev::PullCentral { .. } | Ev::CentralOut { .. }) {
                    run.push(ev);
                    continue;
                }
                self.flush_central_run(t, run);
            }
            self.handle(t, ev);
        }
        self.flush_central_run(t, run);
    }

    /// Mirror the ad-hoc [`AdcpCounters`] and per-pipe busy cycles into the
    /// metrics registry, so the JSON export is the one complete metrics
    /// path. Values are monotone totals; re-assigning is idempotent.
    fn sync_metrics(&mut self) {
        let c = self.counters.clone();
        let mh = self.mh;
        let m = &mut self.metrics;
        m.set_counter(mh.rx_pkts, c.injected);
        m.set_counter(mh.mac_fcs_drops, c.fcs_drops);
        m.set_counter(mh.parse_errors, c.parse_errors);
        m.set_counter(mh.tm1_drops, c.tm1_drops);
        m.set_counter(mh.tm1_queue_drops, c.tm1_queue_drops);
        m.set_counter(mh.tm2_drops, c.tm2_drops);
        m.set_counter(mh.tm2_queue_drops, c.tm2_queue_drops);
        m.set_counter(mh.tm2_mcast_copies, c.mcast_copies);
        m.set_counter(mh.deparse_allocs, c.deparse_allocs);
        m.set_counter(mh.mat_lookups, c.mat_lookups);
        m.set_counter(mh.mat_hits, c.mat_hits);
        m.set_counter(mh.drops_filtered, c.filtered);
        m.set_counter(mh.drops_no_decision, c.no_decision);
        m.set_counter(mh.drops_bad_port, c.bad_port);
        m.set_counter(mh.tx_pkts, c.delivered);
        m.set_gauge(mh.tm1_buffer_gauge, self.pool1.used());
        m.set_gauge(mh.tm2_buffer_gauge, self.pool2.used());
        let mig = &self.mig_stats;
        m.set_counter(mh.ctrl_migrations, mig.migrations);
        m.set_counter(mh.ctrl_moved_keys, mig.moved_keys);
        m.set_counter(mh.ctrl_paused_ns, mig.paused_ns);
        m.set_counter(mh.ctrl_redirected_pkts, mig.redirected_pkts);
        m.set_counter(mh.ctrl_held_pkts, mig.held_pkts);
        m.set_counter(mh.ctrl_misroutes, mig.misroutes);
        let epoch = self.part.as_ref().map_or(0, |rt| rt.map.epoch);
        m.set_gauge(mh.ctrl_epoch, epoch);
        m.set_counter(mh.int_stamps, self.int_stamps);
        m.set_counter(mh.int_postcards, self.int_postcards);
        m.set_counter(mh.int_truncated, self.int_truncated);
        m.set_counter(mh.int_postcards_dropped, self.int_postcards_dropped);
        m.set_counter(mh.int_path_changes, self.int_flows.total_path_changes());
        m.set_gauge(mh.int_flows, self.int_flows.active_cells());
        // Pipeline occupancy, aggregated (per-pipe cardinality would bloat
        // every report on 64-port targets): total busy cycles plus the
        // busiest pipe, per region, via the pre-registered handles.
        let stages: [(usize, u64, u64); 3] = [
            (
                0,
                self.ingress.iter().map(|p| p.busy_cycles).sum(),
                self.ingress
                    .iter()
                    .map(|p| p.busy_cycles)
                    .max()
                    .unwrap_or(0),
            ),
            (
                1,
                self.central.iter().map(|p| p.busy_cycles).sum(),
                self.central
                    .iter()
                    .map(|p| p.busy_cycles)
                    .max()
                    .unwrap_or(0),
            ),
            (
                2,
                self.egress.iter().map(|p| p.busy_cycles).sum(),
                self.egress.iter().map(|p| p.busy_cycles).max().unwrap_or(0),
            ),
        ];
        for (region, total, max) in stages {
            let (id, g) = mh.busy[region];
            self.metrics.set_counter(id, total);
            self.metrics.set_gauge(g, max);
        }
    }

    /// Export the per-stage metrics block (see
    /// [`MetricsRegistry::to_json`]), synchronizing mirrored counters
    /// first so the snapshot is complete at any point.
    pub fn metrics_json(&mut self) -> serde::Value {
        self.refresh_mat_counters();
        self.sync_metrics();
        self.metrics.to_json()
    }

    /// Shared access to the per-stage metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Export the journey tracer's state (sampled hops, drop forensics,
    /// control-plane instants) as JSON. See [`JourneyTracer::to_json`].
    pub fn trace_json(&self) -> serde::Value {
        self.tracer.to_json()
    }

    /// The in-band telemetry knob in force (resolved from `ADCP_INT` at
    /// construction, falling back to [`AdcpConfig::int`]).
    pub fn int_knob(&self) -> IntKnob {
        self.int
    }

    /// Device id this switch writes into its INT stamps.
    pub fn device(&self) -> u16 {
        self.cfg.device
    }

    /// Drain the postcards emitted since the last call (sink exports of
    /// sampled packets' INT stacks at TX).
    pub fn take_postcards(&mut self) -> Vec<Postcard> {
        std::mem::take(&mut self.postcards)
    }

    /// The central-register-resident per-flow INT aggregation cell for
    /// `flow`.
    pub fn int_flow_cell(&self, flow: u64) -> IntFlowCell {
        *self.int_flows.cell(flow)
    }

    /// The whole per-flow INT aggregation table.
    pub fn int_flow_table(&self) -> &IntFlowTable {
        &self.int_flows
    }

    /// INT totals: (stamps written, postcards emitted, stamps truncated).
    pub fn int_totals(&self) -> (u64, u64, u64) {
        (self.int_stamps, self.int_postcards, self.int_truncated)
    }

    /// Postcards shed because the sink FIFO was full — nonzero only when
    /// nothing drained [`AdcpSwitch::take_postcards`] for
    /// [`POSTCARDS_CAP`] sampled transmissions.
    pub fn int_postcards_dropped(&self) -> u64 {
        self.int_postcards_dropped
    }

    /// Sabotage hook for the conformance harness: when set, every INT
    /// stamp reports a TM queue depth one higher than actually observed —
    /// a plausible-but-lying datapath the honesty check must catch.
    #[doc(hidden)]
    pub fn set_int_lie_queue_depth(&mut self, lie: bool) {
        self.int_lie_queue_depth = lie;
    }

    /// Append one INT stamp to a sampled packet's bounded header region.
    /// `ctx` must be the same value handed to the journey tracer for this
    /// hop — the honesty conformance check compares the two byte for byte.
    fn int_stamp(
        &mut self,
        pkt: &mut Packet,
        site: Site,
        enter: SimTime,
        exit: SimTime,
        ctx: HopCtx,
    ) {
        if !self.int.samples(pkt.meta.id) {
            return;
        }
        let ctx = if self.int_lie_queue_depth {
            HopCtx {
                queue_depth: ctx.queue_depth.map(|d| d + 1),
                ..ctx
            }
        } else {
            ctx
        };
        let stack = pkt
            .meta
            .int
            .get_or_insert_with(|| Box::new(IntStack::with_typical_capacity()));
        let stamp = IntStamp {
            device: self.cfg.device,
            site,
            enter,
            exit,
            ctx,
        };
        if stack.push(stamp) {
            self.int_stamps += 1;
        } else {
            self.int_truncated += 1;
        }
    }

    /// Copy the per-table lookup/hit totals into [`AdcpCounters`] so a
    /// counters snapshot taken at quiescence is complete. Totals are
    /// monotone, so re-assigning on every call is idempotent.
    fn refresh_mat_counters(&mut self) {
        let stats = self
            .ingress
            .iter()
            .map(|p| &p.state.stats)
            .chain(self.central.iter().map(|p| &p.state.stats))
            .chain(self.egress.iter().map(|p| &p.state.stats));
        let (mut lookups, mut hits) = (0, 0);
        for s in stats {
            lookups += s.lookups;
            hits += s.hits;
        }
        self.counters.mat_lookups = lookups;
        self.counters.mat_hits = hits;
    }

    /// Drain delivered packets.
    pub fn take_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Time of the switch's next pending event, if any. A fabric driving
    /// loop advances every member switch to the global minimum of these
    /// before exchanging link traffic (see the `adcp-fabric` crate).
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Packets currently inside the switch.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Panic unless every packet is accounted for. Call at idle.
    pub fn check_conservation(&self) {
        let c = &self.counters;
        assert_eq!(
            c.injected + c.mcast_copies,
            c.delivered + c.total_drops() + self.in_flight,
            "conservation violated: {c:?} in_flight={}",
            self.in_flight
        );
    }

    /// High-water mark across both TM buffers, in cells.
    pub fn tm_buffer_hwm(&self) -> u64 {
        self.pool1.hwm_cells.max(self.pool2.hwm_cells)
    }

    /// Utilization of one ingress pipeline.
    pub fn ingress_utilization(&self, pipe: usize, now: SimTime) -> f64 {
        let total = now.as_ps() / self.period.as_ps().max(1);
        if total == 0 {
            0.0
        } else {
            self.ingress[pipe].busy_cycles as f64 / total as f64
        }
    }

    /// Busy cycles of one ingress pipeline (demux spread checks).
    pub fn ingress_busy_cycles(&self, pipe: usize) -> u64 {
        self.ingress[pipe].busy_cycles
    }

    /// Busy cycles of one central pipeline (partition balance checks).
    pub fn central_busy_cycles(&self, cpipe: usize) -> u64 {
        self.central[cpipe].busy_cycles
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Inject { port, pkt } => self.on_inject(now, port, pkt),
            Ev::IngressEnter { pipe, pkt } => self.on_ingress_enter(now, pipe, pkt),
            Ev::IngressOut { pipe, pkt } => self.on_ingress_out(now, pipe, pkt),
            Ev::PullCentral { cpipe } => self.on_pull_central(now, cpipe),
            Ev::CentralOut { cpipe, pkt } => self.on_central_out(now, cpipe, pkt),
            Ev::PullEgress { epipe } => self.on_pull_egress(now, epipe),
            Ev::EgressOut { epipe, pkt } => self.on_egress_out(now, epipe, pkt),
            Ev::MigrateCommit => self.on_migrate_commit(now),
        }
    }

    fn on_inject(&mut self, now: SimTime, port: u16, mut pkt: Packet) {
        if !pkt.fcs_ok() {
            // Corrupted on the wire: discard at the MAC, before the packet
            // can reach a parser, table, or register.
            self.counters.fcs_drops += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Rx(PortId(port)),
                DropReason::FcsBad,
                HopCtx::NONE,
            );
            return;
        }
        let done = self.rx[port as usize].receive(&mut pkt, now);
        if self.tracer.hops_on() {
            self.tracer
                .record_hop(pkt.meta.id, Site::Rx(PortId(port)), now, done, HopCtx::NONE);
        }
        self.int_stamp(&mut pkt, Site::Rx(PortId(port)), now, done, HopCtx::NONE);
        // 1:m demultiplex (§3.3).
        let m = self.target.demux_factor as usize;
        let lane = match self.cfg.demux {
            DemuxPolicy::RoundRobin => {
                let l = self.demux_rr[port as usize] as usize % m;
                self.demux_rr[port as usize] = self.demux_rr[port as usize].wrapping_add(1);
                l
            }
            DemuxPolicy::FlowHash => (adcp_lang::fold_hash([pkt.meta.flow.0]) % m as u64) as usize,
        };
        let pipe = port as usize * m + lane;
        self.events.push(done, Ev::IngressEnter { pipe, pkt });
    }

    /// Parse, run ingress region, occupy a slot, deparse.
    fn on_ingress_enter(&mut self, now: SimTime, pipe: usize, pkt: Packet) {
        let Some((mut phv, out_extracted, consumed, depth)) =
            self.parse(now, &pkt, Site::IngressPipe(pipe))
        else {
            return;
        };
        phv.intr.ingress_port = pkt.meta.ingress_port;
        let parse_done = now + Duration(depth as u64 * self.period.as_ps());
        let p = &mut self.ingress[pipe];
        let entry = parse_done.max(p.next_slot);
        p.next_slot = entry + self.period;
        p.busy_cycles += 1;
        p.state
            .run_with_tables(&self.ing_tables, &self.program, &self.layout, &mut phv);
        self.counters.deparse_allocs += 1;
        let mut pkt = self.writeback(pkt, phv, out_extracted, consumed);
        let stages = self.placement.ingress.depth().max(1) as u64;
        let exit = entry + Duration(stages * self.period.as_ps());
        if self.tracer.hops_on() {
            self.tracer.record_hop(
                pkt.meta.id,
                Site::IngressPipe(pipe),
                entry,
                exit,
                HopCtx::NONE,
            );
        }
        self.int_stamp(&mut pkt, Site::IngressPipe(pipe), entry, exit, HopCtx::NONE);
        self.events.push(exit, Ev::IngressOut { pipe, pkt });
    }

    /// TM1: application-defined partitioning into central pipelines.
    fn on_ingress_out(&mut self, now: SimTime, pipe: usize, pkt: Packet) {
        // Stage span: RX handoff -> ingress pipeline exit (parse included).
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.ingress_span, pkt.meta.arrived, now);
        }
        if pkt.meta.egress == EgressSpec::Drop {
            self.counters.filtered += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm1,
                DropReason::Filtered,
                HopCtx::NONE,
            );
            return;
        }
        self.tm1_route(now, pipe, pkt);
    }

    /// Route one packet through TM1 into a central queue. Split out of
    /// [`AdcpSwitch::on_ingress_out`] because migrations re-enter it when
    /// held packets are released.
    fn tm1_route(&mut self, now: SimTime, pipe: usize, mut pkt: Packet) {
        // Partition criterion: the program's `SetCentralPipe` value
        // (pre-modulo) is the logical partition key, else the flow hash.
        // This is the "reshuffle by ranges or hashes" role of the first TM.
        let key = pkt
            .meta
            .central_pipe
            .map(u64::from)
            .unwrap_or_else(|| adcp_lang::fold_hash([pkt.meta.flow.0]));
        let cpipe = if self.part.is_none() {
            (key % self.central.len() as u64) as usize
        } else {
            // Epoch-versioned map routing. Decide first with a shared
            // borrow, then apply (holds and first-touch copies need
            // `&mut self`).
            let (bucket, hold, first_touch, owner, epoch) = {
                let rt = self.part.as_ref().expect("checked");
                let bucket = rt.map.bucket_of(key);
                let (hold, first_touch) = match &rt.mig {
                    None => (false, false),
                    Some(mig) => match mig.strategy {
                        // Drain: the moving shard is unavailable until
                        // commit.
                        MigrationStrategy::Drain => {
                            (mig.fence_prev.binary_search(&bucket).is_ok(), false)
                        }
                        // Incremental: unavailable only while old-epoch
                        // packets could still update moving cells; after
                        // that, first touch copies the bucket.
                        MigrationStrategy::Incremental => {
                            let dirty = mig.dirty.binary_search(&bucket).is_ok();
                            (mig.fence_left > 0 && dirty, mig.fence_left == 0 && dirty)
                        }
                    },
                };
                (
                    bucket,
                    hold,
                    first_touch,
                    rt.map.owner_of_bucket(bucket) as usize,
                    rt.map.epoch,
                )
            };
            if hold {
                self.mig_stats.held_pkts += 1;
                let rt = self.part.as_mut().expect("checked");
                let mig = rt.mig.as_mut().expect("hold implies migration");
                mig.held.push((pipe, pkt));
                return;
            }
            if first_touch {
                self.first_touch_copy(now, bucket);
            }
            let rt = self.part.as_mut().expect("checked");
            rt.bucket_pkts[bucket as usize] += 1;
            rt.inflight[bucket as usize] += 1;
            pkt.meta.part_bucket = Some(bucket);
            pkt.meta.map_epoch = Some(epoch);
            owner
        };
        if !self.central[cpipe].queues.queue(pipe).has_room(&pkt) {
            self.counters.tm1_queue_drops += 1;
            self.account_tm1_unenqueue(&pkt);
            let ctx = HopCtx {
                queue_depth: Some(self.central[cpipe].queues.len() as u32),
                buffer_cells: Some(self.pool1.used()),
                epoch: pkt.meta.map_epoch,
            };
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm1,
                DropReason::QueueTail {
                    tm: 1,
                    queue: cpipe as u32,
                },
                ctx,
            );
            return;
        }
        if !self.pool1.try_alloc(&mut pkt) {
            self.counters.tm1_drops += 1;
            self.account_tm1_unenqueue(&pkt);
            let ctx = HopCtx {
                queue_depth: Some(self.central[cpipe].queues.len() as u32),
                buffer_cells: Some(self.pool1.used()),
                epoch: pkt.meta.map_epoch,
            };
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm1,
                DropReason::BufferExhausted { tm: 1 },
                ctx,
            );
            return;
        }
        pkt.meta.tm_enqueued = now;
        // Enqueue-time context, carried in the metadata so the journey
        // tracer can attach it to the TM1-residency hop at dequeue.
        // `ScheduledQueues::len` walks every queue, so only pay for it when
        // a knob will consume the value.
        if self.tracer.hops_on() || self.int.samples(pkt.meta.id) {
            pkt.meta.tm_q_depth = Some(self.central[cpipe].queues.len() as u32 + 1);
            pkt.meta.tm_buf_used = Some(self.pool1.used());
        }
        let ok = self.central[cpipe].queues.enqueue(pipe, pkt).is_ok();
        debug_assert!(ok);
        if self.metrics.enabled() {
            let depth = self.central[cpipe].queues.len() as u64;
            self.metrics.sample(self.mh.tm1_queue_depth, now, depth);
            self.metrics
                .sample(self.mh.tm1_buffer, now, self.pool1.used());
            self.metrics
                .set_gauge(self.mh.tm1_buffer_gauge, self.pool1.used());
        }
        self.schedule_pull_central(now, cpipe);
    }

    /// Undo the in-flight stamp of a packet that was counted for a bucket
    /// but then dropped at TM1 admission (queue/buffer exhaustion).
    fn account_tm1_unenqueue(&mut self, pkt: &Packet) {
        let Some(rt) = &mut self.part else { return };
        if let (Some(b), Some(e)) = (pkt.meta.part_bucket, pkt.meta.map_epoch) {
            if e == rt.map.epoch {
                rt.inflight[b as usize] -= 1;
            }
        }
    }

    /// Incremental copy-on-first-touch: remove `bucket` from the redirect
    /// table, move its cells, and charge the copy window to the new
    /// owner's pipe schedule (the triggering packet, and anything behind
    /// it, waits out the copy in-queue — per-key order is preserved).
    fn first_touch_copy(&mut self, now: SimTime, bucket: u32) {
        let Some(rt) = &mut self.part else { return };
        let Some(mig) = &mut rt.mig else { return };
        let Ok(i) = mig.dirty.binary_search(&bucket) else {
            return;
        };
        mig.dirty.remove(i);
        let map = &rt.map;
        let mut moves = Vec::new();
        mig.moving_cells.retain(|&(r, c, from, to)| {
            if map.bucket_of(c as u64) == bucket {
                moves.push((r, c, from, to));
                false
            } else {
                true
            }
        });
        let owner = map.owner_of_bucket(bucket) as usize;
        self.mig_stats.redirected_pkts += 1;
        self.mig_stats.moved_keys += moves.len() as u64;
        self.apply_moves(&moves);
        let cost = self.copy_cost(moves.len());
        self.central[owner].next_slot = self.central[owner].next_slot.max(now) + cost;
    }

    /// Drain-strategy commit: fence drained and copy window elapsed — move
    /// all cells, install the next map (epoch + 1), release held packets.
    fn on_migrate_commit(&mut self, now: SimTime) {
        let Some(rt) = &mut self.part else { return };
        let Some(mut mig) = rt.mig.take() else { return };
        debug_assert_eq!(mig.strategy, MigrationStrategy::Drain);
        debug_assert_eq!(mig.fence_left, 0);
        let next = mig.next_pending.take().expect("drain holds the next map");
        let b = next.num_buckets() as usize;
        // Everything still queued was stamped under the previous epoch.
        rt.inflight_old += rt.inflight.iter().sum::<u64>();
        rt.inflight = vec![0; b];
        rt.bucket_pkts = vec![0; b];
        rt.map = next;
        let moves = std::mem::take(&mut mig.moving_cells);
        self.apply_moves(&moves);
        self.mig_stats.moved_keys += moves.len() as u64;
        self.mig_stats.migrations += 1;
        self.mig_stats.paused_ns += now.saturating_since(mig.begun).as_ps() / 1000;
        let epoch = self.partition_epoch();
        self.tracer.record_ctrl(
            now,
            CtrlEvent::MigrationCommit {
                epoch,
                moved_keys: moves.len() as u64,
            },
        );
        self.tracer.record_ctrl(now, CtrlEvent::EpochBump { epoch });
        // Release inline, in arrival order, before any later event can
        // route — preserves per-key FIFO through the pause.
        for (pipe, pkt) in mig.held {
            self.tm1_route(now, pipe, pkt);
        }
    }

    /// Partition accounting at the moment a central pipe dequeues a packet
    /// (the packet's register updates happen in this same event, so "the
    /// old owner has applied it" and "dequeued" coincide). Decrements the
    /// in-flight fence, checks the epoch-consistent owner, and — for
    /// incremental migrations — ends the hold window when the fence
    /// drains.
    fn account_central_dequeue(&mut self, now: SimTime, cpipe: usize, pkt: &Packet) {
        let period_ps = self.period.as_ps();
        let Some(rt) = &mut self.part else { return };
        let (Some(bucket), Some(epoch)) = (pkt.meta.part_bucket, pkt.meta.map_epoch) else {
            return;
        };
        let mut commit_at = None;
        if epoch == rt.map.epoch {
            rt.inflight[bucket as usize] -= 1;
            if rt.map.owner_of_bucket(bucket) as usize != cpipe {
                self.mig_stats.misroutes += 1;
            }
            if let Some(mig) = &mut rt.mig {
                if mig.strategy == MigrationStrategy::Drain
                    && mig.fence_left > 0
                    && mig.fence_prev.binary_search(&bucket).is_ok()
                {
                    mig.fence_left -= 1;
                    if mig.fence_left == 0 {
                        let cost =
                            Duration(mig.moving_cells.len() as u64 * CELL_COPY_CYCLES * period_ps);
                        commit_at = Some(now + cost);
                    }
                }
            }
        } else {
            rt.inflight_old -= 1;
            if let Some(mig) = &mut rt.mig {
                // Old-epoch packet during an incremental migration: the
                // previous map decodes its stamp.
                if mig.prev.owner_of_bucket(bucket) as usize != cpipe {
                    self.mig_stats.misroutes += 1;
                }
                if mig.fence_left > 0 && mig.fence_prev.binary_search(&bucket).is_ok() {
                    mig.fence_left -= 1;
                    if mig.fence_left == 0 {
                        // Fence drained: the hold window ends with this
                        // packet — but its register updates are still
                        // pending in this event, so the actual release
                        // (and any first-touch copy it triggers) waits
                        // for `finish_central`.
                        if let Some(start) = mig.pause_started.take() {
                            self.mig_stats.paused_ns += now.saturating_since(start).as_ps() / 1000;
                        }
                        mig.release_at_exec = true;
                    }
                }
            }
            // With no migration active the previous map is gone; stragglers
            // of non-moving buckets route to the same owner under either
            // map, so there is nothing left to check.
        }
        if let Some(at) = commit_at {
            self.events.push(at, Ev::MigrateCommit);
        }
    }

    /// Release packets held for an incremental migration whose fence
    /// drained during the current pull's prologue. Runs from
    /// [`AdcpSwitch::finish_central`] — after the draining packet's
    /// register updates have landed, before any later event can route —
    /// so first-touch copies see complete state and per-key FIFO holds.
    fn release_held_if_drained(&mut self, now: SimTime) {
        let held = match self.part.as_mut().and_then(|rt| rt.mig.as_mut()) {
            Some(mig) if mig.release_at_exec => {
                mig.release_at_exec = false;
                std::mem::take(&mut mig.held)
            }
            _ => return,
        };
        for (pipe, pkt) in held {
            self.tm1_route(now, pipe, pkt);
        }
    }

    fn schedule_pull_central(&mut self, now: SimTime, cpipe: usize) {
        if !self.central[cpipe].pull_scheduled {
            self.central[cpipe].pull_scheduled = true;
            let at = now.max(self.central[cpipe].next_slot);
            self.events.push(at, Ev::PullCentral { cpipe });
        }
    }

    fn on_pull_central(&mut self, now: SimTime, cpipe: usize) {
        match self.pull_central_prologue(now, cpipe) {
            CentralStage::Idle => {}
            CentralStage::Reschedule(at) => self.schedule_pull_central(at, cpipe),
            CentralStage::Work(mut pkt) => {
                let scratch = self
                    .scratch
                    .take()
                    .unwrap_or_else(|| (Phv::empty(), Vec::new()));
                let res = central_compute(
                    &self.program,
                    &self.layout,
                    self.period,
                    now,
                    &mut self.central[cpipe],
                    &mut pkt,
                    scratch,
                );
                self.finish_central(now, cpipe, pkt, res);
            }
        }
    }

    /// Serial head of a central pull: everything up to (and including) the
    /// TM1 dequeue, pool release, fence accounting, and TM1-residency
    /// observability. Never pushes events — deferred scheduling comes back
    /// as [`CentralStage::Reschedule`] so a sharded batch can replay all
    /// pushes in exact serial order during the epilogue.
    fn pull_central_prologue(&mut self, now: SimTime, cpipe: usize) -> CentralStage {
        self.central[cpipe].pull_scheduled = false;
        if now < self.central[cpipe].next_slot {
            return CentralStage::Reschedule(self.central[cpipe].next_slot);
        }
        // Exact-merge gating (§3.1): under MergeOrder, wait (bounded) for
        // every un-ended input queue to have a head before departing the
        // global minimum. Streams signal completion via mark_ended or by
        // ending with a max-key record.
        if self.program.tm1.policy == adcp_sim::sched::Policy::MergeOrder
            && !self.central[cpipe].queues.is_empty()
            && !self.central[cpipe].queues.merge_ready()
        {
            let since = *self.central[cpipe].merge_wait_since.get_or_insert(now);
            if now.saturating_since(since) < self.cfg.merge_patience {
                return CentralStage::Reschedule(now + self.period);
            }
            // Patience exhausted: fall through to the streaming
            // approximation so the switch can never deadlock.
        }
        self.central[cpipe].merge_wait_since = None;
        let Some((_, mut pkt)) = self.central[cpipe].queues.dequeue() else {
            return CentralStage::Idle;
        };
        self.pool1.release(&mut pkt);
        // Fence/epoch accounting must happen exactly when the old owner
        // consumes the packet (its register updates land in this event).
        self.account_central_dequeue(now, cpipe, &pkt);
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.tm1_residency, pkt.meta.tm_enqueued, now);
            self.metrics
                .sample(self.mh.tm1_buffer, now, self.pool1.used());
        }
        // TM1-residency hop: enqueue -> dequeue, with the queue/buffer
        // state observed at enqueue and the routing epoch. The context is
        // computed once and handed to both the tracer and the INT stamp —
        // the honesty check requires the two views to agree exactly.
        if self.tracer.hops_on() || self.int.on() {
            let enq = pkt.meta.tm_enqueued;
            let ctx = HopCtx {
                queue_depth: pkt.meta.tm_q_depth.take(),
                buffer_cells: pkt.meta.tm_buf_used.take(),
                epoch: pkt.meta.map_epoch,
            };
            if self.tracer.hops_on() {
                self.tracer
                    .record_hop(pkt.meta.id, Site::Tm1, enq, now, ctx);
            }
            self.int_stamp(&mut pkt, Site::Tm1, enq, now, ctx);
        }
        pkt.meta.tm_enqueued = now; // central-stage entry, for its span
        CentralStage::Work(pkt)
    }

    /// Serial tail of a central pull: observability, writeback into the
    /// arena, the CentralOut push, and the next pull. Runs on the
    /// coordinator thread in event order whether the compute stage ran
    /// inline or on a worker.
    fn finish_central(
        &mut self,
        now: SimTime,
        cpipe: usize,
        pkt: Packet,
        res: Result<CentralRun, ()>,
    ) {
        // The pull's register updates (if any) are in: safe to release
        // packets held behind the in-flight fence this pull drained.
        self.release_held_if_drained(now);
        let run = match res {
            Ok(run) => run,
            Err(()) => {
                self.counters.parse_errors += 1;
                self.drop_packet(
                    now,
                    pkt.meta.id,
                    Site::CentralPipe(cpipe),
                    DropReason::ParseError,
                    HopCtx::NONE,
                );
                return;
            }
        };
        if self.metrics.enabled() {
            self.metrics.record(
                self.mh.parse_span,
                Duration(run.depth as u64 * self.period.as_ps()),
            );
        }
        self.counters.deparse_allocs += 1;
        let epoch = pkt.meta.map_epoch;
        let mut pkt = self.writeback(pkt, run.phv, run.extracted, run.consumed);
        let stages = self.placement.central.depth().max(1) as u64;
        let exit = run.entry + Duration(stages * self.period.as_ps());
        let ctx = HopCtx {
            epoch,
            ..HopCtx::NONE
        };
        if self.tracer.hops_on() {
            self.tracer
                .record_hop(pkt.meta.id, Site::CentralPipe(cpipe), run.entry, exit, ctx);
        }
        self.int_stamp(&mut pkt, Site::CentralPipe(cpipe), run.entry, exit, ctx);
        self.events.push(exit, Ev::CentralOut { cpipe, pkt });
        if !self.central[cpipe].queues.is_empty() {
            let next = self.central[cpipe].next_slot;
            self.schedule_pull_central(next, cpipe);
        }
    }

    /// Sharded execution of a buffered run of same-timestamp central
    /// events — `PullCentral` pulls interleaved with `CentralOut` exits
    /// (§3.1: central pipes are independent between TM1 and TM2). Three
    /// stages. (1) Serial prologues for every pull, in pull order: the
    /// prologue touches only TM1-side state (central input queues, pool1,
    /// fence accounting, TM1 metrics) and never pushes events, while the
    /// `CentralOut` handler touches only TM2-side state (egress queues,
    /// pool2, delivery counters) — disjoint, so hoisting the prologues
    /// above intervening exits is unobservable. (2) Parallel parse +
    /// MAU-region compute partitioned by pipe; each worker owns disjoint
    /// [`CentralPipe`] state. (3) Serial replay of the run in its original
    /// event order — `CentralOut` events through the ordinary handler,
    /// pull epilogues in place of their pulls — so every event push,
    /// counter, metric, and drop lands in the exact sequence the serial
    /// loop would have produced. `(time, seq)` assignment, and therefore
    /// the entire simulation, is byte-identical for any worker count.
    fn central_run_sharded(&mut self, now: SimTime, run: &mut Vec<Ev>) {
        let mut staged: Vec<Option<(usize, CentralStage)>> = run.iter().map(|_| None).collect();
        for (i, ev) in run.iter().enumerate() {
            if let Ev::PullCentral { cpipe } = *ev {
                staged[i] = Some((cpipe, self.pull_central_prologue(now, cpipe)));
            }
        }
        let workers = self.cfg.central_workers.max(1);
        let program = &self.program;
        let layout = &self.layout;
        let period = self.period;
        // Disjoint &mut access: each pipe appears at most once per run
        // (`pull_scheduled` guarantees one outstanding pull per pipe).
        let mut pipe_refs: Vec<Option<&mut CentralPipe>> =
            self.central.iter_mut().map(Some).collect();
        let mut buckets: Vec<Vec<(usize, &mut CentralPipe, Packet)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, slot) in staged.iter_mut().enumerate() {
            let Some((cpipe, st)) = slot else { continue };
            if matches!(st, CentralStage::Work(_)) {
                let CentralStage::Work(pkt) = std::mem::replace(st, CentralStage::Idle) else {
                    unreachable!()
                };
                let pr = pipe_refs[*cpipe]
                    .take()
                    .expect("one outstanding pull per central pipe");
                buckets[*cpipe % workers].push((i, pr, pkt));
            }
        }
        let mut done: Vec<Option<(Packet, Result<CentralRun, ()>)>> =
            run.iter().map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .into_iter()
                .filter(|b| !b.is_empty())
                .map(|bucket| {
                    s.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(i, pipe, mut pkt)| {
                                let res = central_compute(
                                    program,
                                    layout,
                                    period,
                                    now,
                                    pipe,
                                    &mut pkt,
                                    (Phv::empty(), Vec::new()),
                                );
                                (i, pkt, res)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (i, pkt, res) in h.join().expect("central worker panicked") {
                    done[i] = Some((pkt, res));
                }
            }
        });
        for (i, ev) in run.drain(..).enumerate() {
            match ev {
                Ev::PullCentral { cpipe } => match staged[i].take() {
                    Some((_, CentralStage::Reschedule(at))) => {
                        self.schedule_pull_central(at, cpipe)
                    }
                    Some((_, CentralStage::Idle)) => {
                        if let Some((pkt, res)) = done[i].take() {
                            self.finish_central(now, cpipe, pkt, res);
                        }
                    }
                    _ => unreachable!("pull staged exactly once"),
                },
                other => self.handle(now, other),
            }
        }
    }

    /// Drain the buffered central run: fewer than two pulls means there is
    /// nothing to overlap, so every event goes through the ordinary serial
    /// handler; otherwise the run executes as one sharded barrier.
    fn flush_central_run(&mut self, now: SimTime, run: &mut Vec<Ev>) {
        let n_pulls = run
            .iter()
            .filter(|e| matches!(e, Ev::PullCentral { .. }))
            .count();
        if n_pulls < 2 {
            for ev in run.drain(..) {
                self.handle(now, ev);
            }
            return;
        }
        self.central_run_sharded(now, run);
    }

    /// TM2: classic scheduler; any egress port reachable, multicast native.
    fn on_central_out(&mut self, now: SimTime, _cpipe: usize, mut pkt: Packet) {
        // Stage span: central pipeline entry -> exit.
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.central_span, pkt.meta.tm_enqueued, now);
        }
        // Move the decision out rather than cloning it (a Multicast spec
        // owns a port list).
        match std::mem::take(&mut pkt.meta.egress) {
            EgressSpec::Unset | EgressSpec::Recirculate => {
                self.counters.no_decision += 1;
                self.drop_packet(
                    now,
                    pkt.meta.id,
                    Site::Tm2,
                    DropReason::NoDecision,
                    HopCtx::NONE,
                );
            }
            EgressSpec::Drop => {
                self.counters.filtered += 1;
                self.drop_packet(
                    now,
                    pkt.meta.id,
                    Site::Tm2,
                    DropReason::Filtered,
                    HopCtx::NONE,
                );
            }
            EgressSpec::Unicast(p) => {
                pkt.meta.egress = EgressSpec::Unicast(p);
                self.tm2_admit_one(now, p, pkt);
            }
            EgressSpec::Multicast(ports) => {
                if ports.is_empty() {
                    self.counters.no_decision += 1;
                    self.drop_packet(
                        now,
                        pkt.meta.id,
                        Site::Tm2,
                        DropReason::NoDecision,
                        HopCtx::NONE,
                    );
                    return;
                }
                self.counters.mcast_copies += ports.len() as u64 - 1;
                self.in_flight += ports.len() as u64 - 1;
                // Share the frame bytes once, then each copy bumps the
                // payload refcount instead of copying the buffer.
                pkt.data.make_shared();
                for p in ports {
                    let mut copy = pkt.clone();
                    copy.meta.egress = EgressSpec::Unicast(p);
                    self.tm2_admit_one(now, p, copy);
                }
            }
        }
    }

    fn tm2_admit_one(&mut self, now: SimTime, port: PortId, mut pkt: Packet) {
        if port.0 as usize >= self.tx.len() {
            self.counters.bad_port += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm2,
                DropReason::BadPort,
                HopCtx::NONE,
            );
            return;
        }
        // The m:1 mux at TX must preserve ordering (§3.3's symmetry with
        // the RX demux). Per-flow traffic stays ordered by pinning each
        // flow to one of the port's m egress pipelines; a stream that TM1
        // merge-ordered (it carries a sort key) is ordered *across* flows,
        // so the whole coflow shares one lane.
        let m = self.target.demux_factor as usize;
        let lane_key = if pkt.meta.sort_key.is_some() {
            pkt.meta.coflow.map(|c| c.0 as u64).unwrap_or(0)
        } else {
            pkt.meta.flow.0
        };
        let lane = (adcp_lang::fold_hash([lane_key]) % m as u64) as usize;
        let epipe = port.0 as usize * m + lane;
        if !self.egress[epipe].queues.queue(0).has_room(&pkt) {
            self.counters.tm2_queue_drops += 1;
            let ctx = HopCtx {
                queue_depth: Some(self.egress[epipe].queues.len() as u32),
                buffer_cells: Some(self.pool2.used()),
                epoch: pkt.meta.map_epoch,
            };
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm2,
                DropReason::QueueTail {
                    tm: 2,
                    queue: epipe as u32,
                },
                ctx,
            );
            return;
        }
        if !self.pool2.try_alloc(&mut pkt) {
            self.counters.tm2_drops += 1;
            let ctx = HopCtx {
                queue_depth: Some(self.egress[epipe].queues.len() as u32),
                buffer_cells: Some(self.pool2.used()),
                epoch: pkt.meta.map_epoch,
            };
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::Tm2,
                DropReason::BufferExhausted { tm: 2 },
                ctx,
            );
            return;
        }
        pkt.meta.tm_enqueued = now;
        if self.tracer.hops_on() || self.int.samples(pkt.meta.id) {
            pkt.meta.tm_q_depth = Some(self.egress[epipe].queues.len() as u32 + 1);
            pkt.meta.tm_buf_used = Some(self.pool2.used());
        }
        let ok = self.egress[epipe].queues.enqueue(0, pkt).is_ok();
        debug_assert!(ok);
        if self.metrics.enabled() {
            let depth = self.egress[epipe].queues.len() as u64;
            self.metrics.sample(self.mh.tm2_queue_depth, now, depth);
            self.metrics
                .sample(self.mh.tm2_buffer, now, self.pool2.used());
            self.metrics
                .set_gauge(self.mh.tm2_buffer_gauge, self.pool2.used());
        }
        self.schedule_pull_egress(now, epipe);
    }

    fn schedule_pull_egress(&mut self, now: SimTime, epipe: usize) {
        if !self.egress[epipe].pull_scheduled {
            self.egress[epipe].pull_scheduled = true;
            let at = now.max(self.egress[epipe].next_slot);
            self.events.push(at, Ev::PullEgress { epipe });
        }
    }

    fn on_pull_egress(&mut self, now: SimTime, epipe: usize) {
        self.egress[epipe].pull_scheduled = false;
        if now < self.egress[epipe].next_slot {
            let at = self.egress[epipe].next_slot;
            self.schedule_pull_egress(at, epipe);
            return;
        }
        // Busy links backpressure into TM2: the pipe only pulls when its
        // port will be able to accept the packet by the time it has
        // traversed the egress stages (pipeline/serialization overlap).
        let port = epipe / self.target.demux_factor as usize;
        let flight = Duration(self.placement.egress.depth().max(1) as u64 * self.period.as_ps());
        if !self.egress[epipe].queues.is_empty() && self.tx[port].ready_at() > now + flight {
            self.egress[epipe].pull_scheduled = true;
            self.events.push(
                SimTime(self.tx[port].ready_at().as_ps() - flight.as_ps()),
                Ev::PullEgress { epipe },
            );
            return;
        }
        let Some((_, mut pkt)) = self.egress[epipe].queues.dequeue() else {
            return;
        };
        self.pool2.release(&mut pkt);
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.tm2_residency, pkt.meta.tm_enqueued, now);
            self.metrics
                .sample(self.mh.tm2_buffer, now, self.pool2.used());
        }
        // TM2-residency hop with enqueue-time queue/buffer context (one
        // computation, shared by the tracer and the INT stamp).
        if self.tracer.hops_on() || self.int.on() {
            let enq = pkt.meta.tm_enqueued;
            let ctx = HopCtx {
                queue_depth: pkt.meta.tm_q_depth.take(),
                buffer_cells: pkt.meta.tm_buf_used.take(),
                epoch: pkt.meta.map_epoch,
            };
            if self.tracer.hops_on() {
                self.tracer
                    .record_hop(pkt.meta.id, Site::Tm2, enq, now, ctx);
            }
            self.int_stamp(&mut pkt, Site::Tm2, enq, now, ctx);
        }
        pkt.meta.tm_enqueued = now; // egress-stage entry, for its span
        let Some((mut phv, extracted, consumed, _)) =
            self.parse(now, &pkt, Site::EgressPipe(epipe))
        else {
            return;
        };
        phv.intr.ingress_port = pkt.meta.ingress_port;
        phv.intr.egress = std::mem::take(&mut pkt.meta.egress);
        let p = &mut self.egress[epipe];
        let entry = now.max(p.next_slot);
        p.next_slot = entry + self.period;
        p.busy_cycles += 1;
        p.state
            .run_with_tables(&self.eg_tables, &self.program, &self.layout, &mut phv);
        self.counters.deparse_allocs += 1;
        let mut pkt = self.writeback(pkt, phv, extracted, consumed);
        let stages = self.placement.egress.depth().max(1) as u64;
        let exit = entry + Duration(stages * self.period.as_ps());
        if self.tracer.hops_on() {
            self.tracer.record_hop(
                pkt.meta.id,
                Site::EgressPipe(epipe),
                entry,
                exit,
                HopCtx::NONE,
            );
        }
        self.int_stamp(&mut pkt, Site::EgressPipe(epipe), entry, exit, HopCtx::NONE);
        self.events.push(exit, Ev::EgressOut { epipe, pkt });
        if !self.egress[epipe].queues.is_empty() {
            let next = self.egress[epipe].next_slot;
            self.schedule_pull_egress(next, epipe);
        }
    }

    fn on_egress_out(&mut self, now: SimTime, epipe: usize, mut pkt: Packet) {
        if pkt.meta.egress == EgressSpec::Drop {
            self.counters.filtered += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::EgressPipe(epipe),
                DropReason::Filtered,
                HopCtx::NONE,
            );
            return;
        }
        let EgressSpec::Unicast(port) = pkt.meta.egress else {
            self.counters.no_decision += 1;
            self.drop_packet(
                now,
                pkt.meta.id,
                Site::EgressPipe(epipe),
                DropReason::NoDecision,
                HopCtx::NONE,
            );
            return;
        };
        // Stage span: egress pipeline entry -> exit.
        let done = self.tx[port.0 as usize].transmit(&pkt, now);
        if self.metrics.enabled() {
            self.metrics
                .record_span(self.mh.egress_span, pkt.meta.tm_enqueued, now);
            self.metrics
                .record_span(self.mh.tx_latency, pkt.meta.created, done);
        }
        if self.tracer.hops_on() {
            self.tracer
                .record_hop(pkt.meta.id, Site::Tx(port), now, done, HopCtx::NONE);
        }
        self.int_stamp(&mut pkt, Site::Tx(port), now, done, HopCtx::NONE);
        if self.int.samples(pkt.meta.id) {
            // Sink export: fold the completed stack into the per-flow
            // aggregation cell and emit a postcard for the collector. The
            // stack stays on the packet — in a fabric it rides the frame
            // to the next device, which keeps appending (INT-XD style:
            // every device postcards, the last carries the full chain).
            // The sink FIFO is bounded: an undrained collector sheds
            // postcards (counted), and the shed path skips the stack
            // clone entirely so a full FIFO costs no allocation.
            const EMPTY: &IntStack = &IntStack {
                stamps: Vec::new(),
                truncated: 0,
            };
            let stack = pkt.meta.int.as_deref().unwrap_or(EMPTY);
            self.int_flows.fold(pkt.meta.flow.0, stack);
            if self.postcards.len() < POSTCARDS_CAP {
                self.postcards.push(Postcard {
                    device: self.cfg.device,
                    pkt: pkt.meta.id,
                    flow: pkt.meta.flow.0,
                    port: port.0,
                    time: done,
                    stack: stack.clone(),
                });
                self.int_postcards += 1;
            } else {
                self.int_postcards_dropped += 1;
            }
        }
        self.counters.delivered += 1;
        self.in_flight -= 1;
        self.out_meter
            .record(pkt.wire_bytes(), pkt.meta.goodput_bytes, pkt.meta.elements);
        self.latency.record(done.saturating_since(pkt.meta.created));
        self.last_delivery = self.last_delivery.max(done);
        if pkt.meta.fcs.is_some() {
            // Deparse writebacks changed the bytes on purpose; re-stamp the
            // frame check like a NIC recomputing the CRC on transmit.
            pkt.reseal();
        }
        self.delivered.push(Delivered {
            port,
            time: done,
            data: pkt.data,
            meta: pkt.meta,
        });
    }

    /// Parse a packet, accounting failures (attributed to the pipeline
    /// `site` whose parser rejected it). Returns the PHV, extraction
    /// order, header byte count, and parse depth.
    fn parse(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        site: Site,
    ) -> Option<(Phv, Vec<adcp_lang::HeaderId>, usize, u32)> {
        let (sphv, sext) = self
            .scratch
            .take()
            .unwrap_or_else(|| (Phv::empty(), Vec::new()));
        match self.program.parser.parse_reusing(
            &self.program.headers,
            &self.layout,
            &pkt.data,
            sphv,
            sext,
        ) {
            Ok(o) => {
                if self.metrics.enabled() {
                    self.metrics.record(
                        self.mh.parse_span,
                        Duration(o.depth as u64 * self.period.as_ps()),
                    );
                }
                Some((o.phv, o.extracted, o.consumed, o.depth))
            }
            Err(_) => {
                self.counters.parse_errors += 1;
                self.drop_packet(now, pkt.meta.id, site, DropReason::ParseError, HopCtx::NONE);
                None
            }
        }
    }

    /// Deparse the PHV into the packet and move intrinsics into metadata.
    /// The rebuilt frame goes into a buffer recycled through the arena; the
    /// packet's previous buffer (when exclusively owned) returns to it.
    fn writeback(
        &mut self,
        mut pkt: Packet,
        mut phv: Phv,
        extracted: Vec<adcp_lang::HeaderId>,
        consumed: usize,
    ) -> Packet {
        let mut buf = self.store.take();
        let payload = &pkt.data[consumed.min(pkt.data.len())..];
        deparse_into(
            &mut buf,
            &self.program.headers,
            &self.layout,
            &phv,
            &extracted,
            payload,
        );
        let old = std::mem::replace(&mut pkt.data, FrameBuf::Owned(buf));
        if let FrameBuf::Owned(v) = old {
            self.store.recycle(v);
        }
        pkt.meta.egress = std::mem::take(&mut phv.intr.egress);
        pkt.meta.central_pipe = phv.intr.central_pipe.or(pkt.meta.central_pipe);
        if let Some(k) = phv.intr.sort_key {
            pkt.meta.sort_key = Some(k);
        }
        pkt.meta.elements = pkt.meta.elements.max(phv.intr.elements);
        self.scratch = Some((phv, extracted));
        pkt
    }

    /// Account one dropped packet: decrement in-flight and hand the typed
    /// reason (plus queue state at the moment of death) to the journey
    /// tracer's forensics. Every ad-hoc drop counter increment is paired
    /// 1:1 with a call here carrying the matching reason — that pairing is
    /// what the forensics↔counter cross-check asserts.
    fn drop_packet(&mut self, now: SimTime, id: u64, site: Site, reason: DropReason, ctx: HopCtx) {
        self.in_flight -= 1;
        self.tracer.record_drop(now, id, site, reason, ctx);
    }
}
