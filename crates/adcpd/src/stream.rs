//! Rotating, schema-validated observability streams.
//!
//! A long-running daemon cannot accumulate observability in memory or in
//! one ever-growing file; it emits **rotating generations** and deletes
//! the oldest, so disk use is bounded by `keep` regardless of uptime.
//! Each snapshot generation writes two files into the stream directory:
//!
//! * `metrics-<seq>.json` — the switch's full metrics-registry export,
//!   validated against `schemas/metrics.schema.json` **before** it
//!   touches disk (a malformed snapshot is a bug, not a log line).
//! * `trace-<seq>.json` — a Chrome trace-event timeline of the slices,
//!   SLO verdicts, counter deltas, and control-plane actions since the
//!   previous snapshot, validated against
//!   `schemas/chrome_trace.schema.json`. Load it in `about:tracing` /
//!   Perfetto.
//!
//! Counter deltas are computed stream-side: the stream remembers the
//! previous snapshot's flattened `scope/name` counters and emits one
//! Chrome `ph:"C"` counter event carrying only the counters that moved —
//! the compact diff a dashboard tails, while the full snapshot stays
//! available for state reconstruction.

use adcp_sim::schema::{load_chrome_trace_schema, load_metrics_schema, validate};
use adcp_sim::time::SimTime;
use serde::{Map, Value};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};

/// Where and how much to stream.
#[derive(Debug, Clone)]
pub struct StreamCfg {
    /// Directory for the rotating files (created if absent).
    pub dir: PathBuf,
    /// Generations to retain per stream; older files are deleted.
    pub keep: usize,
}

/// One scalar argument on a trace event.
pub type Arg = (&'static str, u64);

/// Accumulates Chrome trace events between snapshots.
///
/// Timestamps are microseconds of **simulation** time (the daemon's whole
/// observable output is wall-clock-free); `pid` 1 is the daemon, `tid` 1
/// the serving loop, `tid` 2 the control plane.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Value>,
}

fn us(t: SimTime) -> f64 {
    t.as_ps() as f64 / 1e6
}

fn event(name: &str, cat: &str, ph: &str, ts: f64, tid: u64, args: &[Arg]) -> Value {
    let mut m = Map::new();
    m.insert("name".into(), Value::String(name.into()));
    m.insert("cat".into(), Value::String(cat.into()));
    m.insert("ph".into(), Value::String(ph.into()));
    m.insert("ts".into(), Value::F64(ts));
    m.insert("pid".into(), Value::U64(1));
    m.insert("tid".into(), Value::U64(tid));
    if !args.is_empty() {
        let mut a = Map::new();
        for &(k, v) in args {
            a.insert(k.into(), Value::U64(v));
        }
        m.insert("args".into(), Value::Object(a));
    }
    Value::Object(m)
}

impl TraceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Events accumulated so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded since the last build.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A completed time slice (`ph:"X"` span on the serving track).
    pub fn slice(&mut self, name: &str, start: SimTime, end: SimTime, args: &[Arg]) {
        let mut ev = event(name, "slice", "X", us(start), 1, args);
        if let Value::Object(m) = &mut ev {
            m.insert("dur".into(), Value::F64(us(end) - us(start)));
        }
        self.events.push(ev);
    }

    /// A control-plane action (`ph:"i"` instant on the control track).
    pub fn instant(&mut self, name: &str, at: SimTime, args: &[Arg]) {
        let mut ev = event(name, "ctrl", "i", us(at), 2, args);
        if let Value::Object(m) = &mut ev {
            m.insert("s".into(), Value::String("p".into()));
        }
        self.events.push(ev);
    }

    /// A counter sample (`ph:"C"`), e.g. the per-snapshot metric deltas.
    pub fn counter(&mut self, name: &str, at: SimTime, args: &[Arg]) {
        self.events
            .push(event(name, "metrics", "C", us(at), 1, args));
    }

    /// Drain into a complete Chrome trace document.
    pub fn build(&mut self) -> Value {
        let mut root = Map::new();
        root.insert(
            "traceEvents".into(),
            Value::Array(std::mem::take(&mut self.events)),
        );
        root.insert("displayTimeUnit".into(), Value::String("ms".into()));
        Value::Object(root)
    }
}

/// Flatten a metrics export into `scope/name -> value` counters.
fn flatten_counters(metrics: &Value) -> BTreeMap<String, u64> {
    let mut flat = BTreeMap::new();
    let Some(Value::Object(scopes)) = metrics.get("scopes") else {
        return flat;
    };
    for (scope, block) in scopes.iter() {
        if let Some(Value::Object(counters)) = block.get("counters") {
            for (name, v) in counters.iter() {
                if let Some(n) = v.as_u64() {
                    flat.insert(format!("{scope}/{name}"), n);
                }
            }
        }
    }
    flat
}

/// The rotating writer. One instance per daemon.
#[derive(Debug)]
pub struct MetricsStream {
    cfg: StreamCfg,
    seq: u64,
    metrics_files: VecDeque<PathBuf>,
    trace_files: VecDeque<PathBuf>,
    prev: BTreeMap<String, u64>,
    metrics_schema: Value,
    chrome_schema: Value,
    /// Snapshots validated and written over the stream's lifetime.
    pub written: u64,
}

impl MetricsStream {
    /// Open (and create) the stream directory and load both schemas.
    pub fn new(cfg: StreamCfg) -> Result<Self, String> {
        assert!(cfg.keep > 0, "must retain at least one generation");
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| format!("create {}: {e}", cfg.dir.display()))?;
        Ok(MetricsStream {
            cfg,
            seq: 0,
            metrics_files: VecDeque::new(),
            trace_files: VecDeque::new(),
            prev: BTreeMap::new(),
            metrics_schema: load_metrics_schema()?,
            chrome_schema: load_chrome_trace_schema()?,
            written: 0,
        })
    }

    /// The stream directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Validate and write one generation: the full metrics snapshot and
    /// the accumulated trace (the builder is drained; the counter-delta
    /// event is appended to it first). Rotates both streams to `keep`
    /// generations. Returns the sequence number written.
    pub fn snapshot(
        &mut self,
        at: SimTime,
        metrics: &Value,
        trace: &mut TraceBuilder,
    ) -> Result<u64, String> {
        validate(metrics, &self.metrics_schema)
            .map_err(|e| format!("metrics snapshot invalid: {}", e.join("; ")))?;

        // Delta event: only the counters that moved since last snapshot.
        let flat = flatten_counters(metrics);
        let moved: Vec<(String, u64)> = flat
            .iter()
            .filter(|(k, v)| self.prev.get(*k) != Some(v))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        if !moved.is_empty() {
            // Args are built inline (TraceBuilder::counter takes &'static
            // names; delta keys are dynamic).
            let mut a = Map::new();
            for (k, v) in &moved {
                a.insert(k.clone(), Value::U64(*v));
            }
            let mut ev = event("counter-deltas", "metrics", "C", us(at), 1, &[]);
            if let Value::Object(m) = &mut ev {
                m.insert("args".into(), Value::Object(a));
            }
            trace.events.push(ev);
        }
        self.prev = flat;

        let doc = trace.build();
        validate(&doc, &self.chrome_schema)
            .map_err(|e| format!("chrome trace invalid: {}", e.join("; ")))?;

        let seq = self.seq;
        let mpath = self.cfg.dir.join(format!("metrics-{seq:06}.json"));
        let tpath = self.cfg.dir.join(format!("trace-{seq:06}.json"));
        let mtxt = serde_json::to_string_pretty(metrics).map_err(|e| e.to_string())?;
        let ttxt = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        std::fs::write(&mpath, mtxt).map_err(|e| format!("write {}: {e}", mpath.display()))?;
        std::fs::write(&tpath, ttxt).map_err(|e| format!("write {}: {e}", tpath.display()))?;
        self.metrics_files.push_back(mpath);
        self.trace_files.push_back(tpath);
        for files in [&mut self.metrics_files, &mut self.trace_files] {
            while files.len() > self.cfg.keep {
                let old = files.pop_front().expect("non-empty");
                let _ = std::fs::remove_file(old);
            }
        }
        self.seq += 1;
        self.written += 1;
        Ok(seq)
    }

    /// Paths currently on disk (oldest first), metrics then trace.
    pub fn live_files(&self) -> (Vec<PathBuf>, Vec<PathBuf>) {
        (
            self.metrics_files.iter().cloned().collect(),
            self.trace_files.iter().cloned().collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_sim::metrics::MetricsRegistry;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("adcpd-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn registry_json(bump: u64) -> Value {
        let mut m = MetricsRegistry::new_enabled();
        let s = m.scope("tx");
        let c = m.counter(s, "packets");
        m.add(c, bump);
        m.to_json()
    }

    #[test]
    fn snapshots_rotate_and_stay_schema_valid() {
        let dir = tmpdir("rotate");
        let mut st = MetricsStream::new(StreamCfg {
            dir: dir.clone(),
            keep: 3,
        })
        .unwrap();
        let mut tb = TraceBuilder::new();
        for i in 0..7u64 {
            tb.slice(
                "slice",
                SimTime(i * 1_000_000),
                SimTime((i + 1) * 1_000_000),
                &[("delivered", i * 10)],
            );
            st.snapshot(
                SimTime((i + 1) * 1_000_000),
                &registry_json(i * 10),
                &mut tb,
            )
            .unwrap();
        }
        let (m, t) = st.live_files();
        assert_eq!(m.len(), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(st.written, 7);
        // Oldest generations are gone; newest exist and re-validate.
        assert!(!dir.join("metrics-000000.json").exists());
        let schema = load_metrics_schema().unwrap();
        for p in &m {
            let v = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            validate(&v, &schema).unwrap();
        }
        let chrome = load_chrome_trace_schema().unwrap();
        for p in &t {
            let v = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            validate(&v, &chrome).unwrap();
            assert!(v.get("traceEvents").is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_deltas_only_report_movement() {
        let dir = tmpdir("delta");
        let mut st = MetricsStream::new(StreamCfg {
            dir: dir.clone(),
            keep: 2,
        })
        .unwrap();
        let mut tb = TraceBuilder::new();
        st.snapshot(SimTime(1), &registry_json(5), &mut tb).unwrap();
        // Unchanged snapshot: no delta event in the next trace file.
        st.snapshot(SimTime(2), &registry_json(5), &mut tb).unwrap();
        let (_, traces) = st.live_files();
        let last = std::fs::read_to_string(traces.last().unwrap()).unwrap();
        let v = serde_json::from_str(&last).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
