//! Rotating, schema-validated observability streams.
//!
//! A long-running daemon cannot accumulate observability in memory or in
//! one ever-growing file; it emits **rotating generations** and deletes
//! the oldest, so disk use is bounded by `keep` regardless of uptime.
//! Each snapshot generation writes two files into the stream directory:
//!
//! * `metrics-<seq>.json` — the switch's full metrics-registry export,
//!   validated against `schemas/metrics.schema.json` **before** it
//!   touches disk (a malformed snapshot is a bug, not a log line).
//! * `trace-<seq>.json` — a Chrome trace-event timeline of the slices,
//!   SLO verdicts, counter deltas, and control-plane actions since the
//!   previous snapshot, validated against
//!   `schemas/chrome_trace.schema.json`. Load it in `about:tracing` /
//!   Perfetto.
//! * `telemetry-<seq>.json` — when the daemon runs with INT stamping on,
//!   the collector's report (per-flow paths, queue-depth series,
//!   microbursts, path changes), validated against
//!   `schemas/telemetry.schema.json`.
//!
//! Counter deltas are computed stream-side: the stream remembers the
//! previous snapshot's flattened `scope/name` counters and emits one
//! Chrome `ph:"C"` counter event carrying only the counters that moved —
//! the compact diff a dashboard tails, while the full snapshot stays
//! available for state reconstruction.
//!
//! Every file lands via write-to-temp + rename, so a flush interrupted
//! mid-write (crash, SIGKILL, full disk) can never leave a truncated
//! generation under a final name: readers see either the previous
//! complete file set or the new one, and stale `*.tmp` residue is
//! harmless and overwritten by the next flush.

use adcp_sim::schema::{
    load_chrome_trace_schema, load_metrics_schema, load_telemetry_schema, validate,
};
use adcp_sim::time::SimTime;
use serde::{Map, Value};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};

/// Where and how much to stream.
#[derive(Debug, Clone)]
pub struct StreamCfg {
    /// Directory for the rotating files (created if absent).
    pub dir: PathBuf,
    /// Generations to retain per stream; older files are deleted.
    pub keep: usize,
}

/// One scalar argument on a trace event.
pub type Arg = (&'static str, u64);

/// Accumulates Chrome trace events between snapshots.
///
/// Timestamps are microseconds of **simulation** time (the daemon's whole
/// observable output is wall-clock-free); `pid` 1 is the daemon, `tid` 1
/// the serving loop, `tid` 2 the control plane.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Value>,
}

fn us(t: SimTime) -> f64 {
    t.as_ps() as f64 / 1e6
}

fn event(name: &str, cat: &str, ph: &str, ts: f64, tid: u64, args: &[Arg]) -> Value {
    let mut m = Map::new();
    m.insert("name".into(), Value::String(name.into()));
    m.insert("cat".into(), Value::String(cat.into()));
    m.insert("ph".into(), Value::String(ph.into()));
    m.insert("ts".into(), Value::F64(ts));
    m.insert("pid".into(), Value::U64(1));
    m.insert("tid".into(), Value::U64(tid));
    if !args.is_empty() {
        let mut a = Map::new();
        for &(k, v) in args {
            a.insert(k.into(), Value::U64(v));
        }
        m.insert("args".into(), Value::Object(a));
    }
    Value::Object(m)
}

impl TraceBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Events accumulated so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded since the last build.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A completed time slice (`ph:"X"` span on the serving track).
    pub fn slice(&mut self, name: &str, start: SimTime, end: SimTime, args: &[Arg]) {
        let mut ev = event(name, "slice", "X", us(start), 1, args);
        if let Value::Object(m) = &mut ev {
            m.insert("dur".into(), Value::F64(us(end) - us(start)));
        }
        self.events.push(ev);
    }

    /// A control-plane action (`ph:"i"` instant on the control track).
    pub fn instant(&mut self, name: &str, at: SimTime, args: &[Arg]) {
        let mut ev = event(name, "ctrl", "i", us(at), 2, args);
        if let Value::Object(m) = &mut ev {
            m.insert("s".into(), Value::String("p".into()));
        }
        self.events.push(ev);
    }

    /// A counter sample (`ph:"C"`), e.g. the per-snapshot metric deltas.
    pub fn counter(&mut self, name: &str, at: SimTime, args: &[Arg]) {
        self.events
            .push(event(name, "metrics", "C", us(at), 1, args));
    }

    /// Drain into a complete Chrome trace document.
    pub fn build(&mut self) -> Value {
        let mut root = Map::new();
        root.insert(
            "traceEvents".into(),
            Value::Array(std::mem::take(&mut self.events)),
        );
        root.insert("displayTimeUnit".into(), Value::String("ms".into()));
        Value::Object(root)
    }
}

/// Flatten a metrics export into `scope/name -> value` counters.
fn flatten_counters(metrics: &Value) -> BTreeMap<String, u64> {
    let mut flat = BTreeMap::new();
    let Some(Value::Object(scopes)) = metrics.get("scopes") else {
        return flat;
    };
    for (scope, block) in scopes.iter() {
        if let Some(Value::Object(counters)) = block.get("counters") {
            for (name, v) in counters.iter() {
                if let Some(n) = v.as_u64() {
                    flat.insert(format!("{scope}/{name}"), n);
                }
            }
        }
    }
    flat
}

/// The rotating writer. One instance per daemon.
#[derive(Debug)]
pub struct MetricsStream {
    cfg: StreamCfg,
    seq: u64,
    metrics_files: VecDeque<PathBuf>,
    trace_files: VecDeque<PathBuf>,
    telemetry_files: VecDeque<PathBuf>,
    prev: BTreeMap<String, u64>,
    metrics_schema: Value,
    chrome_schema: Value,
    telemetry_schema: Value,
    /// Snapshots validated and written over the stream's lifetime.
    pub written: u64,
}

/// Write `text` under `path` atomically: flush to `<path>.tmp`, then
/// rename. An interrupted flush leaves at worst a stale temp file the
/// next flush overwrites — never a truncated final generation.
fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

impl MetricsStream {
    /// Open (and create) the stream directory and load both schemas.
    pub fn new(cfg: StreamCfg) -> Result<Self, String> {
        assert!(cfg.keep > 0, "must retain at least one generation");
        std::fs::create_dir_all(&cfg.dir)
            .map_err(|e| format!("create {}: {e}", cfg.dir.display()))?;
        Ok(MetricsStream {
            cfg,
            seq: 0,
            metrics_files: VecDeque::new(),
            trace_files: VecDeque::new(),
            telemetry_files: VecDeque::new(),
            prev: BTreeMap::new(),
            metrics_schema: load_metrics_schema()?,
            chrome_schema: load_chrome_trace_schema()?,
            telemetry_schema: load_telemetry_schema()?,
            written: 0,
        })
    }

    /// The stream directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Validate and write one generation: the full metrics snapshot, the
    /// accumulated trace (the builder is drained; the counter-delta event
    /// is appended to it first), and — when given — the current telemetry
    /// report. Rotates every stream to `keep` generations. Returns the
    /// sequence number written.
    pub fn snapshot(
        &mut self,
        at: SimTime,
        metrics: &Value,
        trace: &mut TraceBuilder,
        telemetry: Option<&Value>,
    ) -> Result<u64, String> {
        validate(metrics, &self.metrics_schema)
            .map_err(|e| format!("metrics snapshot invalid: {}", e.join("; ")))?;
        if let Some(t) = telemetry {
            validate(t, &self.telemetry_schema)
                .map_err(|e| format!("telemetry snapshot invalid: {}", e.join("; ")))?;
        }

        // Delta event: only the counters that moved since last snapshot.
        let flat = flatten_counters(metrics);
        let moved: Vec<(String, u64)> = flat
            .iter()
            .filter(|(k, v)| self.prev.get(*k) != Some(v))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        if !moved.is_empty() {
            // Args are built inline (TraceBuilder::counter takes &'static
            // names; delta keys are dynamic).
            let mut a = Map::new();
            for (k, v) in &moved {
                a.insert(k.clone(), Value::U64(*v));
            }
            let mut ev = event("counter-deltas", "metrics", "C", us(at), 1, &[]);
            if let Value::Object(m) = &mut ev {
                m.insert("args".into(), Value::Object(a));
            }
            trace.events.push(ev);
        }
        self.prev = flat;

        let doc = trace.build();
        validate(&doc, &self.chrome_schema)
            .map_err(|e| format!("chrome trace invalid: {}", e.join("; ")))?;

        let seq = self.seq;
        let mpath = self.cfg.dir.join(format!("metrics-{seq:06}.json"));
        let tpath = self.cfg.dir.join(format!("trace-{seq:06}.json"));
        let mtxt = serde_json::to_string_pretty(metrics).map_err(|e| e.to_string())?;
        let ttxt = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        write_atomic(&mpath, &mtxt)?;
        write_atomic(&tpath, &ttxt)?;
        self.metrics_files.push_back(mpath);
        self.trace_files.push_back(tpath);
        if let Some(t) = telemetry {
            let ypath = self.cfg.dir.join(format!("telemetry-{seq:06}.json"));
            let ytxt = serde_json::to_string_pretty(t).map_err(|e| e.to_string())?;
            write_atomic(&ypath, &ytxt)?;
            self.telemetry_files.push_back(ypath);
        }
        for files in [
            &mut self.metrics_files,
            &mut self.trace_files,
            &mut self.telemetry_files,
        ] {
            while files.len() > self.cfg.keep {
                let old = files.pop_front().expect("non-empty");
                let _ = std::fs::remove_file(old);
            }
        }
        self.seq += 1;
        self.written += 1;
        Ok(seq)
    }

    /// Paths currently on disk (oldest first), metrics then trace.
    pub fn live_files(&self) -> (Vec<PathBuf>, Vec<PathBuf>) {
        (
            self.metrics_files.iter().cloned().collect(),
            self.trace_files.iter().cloned().collect(),
        )
    }

    /// Telemetry generations currently on disk (oldest first; empty when
    /// the daemon never passed a report).
    pub fn live_telemetry_files(&self) -> Vec<PathBuf> {
        self.telemetry_files.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_sim::metrics::MetricsRegistry;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("adcpd-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn registry_json(bump: u64) -> Value {
        let mut m = MetricsRegistry::new_enabled();
        let s = m.scope("tx");
        let c = m.counter(s, "packets");
        m.add(c, bump);
        m.to_json()
    }

    #[test]
    fn snapshots_rotate_and_stay_schema_valid() {
        let dir = tmpdir("rotate");
        let mut st = MetricsStream::new(StreamCfg {
            dir: dir.clone(),
            keep: 3,
        })
        .unwrap();
        let mut tb = TraceBuilder::new();
        for i in 0..7u64 {
            tb.slice(
                "slice",
                SimTime(i * 1_000_000),
                SimTime((i + 1) * 1_000_000),
                &[("delivered", i * 10)],
            );
            st.snapshot(
                SimTime((i + 1) * 1_000_000),
                &registry_json(i * 10),
                &mut tb,
                None,
            )
            .unwrap();
        }
        let (m, t) = st.live_files();
        assert_eq!(m.len(), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(st.written, 7);
        // Oldest generations are gone; newest exist and re-validate.
        assert!(!dir.join("metrics-000000.json").exists());
        let schema = load_metrics_schema().unwrap();
        for p in &m {
            let v = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            validate(&v, &schema).unwrap();
        }
        let chrome = load_chrome_trace_schema().unwrap();
        for p in &t {
            let v = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            validate(&v, &chrome).unwrap();
            assert!(v.get("traceEvents").is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A minimal telemetry report: one postcard through one collector.
    fn telemetry_json(pkt: u64, depth: u32) -> Value {
        use adcp_sim::int::{IntStack, IntStamp, Postcard};
        use adcp_sim::telemetry::Collector;
        use adcp_sim::trace::{HopCtx, Site};
        let mut stack = IntStack::default();
        stack.push(IntStamp {
            device: 0,
            site: Site::Tm1,
            enter: SimTime(1_000),
            exit: SimTime(1_100),
            ctx: HopCtx {
                queue_depth: Some(depth),
                buffer_cells: None,
                epoch: None,
            },
        });
        let mut c = Collector::default();
        c.ingest(&Postcard {
            device: 0,
            pkt,
            flow: 1,
            port: 0,
            time: SimTime(2_000),
            stack,
        });
        c.report()
    }

    /// Rotation must bound the *whole directory*, telemetry generations
    /// included, and every retained generation must re-validate against
    /// its schema across the rotation boundary.
    #[test]
    fn telemetry_generations_rotate_and_bound_the_directory() {
        let dir = tmpdir("telemetry");
        let mut st = MetricsStream::new(StreamCfg {
            dir: dir.clone(),
            keep: 2,
        })
        .unwrap();
        let mut tb = TraceBuilder::new();
        for i in 0..5u64 {
            st.snapshot(
                SimTime((i + 1) * 1_000),
                &registry_json(i),
                &mut tb,
                Some(&telemetry_json(i, i as u32 + 1)),
            )
            .unwrap();
        }
        let y = st.live_telemetry_files();
        assert_eq!(y.len(), 2);
        assert!(!dir.join("telemetry-000000.json").exists());
        let schema = load_telemetry_schema().unwrap();
        for p in &y {
            let v = serde_json::from_str(&std::fs::read_to_string(p).unwrap()).unwrap();
            validate(&v, &schema).unwrap();
        }
        // Disk use is bounded: keep generations × 3 streams, nothing else
        // (no temp residue, no unrotated strays).
        let entries = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(entries, 2 * 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A flush interrupted mid-write (simulated by stale truncated `.tmp`
    /// residue from a dead process) must not corrupt the stream: the next
    /// snapshot overwrites the residue and every final-name file on disk
    /// parses and validates.
    #[test]
    fn interrupted_flush_leaves_only_well_formed_generations() {
        let dir = tmpdir("interrupt");
        let mut st = MetricsStream::new(StreamCfg {
            dir: dir.clone(),
            keep: 4,
        })
        .unwrap();
        // Residue as a crashed writer would leave it: truncated JSON under
        // the temp names of the very next generation.
        for stem in ["metrics-000000", "trace-000000", "telemetry-000000"] {
            std::fs::write(dir.join(format!("{stem}.json.tmp")), "{\"trunc").unwrap();
        }
        let mut tb = TraceBuilder::new();
        tb.slice("s", SimTime(0), SimTime(1_000), &[("delivered", 1)]);
        st.snapshot(
            SimTime(1_000),
            &registry_json(1),
            &mut tb,
            Some(&telemetry_json(0, 3)),
        )
        .unwrap();
        let mschema = load_metrics_schema().unwrap();
        let cschema = load_chrome_trace_schema().unwrap();
        let yschema = load_telemetry_schema().unwrap();
        let mut finals = 0;
        for e in std::fs::read_dir(&dir).unwrap() {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "stale temp survived: {name}");
            let v: Value = serde_json::from_str(&std::fs::read_to_string(&p).unwrap())
                .unwrap_or_else(|e| panic!("{name} is not valid JSON: {e:?}"));
            let schema = if name.starts_with("metrics-") {
                &mschema
            } else if name.starts_with("trace-") {
                &cschema
            } else {
                &yschema
            };
            validate(&v, schema).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            finals += 1;
        }
        assert_eq!(finals, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_deltas_only_report_movement() {
        let dir = tmpdir("delta");
        let mut st = MetricsStream::new(StreamCfg {
            dir: dir.clone(),
            keep: 2,
        })
        .unwrap();
        let mut tb = TraceBuilder::new();
        st.snapshot(SimTime(1), &registry_json(5), &mut tb, None)
            .unwrap();
        // Unchanged snapshot: no delta event in the next trace file.
        st.snapshot(SimTime(2), &registry_json(5), &mut tb, None)
            .unwrap();
        let (_, traces) = st.live_files();
        let last = std::fs::read_to_string(traces.last().unwrap()).unwrap();
        let v = serde_json::from_str(&last).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
