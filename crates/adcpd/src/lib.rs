//! # adcpd — the ADCP serving daemon
//!
//! Everything else in this repository runs a workload to completion and
//! exits; real switches do neither. `adcpd` models the missing regime:
//! a **continuously running** ADCP serving an open-loop population of
//! clients whose offered load breathes (diurnal sinusoid) and spikes
//! (Markov-modulated bursts), while a control loop watches per-app
//! latency SLOs and **scales the central pipeline allocation up and
//! down** — the paper's §3.1 repartitioning machinery promoted from a
//! one-shot demo to a closed loop.
//!
//! The crate is a library plus a thin `adcpd` binary:
//!
//! * [`menu`] — the serving programs (shard counting / shard max) with
//!   bounded-memory correctness oracles.
//! * [`slo`] — sliding-window p50/p99 SLO tracking and burn rate, the
//!   signal the autoscaler consumes.
//! * [`stream`] — rotating, schema-validated metrics snapshots and
//!   Chrome-trace slice timelines.
//! * [`daemon`] — the event loop: bounded time slices, fault schedules,
//!   graceful drain, and the zero-drift soak report.
//!
//! Determinism is load-bearing: a soak report is a pure function of the
//! [`daemon::DaemonCfg`] — it contains no wall-clock times and no worker
//! counts, so the same config must produce **byte-identical** reports at
//! any `central_workers` setting (CI runs 1/2/4). The daemon keeps the
//! journey tracer in drops-only mode (`JourneyTracer::with_sample(0, 1)`)
//! so forensics stay exact without disabling sharded execution.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod daemon;
pub mod menu;
pub mod slo;
pub mod stream;
