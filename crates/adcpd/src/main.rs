//! `adcpd` — the long-running ADCP serving daemon.
//!
//! Modes:
//!
//! * `--soak-quick` — the compressed CI soak (fault schedule, autoscaler
//!   must demonstrably scale up AND down, books must balance). Exit code
//!   0 only when the report meets the soak bar.
//! * `--soak` — the same choreography over 4× the sim time.
//! * `--serve` — serve until SIGINT/SIGTERM (or `--slices N`), then
//!   drain gracefully and report. Exit code reflects invariant health.
//!
//! Common flags: `--seed N`, `--workers N`, `--app shardcount|shardmax`,
//! `--out DIR` (rotating metrics/trace stream), `--json` (report as JSON
//! on stdout instead of the human summary).

use adcpd::daemon::{Daemon, DaemonCfg, SoakReport};
use adcpd::menu::ServeApp;
use adcpd::stream::StreamCfg;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    mode: Mode,
    seed: u64,
    workers: usize,
    app: Option<ServeApp>,
    out: Option<PathBuf>,
    json: bool,
    slices: Option<u64>,
    int: bool,
}

#[derive(PartialEq)]
enum Mode {
    SoakQuick,
    Soak,
    Serve,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        mode: Mode::Serve,
        seed: 7,
        workers: 1,
        app: None,
        out: None,
        json: false,
        slices: None,
        int: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match a.as_str() {
            "--soak-quick" => cli.mode = Mode::SoakQuick,
            "--soak" => cli.mode = Mode::Soak,
            "--serve" => cli.mode = Mode::Serve,
            "--seed" => {
                cli.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--workers" => {
                cli.workers = grab("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--app" => {
                let v = grab("--app")?;
                cli.app = Some(ServeApp::parse(&v).ok_or_else(|| format!("unknown app {v:?}"))?);
            }
            "--out" => cli.out = Some(PathBuf::from(grab("--out")?)),
            "--json" => cli.json = true,
            "--int" => cli.int = true,
            "--slices" => {
                cli.slices = Some(
                    grab("--slices")?
                        .parse()
                        .map_err(|e| format!("--slices: {e}"))?,
                )
            }
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(cli)
}

const HELP: &str = "\
adcpd - ADCP serving daemon with SLO tracking and a closed-loop autoscaler

USAGE:
    adcpd [--soak-quick | --soak | --serve] [FLAGS]

FLAGS:
    --soak-quick       compressed CI soak; exit 0 iff healthy AND the
                       autoscaler scaled up and down at least once
    --soak             full soak (4x the sim time of --soak-quick)
    --serve            serve until SIGINT/SIGTERM (default mode)
    --seed N           master seed (default 7)
    --workers N        central worker threads (wall-clock only; the
                       report is byte-identical across worker counts)
    --app NAME         shardcount | shardmax (default shardcount)
    --out DIR          stream rotating metrics-/trace-*.json into DIR
    --int              stamp INT telemetry and stream telemetry-*.json
                       reports (microbursts, path changes, flow paths);
                       correlated microburst/SLO alerts land in the trace
    --json             print the report as JSON instead of a summary
    --slices N         override the slice budget (u64::MAX-like = forever)
    -h, --help         this text
";

fn human_summary(r: &SoakReport) {
    println!("adcpd soak report — app={} seed={}", r.app, r.seed);
    println!(
        "  sim time      {:.3} ms over {} slices{}",
        r.sim_ns as f64 / 1e6,
        r.slices_run,
        if r.shutdown_requested {
            " (shutdown requested)"
        } else {
            ""
        }
    );
    println!(
        "  traffic       {} arrivals, {} wire-dropped, {} injected, {} delivered",
        r.arrivals, r.wire_dropped, r.injected, r.delivered
    );
    for d in &r.drops {
        println!("  drop          {} (tm{}) = {}", d.reason, d.tm, d.count);
    }
    println!(
        "  latency       p50 {} ns / p99 {} ns (objectives {} / {}); {}/{} slices violated",
        r.slo.p50_ns,
        r.slo.p99_ns,
        r.slo.objective_p50_ns,
        r.slo.objective_p99_ns,
        r.slo.violations,
        r.slo.slices
    );
    println!(
        "  autoscaler    {} up / {} down / {} skew; final pipes {} epoch {}",
        r.scale_ups, r.scale_downs, r.skew_rebalances, r.final_pipes, r.final_epoch
    );
    println!(
        "  migration     {} migrations, {} keys moved, {} misroutes",
        r.migrations, r.moved_keys, r.misroutes
    );
    if let Some(t) = &r.telemetry {
        println!(
            "  telemetry     {} postcards / {} stamps over {} pkts; {} microbursts \
             ({} burst slices), {} path changes, {} SLO alerts",
            t.postcards,
            t.stamps,
            t.pkts,
            t.microbursts,
            t.microburst_slices,
            t.path_changes,
            t.alerts
        );
    }
    if r.snapshots_written > 0 {
        println!("  stream        {} snapshots written", r.snapshots_written);
    }
    for line in &r.drift {
        println!("  DRIFT         {line}");
    }
    for line in &r.oracle {
        println!("  ORACLE        {line}");
    }
    println!(
        "  verdict       conservation={} healthy={}",
        r.conservation_ok, r.healthy
    );
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("adcpd: {e}");
            return ExitCode::from(2);
        }
    };
    adcp_sim::shutdown::install();
    let mut cfg = match cli.mode {
        Mode::SoakQuick => DaemonCfg::soak_quick(cli.seed),
        Mode::Soak => DaemonCfg::soak(cli.seed),
        Mode::Serve => DaemonCfg {
            slices: u64::MAX,
            ..DaemonCfg::soak_quick(cli.seed)
        },
    }
    .with_workers(cli.workers);
    if let Some(app) = cli.app {
        cfg.app = app;
    }
    if let Some(n) = cli.slices {
        cfg.slices = n;
    }
    if let Some(dir) = cli.out {
        cfg.stream = Some(StreamCfg { dir, keep: 8 });
    }
    cfg.int = cli.int;
    let daemon = match Daemon::new(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("adcpd: {e}");
            return ExitCode::from(2);
        }
    };
    let report = daemon.run();
    if cli.json {
        println!("{}", report.to_json());
    } else {
        human_summary(&report);
    }
    let ok = match cli.mode {
        Mode::SoakQuick | Mode::Soak => report.meets_soak_bar(),
        Mode::Serve => report.healthy,
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
