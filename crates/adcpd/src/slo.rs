//! Sliding-window SLO tracking: the daemon's eyes.
//!
//! Latency is aggregated per time slice into a [`LatencyHist`]; the
//! tracker keeps the last `window` slice histograms, merges them on
//! demand (exact — the log-linear histograms merge losslessly bucket by
//! bucket), and classifies each slice against the p50/p99 objectives.
//! The **burn rate** — the fraction of window slices in violation — is
//! the signal [`adcp_ctrl::Controller::tick_serving`] consumes: sustained
//! burn above the scale-up threshold grows the active central-pipe set,
//! sustained burn near zero shrinks it.
//!
//! Slices with no completed responses are counted in the window but are
//! never violations: an idle service is not missing its SLO, and a
//! drained window must decay the burn rate toward zero so the autoscaler
//! can release pipes during troughs.

use adcp_ctrl::SloSignal;
use adcp_sim::stats::LatencyHist;
use serde::Serialize;
use std::collections::VecDeque;

/// Latency objectives for one app, evaluated per slice.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SloPolicy {
    /// Median objective, ns.
    pub p50_ns: u64,
    /// Tail objective, ns.
    pub p99_ns: u64,
    /// Sliding-window length, in slices.
    pub window: usize,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            p50_ns: 2_000,
            p99_ns: 10_000,
            window: 8,
        }
    }
}

/// Verdict for one pushed slice.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SliceVerdict {
    /// Responses completed in the slice.
    pub count: u64,
    /// Slice median, ns (0 when empty).
    pub p50_ns: u64,
    /// Slice tail, ns (0 when empty).
    pub p99_ns: u64,
    /// True when either objective was missed.
    pub violated: bool,
}

/// Sliding window of per-slice latency histograms with burn-rate math.
#[derive(Debug, Clone)]
pub struct SloTracker {
    policy: SloPolicy,
    window: VecDeque<(LatencyHist, bool)>,
    /// Lifetime latency across every slice ever pushed (exact merge).
    cumulative: LatencyHist,
    violations_total: u64,
    slices_total: u64,
}

impl SloTracker {
    /// Empty tracker for one app's policy.
    pub fn new(policy: SloPolicy) -> Self {
        assert!(policy.window > 0, "window must hold at least one slice");
        SloTracker {
            policy,
            window: VecDeque::with_capacity(policy.window + 1),
            cumulative: LatencyHist::new(),
            violations_total: 0,
            slices_total: 0,
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Push one slice's latency histogram; evicts the oldest slice once
    /// the window is full. Returns the slice verdict.
    pub fn push_slice(&mut self, h: LatencyHist) -> SliceVerdict {
        let count = h.count();
        let p50_ns = h.percentile_ps(0.50) / 1_000;
        let p99_ns = h.percentile_ps(0.99) / 1_000;
        let violated = count > 0 && (p50_ns > self.policy.p50_ns || p99_ns > self.policy.p99_ns);
        self.cumulative.merge(&h);
        self.window.push_back((h, violated));
        if self.window.len() > self.policy.window {
            self.window.pop_front();
        }
        self.slices_total += 1;
        if violated {
            self.violations_total += 1;
        }
        SliceVerdict {
            count,
            p50_ns,
            p99_ns,
            violated,
        }
    }

    /// Fraction of window slices currently in violation (0 when empty).
    pub fn burn_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let v = self.window.iter().filter(|(_, bad)| *bad).count();
        v as f64 / self.window.len() as f64
    }

    /// True once the window holds its full complement of slices.
    pub fn window_full(&self) -> bool {
        self.window.len() >= self.policy.window
    }

    /// The autoscaler input for the current window.
    pub fn signal(&self) -> SloSignal {
        SloSignal {
            burn_rate: self.burn_rate(),
            window_full: self.window_full(),
        }
    }

    /// Exact merge of every slice currently in the window.
    pub fn window_hist(&self) -> LatencyHist {
        let mut all = LatencyHist::new();
        for (h, _) in &self.window {
            all.merge(h);
        }
        all
    }

    /// Lifetime latency histogram (all slices ever pushed).
    pub fn cumulative(&self) -> &LatencyHist {
        &self.cumulative
    }

    /// Slices pushed over the tracker's lifetime.
    pub fn slices_total(&self) -> u64 {
        self.slices_total
    }

    /// Violating slices over the tracker's lifetime.
    pub fn violations_total(&self) -> u64 {
        self.violations_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_sim::time::Duration;

    fn slice_at(ns: u64, n: u32) -> LatencyHist {
        let mut h = LatencyHist::new();
        for _ in 0..n {
            h.record(Duration::from_ns(ns));
        }
        h
    }

    fn policy() -> SloPolicy {
        SloPolicy {
            p50_ns: 1_000,
            p99_ns: 5_000,
            window: 4,
        }
    }

    #[test]
    fn burn_rate_tracks_violating_fraction_of_window() {
        let mut t = SloTracker::new(policy());
        assert_eq!(t.burn_rate(), 0.0);
        t.push_slice(slice_at(100, 10)); // fine
        t.push_slice(slice_at(100, 10)); // fine
        assert!(!t.window_full());
        let v = t.push_slice(slice_at(50_000, 10)); // way over tail
        assert!(v.violated);
        t.push_slice(slice_at(100, 10));
        assert!(t.window_full());
        assert!((t.burn_rate() - 0.25).abs() < 1e-9);
        // Violation rolls out of the window after 4 clean slices.
        for _ in 0..4 {
            t.push_slice(slice_at(100, 10));
        }
        assert_eq!(t.burn_rate(), 0.0);
        assert_eq!(t.violations_total(), 1);
        assert_eq!(t.slices_total(), 8);
    }

    #[test]
    fn empty_slices_fill_the_window_without_violating() {
        let mut t = SloTracker::new(policy());
        for _ in 0..4 {
            let v = t.push_slice(LatencyHist::new());
            assert!(!v.violated);
        }
        assert!(t.window_full());
        assert_eq!(t.burn_rate(), 0.0);
        assert!(t.signal().window_full);
    }

    #[test]
    fn window_hist_is_exact_merge_of_retained_slices() {
        let mut t = SloTracker::new(policy());
        for i in 0..6u64 {
            t.push_slice(slice_at(100 * (i + 1), 5));
        }
        // Window holds the last 4 slices: 5 × {300,400,500,600} ns.
        let w = t.window_hist();
        assert_eq!(w.count(), 20);
        assert!(w.min_ps() >= 300_000);
        assert_eq!(t.cumulative().count(), 30);
    }
}
