//! The serving event loop: bounded slices, closed-loop scaling, graceful
//! drain, and the zero-drift soak report.
//!
//! # Shape of the loop
//!
//! Simulation time advances in fixed **slices** ([`DaemonCfg::slice`]).
//! Per slice the daemon (1) pulls the open-loop arrival process up to the
//! slice boundary and injects each request — after passing it through the
//! active fault window, if any; (2) runs the switch to the boundary;
//! (3) folds the completed responses into a slice latency histogram and
//! pushes it at the [`crate::slo::SloTracker`]; (4) gives the controller
//! one [`adcp_ctrl::Controller::tick_serving`] with the current burn
//! signal — which may scale the active central-pipe set up or down, or
//! start a skew rebalance; and (5) appends to the rotating observability
//! stream. The loop polls [`adcp_sim::shutdown::requested`] between
//! slices; a SIGINT therefore never interrupts a slice mid-event.
//!
//! # The pocket model
//!
//! The paper-scale reference model's central pipes forward ~600 Mpps
//! each; saturating one inside a CI-sized soak is impossible. The daemon
//! therefore serves on [`serving_model`] — the same architecture (demux
//! ingress, dual TMs, partitioned central region) clocked at 1 MHz with
//! 10G ports — so one central pipe saturates near 1 Mpps and a diurnal
//! peak of ~2 Mpps genuinely needs the autoscaler. Every invariant the
//! daemon certifies is clock-independent.
//!
//! # Determinism contract
//!
//! A [`SoakReport`] is a pure function of [`DaemonCfg`]: it contains sim
//! time, event counts and SLO math — never wall-clock readings, file
//! paths, or worker counts. `central_workers` only changes which OS
//! threads execute central pulls, so reports must be **byte-identical**
//! across worker counts; the soak test pins 1/2/4.

use crate::menu::{self, Oracle, ServeApp, ServeProgram, SHARDS};
use crate::slo::{SloPolicy, SloTracker};
use crate::stream::{MetricsStream, StreamCfg, TraceBuilder};
use adcp_core::{AdcpConfig, AdcpSwitch, MigrationStrategy, PartitionMap};
use adcp_ctrl::{Controller, RebalanceKind, ScalePolicy, SkewPolicy};
use adcp_lang::{Arch, CompileOptions, RegId, TargetModel};
use adcp_sim::fault::{FaultConfig, FaultInjector, FaultOutcome};
use adcp_sim::packet::PortId;
use adcp_sim::rng::SimRng;
use adcp_sim::shutdown;
use adcp_sim::stats::LatencyHist;
use adcp_sim::telemetry::{Collector, CollectorCfg};
use adcp_sim::time::{Duration, SimTime, TimeSlicer};
use adcp_sim::trace::{drop_counter_candidates, JourneyTracer, DROP_CHECK_REASONS};
use adcp_workloads::arrival::{DiurnalCfg, MmppCfg, OpenLoopSource};
use adcp_workloads::keys::ZipfKeys;
use serde::Serialize;

/// Independent RNG stream salts (one seed drives the whole daemon).
const KEY_SALT: u64 = 0x6b65_7973;
const FAULT_SALT: u64 = 0x6661_756c;

/// The scaled-down serving target: reference ADCP geometry (1:1 demux,
/// dual TMs, 4 central pipes) at a 1 MHz pipe clock and 10G ports, so a
/// compressed soak can saturate — and the autoscaler can rescue — a
/// single central pipe with tractable packet counts.
pub fn serving_model() -> TargetModel {
    TargetModel {
        name: "adcp-serving-pocket".into(),
        arch: Arch::Adcp,
        ports: 8,
        port_speed_gbps: 10,
        ports_per_pipe: 1,
        demux_factor: 1,
        pipe_ghz: 0.001,
        ingress_stages: 10,
        egress_stages: 10,
        central_stages: 12,
        central_pipes: 4,
        maus_per_stage: 16,
        mau_mem_bits: 1_024 * 1_024,
        stage_reg_bits: 4 * 1_024 * 1_024,
        phv_bits: 8_192,
        max_array_width: 16,
        min_wire_bytes: 84,
        recirc_reserved: 0.0,
        pooled_table_memory: false,
    }
}

/// One entry of the fault schedule: `cfg` applies to requests arriving in
/// `[from, to)`.
#[derive(Debug, Clone)]
pub struct FaultWindow {
    /// Window start (inclusive), sim time.
    pub from: SimTime,
    /// Window end (exclusive), sim time.
    pub to: SimTime,
    /// Drop/corrupt/delay probabilities inside the window.
    pub cfg: FaultConfig,
}

/// Complete, deterministic description of one daemon run.
#[derive(Debug, Clone)]
pub struct DaemonCfg {
    /// Which serving program to run.
    pub app: ServeApp,
    /// Master seed; every internal stream derives from it.
    pub seed: u64,
    /// Slice width (control-loop cadence).
    pub slice: Duration,
    /// Slices to run before draining (`u64::MAX` ≈ serve until signal).
    pub slices: u64,
    /// Diurnal base rate profile of the client population.
    pub diurnal: DiurnalCfg,
    /// Burst regime modulation (`None` = plain diurnal Poisson).
    pub mmpp: Option<MmppCfg>,
    /// Distinct request keys.
    pub keyspace: usize,
    /// Zipf skew of key popularity.
    pub zipf_skew: f64,
    /// Popularity-rank-to-key multiplier (hot-key shard collisions).
    pub stride: u64,
    /// Client ports used round-robin (responses go to the next port up).
    pub clients: u16,
    /// Per-queue depth in the TMs (bounds worst-case queueing latency).
    pub queue_depth: usize,
    /// Latency objectives and window.
    pub slo: SloPolicy,
    /// Autoscaling policy.
    pub scale: ScalePolicy,
    /// Skew-rebalance policy (the fall-through check each tick).
    pub skew_policy: SkewPolicy,
    /// Central pipes active at start.
    pub initial_pipes: u32,
    /// Central worker threads (wall-clock only; never observable).
    pub workers: usize,
    /// Fault schedule (non-overlapping windows; first match wins).
    pub faults: Vec<FaultWindow>,
    /// Rotating observability stream (`None` = in-memory only).
    pub stream: Option<StreamCfg>,
    /// Slices between stream snapshots.
    pub stream_every: u64,
    /// Stamp INT telemetry on the datapath and stream the collector's
    /// report per snapshot. Off by default: INT-on serializes central
    /// execution (the stamps observe per-pull TM state), so the soak's
    /// sharded-execution coverage keeps it opt-in.
    pub int: bool,
}

impl DaemonCfg {
    /// The compressed CI soak: ~5 diurnal periods in 64 ms of sim time,
    /// bursty arrivals peaking past a single pocket-pipe's capacity, and
    /// a drop → corrupt → delay fault schedule. Deterministically
    /// produces at least one scale-up and one scale-down under the
    /// default policies (pinned by `tests/soak.rs`).
    pub fn soak_quick(seed: u64) -> Self {
        let ms = |n: u64| SimTime::from_ms(n);
        DaemonCfg {
            app: ServeApp::ShardCount,
            seed,
            slice: Duration::from_us(250),
            slices: 256,
            diurnal: DiurnalCfg {
                base_pps: 550_000.0,
                amplitude: 0.85,
                period: Duration::from_ms(12),
                phase: 0.0,
            },
            mmpp: Some(MmppCfg {
                burst_factor: 2.2,
                mean_quiet: Duration::from_ms(2),
                mean_burst: Duration::from_us(700),
            }),
            keyspace: 4_096,
            zipf_skew: 1.1,
            stride: 4,
            clients: 4,
            queue_depth: 512,
            slo: SloPolicy {
                p50_ns: 25_000,
                p99_ns: 80_000,
                window: 8,
            },
            scale: ScalePolicy::default(),
            skew_policy: SkewPolicy {
                max_over_mean: 1.6,
                min_samples: 4_096,
                strategy: MigrationStrategy::Incremental,
            },
            initial_pipes: 1,
            workers: 1,
            faults: vec![
                FaultWindow {
                    from: ms(8),
                    to: ms(12),
                    cfg: FaultConfig {
                        drop_chance: 0.02,
                        ..FaultConfig::default()
                    },
                },
                FaultWindow {
                    from: ms(20),
                    to: ms(24),
                    cfg: FaultConfig {
                        corrupt_chance: 0.02,
                        ..FaultConfig::default()
                    },
                },
                FaultWindow {
                    from: ms(32),
                    to: ms(36),
                    cfg: FaultConfig {
                        delay_chance: 0.05,
                        max_delay: Duration::from_us(40),
                        ..FaultConfig::default()
                    },
                },
            ],
            stream: None,
            stream_every: 16,
            int: false,
        }
    }

    /// The full soak: the same choreography over 4× the sim time.
    pub fn soak(seed: u64) -> Self {
        DaemonCfg {
            slices: 1_024,
            ..DaemonCfg::soak_quick(seed)
        }
    }

    /// Override the worker-thread count (builder style).
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }
}

/// One scale/rebalance action as it appears in the report.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleAction {
    /// `scale_up`, `scale_down`, or `skew`.
    pub kind: String,
    /// Sim time of the decision, ns.
    pub at_ns: u64,
    /// Active pipes after the action.
    pub pipes: u32,
    /// Partition-map epoch it created.
    pub to_epoch: u64,
    /// Buckets whose owner changed.
    pub moved_buckets: u64,
}

/// One drop-forensics line of the report.
#[derive(Debug, Clone, Serialize)]
pub struct DropLine {
    /// Drop reason label.
    pub reason: String,
    /// Traffic manager (0 = not TM-specific).
    pub tm: u64,
    /// Exact occurrences.
    pub count: u64,
}

/// INT telemetry outcome over the whole run (present only when
/// [`DaemonCfg::int`] was on).
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySummary {
    /// Postcards the collector ingested (exactly the datapath's count —
    /// a mismatch is drift).
    pub postcards: u64,
    /// Deduplicated per-hop stamps behind those postcards.
    pub stamps: u64,
    /// Stamps lost to the per-packet stack bound.
    pub truncated: u64,
    /// Distinct packets with telemetry.
    pub pkts: u64,
    /// Sample-level microbursts the collector detected.
    pub microbursts: u64,
    /// Slices whose max observed TM depth stood burst-factor above the
    /// slice-granularity EWMA baseline.
    pub microburst_slices: u64,
    /// Per-flow path-digest flips.
    pub path_changes: u64,
    /// Microburst slices that coincided with SLO burn — the correlated
    /// alert an operator pages on.
    pub alerts: u64,
}

/// SLO outcome over the whole run.
#[derive(Debug, Clone, Serialize)]
pub struct SloSummary {
    /// Lifetime median, ns.
    pub p50_ns: u64,
    /// Lifetime tail, ns.
    pub p99_ns: u64,
    /// The objectives it was judged against.
    pub objective_p50_ns: u64,
    /// Tail objective, ns.
    pub objective_p99_ns: u64,
    /// Slices evaluated.
    pub slices: u64,
    /// Slices that violated an objective.
    pub violations: u64,
    /// Burn rate over the final window.
    pub final_burn_rate: f64,
}

/// The deterministic end-of-run report (see the crate docs for the
/// byte-identical-across-workers contract).
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Serving program name.
    pub app: String,
    /// Master seed.
    pub seed: u64,
    /// Slices completed before the drain.
    pub slices_run: u64,
    /// Quiescence time, ns.
    pub sim_ns: u64,
    /// True when the run ended early on a shutdown request.
    pub shutdown_requested: bool,
    /// Open-loop arrivals generated.
    pub arrivals: u64,
    /// Arrivals eaten by the wire (fault `Dropped`) before the switch.
    pub wire_dropped: u64,
    /// Packets actually offered to the switch.
    pub injected: u64,
    /// Responses delivered.
    pub delivered: u64,
    /// Exact per-reason drop forensics (tracer side).
    pub drops: Vec<DropLine>,
    /// SLO-driven scale-up actions.
    pub scale_ups: u64,
    /// SLO-driven scale-down actions.
    pub scale_downs: u64,
    /// Skew-driven rebalances.
    pub skew_rebalances: u64,
    /// Most recent actions (controller log, capped).
    pub actions: Vec<ScaleAction>,
    /// Completed migrations.
    pub migrations: u64,
    /// Register cells moved live.
    pub moved_keys: u64,
    /// Epoch-consistency violations (must be 0).
    pub misroutes: u64,
    /// Active pipes at the end.
    pub final_pipes: u32,
    /// Partition-map epoch at the end.
    pub final_epoch: u64,
    /// Latency outcome.
    pub slo: SloSummary,
    /// INT telemetry summary (`null` when stamping was off).
    pub telemetry: Option<TelemetrySummary>,
    /// Observability snapshots written.
    pub snapshots_written: u64,
    /// Forensics ≡ registry mismatches (must be empty).
    pub drift: Vec<String>,
    /// Serving-correctness oracle violations (must be empty).
    pub oracle: Vec<String>,
    /// Packet-conservation identity held at quiescence.
    pub conservation_ok: bool,
    /// All invariants held.
    pub healthy: bool,
}

impl SoakReport {
    /// Pretty-printed JSON (stable field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The CI soak bar: healthy *and* the autoscaler demonstrably closed
    /// the loop in both directions.
    pub fn meets_soak_bar(&self) -> bool {
        self.healthy && self.scale_ups >= 1 && self.scale_downs >= 1
    }
}

/// The long-running serving daemon. Construct with [`Daemon::new`], then
/// either [`Daemon::run`] (slices + graceful drain, the binary's path) or
/// [`Daemon::run_slices`] / [`Daemon::finish`] for step-wise driving.
pub struct Daemon {
    cfg: DaemonCfg,
    sw: AdcpSwitch,
    reg: RegId,
    ctl: Controller,
    slo: SloTracker,
    oracle: Oracle,
    source: OpenLoopSource,
    zipf: ZipfKeys,
    key_rng: SimRng,
    faults: Vec<(FaultWindow, FaultInjector)>,
    slicer: TimeSlicer,
    stream: Option<MetricsStream>,
    trace: TraceBuilder,
    collector: PortId,
    telemetry: Collector,
    burst_cfg: CollectorCfg,
    burst_ewma: Option<f64>,
    microburst_slices: u64,
    telemetry_alerts: u64,
    next_id: u64,
    arrivals_buf: Vec<SimTime>,
    // Run accounting (all sim-derived, hence worker-independent).
    arrivals: u64,
    wire_dropped: u64,
    injected: u64,
    slices_run: u64,
    scale_ups: u64,
    scale_downs: u64,
    skew_rebalances: u64,
    shutdown_seen: bool,
}

impl Daemon {
    /// Build the switch, install the program and the initial partition
    /// map, and arm the traffic/fault processes.
    pub fn new(cfg: DaemonCfg) -> Result<Daemon, String> {
        assert!(cfg.clients >= 1, "need at least one client port");
        let model = serving_model();
        assert!(
            cfg.clients < model.ports,
            "clients + collector must fit the pocket model's ports"
        );
        let ServeProgram { program, reg } = menu::build(cfg.app);
        let mut sw = AdcpSwitch::new(
            program,
            model,
            CompileOptions::default(),
            AdcpConfig {
                queue_depth: cfg.queue_depth,
                central_workers: cfg.workers.max(1),
                int: cfg.int,
                ..AdcpConfig::default()
            },
        )
        .map_err(|e| format!("serving program failed to compile: {e:?}"))?;
        // Drops-only tracing: exact forensics at zero hop-ring cost, and
        // — critically — `hops_on() == false` keeps sharded central
        // execution eligible, so the worker count stays unobservable.
        sw.tracer = JourneyTracer::with_sample(0, 1);
        let pipes = cfg.initial_pipes.clamp(1, sw.num_central() as u32);
        sw.install_partition_map(PartitionMap::uniform(SHARDS as u32, pipes))
            .map_err(|e| format!("initial partition map rejected: {e:?}"))?;
        let stream = match cfg.stream.clone() {
            Some(sc) => Some(MetricsStream::new(sc)?),
            None => None,
        };
        let faults = cfg
            .faults
            .iter()
            .enumerate()
            .map(|(i, w)| {
                (
                    w.clone(),
                    FaultInjector::new(
                        w.cfg,
                        SimRng::seed_from(cfg.seed ^ FAULT_SALT ^ (i as u64) << 32),
                    ),
                )
            })
            .collect();
        Ok(Daemon {
            source: OpenLoopSource::new(cfg.diurnal, cfg.mmpp, cfg.seed),
            zipf: ZipfKeys::new(cfg.keyspace, cfg.zipf_skew),
            key_rng: SimRng::seed_from(cfg.seed ^ KEY_SALT),
            ctl: Controller::with_scale(cfg.skew_policy, cfg.scale),
            slo: SloTracker::new(cfg.slo),
            oracle: Oracle::new(cfg.app),
            slicer: TimeSlicer::new(SimTime::ZERO, cfg.slice),
            collector: PortId(cfg.clients),
            faults,
            stream,
            trace: TraceBuilder::new(),
            telemetry: Collector::default(),
            burst_cfg: CollectorCfg::default(),
            burst_ewma: None,
            microburst_slices: 0,
            telemetry_alerts: 0,
            next_id: 0,
            arrivals_buf: Vec::new(),
            arrivals: 0,
            wire_dropped: 0,
            injected: 0,
            slices_run: 0,
            scale_ups: 0,
            scale_downs: 0,
            skew_rebalances: 0,
            shutdown_seen: false,
            sw,
            reg,
            cfg,
        })
    }

    /// Active central pipes right now (autoscaler's current answer).
    pub fn active_pipes(&self) -> usize {
        self.sw.active_central_pipes()
    }

    /// Slices completed so far.
    pub fn slices_run(&self) -> u64 {
        self.slices_run
    }

    /// Run exactly one time slice: admit arrivals (through the fault
    /// schedule), advance the switch, score the SLO, tick the controller,
    /// and stream a snapshot when due.
    pub fn run_slice(&mut self) {
        let slice = self.slicer.next().expect("slicer is infinite");
        self.arrivals_buf.clear();
        let mut buf = std::mem::take(&mut self.arrivals_buf);
        self.source.arrivals_until(slice.end, &mut buf);
        self.arrivals += buf.len() as u64;
        let mut injected_now = 0u64;
        for &at in &buf {
            let key = ((self.zipf.sample(&mut self.key_rng) * self.cfg.stride)
                % self.cfg.keyspace as u64) as u16;
            let id = self.next_id;
            self.next_id += 1;
            let port = PortId((id % self.cfg.clients as u64) as u16);
            let mut pkt = menu::request(id, self.collector.0, key);
            let mut outcome = FaultOutcome::Pass;
            for (w, inj) in self.faults.iter_mut() {
                if at >= w.from && at < w.to {
                    outcome = inj.apply(&mut pkt);
                    break;
                }
            }
            match outcome {
                FaultOutcome::Dropped => {
                    // Lost on the wire: the switch never saw it, so no
                    // book anywhere may count it.
                    self.wire_dropped += 1;
                }
                FaultOutcome::Corrupted => {
                    // Will die at the MAC (FCS): injected, never served.
                    self.sw.inject(port, pkt, at);
                    injected_now += 1;
                }
                FaultOutcome::Delayed(d) => {
                    // Late on the wire: latency accrues from the original
                    // send time, so delay faults burn the SLO budget.
                    self.oracle.on_inject(key);
                    self.sw.inject(port, pkt.with_created(at), at + d);
                    injected_now += 1;
                }
                FaultOutcome::Pass => {
                    self.oracle.on_inject(key);
                    self.sw.inject(port, pkt, at);
                    injected_now += 1;
                }
            }
        }
        self.arrivals_buf = buf;
        self.injected += injected_now;
        self.sw.run_until(slice.end);

        let mut h = LatencyHist::new();
        let mut delivered_now = 0u64;
        for d in self.sw.take_delivered() {
            h.record_span(d.meta.created, d.time);
            self.oracle.on_deliver(&d.data);
            delivered_now += 1;
        }
        let verdict = self.slo.push_slice(h);
        let signal = self.slo.signal();
        if self.cfg.int {
            // Stream the collector's input per slice, and run a
            // slice-granularity microburst detector (EWMA over the max
            // observed TM depth, the collector's own thresholds) so a
            // burst can be correlated with the same slice's SLO verdict.
            let cards = self.sw.take_postcards();
            let mut slice_depth = 0u32;
            for pc in &cards {
                for s in &pc.stack.stamps {
                    if let Some(d) = s.ctx.queue_depth {
                        slice_depth = slice_depth.max(d);
                    }
                }
                self.telemetry.ingest(pc);
            }
            let burst = self.burst_ewma.is_some_and(|base| {
                slice_depth >= self.burst_cfg.min_burst_depth
                    && slice_depth as f64 >= self.burst_cfg.burst_factor * base
            });
            let a = self.burst_cfg.ewma_alpha;
            self.burst_ewma = Some(match self.burst_ewma {
                None => slice_depth as f64,
                Some(base) => a * slice_depth as f64 + (1.0 - a) * base,
            });
            if burst {
                self.microburst_slices += 1;
                if verdict.violated || signal.burn_rate > 0.0 {
                    // The page-worthy alert: a queue standing far above
                    // its baseline in the same window the SLO burns.
                    self.telemetry_alerts += 1;
                    self.trace.instant(
                        "microburst-slo-alert",
                        slice.end,
                        &[
                            ("depth", slice_depth as u64),
                            ("burn_pct", (signal.burn_rate * 100.0) as u64),
                            ("violated", verdict.violated as u64),
                        ],
                    );
                }
            }
        }
        if let Some(ev) = self.ctl.tick_serving(&mut self.sw, slice.end, &signal) {
            let name = match ev.kind {
                RebalanceKind::ScaleUp => {
                    self.scale_ups += 1;
                    "scale-up"
                }
                RebalanceKind::ScaleDown => {
                    self.scale_downs += 1;
                    "scale-down"
                }
                RebalanceKind::Skew => {
                    self.skew_rebalances += 1;
                    "skew-rebalance"
                }
            };
            if matches!(ev.kind, RebalanceKind::ScaleUp | RebalanceKind::ScaleDown) {
                // Track compute capacity with the active pipe set. Worker
                // count is wall-clock-only, so this cannot perturb the
                // report.
                self.sw.set_central_workers(ev.pipes as usize);
            }
            self.trace.instant(
                name,
                slice.end,
                &[
                    ("pipes", ev.pipes as u64),
                    ("to_epoch", ev.to_epoch),
                    ("moved_buckets", ev.moved_buckets as u64),
                ],
            );
        }
        self.trace.slice(
            self.cfg.app.name(),
            slice.start,
            slice.end,
            &[
                ("injected", injected_now),
                ("delivered", delivered_now),
                ("p50_ns", verdict.p50_ns),
                ("p99_ns", verdict.p99_ns),
                ("violated", verdict.violated as u64),
                ("burn_pct", (signal.burn_rate * 100.0) as u64),
                ("pipes", self.sw.active_central_pipes() as u64),
            ],
        );
        self.slices_run += 1;
        if self.slices_run.is_multiple_of(self.cfg.stream_every.max(1)) {
            self.snapshot(slice.end);
        }
    }

    fn snapshot(&mut self, at: SimTime) {
        if self.stream.is_none() {
            return;
        }
        let telemetry = self.cfg.int.then(|| self.telemetry.report());
        let metrics = self.sw.metrics_json();
        if let Some(st) = &mut self.stream {
            st.snapshot(at, &metrics, &mut self.trace, telemetry.as_ref())
                .expect("stream snapshot validates and writes");
        }
    }

    /// Run up to `n` slices, stopping early on a shutdown request.
    /// Returns the slices actually run.
    pub fn run_slices(&mut self, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            if shutdown::requested() {
                self.shutdown_seen = true;
                break;
            }
            self.run_slice();
            done += 1;
        }
        done
    }

    /// Graceful drain and final audit: stop admitting, run the switch to
    /// quiescence, finalize any in-flight migration, fold the tail
    /// responses into the SLO books, cross-check every ledger, and write
    /// the final stream snapshot. Consumes the daemon — the books close
    /// exactly once.
    pub fn finish(mut self) -> SoakReport {
        let mut end = self.sw.run_until_idle();
        if self.sw.migration_active() {
            // An incremental migration with no traffic left cannot
            // receive further redirects; finalize commits it.
            let _ = self.sw.finalize_migration();
            end = self.sw.run_until_idle();
        }
        let mut tail = LatencyHist::new();
        for d in self.sw.take_delivered() {
            tail.record_span(d.meta.created, d.time);
            self.oracle.on_deliver(&d.data);
        }
        if tail.count() > 0 {
            self.slo.push_slice(tail);
        }
        let telemetry = if self.cfg.int {
            // Tail postcards from the drain, then the exact drop totals.
            for pc in self.sw.take_postcards() {
                self.telemetry.ingest(&pc);
            }
            let device = self.sw.device();
            self.telemetry
                .ingest_drops(device, &self.sw.tracer.to_json());
            let (stamps, postcards, truncated) = self.telemetry.totals();
            let (bursts, _) = self.telemetry.microbursts();
            let (changes, _) = self.telemetry.path_changes();
            Some(TelemetrySummary {
                postcards,
                stamps,
                truncated,
                pkts: self.telemetry.pkts() as u64,
                microbursts: bursts.len() as u64,
                microburst_slices: self.microburst_slices,
                path_changes: changes.len() as u64,
                alerts: self.telemetry_alerts,
            })
        } else {
            None
        };

        // ---- the books ----
        let mut drift = self.drift_check();
        if let Some(t) = &telemetry {
            // Collector ≡ datapath: every postcard the switch emitted must
            // have reached the collector, and the deduplicated stamp count
            // can never exceed what the datapath stamped.
            let (dp_stamps, dp_postcards, dp_truncated) = self.sw.int_totals();
            if t.postcards != dp_postcards {
                drift.push(format!(
                    "collector ingested {} postcards but datapath emitted {}",
                    t.postcards, dp_postcards
                ));
            }
            if t.stamps > dp_stamps || t.truncated > dp_truncated {
                drift.push(format!(
                    "collector stamps {}/truncated {} exceed datapath {}/{}",
                    t.stamps, t.truncated, dp_stamps, dp_truncated
                ));
            }
        }
        if self.sw.migration_active() {
            drift.push("migration still in flight after drain".into());
        }
        if self.sw.in_flight() != 0 {
            drift.push(format!(
                "{} packets still in flight at idle",
                self.sw.in_flight()
            ));
        }
        let oracle = self.oracle.check(&self.sw, self.reg);
        let c = &self.sw.counters;
        let conservation_ok =
            c.injected + c.mcast_copies == c.delivered + c.total_drops() + self.sw.in_flight();
        if self.injected != c.injected {
            drift.push(format!(
                "daemon injected {} but switch counted {}",
                self.injected, c.injected
            ));
        }
        let stats = self.sw.migration_stats().clone();
        let drops: Vec<DropLine> = self
            .sw
            .tracer
            .drop_totals_by_reason()
            .into_iter()
            .map(|((reason, tm), count)| DropLine {
                reason: reason.to_string(),
                tm: tm as u64,
                count,
            })
            .collect();
        let cum = self.slo.cumulative();
        let report = SoakReport {
            app: self.cfg.app.name().to_string(),
            seed: self.cfg.seed,
            slices_run: self.slices_run,
            sim_ns: end.as_ps() / 1_000,
            shutdown_requested: self.shutdown_seen,
            arrivals: self.arrivals,
            wire_dropped: self.wire_dropped,
            injected: self.injected,
            delivered: c.delivered,
            drops,
            scale_ups: self.scale_ups,
            scale_downs: self.scale_downs,
            skew_rebalances: self.skew_rebalances,
            actions: self
                .ctl
                .events()
                .iter()
                .map(|ev| ScaleAction {
                    kind: match ev.kind {
                        RebalanceKind::ScaleUp => "scale_up".into(),
                        RebalanceKind::ScaleDown => "scale_down".into(),
                        RebalanceKind::Skew => "skew".into(),
                    },
                    at_ns: ev.at_ns,
                    pipes: ev.pipes,
                    to_epoch: ev.to_epoch,
                    moved_buckets: ev.moved_buckets as u64,
                })
                .collect(),
            migrations: stats.migrations,
            moved_keys: stats.moved_keys,
            misroutes: stats.misroutes,
            final_pipes: self.sw.active_central_pipes() as u32,
            final_epoch: self.sw.partition_epoch(),
            slo: SloSummary {
                p50_ns: cum.percentile_ps(0.50) / 1_000,
                p99_ns: cum.percentile_ps(0.99) / 1_000,
                objective_p50_ns: self.cfg.slo.p50_ns,
                objective_p99_ns: self.cfg.slo.p99_ns,
                slices: self.slo.slices_total(),
                violations: self.slo.violations_total(),
                final_burn_rate: self.slo.burn_rate(),
            },
            telemetry,
            snapshots_written: 0, // patched below (borrow order)
            drift,
            oracle,
            conservation_ok,
            healthy: false, // patched below
        };
        let mut report = report;
        self.snapshot(end);
        report.snapshots_written = self.stream.as_ref().map_or(0, |s| s.written);
        report.healthy = report.drift.is_empty()
            && report.oracle.is_empty()
            && report.conservation_ok
            && report.misroutes == 0;
        report
    }

    /// The binary's path: run the configured slices (or until a shutdown
    /// request), then drain and report.
    pub fn run(mut self) -> SoakReport {
        let n = self.cfg.slices;
        self.run_slices(n);
        self.finish()
    }

    /// Forensics ≡ registry: every drop the tracer recorded must appear
    /// in exactly one mirrored registry counter with the same count, for
    /// every reason the architecture can produce — and reasons without a
    /// mirror (`migration_fence`) must be absent on both sides.
    fn drift_check(&mut self) -> Vec<String> {
        // Force a metrics sync so the registry mirrors the live counters.
        let _ = self.sw.metrics_json();
        let totals = self.sw.tracer.drop_totals_by_reason();
        let m = self.sw.metrics();
        let mut bad = Vec::new();
        for &(reason, tm) in DROP_CHECK_REASONS {
            let forensic = totals.get(&(reason, tm as u8)).copied().unwrap_or(0);
            let mut counter = None;
            for &(scope, name) in drop_counter_candidates(reason, tm) {
                if let Some(v) = m.counter_value(scope, name) {
                    counter = Some(v);
                    break;
                }
            }
            match counter {
                Some(v) if v != forensic => bad.push(format!(
                    "{reason}(tm{tm}): forensics {forensic} != registry {v}"
                )),
                None if forensic != 0 => bad.push(format!(
                    "{reason}(tm{tm}): {forensic} forensic drops with no registry counter"
                )),
                _ => {}
            }
        }
        let t_total = self.sw.tracer.total_drops();
        let c_total = self.sw.counters.total_drops();
        if t_total != c_total {
            bad.push(format!("tracer total {t_total} != counter total {c_total}"));
        }
        bad
    }
}
