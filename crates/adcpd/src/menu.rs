//! The daemon's serving programs and their bounded-memory oracles.
//!
//! Both apps follow the partitioned-state serving idiom (cf. the
//! `partmigrate` app): the ingress pipeline folds a request key into one
//! of [`SHARDS`] shards of the global partitioned area and steers the
//! packet to the shard's owner pipeline; the central table performs one
//! stateful read-modify-write and echoes what it observed back into the
//! header, so every delivered response carries a receipt the oracle can
//! audit. Requests are **sealed** (FCS trailer armed), so wire-corruption
//! faults are detected and dropped at the MAC exactly as on hardware.
//!
//! The oracles are designed for soaks: per-shard state is O([`SHARDS`]),
//! never O(packets), so an hours-long run audits itself in constant
//! memory. They cross-check three independent books — the register file
//! (ground truth), the delivered receipts, and the switch drop counters —
//! and any disagreement is a correctness bug, not noise.

use adcp_core::AdcpSwitch;
use adcp_lang::{
    ActionDef, ActionOp, BinOp, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand,
    ParserSpec, Program, ProgramBuilder, RegAluOp, RegId, Region, RegisterDef, TableDef,
};
use adcp_sim::packet::{FlowId, Packet};

/// Shards in the partitioned area — also the partition-map bucket count
/// and the register size (the cell == partition-key convention the
/// migration protocol relies on).
pub const SHARDS: u64 = 64;

const F_DST: u16 = 0;
const F_KEY: u16 = 1;
const F_IDX: u16 = 2;
const F_VAL: u16 = 3;

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

/// Which serving program the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeApp {
    /// Per-shard request counting: central `Add 1`, echo the
    /// pre-increment count. Strongest oracle (exact increment audit).
    ShardCount,
    /// Per-shard running maximum: central `Max key`, echo the pre-op
    /// value. Oracle bounds the register between the echoes and the
    /// injected keys.
    ShardMax,
}

impl ServeApp {
    /// Stable app name used in reports, SLO scopes, and trace categories.
    pub fn name(&self) -> &'static str {
        match self {
            ServeApp::ShardCount => "shardcount",
            ServeApp::ShardMax => "shardmax",
        }
    }

    /// Parse a `--app` flag value.
    pub fn parse(s: &str) -> Option<ServeApp> {
        match s {
            "shardcount" | "count" => Some(ServeApp::ShardCount),
            "shardmax" | "max" => Some(ServeApp::ShardMax),
            _ => None,
        }
    }
}

/// A compiled-ready serving program plus the handle of its state register.
#[derive(Debug, Clone)]
pub struct ServeProgram {
    /// The program (header {dst,key,idx,val}, ingress fold+steer, central
    /// RMW, egress by `dst`).
    pub program: Program,
    /// The per-shard state register (cells == [`SHARDS`]).
    pub reg: RegId,
}

/// Build the serving program for `app`.
pub fn build(app: ServeApp) -> ServeProgram {
    let mut b = ProgramBuilder::new(app.name());
    let h = b.header(HeaderDef::new(
        "rq",
        vec![
            FieldDef::scalar("dst", 16),
            FieldDef::scalar("key", 16),
            FieldDef::scalar("idx", 16),
            FieldDef::scalar("val", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let reg = b.register(RegisterDef::new("shard_state", SHARDS as u32, 32));
    b.table(TableDef {
        name: "route".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "fold",
            vec![
                ActionOp::Bin {
                    dst: fr(F_IDX),
                    op: BinOp::And,
                    a: Operand::Field(fr(F_KEY)),
                    b: Operand::Const(SHARDS - 1),
                },
                ActionOp::SetCentralPipe(Operand::Field(fr(F_IDX))),
                ActionOp::CountElements(Operand::Const(1)),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    let (op, value) = match app {
        ServeApp::ShardCount => (RegAluOp::Add, Operand::Const(1)),
        ServeApp::ShardMax => (RegAluOp::Max, Operand::Field(fr(F_KEY))),
    };
    b.table(TableDef {
        name: "serve".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "rmw",
            vec![
                ActionOp::RegRmw {
                    reg,
                    index: Operand::Field(fr(F_IDX)),
                    op,
                    value,
                    fetch: Some(fr(F_VAL)),
                },
                ActionOp::SetEgress(Operand::Field(fr(F_DST))),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    ServeProgram {
        program: b.build(),
        reg,
    }
}

/// Build one sealed request packet. `dst` is the response port, `key`
/// selects the shard (`key & (SHARDS-1)`).
pub fn request(id: u64, dst: u16, key: u16) -> Packet {
    let mut data = Vec::with_capacity(10 + 8);
    data.extend_from_slice(&dst.to_be_bytes());
    data.extend_from_slice(&key.to_be_bytes());
    data.extend_from_slice(&[0u8; 2]); // idx (computed in ingress)
    data.extend_from_slice(&[0u8; 4]); // val (echoed centrally)
    data.extend_from_slice(&[0u8; 8]); // payload
    Packet::new(id, FlowId(key as u64), data)
        .with_goodput(8)
        .with_elements(1)
        .seal()
}

/// Key field of a delivered response frame.
pub fn delivered_key(data: &[u8]) -> u16 {
    u16::from_be_bytes(data[2..4].try_into().expect("rq frame"))
}

/// Echoed pre-RMW value of a delivered response frame.
pub fn delivered_val(data: &[u8]) -> u64 {
    u32::from_be_bytes(data[6..10].try_into().expect("rq frame")) as u64
}

/// Shard a key folds onto.
pub fn shard_of(key: u16) -> usize {
    (key as u64 & (SHARDS - 1)) as usize
}

/// Constant-memory correctness oracle for a serving run.
///
/// Feed it every injected key ([`Oracle::on_inject`]) and every delivered
/// response ([`Oracle::on_deliver`]); at quiescence, [`Oracle::check`]
/// audits the registers against the receipts and the drop counters:
///
/// * **shardcount** — the total of the shard counters must equal
///   `delivered + post-central drops` (every packet that reached the
///   central region incremented exactly once: a lost or duplicated
///   update under migration breaks the identity), every shard must have
///   at least as many increments as responses, and the largest echoed
///   pre-increment count must be strictly below the shard's final count.
/// * **shardmax** — every echo is `≤` its shard's final register value,
///   and the final value is `≤` the largest key ever injected for that
///   shard (a corrupted or misrouted RMW would exceed it).
#[derive(Debug, Clone)]
pub struct Oracle {
    app: ServeApp,
    delivered: [u64; SHARDS as usize],
    max_echo: [u64; SHARDS as usize],
    max_injected: [u64; SHARDS as usize],
    echoes: u64,
}

impl Oracle {
    /// Fresh oracle for one app.
    pub fn new(app: ServeApp) -> Self {
        Oracle {
            app,
            delivered: [0; SHARDS as usize],
            max_echo: [0; SHARDS as usize],
            max_injected: [0; SHARDS as usize],
            echoes: 0,
        }
    }

    /// Record a key offered to the switch (post-fault, i.e. actually
    /// injected — wire-dropped packets never existed as far as the
    /// switch's books are concerned).
    pub fn on_inject(&mut self, key: u16) {
        let s = shard_of(key);
        self.max_injected[s] = self.max_injected[s].max(key as u64);
    }

    /// Record one delivered response frame.
    pub fn on_deliver(&mut self, data: &[u8]) {
        let s = shard_of(delivered_key(data));
        let v = delivered_val(data);
        self.delivered[s] += 1;
        self.max_echo[s] = self.max_echo[s].max(v);
        self.echoes += 1;
    }

    /// Total responses audited.
    pub fn responses(&self) -> u64 {
        self.echoes
    }

    /// Audit the quiescent switch. Returns human-readable violations
    /// (empty == healthy). Reads each shard cell from its **owning**
    /// central pipeline per the live partition map — the only
    /// authoritative copy across migrations.
    pub fn check(&self, sw: &AdcpSwitch, reg: RegId) -> Vec<String> {
        let mut bad = Vec::new();
        let Some(map) = sw.partition_map() else {
            bad.push("no partition map installed".into());
            return bad;
        };
        let mut reg_total = 0u64;
        for s in 0..SHARDS as usize {
            let owner = map.owner_of_bucket(s as u32) as usize;
            let Some(file) = sw.central_register(owner, reg) else {
                bad.push(format!("shard {s}: owner pipe {owner} has no register"));
                continue;
            };
            let v = file.peek(s as u64);
            reg_total += v;
            match self.app {
                ServeApp::ShardCount => {
                    if self.delivered[s] > v {
                        bad.push(format!(
                            "shard {s}: {} responses but only {v} increments",
                            self.delivered[s]
                        ));
                    }
                    if self.delivered[s] > 0 && self.max_echo[s] >= v {
                        bad.push(format!(
                            "shard {s}: echoed pre-increment {} >= final count {v}",
                            self.max_echo[s]
                        ));
                    }
                }
                ServeApp::ShardMax => {
                    if self.max_echo[s] > v {
                        bad.push(format!(
                            "shard {s}: echo {} exceeds final max {v}",
                            self.max_echo[s]
                        ));
                    }
                    if v > self.max_injected[s] {
                        bad.push(format!(
                            "shard {s}: register {v} exceeds max injected key {}",
                            self.max_injected[s]
                        ));
                    }
                }
            }
        }
        if self.app == ServeApp::ShardCount {
            // Every packet that cleared TM1 into the central region bumped
            // exactly one cell; it then either egressed or died in TM2.
            let c = &sw.counters;
            let expect = c.delivered + c.tm2_drops + c.tm2_queue_drops;
            if reg_total != expect {
                bad.push(format!(
                    "register total {reg_total} != delivered {} + tm2 drops {} (lost or duplicated increments)",
                    c.delivered,
                    c.tm2_drops + c.tm2_queue_drops
                ));
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcp_core::{AdcpConfig, PartitionMap};
    use adcp_lang::{CompileOptions, TargetModel};
    use adcp_sim::packet::PortId;
    use adcp_sim::time::SimTime;

    fn serve(app: ServeApp, keys: &[u16]) -> (AdcpSwitch, Oracle, RegId) {
        let sp = build(app);
        let mut sw = AdcpSwitch::new(
            sp.program,
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig::default(),
        )
        .expect("serving program compiles");
        let n_pipes = sw.num_central() as u32;
        sw.install_partition_map(PartitionMap::uniform(SHARDS as u32, n_pipes))
            .unwrap();
        let mut oracle = Oracle::new(app);
        for (i, &k) in keys.iter().enumerate() {
            oracle.on_inject(k);
            sw.inject(
                PortId(0),
                request(i as u64, 1, k),
                SimTime(i as u64 * 50_000),
            );
        }
        sw.run_until_idle();
        sw.check_conservation();
        for d in sw.take_delivered() {
            oracle.on_deliver(&d.data);
        }
        (sw, oracle, sp.reg)
    }

    #[test]
    fn shardcount_oracle_accepts_a_clean_run() {
        let keys: Vec<u16> = (0..600).map(|i| (i * 7) % 1024).collect();
        let (sw, oracle, reg) = serve(ServeApp::ShardCount, &keys);
        assert_eq!(oracle.responses(), 600);
        assert_eq!(oracle.check(&sw, reg), Vec::<String>::new());
    }

    #[test]
    fn shardmax_oracle_accepts_a_clean_run() {
        let keys: Vec<u16> = (0..600).map(|i| (i * 13) % 2048).collect();
        let (sw, oracle, reg) = serve(ServeApp::ShardMax, &keys);
        assert_eq!(oracle.check(&sw, reg), Vec::<String>::new());
    }

    #[test]
    fn shardcount_oracle_flags_a_tampered_register() {
        let keys: Vec<u16> = (0..200).map(|i| i % 256).collect();
        let (mut sw, oracle, reg) = serve(ServeApp::ShardCount, &keys);
        // Sabotage one authoritative cell: the books no longer balance.
        let owner = sw.partition_map().unwrap().owner_of_bucket(3) as usize;
        sw.central_register_mut(owner, reg)
            .unwrap()
            .rmw(3, RegAluOp::Add, 5);
        assert!(!oracle.check(&sw, reg).is_empty());
    }

    #[test]
    fn sealed_requests_fail_fcs_after_corruption() {
        let p = request(0, 1, 42);
        assert!(p.fcs_ok());
        // Corruption is exercised end-to-end by the daemon tests; here we
        // only pin that requests are sealed at all.
        assert!(p.meta.fcs.is_some());
    }
}
