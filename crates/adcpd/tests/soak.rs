//! End-to-end soak acceptance: the compressed choreography must close the
//! autoscaling loop in both directions with balanced books, the report
//! must be byte-identical across central worker counts, the rotating
//! observability stream must stay schema-valid, and a partial run must
//! drain gracefully into a healthy report.

use adcp_sim::schema::{load_chrome_trace_schema, load_metrics_schema, validate};
use adcpd::daemon::{Daemon, DaemonCfg};
use adcpd::menu::ServeApp;
use adcpd::stream::StreamCfg;

fn run(cfg: DaemonCfg) -> adcpd::daemon::SoakReport {
    Daemon::new(cfg).expect("daemon builds").run()
}

#[test]
fn soak_quick_report_is_byte_identical_across_worker_counts() {
    let reports: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|w| run(DaemonCfg::soak_quick(7).with_workers(w)))
        .collect();
    let r = &reports[0];
    assert!(r.healthy, "drift: {:?} oracle: {:?}", r.drift, r.oracle);
    assert!(r.meets_soak_bar());
    assert!(r.scale_ups >= 1, "no scale-up: {}", r.to_json());
    assert!(r.scale_downs >= 1, "no scale-down: {}", r.to_json());
    assert_eq!(r.misroutes, 0);
    assert!(r.drift.is_empty());
    assert!(r.oracle.is_empty());
    assert!(r.conservation_ok);
    // Fault windows really bit: wire losses and FCS kills both nonzero.
    assert!(r.wire_dropped > 0, "drop window produced no wire losses");
    assert!(
        r.drops.iter().any(|d| d.reason == "fcs_bad" && d.count > 0),
        "corrupt window produced no FCS drops: {}",
        r.to_json()
    );
    // Worker threads must be unobservable in the report.
    let j0 = reports[0].to_json();
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(j0, r.to_json(), "workers={} diverged", [1, 2, 4][i]);
    }
}

#[test]
fn shardmax_app_also_passes_the_soak_bar() {
    let mut cfg = DaemonCfg::soak_quick(11);
    cfg.app = ServeApp::ShardMax;
    let r = run(cfg);
    assert!(r.healthy, "drift: {:?} oracle: {:?}", r.drift, r.oracle);
    assert!(r.meets_soak_bar(), "{}", r.to_json());
}

#[test]
fn stream_files_rotate_and_validate() {
    let dir = std::env::temp_dir().join(format!("adcpd-soak-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = DaemonCfg::soak_quick(7);
    cfg.stream = Some(StreamCfg {
        dir: dir.clone(),
        keep: 4,
    });
    cfg.stream_every = 32;
    let r = run(cfg);
    assert!(r.healthy);
    // 256 slices / every 32 = 8 in-run snapshots + 1 final.
    assert_eq!(r.snapshots_written, 9);
    let mut metrics = 0usize;
    let mut traces = 0usize;
    let mschema = load_metrics_schema().unwrap();
    let cschema = load_chrome_trace_schema().unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let doc = serde_json::from_str(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{name}: bad json: {e:?}"));
        if name.starts_with("metrics-") {
            validate(&doc, &mschema).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            metrics += 1;
        } else if name.starts_with("trace-") {
            validate(&doc, &cschema).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            assert!(doc.get("traceEvents").is_some());
            traces += 1;
        } else {
            panic!("unexpected file {name}");
        }
    }
    // Rotation bounded both streams at `keep`.
    assert_eq!(metrics, 4);
    assert_eq!(traces, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn int_soak_streams_telemetry_and_stays_worker_independent() {
    if !adcp_sim::int::IntKnob::from_env(true).on() {
        return; // ADCP_INT forced off in this environment.
    }
    let dir = std::env::temp_dir().join(format!("adcpd-soak-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mk = |stream: Option<StreamCfg>, workers: usize| {
        let mut cfg = DaemonCfg::soak_quick(7).with_workers(workers);
        cfg.int = true;
        cfg.stream = stream;
        cfg.stream_every = 64;
        cfg
    };
    let r = run(mk(
        Some(StreamCfg {
            dir: dir.clone(),
            keep: 4,
        }),
        1,
    ));
    assert!(r.healthy, "drift: {:?} oracle: {:?}", r.drift, r.oracle);
    let t = r.telemetry.as_ref().expect("int on => telemetry summary");
    assert!(t.postcards > 0, "{}", r.to_json());
    assert!(t.stamps > t.postcards, "multi-hop stamps per postcard");
    assert_eq!(t.pkts as u64, t.postcards, "one postcard per delivered pkt");
    // Streamed telemetry generations exist and validate.
    let yschema = adcp_sim::schema::load_telemetry_schema().unwrap();
    let mut telemetry_files = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("telemetry-") {
            let doc = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
            validate(&doc, &yschema).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            telemetry_files += 1;
        }
    }
    assert!(telemetry_files > 0, "no telemetry generations written");
    let _ = std::fs::remove_dir_all(&dir);
    // Worker threads stay unobservable with stamping on (INT serializes
    // central execution, so the stamped depths are deterministic too).
    let dir2 = dir.with_file_name(format!("adcpd-soak-int-w4-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir2);
    let r2 = run(mk(
        Some(StreamCfg {
            dir: dir2.clone(),
            keep: 4,
        }),
        4,
    ));
    let _ = std::fs::remove_dir_all(&dir2);
    assert_eq!(r.to_json(), r2.to_json(), "workers=4 diverged under INT");
}

#[test]
fn partial_run_drains_gracefully_with_balanced_books() {
    let mut d = Daemon::new(DaemonCfg::soak_quick(3)).unwrap();
    // Stop mid-choreography, inside the first fault window's aftermath.
    let ran = d.run_slices(48);
    assert_eq!(ran, 48);
    let r = d.finish();
    assert_eq!(r.slices_run, 48);
    assert!(r.healthy, "drift: {:?} oracle: {:?}", r.drift, r.oracle);
    assert!(r.conservation_ok);
    assert_eq!(r.misroutes, 0);
    // A 12ms run covers one diurnal peak: the daemon scaled up but may
    // not have seen a deep trough yet — health must not depend on that.
    assert!(r.slo.slices >= 48);
}
