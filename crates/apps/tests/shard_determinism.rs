//! Determinism under sharded central-pipe execution.
//!
//! The ADCP switch may run the compute stage of same-timestamp central
//! pulls on worker threads (`AdcpConfig::central_workers`). The contract
//! is that this is *purely* a wall-clock optimization: every observable
//! output — delivered counts, register-derived correctness oracles,
//! latency summaries, the full per-stage metrics mirror — must be
//! byte-identical for any worker count, per seed. These tests serialize
//! the complete `AppReport` to JSON and compare the bytes across worker
//! counts 1, 2, and 4 for the three central-state-heavy apps.

use adcp_apps::{dbshuffle, ddos, flowlet, migrate, paramserv, TargetKind};
use serde::Serialize;

fn json<T: Serialize>(v: &T) -> String {
    let mut s = String::new();
    v.to_value().encode(&mut s);
    s
}

#[test]
fn paramserv_identical_across_worker_counts() {
    for seed in [1u64, 9, 23] {
        let mut reports = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = paramserv::ParamServerCfg {
                seed,
                central_workers: workers,
                ..Default::default()
            };
            let report = paramserv::run(TargetKind::Adcp, &cfg);
            assert!(report.correct, "paramserv seed {seed} workers {workers}");
            reports.push(json(&report));
        }
        assert_eq!(
            reports[0], reports[1],
            "paramserv seed {seed}: 1 vs 2 workers diverged"
        );
        assert_eq!(
            reports[0], reports[2],
            "paramserv seed {seed}: 1 vs 4 workers diverged"
        );
    }
}

#[test]
fn dbshuffle_identical_across_worker_counts() {
    for seed in [3u64, 17] {
        let mut reports = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = dbshuffle::DbShuffleCfg {
                seed,
                central_workers: workers,
                ..Default::default()
            };
            let report = dbshuffle::run(TargetKind::Adcp, &cfg);
            assert!(report.correct, "dbshuffle seed {seed} workers {workers}");
            reports.push(json(&report));
        }
        assert_eq!(
            reports[0], reports[1],
            "dbshuffle seed {seed}: 1 vs 2 workers diverged"
        );
        assert_eq!(
            reports[0], reports[2],
            "dbshuffle seed {seed}: 1 vs 4 workers diverged"
        );
    }
}

/// The TE workload: shared per-uplink load estimates mean same-replica
/// central pulls race when sharded — the full report (per-uplink loads,
/// repick counts, latency, metrics) must not depend on the worker count.
#[test]
fn flowlet_ldf_identical_across_worker_counts() {
    for seed in [4u64, 19] {
        let mut outcomes = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = flowlet::LdfCfg {
                seed,
                central_workers: workers,
                ..Default::default()
            };
            let out = flowlet::run(TargetKind::Adcp, &cfg);
            assert!(
                out.report.correct,
                "flowlet-ldf seed {seed} workers {workers}"
            );
            let fingerprint = format!(
                "{}|{}|{}|{:?}",
                json(&out.report),
                out.repicks,
                out.wraps,
                out.per_uplink,
            );
            outcomes.push(fingerprint);
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "flowlet-ldf seed {seed}: 1 vs 2 workers diverged"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "flowlet-ldf seed {seed}: 1 vs 4 workers diverged"
        );
    }
}

/// The security workload, with the live mid-attack reshard on: sharded
/// execution interleaves with the migration fences, and the whole
/// outcome — drops, promotion/demotion counts, migration stats, final
/// epoch, skew figures — must not depend on the worker count.
#[test]
fn ddos_identical_across_worker_counts() {
    for seed in [11u64, 27] {
        let mut outcomes = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = ddos::DdosCfg {
                seed,
                central_workers: workers,
                ..Default::default()
            };
            let out = ddos::run(TargetKind::Adcp, &cfg);
            assert!(out.report.correct, "ddos seed {seed} workers {workers}");
            let fingerprint = format!(
                "{}|{}|{}|{}|{}|{:?}|{}|{}|{}",
                json(&out.report),
                out.promotions,
                out.demotions,
                out.predicted_drops,
                out.rebalances,
                out.stats,
                out.final_epoch,
                out.skew_before,
                out.skew_after,
            );
            outcomes.push(fingerprint);
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "ddos seed {seed}: 1 vs 2 workers diverged"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "ddos seed {seed}: 1 vs 4 workers diverged"
        );
    }
}

/// The fabric extension of the same contract: six switches, each its own
/// event loop with sharded central pulls, lockstep-coupled by links. The
/// complete serialized `FabricReport` — per-device counters, per-link
/// stats, and digests over every delivered frame and every central
/// register cell fabric-wide — must be byte-identical for any worker
/// count, per seed.
#[test]
fn fabric_report_identical_across_worker_counts() {
    for seed in [5u64, 21] {
        let mut reports = Vec::new();
        for workers in [1usize, 2, 4] {
            let cfg = adcp_fabric::FabricConfig {
                switch: adcp_core::AdcpConfig {
                    central_workers: workers,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (demo, report) = adcp_fabric::run_demo_with_report(seed, 400, cfg);
            assert!(demo.correct, "fabric seed {seed} workers {workers}");
            reports.push(json(&report));
        }
        assert_eq!(
            reports[0], reports[1],
            "fabric seed {seed}: 1 vs 2 workers diverged"
        );
        assert_eq!(
            reports[0], reports[2],
            "fabric seed {seed}: 1 vs 4 workers diverged"
        );
    }
}

/// The hard case: live repartitioning interleaves with sharded execution.
/// The switch must serialize exactly while fences are in flight and may
/// shard in between — the whole run, including migration protocol stats
/// and the final epoch, must not depend on the worker count.
#[test]
fn partmigrate_identical_across_worker_counts() {
    for seed in [31u64, 8] {
        let mut outcomes = Vec::new();
        for workers in [1usize, 2, 4] {
            // Bursts of four synchronized senders make central pulls on
            // different pipes coincide, so the sharded barrier path
            // actually engages between the controller's migration windows.
            let cfg = migrate::MigrateCfg {
                seed,
                packets: 2_000,
                gap_ns: 10,
                burst: 4,
                central_workers: workers,
                ..Default::default()
            };
            let out = migrate::run(TargetKind::Adcp, &cfg);
            assert!(
                out.report.correct,
                "partmigrate seed {seed} workers {workers}"
            );
            let fingerprint = format!(
                "{}|{}|{}|{:?}|{}|{}",
                json(&out.report),
                out.rebalances,
                out.final_epoch,
                out.stats,
                out.skew_before,
                out.skew_after,
            );
            outcomes.push(fingerprint);
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "partmigrate seed {seed}: 1 vs 2 workers diverged"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "partmigrate seed {seed}: 1 vs 4 workers diverged"
        );
    }
}
