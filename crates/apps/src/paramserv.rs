//! In-network ML parameter aggregation (Table 1, row 1; §3.1's running
//! example).
//!
//! Workers stream gradient chunks to the switch; the switch sums each
//! weight slot across workers and, when the last contribution for a chunk
//! arrives, sends the aggregated chunk back out. The three variants show
//! the paper's architectural spectrum:
//!
//! * **ADCP**: chunks carry a 16-wide weight array; the first TM places
//!   each chunk on a central pipeline by slot hash; a wide register op
//!   aggregates all 16 weights in one traversal; the completed aggregate
//!   is *multicast to every worker* by the second TM (Fig. 5).
//! * **RMT/recirc**: the application is restructured to scalar (1 weight
//!   per packet) and every packet takes a recirculation pass to reach the
//!   pipeline holding the aggregation state — 2× traversals per packet.
//! * **RMT/pinned**: all workers send to one parameter-server port; the
//!   aggregation state lives in that port's egress pipeline; results can
//!   only leave via that port, so distribution back to the workers needs
//!   an extra host-level hop (the Fig. 2 restriction).

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, Region, RegisterDef,
    RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::gradient::GradientWorkload;
use std::collections::HashMap;

/// Parameters of one parameter-server run.
#[derive(Debug, Clone)]
pub struct ParamServerCfg {
    /// Number of workers (each on its own port).
    pub workers: u32,
    /// Total model weights.
    pub model_size: u32,
    /// Weights per packet (array width; 1 for the RMT variants).
    pub width: u32,
    /// RNG seed for the chunk interleaving.
    pub seed: u64,
    /// Central-pipeline worker threads (ADCP only; output is
    /// byte-identical for any value).
    pub central_workers: usize,
}

impl Default for ParamServerCfg {
    fn default() -> Self {
        ParamServerCfg {
            workers: 8,
            model_size: 256,
            width: 16,
            seed: 1,
            central_workers: 1,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_WID: u16 = 0; // worker id / scratch for the count fetch
const F_SLOT: u16 = 1; // base weight slot of the chunk
const F_SCRATCH: u16 = 2; // chunk index scratch
const F_W: u16 = 3; // the weight array

/// Build the switch program for a variant.
///
/// `central_pipes` sizes the partition hash; `worker_ports` become the
/// result multicast group; `ps_port` is the pinned variant's server port.
pub fn program(
    cfg: &ParamServerCfg,
    kind: TargetKind,
    central_pipes: u32,
    worker_ports: &[PortId],
    ps_port: PortId,
) -> Program {
    let width = match kind {
        TargetKind::Adcp => cfg.width,
        _ => 1, // RMT forces the application to go scalar (§2 ②)
    };
    assert!(width.is_power_of_two());
    let log_w = width.trailing_zeros() as u64;
    let chunks = cfg.model_size / width;

    let mut b = ProgramBuilder::new(format!("paramserv-{}", kind.label()));
    let h = b.header(HeaderDef::new(
        "ps",
        vec![
            FieldDef::scalar("wid", 16),
            FieldDef::scalar("slot", 32),
            FieldDef::scalar("scratch", 16),
            FieldDef::array("w", 32, width as u16),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let acc = b.register(RegisterDef::new("acc", cfg.model_size, 32));
    let cnt = b.register(RegisterDef::new("cnt", chunks.max(1), 32));
    let group = b.mcast_group(worker_ports.to_vec());

    // Ingress: choose where the chunk's state lives.
    let ingress_ops = match kind {
        TargetKind::Adcp => vec![
            ActionOp::Hash {
                dst: fr(F_SCRATCH),
                fields: vec![fr(F_SLOT)],
                modulo: central_pipes as u64,
            },
            ActionOp::SetCentralPipe(Operand::Field(fr(F_SCRATCH))),
            ActionOp::CountElements(Operand::Const(width as u64)),
        ],
        TargetKind::RmtRecirc => vec![
            ActionOp::Hash {
                dst: fr(F_SCRATCH),
                fields: vec![fr(F_SLOT)],
                modulo: central_pipes as u64,
            },
            ActionOp::SetCentralPipe(Operand::Field(fr(F_SCRATCH))),
            ActionOp::Recirculate,
            ActionOp::CountElements(Operand::Const(1)),
        ],
        TargetKind::RmtPinned => vec![
            // Everything funnels to the parameter-server port; the
            // aggregation state lives in its egress pipeline.
            ActionOp::SetEgress(Operand::Const(ps_port.0 as u64)),
            ActionOp::CountElements(Operand::Const(1)),
        ],
    };
    b.table(TableDef {
        name: "place".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new("place", ingress_ops)],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // Central: aggregate; the worker that completes a chunk releases it.
    let release = match kind {
        // Fig. 5: TM2 multicasts the aggregate to every worker.
        TargetKind::Adcp | TargetKind::RmtRecirc => {
            ActionOp::SetMulticast(Operand::Const(group as u64))
        }
        // Fig. 2: egress pinning — the aggregate can only exit ps_port.
        TargetKind::RmtPinned => ActionOp::SetEgress(Operand::Const(ps_port.0 as u64)),
    };
    b.table(TableDef {
        name: "aggregate".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "agg",
            vec![
                ActionOp::RegArray {
                    reg: acc,
                    base: Operand::Field(fr(F_SLOT)),
                    op: RegAluOp::Add,
                    values: fr(F_W),
                    readback: true,
                },
                // chunk index = slot >> log2(width)
                ActionOp::Bin {
                    dst: fr(F_SCRATCH),
                    op: BinOp::Shr,
                    a: Operand::Field(fr(F_SLOT)),
                    b: Operand::Const(log_w),
                },
                ActionOp::RegRmw {
                    reg: cnt,
                    index: Operand::Field(fr(F_SCRATCH)),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: Some(fr(F_WID)),
                },
                // Contributions are consumed; only the completing packet
                // (previous count == workers-1) carries the result out.
                ActionOp::MarkDrop,
                ActionOp::IfEq {
                    a: Operand::Field(fr(F_WID)),
                    b: Operand::Const(cfg.workers as u64 - 1),
                    then: vec![release],
                },
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn chunk_packet(id: u64, worker: u32, base_slot: u32, values: &[u32]) -> Packet {
    let mut data = Vec::with_capacity(8 + values.len() * 4);
    data.extend_from_slice(&(worker as u16).to_be_bytes());
    data.extend_from_slice(&base_slot.to_be_bytes());
    data.extend_from_slice(&0u16.to_be_bytes());
    for v in values {
        data.extend_from_slice(&v.to_be_bytes());
    }
    let goodput = (values.len() * 4) as u32;
    Packet::new(id, FlowId(worker as u64), data)
        .with_goodput(goodput)
        .with_elements(values.len() as u32)
}

fn read_slot_and_values(data: &[u8], width: usize) -> (u32, Vec<u64>) {
    let slot = u32::from_be_bytes(data[2..6].try_into().unwrap());
    let mut vals = Vec::with_capacity(width);
    for i in 0..width {
        let s = 8 + i * 4;
        vals.push(u32::from_be_bytes(data[s..s + 4].try_into().unwrap()) as u64);
    }
    (slot, vals)
}

/// Run one parameter-server variant end to end and verify the aggregates.
pub fn run(kind: TargetKind, cfg: &ParamServerCfg) -> AppReport {
    let width = match kind {
        TargetKind::Adcp => cfg.width,
        _ => 1,
    };
    let wl = GradientWorkload::new(cfg.workers, cfg.model_size, width);
    let worker_ports: Vec<PortId> = (0..cfg.workers as u16).map(PortId).collect();
    let ps_port = PortId(cfg.workers as u16); // one past the workers

    let (mut sw, notes) = build_switch(kind, cfg, &worker_ports, ps_port);
    sw.set_central_workers(cfg.central_workers);

    // Inject every worker's chunk stream, interleaved.
    let mut rng = SimRng::seed_from(cfg.seed);
    let chunks = wl.all_chunks_shuffled(&mut rng);
    for (i, ch) in chunks.iter().enumerate() {
        let pkt = chunk_packet(i as u64, ch.worker, ch.base_slot, &ch.values);
        sw.inject(PortId(ch.worker as u16), pkt, SimTime::ZERO);
    }
    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Verify: every chunk's aggregate seen with the expected totals, at
    // the expected destinations.
    let delivered = sw.take_delivered();
    let num_chunks = (cfg.model_size / width) as usize;
    let mut per_slot: HashMap<u32, Vec<&crate::driver::DeliveredPkt>> = HashMap::new();
    for d in &delivered {
        let (slot, _) = read_slot_and_values(&d.data, width as usize);
        per_slot.entry(slot).or_default().push(d);
    }
    let expected_copies = match kind {
        TargetKind::Adcp | TargetKind::RmtRecirc => cfg.workers as usize,
        TargetKind::RmtPinned => 1,
    };
    let mut correct = per_slot.len() == num_chunks;
    for (slot, pkts) in &per_slot {
        if pkts.len() != expected_copies {
            correct = false;
        }
        for d in pkts {
            let (_, vals) = read_slot_and_values(&d.data, width as usize);
            for (i, v) in vals.iter().enumerate() {
                if *v != wl.expected_sum(slot + i as u32) {
                    correct = false;
                }
            }
            if kind == TargetKind::RmtPinned && d.port != ps_port {
                correct = false;
            }
        }
    }
    let mut notes = notes;
    if kind == TargetKind::RmtPinned {
        notes.push(format!(
            "results reachable only via {ps_port}; worker distribution needs an extra host hop"
        ));
    }
    AppReport::from_switch("paramserv", kind, &mut sw, makespan, correct, notes)
}

fn build_switch(
    kind: TargetKind,
    cfg: &ParamServerCfg,
    worker_ports: &[PortId],
    ps_port: PortId,
) -> (AnySwitch, Vec<String>) {
    match kind {
        TargetKind::Adcp => {
            let target = TargetModel::adcp_reference();
            let prog = program(
                cfg,
                kind,
                target.central_pipes as u32,
                worker_ports,
                ps_port,
            );
            let sw = AdcpSwitch::new(
                prog,
                target,
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .expect("paramserv compiles on ADCP");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Adcp(Box::new(sw)), notes)
        }
        TargetKind::RmtRecirc => {
            let target = TargetModel::rmt_12t();
            let prog = program(cfg, kind, target.num_pipes() as u32, worker_ports, ps_port);
            let sw = RmtSwitch::new(
                prog,
                target,
                CompileOptions {
                    rmt_central: RmtCentralStrategy::Recirculate,
                },
                RmtConfig::default(),
            )
            .expect("paramserv compiles on RMT via recirculation");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), notes)
        }
        TargetKind::RmtPinned => {
            let target = TargetModel::rmt_12t();
            let prog = program(cfg, kind, 1, worker_ports, ps_port);
            let sw = RmtSwitch::new(
                prog,
                target,
                CompileOptions {
                    rmt_central: RmtCentralStrategy::EgressPin,
                },
                RmtConfig::default(),
            )
            .expect("paramserv compiles on RMT via egress pinning");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), notes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ParamServerCfg {
        ParamServerCfg {
            workers: 4,
            model_size: 64,
            width: 16,
            seed: 7,
            central_workers: 1,
        }
    }

    #[test]
    fn adcp_aggregates_and_multicasts() {
        let r = run(TargetKind::Adcp, &small());
        assert!(r.correct, "{r:?}");
        // 4 workers x 4 chunks in; 4 chunks x 4 group members out.
        assert_eq!(r.injected, 16);
        assert_eq!(r.delivered, 16);
        assert!(r.recirc_passes == 0);
    }

    #[test]
    fn rmt_recirc_is_correct_but_pays_passes() {
        let r = run(TargetKind::RmtRecirc, &small());
        assert!(r.correct, "{r:?}");
        // Scalar restructuring: 4 workers x 64 slots in.
        assert_eq!(r.injected, 256);
        assert_eq!(r.recirc_passes, 256, "every packet loops once");
    }

    #[test]
    fn rmt_pinned_is_correct_but_restricted() {
        let r = run(TargetKind::RmtPinned, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.injected, 256);
        // One result per slot, only at the PS port.
        assert_eq!(r.delivered, 64);
        assert!(r.notes.iter().any(|n| n.contains("extra host hop")));
    }

    #[test]
    fn adcp_element_rate_dwarfs_scalar_rmt() {
        let a = run(TargetKind::Adcp, &small());
        let r = run(TargetKind::RmtRecirc, &small());
        // Same model aggregated; ADCP moves 16x the elements per packet
        // and skips the recirculation pass. The keys/s gap must be large.
        assert!(
            a.elements_per_sec > 4.0 * r.elements_per_sec,
            "adcp {:.3e} vs rmt {:.3e}",
            a.elements_per_sec,
            r.elements_per_sec
        );
    }

    #[test]
    fn widths_2_and_4_also_aggregate_correctly() {
        for width in [2u32, 4] {
            let r = run(
                TargetKind::Adcp,
                &ParamServerCfg {
                    workers: 3,
                    model_size: 32,
                    width,
                    seed: 9,
                    central_workers: 1,
                },
            );
            assert!(r.correct, "width {width}: {r:?}");
        }
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let r = run(
            TargetKind::Adcp,
            &ParamServerCfg {
                workers: 1,
                model_size: 32,
                width: 16,
                seed: 1,
                central_workers: 1,
            },
        );
        // With one worker every chunk completes on its first packet.
        assert!(r.correct, "{r:?}");
        assert_eq!(r.injected, 2);
        assert_eq!(r.delivered, 2);
    }

    #[test]
    fn deterministic_reports() {
        let a = run(TargetKind::Adcp, &small());
        let b = run(TargetKind::Adcp, &small());
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.delivered, b.delivered);
    }
}
