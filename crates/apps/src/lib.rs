//! # adcp-apps — the Table 1 applications, executable
//!
//! Each module implements one coflow application class from the paper's
//! Table 1 on both switch models, with the per-architecture restructuring
//! the paper describes (scalar packets and recirculation or egress pinning
//! on RMT; array processing and the global partitioned area on ADCP):
//!
//! * [`paramserv`] — ML parameter aggregation (SwitchML-style).
//! * [`dbshuffle`] — database filter–aggregate–reshuffle.
//! * [`graphmine`] — BSP graph pattern mining with in-switch barriers.
//! * [`groupcomm`] — switch-initiated group transfer, heterogeneous NICs.
//! * [`kvcache`] — key/value cache with array lookups (exercises Fig. 3).
//! * [`netlock`] — in-network ticket-lock service (the coordination class
//!   of §1), with a packet-record mutual-exclusion proof.
//! * [`flowlet`] — load-driven flowlet forwarding (HULA-style): per-flow
//!   state plus shared per-uplink load estimates fed by decay probes.
//! * [`ddos`] — per-source DDoS detection with threshold promotion /
//!   demotion and a mid-attack live reshard of the hot key range.
//!
//! [`driver`] holds the shared switch abstraction and the [`driver::
//! AppReport`] all apps produce.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dbshuffle;
pub mod ddos;
pub mod driver;
pub mod flowlet;
pub mod graphmine;
pub mod groupcomm;
pub mod kvcache;
pub mod migrate;
pub mod netlock;
pub mod paramserv;

pub use driver::{AnySwitch, AppReport, DeliveredPkt, TargetKind};
