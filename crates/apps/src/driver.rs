//! Shared plumbing for running one application on either switch model.
//!
//! Each app module builds per-architecture program variants (the paper's
//! point is precisely that RMT forces restructuring), drives the switch
//! with a workload, verifies results against a closed-form reference, and
//! returns an [`AppReport`] the benches print.

use adcp_core::AdcpSwitch;
use adcp_rmt::RmtSwitch;
use adcp_sim::packet::{FrameBuf, Packet, PacketMeta, PortId};
use adcp_sim::stats::{LatencySummary, Meter};
use adcp_sim::time::{Duration, SimTime};
use serde::Serialize;

/// Which architecture (and, for RMT, which central-table lowering) an app
/// variant targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TargetKind {
    /// Classic RMT, central tables egress-pinned.
    RmtPinned,
    /// Classic RMT, central tables via recirculation.
    RmtRecirc,
    /// The ADCP.
    Adcp,
}

impl TargetKind {
    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            TargetKind::RmtPinned => "rmt/pinned",
            TargetKind::RmtRecirc => "rmt/recirc",
            TargetKind::Adcp => "adcp",
        }
    }
}

/// A delivered packet, unified across switch models.
#[derive(Debug, Clone)]
pub struct DeliveredPkt {
    /// TX port.
    pub port: PortId,
    /// Last-bit time.
    pub time: SimTime,
    /// Final frame bytes (moved from the switch's delivery record).
    pub data: FrameBuf,
    /// Final metadata.
    pub meta: PacketMeta,
}

/// Either switch model behind one interface.
pub enum AnySwitch {
    /// The RMT baseline.
    Rmt(Box<RmtSwitch>),
    /// The coflow processor.
    Adcp(Box<AdcpSwitch>),
}

impl AnySwitch {
    /// Offer a packet to an RX port.
    pub fn inject(&mut self, port: PortId, pkt: Packet, t: SimTime) {
        match self {
            AnySwitch::Rmt(s) => s.inject(port, pkt, t),
            AnySwitch::Adcp(s) => s.inject(port, pkt, t),
        }
    }

    /// Run to quiescence.
    pub fn run_until_idle(&mut self) -> SimTime {
        match self {
            AnySwitch::Rmt(s) => s.run_until_idle(),
            AnySwitch::Adcp(s) => s.run_until_idle(),
        }
    }

    /// Run every event scheduled at or before `t`, then stop.
    pub fn run_until(&mut self, t: SimTime) -> SimTime {
        match self {
            AnySwitch::Rmt(s) => s.run_until(t),
            AnySwitch::Adcp(s) => s.run_until(t),
        }
    }

    /// Set the central-pipeline worker count. ADCP only — the RMT targets
    /// have no central pipelines, so this is a no-op there. Output is
    /// byte-identical for any value.
    pub fn set_central_workers(&mut self, n: usize) {
        if let AnySwitch::Adcp(s) = self {
            s.set_central_workers(n);
        }
    }

    /// Drain deliveries.
    pub fn take_delivered(&mut self) -> Vec<DeliveredPkt> {
        match self {
            AnySwitch::Rmt(s) => s
                .take_delivered()
                .into_iter()
                .map(|d| DeliveredPkt {
                    port: d.port,
                    time: d.time,
                    data: d.data,
                    meta: d.meta,
                })
                .collect(),
            AnySwitch::Adcp(s) => s
                .take_delivered()
                .into_iter()
                .map(|d| DeliveredPkt {
                    port: d.port,
                    time: d.time,
                    data: d.data,
                    meta: d.meta,
                })
                .collect(),
        }
    }

    /// Assert packet conservation.
    pub fn check_conservation(&self) {
        match self {
            AnySwitch::Rmt(s) => s.check_conservation(),
            AnySwitch::Adcp(s) => s.check_conservation(),
        }
    }

    /// (injected, delivered, total drops, recirc passes).
    pub fn flow_counts(&self) -> (u64, u64, u64, u64) {
        match self {
            AnySwitch::Rmt(s) => (
                s.counters.injected,
                s.counters.delivered,
                s.counters.total_drops(),
                s.counters.recirc_passes,
            ),
            AnySwitch::Adcp(s) => (
                s.counters.injected,
                s.counters.delivered,
                s.counters.total_drops(),
                0,
            ),
        }
    }

    /// (match-table lookups, hits, deparser buffer allocations) — the
    /// post-run counter snapshot both switch models keep.
    pub fn mat_stats(&self) -> (u64, u64, u64) {
        match self {
            AnySwitch::Rmt(s) => (
                s.counters.mat_lookups,
                s.counters.mat_hits,
                s.counters.deparse_allocs,
            ),
            AnySwitch::Adcp(s) => (
                s.counters.mat_lookups,
                s.counters.mat_hits,
                s.counters.deparse_allocs,
            ),
        }
    }

    /// High-water mark of the TM shared buffer(s), in cells.
    pub fn tm_buffer_hwm(&self) -> u64 {
        match self {
            AnySwitch::Rmt(s) => s.tm_buffer_hwm(),
            AnySwitch::Adcp(s) => s.tm_buffer_hwm(),
        }
    }

    /// The delivered-traffic meter.
    pub fn out_meter(&self) -> &Meter {
        match self {
            AnySwitch::Rmt(s) => &s.out_meter,
            AnySwitch::Adcp(s) => &s.out_meter,
        }
    }

    /// End-to-end latency summary.
    pub fn latency(&self) -> LatencySummary {
        match self {
            AnySwitch::Rmt(s) => LatencySummary::from(&s.latency),
            AnySwitch::Adcp(s) => LatencySummary::from(&s.latency),
        }
    }

    /// Export the per-stage metrics registry as JSON, syncing the ad-hoc
    /// counters into it first (hence `&mut`).
    pub fn metrics_json(&mut self) -> serde::Value {
        match self {
            AnySwitch::Rmt(s) => s.metrics_json(),
            AnySwitch::Adcp(s) => s.metrics_json(),
        }
    }

    /// Export the journey tracer (sampled hops, drop forensics, control
    /// instants) as JSON. `{"enabled": false}` when tracing is off.
    pub fn trace_json(&self) -> serde::Value {
        match self {
            AnySwitch::Rmt(s) => s.trace_json(),
            AnySwitch::Adcp(s) => s.trace_json(),
        }
    }
}

/// The result of running one app variant.
#[derive(Debug, Clone, Serialize)]
pub struct AppReport {
    /// Application name.
    pub app: String,
    /// Architecture variant.
    pub target: String,
    /// Did the application produce exactly the reference results?
    pub correct: bool,
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (all classes; includes intentional consumption).
    pub drops: u64,
    /// Recirculation passes (RMT only).
    pub recirc_passes: u64,
    /// Wall-clock (simulated) duration of the run, ns.
    pub makespan_ns: f64,
    /// Delivered goodput, Gbps.
    pub goodput_gbps: f64,
    /// Application data elements per second.
    pub elements_per_sec: f64,
    /// Match-table key lookups executed (all regions, all lanes).
    pub mat_lookups: u64,
    /// Fraction of lookups that hit an installed entry.
    pub mat_hit_rate: f64,
    /// Frame buffers the deparser rebuilt (the per-pass allocation left in
    /// the hot path; payload copies are shared, not reallocated).
    pub deparse_allocs: u64,
    /// Latency summary of delivered packets.
    pub latency: LatencySummary,
    /// Per-stage metrics block exported by the switch's metrics registry
    /// (counters, gauges, span histograms, queue-depth series by scope).
    pub metrics: serde::Value,
    /// Journey-tracer block (sampled hops, drop forensics, control
    /// instants); `{"enabled": false}` when tracing was off for the run.
    pub trace: serde::Value,
    /// Free-form observations (compiler notes, feature restrictions).
    pub notes: Vec<String>,
}

impl AppReport {
    /// Assemble a report from a finished switch run.
    pub fn from_switch(
        app: &str,
        target: TargetKind,
        sw: &mut AnySwitch,
        makespan: SimTime,
        correct: bool,
        notes: Vec<String>,
    ) -> Self {
        let metrics = sw.metrics_json();
        let trace = sw.trace_json();
        let (injected, delivered, drops, recirc) = sw.flow_counts();
        let (mat_lookups, mat_hits, deparse_allocs) = sw.mat_stats();
        let elapsed = Duration(makespan.as_ps().max(1));
        AppReport {
            app: app.to_string(),
            target: target.label().to_string(),
            correct,
            injected,
            delivered,
            drops,
            recirc_passes: recirc,
            makespan_ns: makespan.as_ps() as f64 / 1e3,
            goodput_gbps: sw.out_meter().goodput_gbps(elapsed),
            elements_per_sec: sw.out_meter().elements_per_sec(elapsed),
            mat_lookups,
            mat_hit_rate: if mat_lookups == 0 {
                0.0
            } else {
                mat_hits as f64 / mat_lookups as f64
            },
            deparse_allocs,
            latency: sw.latency(),
            metrics,
            trace,
            notes,
        }
    }

    /// One fixed-width summary line for console tables.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<22} {:<11} ok={:<5} in={:<7} out={:<7} drop={:<6} recirc={:<6} mkspan={:>10.1}ns gp={:>7.2}Gbps elems/s={:>10.3e} p99={:>8.1}ns",
            self.app,
            self.target,
            self.correct,
            self.injected,
            self.delivered,
            self.drops,
            self.recirc_passes,
            self.makespan_ns,
            self.goodput_gbps,
            self.elements_per_sec,
            self.latency.p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_labels() {
        assert_eq!(TargetKind::Adcp.label(), "adcp");
        assert_eq!(TargetKind::RmtPinned.label(), "rmt/pinned");
        assert_eq!(TargetKind::RmtRecirc.label(), "rmt/recirc");
    }
}
