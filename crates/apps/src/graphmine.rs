//! Graph pattern mining: BSP supersteps with an in-switch barrier
//! (Table 1, row 3; GraphINC-style).
//!
//! Each superstep, every partition sends candidate-count messages along
//! its cut edges. The switch aggregates the superstep's total candidate
//! count and detects the barrier (all expected messages arrived); the
//! completing message is turned into a *barrier release* carrying the
//! global total, multicast to every partition — which then starts the next
//! superstep. This is a closed loop: superstep `s+1` cannot be injected
//! until the release for `s` is observed, so switch latency directly
//! stretches job runtime.
//!
//! Variants mirror `paramserv`: ADCP holds the barrier state in the global
//! area and multicasts releases; RMT needs recirculation for the same
//! behaviour, or pins the barrier to one port (requiring a host-level
//! relay for the release).

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId, Operand,
    ParserSpec, Program, ProgramBuilder, RegAluOp, Region, RegisterDef, RmtCentralStrategy,
    TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::graph::{BspJob, BspWorkload};

/// Parameters of one mining run.
#[derive(Debug, Clone)]
pub struct GraphMineCfg {
    /// Workload shape.
    pub workload: BspWorkload,
    /// Candidates carried per message at scale 1.
    pub base_candidates: u32,
    /// RNG seed for graph synthesis.
    pub seed: u64,
}

impl Default for GraphMineCfg {
    fn default() -> Self {
        GraphMineCfg {
            workload: BspWorkload {
                partitions: 8,
                vertices: 2000,
                edges: 8000,
                supersteps: 9,
            },
            base_candidates: 4,
            seed: 5,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_KIND: u16 = 0; // 0 = message, 1 = barrier release
#[allow(dead_code)]
const F_PART: u16 = 1; // sending partition (diagnostic field)
const F_STEP: u16 = 2; // superstep index
const F_COUNT: u16 = 3; // candidates (message) / global total (release)
const F_SCRATCH: u16 = 4;

/// Build the mining program. `expected_msgs` is the per-superstep message
/// count (constant: the cut structure does not change between steps).
pub fn program(
    kind: TargetKind,
    expected_msgs: u32,
    supersteps: u32,
    barrier_port: PortId,
    partition_ports: &[PortId],
) -> Program {
    let mut b = ProgramBuilder::new(format!("graphmine-{}", kind.label()));
    let h = b.header(HeaderDef::new(
        "bsp",
        vec![
            FieldDef::scalar("kind", 8),
            FieldDef::scalar("part", 8),
            FieldDef::scalar("step", 16),
            FieldDef::scalar("count", 32),
            FieldDef::scalar("scratch", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let sums = b.register(RegisterDef::new("step_sum", supersteps, 64));
    let cnts = b.register(RegisterDef::new("step_msgs", supersteps, 32));
    let group = b.mcast_group(partition_ports.to_vec());

    // Ingress: send every superstep's messages to one state location.
    let ingress_ops = match kind {
        TargetKind::Adcp => vec![ActionOp::SetCentralPipe(Operand::Field(fr(F_STEP)))],
        TargetKind::RmtRecirc => vec![
            ActionOp::SetCentralPipe(Operand::Field(fr(F_STEP))),
            ActionOp::Recirculate,
        ],
        TargetKind::RmtPinned => {
            vec![ActionOp::SetEgress(Operand::Const(barrier_port.0 as u64))]
        }
    };
    b.table(TableDef {
        name: "steer".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "steer",
            [
                ingress_ops,
                vec![ActionOp::CountElements(Operand::Const(1))],
            ]
            .concat(),
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // Central: aggregate candidates and detect the barrier.
    let release = match kind {
        TargetKind::Adcp | TargetKind::RmtRecirc => {
            ActionOp::SetMulticast(Operand::Const(group as u64))
        }
        TargetKind::RmtPinned => ActionOp::SetEgress(Operand::Const(barrier_port.0 as u64)),
    };
    b.table(TableDef {
        name: "barrier".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "barrier",
            vec![
                ActionOp::RegRmw {
                    reg: sums,
                    index: Operand::Field(fr(F_STEP)),
                    op: RegAluOp::Add,
                    value: Operand::Field(fr(F_COUNT)),
                    fetch: None,
                },
                ActionOp::RegRmw {
                    reg: cnts,
                    index: Operand::Field(fr(F_STEP)),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: Some(fr(F_SCRATCH)),
                },
                ActionOp::MarkDrop,
                ActionOp::IfEq {
                    a: Operand::Field(fr(F_SCRATCH)),
                    b: Operand::Const(expected_msgs as u64 - 1),
                    then: vec![
                        // The completing message becomes the release,
                        // carrying the superstep's global total.
                        ActionOp::RegRead {
                            reg: sums,
                            index: Operand::Field(fr(F_STEP)),
                            dst: fr(F_COUNT),
                        },
                        ActionOp::Set {
                            dst: fr(F_KIND),
                            src: Operand::Const(1),
                        },
                        release,
                    ],
                },
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn msg_packet(id: u64, part: u32, step: u32, count: u32) -> Packet {
    let mut data = Vec::with_capacity(12);
    data.push(0u8);
    data.push(part as u8);
    data.extend_from_slice(&(step as u16).to_be_bytes());
    data.extend_from_slice(&count.to_be_bytes());
    data.extend_from_slice(&0u32.to_be_bytes());
    Packet::new(id, FlowId(part as u64), data)
        .with_goodput(8)
        .with_elements(1)
}

fn read_release(data: &[u8]) -> Option<(u32, u64)> {
    if data[0] != 1 {
        return None;
    }
    let step = u16::from_be_bytes(data[2..4].try_into().unwrap()) as u32;
    let total = u32::from_be_bytes(data[4..8].try_into().unwrap()) as u64;
    Some((step, total))
}

/// Run the BSP job closed-loop; verify every barrier and total.
pub fn run(kind: TargetKind, cfg: &GraphMineCfg) -> AppReport {
    let mut rng = SimRng::seed_from(cfg.seed);
    let job: BspJob = cfg.workload.generate(&mut rng);
    let expected_msgs = job.superstep_messages(0, 1).len() as u32;
    assert!(
        expected_msgs > 0,
        "degenerate workload: a single partition exchanges no messages"
    );
    let partition_ports: Vec<PortId> = (0..cfg.workload.partitions as u16).map(PortId).collect();
    let barrier_port = PortId(cfg.workload.partitions as u16);

    let (mut sw, notes) = build_switch(kind, cfg, expected_msgs, barrier_port, &partition_ports);

    let mut correct = true;
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    for step in 0..cfg.workload.supersteps as usize {
        // Inject this superstep's messages (released by the previous
        // barrier; in the real system partitions compute for a while
        // first — we start them immediately).
        for m in job.superstep_messages(step, cfg.base_candidates) {
            sw.inject(
                PortId(m.src_part as u16),
                msg_packet(next_id, m.src_part, step as u32, m.candidates),
                now,
            );
            next_id += 1;
        }
        now = sw.run_until_idle();
        // Collect the barrier release(s).
        let delivered = sw.take_delivered();
        let releases: Vec<(PortId, u32, u64)> = delivered
            .iter()
            .filter_map(|d| read_release(&d.data).map(|(s, t)| (d.port, s, t)))
            .collect();
        let expected_total = job.superstep_volume(step, cfg.base_candidates);
        let expected_copies = match kind {
            TargetKind::Adcp | TargetKind::RmtRecirc => partition_ports.len(),
            TargetKind::RmtPinned => 1,
        };
        if releases.len() != expected_copies {
            correct = false;
        }
        for (port, s, total) in &releases {
            if *s as usize != step || *total != expected_total {
                correct = false;
            }
            if kind == TargetKind::RmtPinned && *port != barrier_port {
                correct = false;
            }
        }
    }
    sw.check_conservation();
    let mut notes = notes;
    notes.push(format!(
        "{} supersteps, {} messages/step, barrier detected in-switch",
        cfg.workload.supersteps, expected_msgs
    ));
    if kind == TargetKind::RmtPinned {
        notes.push("release visible only at the barrier port; host relay needed".into());
    }
    AppReport::from_switch("graphmine", kind, &mut sw, now, correct, notes)
}

fn build_switch(
    kind: TargetKind,
    cfg: &GraphMineCfg,
    expected_msgs: u32,
    barrier_port: PortId,
    partition_ports: &[PortId],
) -> (AnySwitch, Vec<String>) {
    let supersteps = cfg.workload.supersteps;
    match kind {
        TargetKind::Adcp => {
            let target = TargetModel::adcp_reference();
            let prog = program(
                kind,
                expected_msgs,
                supersteps,
                barrier_port,
                partition_ports,
            );
            let sw = AdcpSwitch::new(
                prog,
                target,
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .expect("graphmine compiles on ADCP");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Adcp(Box::new(sw)), notes)
        }
        TargetKind::RmtRecirc | TargetKind::RmtPinned => {
            let target = TargetModel::rmt_12t();
            let prog = program(
                kind,
                expected_msgs,
                supersteps,
                barrier_port,
                partition_ports,
            );
            let strategy = if kind == TargetKind::RmtRecirc {
                RmtCentralStrategy::Recirculate
            } else {
                RmtCentralStrategy::EgressPin
            };
            let sw = RmtSwitch::new(
                prog,
                target,
                CompileOptions {
                    rmt_central: strategy,
                },
                RmtConfig::default(),
            )
            .expect("graphmine compiles on RMT");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), notes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GraphMineCfg {
        GraphMineCfg {
            workload: BspWorkload {
                partitions: 4,
                vertices: 500,
                edges: 3000,
                supersteps: 6,
            },
            base_candidates: 2,
            seed: 13,
        }
    }

    #[test]
    fn adcp_barriers_release_every_partition() {
        let r = run(TargetKind::Adcp, &small());
        assert!(r.correct, "{r:?}");
        // 6 steps x 12 cut pairs in, 6 releases x 4 partitions out.
        assert_eq!(r.injected, 72);
        assert_eq!(r.delivered, 24);
    }

    #[test]
    fn rmt_recirc_barriers_work_with_extra_passes() {
        let r = run(TargetKind::RmtRecirc, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.recirc_passes, 72, "one pass per message");
    }

    #[test]
    fn rmt_pinned_release_is_port_restricted() {
        let r = run(TargetKind::RmtPinned, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.delivered, 6, "one release per step, one port");
        assert!(r.notes.iter().any(|n| n.contains("host relay")));
    }

    #[test]
    fn closed_loop_makespan_grows_with_supersteps() {
        let mut cfg = small();
        let short = run(TargetKind::Adcp, &cfg);
        cfg.workload.supersteps = 12;
        let long = run(TargetKind::Adcp, &cfg);
        assert!(long.makespan_ns > short.makespan_ns * 1.5);
    }
}
