//! Load-driven flowlet forwarding ("flowlet-ldf", HULA/Cascone-style).
//!
//! The original seed app was the paper's §1 control case: per-flow state
//! only, no shared structure, native on classic RMT. This grown version is
//! the thing real traffic engineering wants and the reason the flowlet
//! example stops being boring: the uplink choice is **load-driven**. The
//! switch keeps, per flow slot, the last-seen timestamp and the chosen
//! uplink, plus a *shared* per-uplink load estimate fed by two sources:
//!
//! * every data packet increments the load of the uplink it takes, and
//! * periodic **probe packets** decay each uplink's estimate by half —
//!   an EWMA (α = ½) over probe windows.
//!
//! A packet whose inter-arrival delta reaches the flowlet gap re-picks its
//! uplink as the **argmin of the load estimates** (ties to the highest
//! index); otherwise it sticks, keeping the flowlet on one path. The
//! inter-arrival delta is a wrapping 32-bit subtraction, so a wrapped
//! timestamp yields a huge delta and deliberately opens a new flowlet —
//! wraparound can only ever *reset* a path, never pin one.
//!
//! The shared load state is what moves the app out of RMT's comfort zone:
//! it lives in the central region (the ADCP's global partitioned area),
//! and on RMT it pays the paper's lowering tax — recirculation passes or
//! egress pinning, where results can only leave via the pinned pipeline's
//! ports and the chosen uplink is observable only from the packet bytes.
//! At 10⁶ flows the per-slot registers exceed a single stage's register
//! budget; the compiler's Cascone-style spanning/partitioning (DESIGN.md
//! §12) makes the footprint an explicit placement fact on both targets.
//!
//! Each central replica (ADCP central pipe; RMT recirculation pipe; the
//! single pinned egress pipe) holds its own load table fed only by the
//! flows it owns — the honest distributed-state behavior, modeled exactly
//! by the host reference. Every injected event is predicted by that
//! reference and every delivered packet is checked against it.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch, DemuxPolicy};
use adcp_lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
    HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder,
    RegAluOp, Region, RegisterDef, RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::keys::ZipfKeys;

/// Parameters of one load-driven forwarding run.
#[derive(Debug, Clone)]
pub struct LdfCfg {
    /// Live-flow keyspace (slots are the next power of two; RMT folds to
    /// at most [`MAX_RMT_SLOTS`]).
    pub flows: u64,
    /// Data packets to send (Zipf-distributed over the flows).
    pub pkts: u64,
    /// Uplink ports to balance across (ports 8..8+uplinks).
    pub uplinks: u16,
    /// Flowlet gap, in timestamp ticks (4096 ps each).
    pub gap_ticks: u32,
    /// Probe windows across the run; each window boundary injects one
    /// decay probe per (central replica × uplink).
    pub windows: u32,
    /// Zipf skew of flow popularity.
    pub skew: f64,
    /// Base added to every packet timestamp — lets tests start the clock
    /// near `u32::MAX` to exercise wraparound.
    pub time_base: u32,
    /// RNG seed.
    pub seed: u64,
    /// ADCP central-worker threads (byte-identical output for any value).
    pub central_workers: usize,
}

impl Default for LdfCfg {
    fn default() -> Self {
        LdfCfg {
            flows: 4096,
            pkts: 6_000,
            uplinks: 4,
            gap_ticks: 16,
            windows: 8,
            skew: 0.9,
            time_base: 0,
            seed: 4,
            central_workers: 1,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_KIND: u16 = 0; // 8b: 0 = data, 1 = probe
const F_FLOW: u16 = 1; // 32b flow id
const F_NOW: u16 = 2; // 32b arrival timestamp, ticks (wraps)
const F_SLOT: u16 = 3; // 32b state slot / probe target replica
const F_DELTA: u16 = 4; // scratch: now - last_seen (wrapping)
const F_NEW: u16 = 5; // 8b: 1 when a new flowlet opens
const F_UPLINK: u16 = 6; // chosen uplink port (filled centrally)
const F_PUP: u16 = 7; // probe: uplink index to decay
const F_BEST: u16 = 8; // argmin scratch: best load so far
const F_BIDX: u16 = 9; // argmin scratch: best uplink index
const F_LU: u16 = 10; // scratch: load of the uplink under test
const F_FLAG: u16 = 11; // scratch: Ge comparison result
const F_MASK: u16 = 12; // scratch: 0 or all-ones select mask
const F_TMP: u16 = 13; // scratch: xor-select temporary

/// Header bytes (fields above, byte-aligned, in order).
const HDR_BYTES: usize = 50;
const OFF_NOW: usize = 5;
const OFF_SLOT: usize = 9;
const OFF_NEW: usize = 17;
const OFF_UPLINK: usize = 18;
const OFF_PUP: usize = 22;

/// First uplink port.
pub const UPLINK_BASE: u16 = 8;
/// Port probes leave from (where redirection is possible at all).
pub const PROBE_SINK: u16 = 12;
/// RMT folds the per-flow state to at most this many slots — the honest
/// structural contrast: 10⁶ exact flows fit the ADCP's partitioned
/// central area, the RMT lowering hash-folds and accepts collisions.
pub const MAX_RMT_SLOTS: u64 = 1 << 18;

/// Picoseconds per timestamp tick.
const TICK_SHIFT: u32 = 12;
/// Injection pacing: one event per 5 ns keeps every queue empty, so the
/// per-replica processing order equals injection order and the host
/// reference is exact on every target.
const INJECT_GAP_PS: u64 = 5_000;

/// State slots for a target: exact per-flow on the ADCP, hash-folded on
/// the RMT lowerings.
pub fn slots_for(kind: TargetKind, flows: u64) -> u64 {
    let exact = flows.next_power_of_two();
    match kind {
        TargetKind::Adcp => exact,
        _ => exact.min(MAX_RMT_SLOTS),
    }
}

/// Build the load-driven forwarding program.
///
/// Ingress classifies on `kind` and steers; the central `ldf` table holds
/// all the stateful work: the flowlet-gap test (`Ge` on a wrapping
/// delta), the argmin re-pick over the load registers, the per-packet
/// load increment, and the probe decay.
pub fn program(
    kind: TargetKind,
    uplinks: u16,
    n_slots: u64,
    gap_ticks: u32,
    collector: PortId,
) -> Program {
    let mut b = ProgramBuilder::new("flowlet-ldf");
    let h = b.header(HeaderDef::new(
        "ldf",
        vec![
            FieldDef::scalar("kind", 8),
            FieldDef::scalar("flow", 32),
            FieldDef::scalar("now", 32),
            FieldDef::scalar("slot", 32),
            FieldDef::scalar("delta", 32),
            FieldDef::scalar("new", 8),
            FieldDef::scalar("uplink", 32),
            FieldDef::scalar("pup", 32),
            FieldDef::scalar("best", 32),
            FieldDef::scalar("bidx", 32),
            FieldDef::scalar("lu", 32),
            FieldDef::scalar("flag", 32),
            FieldDef::scalar("mask", 32),
            FieldDef::scalar("tmp", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let last_seen = b.register(RegisterDef::new("last_seen", n_slots as u32, 32));
    let chosen = b.register(RegisterDef::new("chosen_uplink", n_slots as u32, 32));
    let load = b.register(RegisterDef::new("uplink_load", uplinks as u32, 32));

    // Ingress: fold the flow into a slot and steer toward the central
    // state. Probes carry their target replica in `slot` already.
    let steer = |probe: bool| -> Vec<ActionOp> {
        let mut ops = Vec::new();
        if !probe {
            ops.push(ActionOp::Bin {
                dst: fr(F_SLOT),
                op: BinOp::And,
                a: Operand::Field(fr(F_FLOW)),
                b: Operand::Const(n_slots - 1),
            });
        }
        match kind {
            TargetKind::Adcp => ops.push(ActionOp::SetCentralPipe(Operand::Field(fr(F_SLOT)))),
            TargetKind::RmtRecirc => {
                ops.push(ActionOp::SetCentralPipe(Operand::Field(fr(F_SLOT))));
                ops.push(ActionOp::Recirculate);
            }
            // Pinned: funnel everything to the collector's egress pipe,
            // where the pinned central state lives. The egress region
            // cannot redirect, so results leave on the collector port and
            // the chosen uplink is only visible in the packet bytes —
            // exactly the Fig. 2 limitation the paper describes.
            TargetKind::RmtPinned => {
                ops.push(ActionOp::SetEgress(Operand::Const(collector.0 as u64)))
            }
        }
        if !probe {
            ops.push(ActionOp::CountElements(Operand::Const(1)));
        }
        ops
    };
    b.table(TableDef {
        name: "classify".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(F_KIND),
            kind: MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![
            ActionDef::new("fold_data", steer(false)),
            ActionDef::new("steer_probe", steer(true)),
        ],
        default_action: 0,
        default_params: vec![],
        size: 2,
    });

    // Central data path: gap test, argmin re-pick, load accounting.
    let mut data = vec![
        // delta = now - last_seen[slot]; update last_seen. The Sub wraps
        // at the field's 32 bits, so a wrapped clock yields a huge delta.
        ActionOp::RegRmw {
            reg: last_seen,
            index: Operand::Field(fr(F_SLOT)),
            op: RegAluOp::Write,
            value: Operand::Field(fr(F_NOW)),
            fetch: Some(fr(F_DELTA)),
        },
        ActionOp::Bin {
            dst: fr(F_DELTA),
            op: BinOp::Sub,
            a: Operand::Field(fr(F_NOW)),
            b: Operand::Field(fr(F_DELTA)),
        },
        // The first-class comparison the flowlet decision always wanted:
        // new = (delta >= gap).
        ActionOp::Bin {
            dst: fr(F_NEW),
            op: BinOp::Ge,
            a: Operand::Field(fr(F_DELTA)),
            b: Operand::Const(gap_ticks as u64),
        },
        // Sticky path: the recorded uplink index.
        ActionOp::RegRead {
            reg: chosen,
            index: Operand::Field(fr(F_SLOT)),
            dst: fr(F_BIDX),
        },
    ];
    // On a new flowlet: branch-free argmin over the load registers.
    // best/bidx start at uplink 0; each candidate u replaces them when
    // load[u] <= best (so ties go to the highest index), via the xor
    // select x ^= (x ^ y) & mask with mask = 0 - (best >= load[u]).
    let mut repick = vec![
        ActionOp::RegRead {
            reg: load,
            index: Operand::Const(0),
            dst: fr(F_BEST),
        },
        ActionOp::Set {
            dst: fr(F_BIDX),
            src: Operand::Const(0),
        },
    ];
    for u in 1..uplinks as u64 {
        repick.extend([
            ActionOp::RegRead {
                reg: load,
                index: Operand::Const(u),
                dst: fr(F_LU),
            },
            ActionOp::Bin {
                dst: fr(F_FLAG),
                op: BinOp::Ge,
                a: Operand::Field(fr(F_BEST)),
                b: Operand::Field(fr(F_LU)),
            },
            ActionOp::Bin {
                dst: fr(F_MASK),
                op: BinOp::Sub,
                a: Operand::Const(0),
                b: Operand::Field(fr(F_FLAG)),
            },
            ActionOp::Bin {
                dst: fr(F_TMP),
                op: BinOp::Xor,
                a: Operand::Field(fr(F_BEST)),
                b: Operand::Field(fr(F_LU)),
            },
            ActionOp::Bin {
                dst: fr(F_TMP),
                op: BinOp::And,
                a: Operand::Field(fr(F_TMP)),
                b: Operand::Field(fr(F_MASK)),
            },
            ActionOp::Bin {
                dst: fr(F_BEST),
                op: BinOp::Xor,
                a: Operand::Field(fr(F_BEST)),
                b: Operand::Field(fr(F_TMP)),
            },
            ActionOp::Bin {
                dst: fr(F_TMP),
                op: BinOp::Xor,
                a: Operand::Field(fr(F_BIDX)),
                b: Operand::Const(u),
            },
            ActionOp::Bin {
                dst: fr(F_TMP),
                op: BinOp::And,
                a: Operand::Field(fr(F_TMP)),
                b: Operand::Field(fr(F_MASK)),
            },
            ActionOp::Bin {
                dst: fr(F_BIDX),
                op: BinOp::Xor,
                a: Operand::Field(fr(F_BIDX)),
                b: Operand::Field(fr(F_TMP)),
            },
        ]);
    }
    repick.push(ActionOp::RegRmw {
        reg: chosen,
        index: Operand::Field(fr(F_SLOT)),
        op: RegAluOp::Write,
        value: Operand::Field(fr(F_BIDX)),
        fetch: None,
    });
    data.push(ActionOp::IfEq {
        a: Operand::Field(fr(F_NEW)),
        b: Operand::Const(1),
        then: repick,
    });
    data.extend([
        // This packet's contribution to the load it rides on.
        ActionOp::RegRmw {
            reg: load,
            index: Operand::Field(fr(F_BIDX)),
            op: RegAluOp::Add,
            value: Operand::Const(1),
            fetch: None,
        },
        ActionOp::Bin {
            dst: fr(F_UPLINK),
            op: BinOp::Add,
            a: Operand::Field(fr(F_BIDX)),
            b: Operand::Const(UPLINK_BASE as u64),
        },
        ActionOp::SetEgress(Operand::Field(fr(F_UPLINK))),
    ]);

    // Central probe path: halve one uplink's estimate — the EWMA window
    // roll (α = ½ over whatever accumulated since the last probe).
    let probe = vec![
        ActionOp::RegRead {
            reg: load,
            index: Operand::Field(fr(F_PUP)),
            dst: fr(F_LU),
        },
        ActionOp::Bin {
            dst: fr(F_TMP),
            op: BinOp::Shr,
            a: Operand::Field(fr(F_LU)),
            b: Operand::Const(1),
        },
        ActionOp::RegRmw {
            reg: load,
            index: Operand::Field(fr(F_PUP)),
            op: RegAluOp::Write,
            value: Operand::Field(fr(F_TMP)),
            fetch: None,
        },
        ActionOp::SetEgress(Operand::Const(PROBE_SINK as u64)),
    ];

    b.table(TableDef {
        name: "ldf".into(),
        region: Region::Central,
        key: Some(KeySpec {
            field: fr(F_KIND),
            kind: MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![ActionDef::new("data", data), ActionDef::new("probe", probe)],
        default_action: 0,
        default_params: vec![],
        size: 2,
    });
    b.build()
}

fn data_pkt(id: u64, flow: u64, now: u32) -> Packet {
    let mut d = vec![0u8; HDR_BYTES + 6];
    d[1..5].copy_from_slice(&(flow as u32).to_be_bytes());
    d[OFF_NOW..OFF_NOW + 4].copy_from_slice(&now.to_be_bytes());
    Packet::new(id, FlowId(flow), d)
        .with_goodput(8)
        .with_elements(1)
}

fn probe_pkt(id: u64, rep: u16, up: u16) -> Packet {
    let mut d = vec![0u8; HDR_BYTES + 6];
    d[0] = 1;
    d[OFF_SLOT..OFF_SLOT + 4].copy_from_slice(&(rep as u32).to_be_bytes());
    d[OFF_PUP..OFF_PUP + 4].copy_from_slice(&(up as u32).to_be_bytes());
    Packet::new(id, FlowId(u64::MAX), d).with_goodput(8)
}

/// Host reference: the exact per-replica state machine the switch runs.
struct LdfRef {
    slot_mask: u64,
    replicas: usize,
    gap: u32,
    last_seen: Vec<u32>,
    chosen: Vec<u8>,
    /// Per-replica per-uplink load estimate.
    load: Vec<Vec<u64>>,
    wraps: u64,
    repicks: u64,
}

impl LdfRef {
    fn new(n_slots: u64, replicas: usize, uplinks: u16, gap: u32) -> Self {
        LdfRef {
            slot_mask: n_slots - 1,
            replicas,
            gap,
            last_seen: vec![0; n_slots as usize],
            chosen: vec![0; n_slots as usize],
            load: vec![vec![0; uplinks as usize]; replicas],
            wraps: 0,
            repicks: 0,
        }
    }

    /// Process one data packet; returns (uplink index, new-flowlet flag).
    fn data(&mut self, flow: u64, now: u32) -> (u8, u8) {
        let slot = (flow & self.slot_mask) as usize;
        let rep = slot % self.replicas;
        let delta = now.wrapping_sub(self.last_seen[slot]);
        self.last_seen[slot] = now;
        let mut idx = self.chosen[slot];
        let new = u8::from(delta >= self.gap);
        if new == 1 {
            if delta > u32::MAX / 2 {
                self.wraps += 1;
            }
            self.repicks += 1;
            // argmin, ties to the highest index (the switch scans
            // ascending and replaces on load[u] <= best).
            let loads = &self.load[rep];
            let mut best = loads[0];
            idx = 0;
            for (u, &l) in loads.iter().enumerate().skip(1) {
                if l <= best {
                    best = l;
                    idx = u as u8;
                }
            }
            self.chosen[slot] = idx;
        }
        self.load[rep][idx as usize] += 1;
        (idx, new)
    }

    fn probe(&mut self, rep: u16, up: u16) {
        self.load[rep as usize][up as usize] >>= 1;
    }
}

fn sw_install(sw: &mut AnySwitch, table: &str, entry: Entry) {
    match sw {
        AnySwitch::Rmt(s) => s.install_all(table, entry).expect("install"),
        AnySwitch::Adcp(s) => s.install_all(table, entry).expect("install"),
    }
}

/// Everything a flowlet-ldf run produced, beyond the standard report.
#[derive(Debug)]
pub struct LdfOutcome {
    /// Standard app report (`correct` = every delivered packet matched
    /// the host reference's prediction).
    pub report: AppReport,
    /// Flowlet re-picks the reference predicted.
    pub repicks: u64,
    /// Re-picks forced by a wrapped timestamp delta.
    pub wraps: u64,
    /// Delivered data packets per uplink index.
    pub per_uplink: Vec<u64>,
}

/// Run load-driven forwarding on a target; verify every delivered packet
/// against the host reference.
pub fn run(kind: TargetKind, cfg: &LdfCfg) -> LdfOutcome {
    let collector = PortId(6);
    let n_slots = slots_for(kind, cfg.flows);
    let prog = program(kind, cfg.uplinks, n_slots, cfg.gap_ticks, collector);
    let (mut sw, notes, replicas) = match kind {
        TargetKind::Adcp => {
            let mut sw = AdcpSwitch::new(
                prog,
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                AdcpConfig {
                    demux: DemuxPolicy::FlowHash,
                    ..Default::default()
                },
            )
            .expect("flowlet-ldf compiles on ADCP");
            sw.set_central_workers(cfg.central_workers);
            let n = sw.placement.notes.clone();
            let reps = sw.num_central();
            (AnySwitch::Adcp(Box::new(sw)), n, reps)
        }
        _ => {
            let strategy = if kind == TargetKind::RmtRecirc {
                RmtCentralStrategy::Recirculate
            } else {
                RmtCentralStrategy::EgressPin
            };
            let target = TargetModel::rmt_12t();
            let reps = if kind == TargetKind::RmtRecirc {
                target.num_pipes() as usize
            } else {
                1
            };
            let sw = RmtSwitch::new(
                prog,
                target,
                CompileOptions {
                    rmt_central: strategy,
                },
                RmtConfig::default(),
            )
            .expect("flowlet-ldf compiles on RMT");
            let n = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), n, reps)
        }
    };
    for (k, a) in [(0u64, 0usize), (1, 1)] {
        for table in ["classify", "ldf"] {
            sw_install(
                &mut sw,
                table,
                Entry {
                    value: MatchValue::Exact(k),
                    action: a,
                    params: vec![],
                },
            );
        }
    }

    // Drive the run: Zipf data stream with probe batches at window
    // boundaries, everything on port 0 with strictly increasing times.
    // Injection is chunked so a million-flow run never materializes the
    // whole packet list.
    let mut reference = LdfRef::new(n_slots, replicas, cfg.uplinks, cfg.gap_ticks);
    // Per event id: (uplink index, new flag), or (0xFF, _) for probes.
    let mut expected: Vec<(u8, u8)> = Vec::new();
    let zipf = ZipfKeys::new(cfg.flows as usize, cfg.skew);
    let mut rng = SimRng::seed_from(cfg.seed);
    let window_every = (cfg.pkts / cfg.windows.max(1) as u64).max(1);
    let mut t_ps = 0u64;
    let mut pending = 0u64;
    let mut n_probes = 0u64;
    for i in 0..cfg.pkts {
        if i > 0 && i % window_every == 0 {
            for rep in 0..replicas as u16 {
                for up in 0..cfg.uplinks {
                    t_ps += INJECT_GAP_PS;
                    sw.inject(
                        PortId(0),
                        probe_pkt(expected.len() as u64, rep, up),
                        SimTime(t_ps),
                    );
                    reference.probe(rep, up);
                    expected.push((0xFF, 0));
                    n_probes += 1;
                }
            }
        }
        t_ps += INJECT_GAP_PS;
        let flow = zipf.sample(&mut rng);
        let now = cfg.time_base.wrapping_add((t_ps >> TICK_SHIFT) as u32);
        sw.inject(
            PortId(0),
            data_pkt(expected.len() as u64, flow, now),
            SimTime(t_ps),
        );
        expected.push(reference.data(flow, now));
        pending += 1;
        if pending >= 50_000 {
            sw.run_until(SimTime(t_ps));
            pending = 0;
        }
    }
    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Every delivered packet against the reference's prediction.
    let delivered = sw.take_delivered();
    let mut correct = true;
    let mut data_seen = 0u64;
    let mut probe_seen = 0u64;
    let mut per_uplink = vec![0u64; cfg.uplinks as usize];
    for d in &delivered {
        let (exp_idx, exp_new) = expected[d.meta.id as usize];
        if d.data[0] == 1 {
            probe_seen += 1;
            let want_port = if kind == TargetKind::RmtPinned {
                collector.0
            } else {
                PROBE_SINK
            };
            if exp_idx != 0xFF || d.port.0 != want_port {
                correct = false;
            }
            continue;
        }
        data_seen += 1;
        if exp_idx == 0xFF {
            correct = false;
            continue;
        }
        let up = u32::from_be_bytes(d.data[OFF_UPLINK..OFF_UPLINK + 4].try_into().unwrap());
        if up != (UPLINK_BASE + exp_idx as u16) as u32 || d.data[OFF_NEW] != exp_new {
            correct = false;
            continue;
        }
        per_uplink[exp_idx as usize] += 1;
        // Where redirection is architecturally possible the packet must
        // actually leave on its uplink; pinned RMT can only use the
        // collector's ports.
        let want_port = if kind == TargetKind::RmtPinned {
            collector.0
        } else {
            UPLINK_BASE + exp_idx as u16
        };
        if d.port.0 != want_port {
            correct = false;
        }
    }
    if data_seen != cfg.pkts || probe_seen != n_probes {
        correct = false;
    }

    let mut notes = notes;
    notes.push(format!(
        "slots={n_slots} replicas={replicas} repicks={} wrapped_deltas={} uplink loads: {per_uplink:?}",
        reference.repicks, reference.wraps
    ));
    LdfOutcome {
        report: AppReport::from_switch("flowlet-ldf", kind, &mut sw, makespan, correct, notes),
        repicks: reference.repicks,
        wraps: reference.wraps,
        per_uplink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adcp_matches_reference() {
        let o = run(TargetKind::Adcp, &LdfCfg::default());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(o.repicks > 0);
        assert!(
            o.per_uplink.iter().all(|&c| c > 0),
            "all uplinks carry load: {:?}",
            o.per_uplink
        );
    }

    #[test]
    fn rmt_pinned_matches_reference() {
        let o = run(TargetKind::RmtPinned, &LdfCfg::default());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert_eq!(o.report.recirc_passes, 0);
    }

    #[test]
    fn rmt_recirc_matches_reference_and_pays_the_tax() {
        let o = run(TargetKind::RmtRecirc, &LdfCfg::default());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(
            o.report.recirc_passes >= o.report.injected,
            "every packet recirculates once: {} passes / {} injected",
            o.report.recirc_passes,
            o.report.injected
        );
    }

    #[test]
    fn wrapped_timestamps_open_new_flowlets() {
        // Start the clock just below u32::MAX: mid-run every live flow's
        // delta wraps, and a wrapped delta must *re-pick*, never stick.
        let cfg = LdfCfg {
            time_base: u32::MAX - 2_000,
            ..LdfCfg::default()
        };
        let o = run(TargetKind::Adcp, &cfg);
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(
            o.wraps > 0,
            "the run must cross the wrap: {:?}",
            o.report.notes
        );
    }

    #[test]
    fn probes_rebalance_a_skewed_start() {
        // Strong skew concentrates early flowlets; decay probes + load
        // feedback must still pull every uplink into use.
        let cfg = LdfCfg {
            skew: 1.3,
            windows: 16,
            ..LdfCfg::default()
        };
        let o = run(TargetKind::Adcp, &cfg);
        assert!(o.report.correct);
        assert!(o.per_uplink.iter().all(|&c| c > 0), "{:?}", o.per_uplink);
    }

    #[test]
    fn million_flow_state_partitions_and_spans() {
        // Compile-only at 2^20 flows: the ADCP partitions the per-flow
        // registers across central pipes and spans stages; the RMT
        // lowering folds to MAX_RMT_SLOTS and still spans. (Paged
        // register files make constructing these switches cheap.)
        let flows = 1u64 << 20;
        let n = slots_for(TargetKind::Adcp, flows);
        assert_eq!(n, 1 << 20);
        let sw = AdcpSwitch::new(
            program(TargetKind::Adcp, 4, n, 16, PortId(6)),
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig::default(),
        )
        .expect("million-flow state compiles on ADCP");
        assert!(
            sw.placement
                .notes
                .iter()
                .any(|n| n.contains("partitioned across")),
            "{:?}",
            sw.placement.notes
        );
        assert!(
            sw.placement.notes.iter().any(|n| n.contains("spans")),
            "{:?}",
            sw.placement.notes
        );

        let nr = slots_for(TargetKind::RmtPinned, flows);
        assert_eq!(nr, MAX_RMT_SLOTS);
        let sw = RmtSwitch::new(
            program(TargetKind::RmtPinned, 4, nr, 16, PortId(6)),
            TargetModel::rmt_12t(),
            CompileOptions::default(),
            RmtConfig::default(),
        )
        .expect("folded million-flow state compiles on RMT");
        assert!(
            sw.placement.notes.iter().any(|n| n.contains("spans")),
            "{:?}",
            sw.placement.notes
        );
    }
}
