//! Flowlet-based load balancing (HULA-style, the paper's §1 example of
//! what RMT *is* good at).
//!
//! This app is the control in our experiment matrix: per-flow(let) state —
//! "maintain flowlet-level information lifted from the packets seen up to
//! that point to make path selection decisions" — fits classic RMT
//! perfectly. There is no coflow, no cross-pipeline state, no array: each
//! flowlet's record only ever meets packets of its own flow, which arrive
//! on one port and therefore one pipeline.
//!
//! The switch keeps, per flow-hash slot, the last-seen packet id and the
//! chosen uplink. A packet whose id is far from the last seen (a flowlet
//! gap stand-in, since our ids are sequence numbers) re-picks the uplink
//! by hashing; otherwise it sticks, keeping the flowlet on one path.
//!
//! The measurable: both architectures run it natively (zero compiler
//! notes), the per-uplink load is balanced, and every flowlet is
//! path-consistent — a deliberately boring result that sharpens the
//! contrast with the coflow apps.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch, DemuxPolicy};
use adcp_lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, Region, RegisterDef, TableDef,
    TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use std::collections::HashMap;

/// Parameters of one load-balancing run.
#[derive(Debug, Clone)]
pub struct FlowletCfg {
    /// Distinct flows.
    pub flows: u32,
    /// Packets per flow.
    pub pkts_per_flow: u32,
    /// Uplink ports to balance across (ports 8..8+uplinks).
    pub uplinks: u16,
    /// Sequence-number gap that opens a new flowlet.
    pub gap: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlowletCfg {
    fn default() -> Self {
        FlowletCfg {
            flows: 64,
            pkts_per_flow: 30,
            uplinks: 4,
            gap: 8,
            seed: 4,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_FLOW: u16 = 0; // 32b flow id
const F_SEQ: u16 = 1; // 32b sequence number
const F_GAP: u16 = 2; // scratch: seq - last_seen
const F_UPLINK: u16 = 3; // chosen uplink

/// First uplink port.
pub const UPLINK_BASE: u16 = 8;

/// Build the flowlet LB program — pure ingress, per-flow state only.
pub fn program(cfg: &FlowletCfg) -> Program {
    let mut b = ProgramBuilder::new("flowlet-lb");
    let h = b.header(HeaderDef::new(
        "fl",
        vec![
            FieldDef::scalar("flow", 32),
            FieldDef::scalar("seq", 32),
            FieldDef::scalar("gap", 32),
            FieldDef::scalar("uplink", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let last_seen = b.register(RegisterDef::new("last_seen", 4096, 32));
    let chosen = b.register(RegisterDef::new("chosen_uplink", 4096, 32));
    // The straight-line action language has no >= comparison; the flowlet
    // decision is expressed arithmetically, the way HULA-style RMT
    // programs do: quotient = (seq - last_seen) >> log2(GAP) is zero
    // while the flowlet is alive; min(quotient, 1) turns "nonzero" into a
    // predicable value.
    let log_gap = (cfg.gap.max(1) as u64).next_power_of_two().trailing_zeros() as u64;
    b.table(TableDef {
        name: "flowlet".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "flowlet",
            vec![
                // gap = seq - last_seen[flow]; update last_seen.
                ActionOp::RegRmw {
                    reg: last_seen,
                    index: Operand::Field(fr(F_FLOW)),
                    op: RegAluOp::Write,
                    value: Operand::Field(fr(F_SEQ)),
                    fetch: Some(fr(F_GAP)),
                },
                ActionOp::Bin {
                    dst: fr(F_GAP),
                    op: BinOp::Sub,
                    a: Operand::Field(fr(F_SEQ)),
                    b: Operand::Field(fr(F_GAP)),
                },
                ActionOp::Bin {
                    dst: fr(F_GAP),
                    op: BinOp::Shr,
                    a: Operand::Field(fr(F_GAP)),
                    b: Operand::Const(log_gap),
                },
                // Sticky path: read the recorded uplink.
                ActionOp::RegRead {
                    reg: chosen,
                    index: Operand::Field(fr(F_FLOW)),
                    dst: fr(F_UPLINK),
                },
                ActionOp::Bin {
                    dst: fr(F_GAP),
                    op: BinOp::Min,
                    a: Operand::Field(fr(F_GAP)),
                    b: Operand::Const(1),
                },
                // On a new flowlet: re-pick by hash and record the choice.
                ActionOp::IfEq {
                    a: Operand::Field(fr(F_GAP)),
                    b: Operand::Const(1),
                    then: vec![
                        ActionOp::Hash {
                            dst: fr(F_UPLINK),
                            fields: vec![fr(F_FLOW), fr(F_SEQ)],
                            modulo: cfg.uplinks as u64,
                        },
                        ActionOp::Bin {
                            dst: fr(F_UPLINK),
                            op: BinOp::Add,
                            a: Operand::Field(fr(F_UPLINK)),
                            b: Operand::Const(UPLINK_BASE as u64),
                        },
                        ActionOp::RegRmw {
                            reg: chosen,
                            index: Operand::Field(fr(F_FLOW)),
                            op: RegAluOp::Write,
                            value: Operand::Field(fr(F_UPLINK)),
                            fetch: None,
                        },
                    ],
                },
                ActionOp::SetEgress(Operand::Field(fr(F_UPLINK))),
                ActionOp::CountElements(Operand::Const(1)),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn pkt(id: u64, flow: u32, seq: u32) -> Packet {
    let mut data = vec![0u8; 16];
    data[..4].copy_from_slice(&flow.to_be_bytes());
    data[4..8].copy_from_slice(&seq.to_be_bytes());
    Packet::new(id, FlowId(flow as u64), data)
        .with_goodput(8)
        .with_elements(1)
}

/// Run the load balancer; verify flowlet path consistency and balance.
pub fn run(kind: TargetKind, cfg: &FlowletCfg) -> AppReport {
    let (mut sw, notes) = match kind {
        TargetKind::Adcp => {
            let sw = AdcpSwitch::new(
                program(cfg),
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                AdcpConfig {
                    // Per-flow state needs per-flow pipeline affinity.
                    demux: DemuxPolicy::FlowHash,
                    ..Default::default()
                },
            )
            .expect("flowlet compiles on ADCP");
            let n = sw.placement.notes.clone();
            (AnySwitch::Adcp(Box::new(sw)), n)
        }
        _ => {
            let sw = RmtSwitch::new(
                program(cfg),
                TargetModel::rmt_12t(),
                CompileOptions::default(),
                RmtConfig::default(),
            )
            .expect("flowlet compiles on RMT natively");
            let n = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), n)
        }
    };

    // All flows enter on port 0 (a downlink); seq gaps appear randomly.
    let mut rng = SimRng::seed_from(cfg.seed);
    let mut id = 0u64;
    let mut t = SimTime::ZERO;
    for f in 0..cfg.flows {
        let mut seq = cfg.gap * 10; // first packet always opens a flowlet
        for _ in 0..cfg.pkts_per_flow {
            // Mostly consecutive, occasionally a flowlet gap.
            seq += if rng.chance(0.1) { cfg.gap * 4 } else { 1 };
            sw.inject(PortId(0), pkt(id, f, seq), t);
            id += 1;
            t += adcp_sim::time::Duration::from_ns(1);
        }
    }
    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Verify: per flow, the uplink only changes at observed seq gaps; the
    // aggregate load is spread over all uplinks.
    let delivered = sw.take_delivered();
    let mut per_flow: HashMap<u32, Vec<(u32, u16)>> = HashMap::new();
    let mut per_uplink: HashMap<u16, u32> = HashMap::new();
    for d in &delivered {
        let flow = u32::from_be_bytes(d.data[..4].try_into().unwrap());
        let seq = u32::from_be_bytes(d.data[4..8].try_into().unwrap());
        per_flow.entry(flow).or_default().push((seq, d.port.0));
        *per_uplink.entry(d.port.0).or_insert(0) += 1;
    }
    let mut correct = delivered.len() as u64 == (cfg.flows * cfg.pkts_per_flow) as u64;
    for seqs in per_flow.values_mut() {
        seqs.sort_unstable();
        for w in seqs.windows(2) {
            let ((s0, u0), (s1, u1)) = (w[0], w[1]);
            if s1 - s0 < cfg.gap && u0 != u1 {
                correct = false; // path change inside a flowlet
            }
        }
    }
    if per_uplink.len() != cfg.uplinks as usize {
        correct = false; // some uplink never used
    }
    let mut notes = notes;
    let mut loads: Vec<_> = per_uplink.iter().map(|(u, c)| (*u, *c)).collect();
    loads.sort_unstable();
    notes.push(format!("uplink loads: {loads:?}"));
    AppReport::from_switch("flowlet-lb", kind, &mut sw, makespan, correct, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmt_runs_flowlet_lb_natively() {
        let r = run(TargetKind::RmtPinned, &FlowletCfg::default());
        assert!(r.correct, "{r:?}");
        // The control result: per-flow apps need NO lowering notes at all
        // (the first note is the uplink loads we add ourselves).
        assert!(r.notes.iter().all(|n| !n.contains("egress-pinned")
            && !n.contains("recirculation")
            && !n.contains("replicated")));
        assert_eq!(r.recirc_passes, 0);
    }

    #[test]
    fn adcp_runs_it_too() {
        let r = run(TargetKind::Adcp, &FlowletCfg::default());
        assert!(r.correct, "{r:?}");
    }

    #[test]
    fn load_spreads_across_uplinks() {
        let r = run(TargetKind::RmtPinned, &FlowletCfg::default());
        let loads_note = r.notes.iter().find(|n| n.contains("uplink loads")).unwrap();
        // 4 uplinks all present.
        assert_eq!(loads_note.matches('(').count(), 4, "{loads_note}");
    }
}
