//! Key/value cache with array lookups (NetCache-style; the §3.2 / Fig. 3
//! economics made measurable).
//!
//! Clients send GET batches carrying `W` keys per packet. The switch looks
//! every key up in an exact-match cache table: hits fill the corresponding
//! value lane in place; the packet then continues to the storage server,
//! which only has to serve the missing lanes.
//!
//! The architectural point: the cache table is keyed on an **array
//! field**. On the ADCP it occupies one copy across `W` interconnected MAU
//! memories; on RMT it must be **replicated W times** (Fig. 3), so for the
//! same per-stage memory budget the RMT cache holds ~`1/W` as many
//! entries — and its hit rate drops accordingly under a Zipf workload.
//! [`max_cache_entries`] finds each target's largest compilable cache, and
//! [`run`] measures the resulting hit rates.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    compile, ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
    HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder, Region,
    TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::keys::ZipfKeys;

/// Parameters of one cache run.
#[derive(Debug, Clone)]
pub struct KvCacheCfg {
    /// Keys per GET packet (array width).
    pub width: u16,
    /// Distinct keys in the keyspace.
    pub keyspace: usize,
    /// Zipf skew.
    pub skew: f64,
    /// GET packets to send.
    pub requests: u32,
    /// Client ports used round-robin.
    pub clients: u16,
    /// Divide the compiled maximum cache size by this factor (keeps the
    /// control-plane install time reasonable while preserving the RMT/ADCP
    /// size *ratio*, which is the Fig. 3 quantity).
    pub scale_down: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvCacheCfg {
    fn default() -> Self {
        KvCacheCfg {
            width: 8,
            keyspace: 50_000,
            skew: 0.99,
            requests: 2_000,
            clients: 4,
            scale_down: 8,
            seed: 17,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

#[allow(dead_code)]
const F_OP: u16 = 0; // reserved for GET/SET distinction
const F_KEYS: u16 = 1;
const F_VALS: u16 = 2;

/// Value the cache stores for key `k` (nonzero so hits are observable).
pub fn cached_value(k: u64) -> u64 {
    (k + 1) & 0xFFFF_FFFF
}

/// Build the cache program with a cache table of `entries`.
pub fn program(width: u16, entries: u32, server_port: PortId) -> Program {
    let mut b = ProgramBuilder::new(format!("kvcache-w{width}"));
    let h = b.header(HeaderDef::new(
        "kv",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::array("keys", 32, width),
            FieldDef::array("vals", 32, width),
        ],
    ));
    b.parser(ParserSpec::single(h));
    b.table(TableDef {
        name: "cache".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(F_KEYS),
            kind: MatchKind::Exact,
            bits: 32,
        }),
        actions: vec![
            // Lane semantics: a hit on keys[i] fills vals[i].
            ActionDef::new(
                "hit",
                vec![ActionOp::Set {
                    dst: fr(F_VALS),
                    src: Operand::Param(0),
                }],
            ),
            ActionDef::nop(),
        ],
        default_action: 1,
        default_params: vec![],
        size: entries,
    });
    b.table(TableDef {
        name: "fwd".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "fwd",
            vec![
                ActionOp::SetEgress(Operand::Const(server_port.0 as u64)),
                ActionOp::CountElements(Operand::Const(width as u64)),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

/// Largest cache (entries) that compiles on `target` at array width
/// `width` — binary search over the compiler. On RMT the table replicates
/// `width`× (Fig. 3), so this comes out ~`width`× smaller.
pub fn max_cache_entries(target: &TargetModel, width: u16) -> u32 {
    let fits = |entries: u32| -> bool {
        if entries == 0 {
            return true;
        }
        let prog = program(width, entries, PortId(0));
        compile(&prog, target, CompileOptions::default()).is_ok()
    };
    let mut lo = 0u32; // always fits
    let mut hi = 4_000_000u32;
    if fits(hi) {
        return hi;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn get_packet(id: u64, client: u16, keys: &[u64]) -> Packet {
    let w = keys.len();
    let mut data = Vec::with_capacity(1 + w * 8);
    data.push(0u8); // GET
    for k in keys {
        data.extend_from_slice(&(*k as u32).to_be_bytes());
    }
    data.extend_from_slice(&vec![0u8; w * 4]); // empty value lanes
    Packet::new(id, FlowId(client as u64), data)
        .with_goodput((w * 8) as u32)
        .with_elements(w as u32)
}

fn read_lanes(data: &[u8], width: usize) -> Vec<(u64, u64)> {
    (0..width)
        .map(|i| {
            let ks = 1 + i * 4;
            let vs = 1 + width * 4 + i * 4;
            (
                u32::from_be_bytes(data[ks..ks + 4].try_into().unwrap()) as u64,
                u32::from_be_bytes(data[vs..vs + 4].try_into().unwrap()) as u64,
            )
        })
        .collect()
}

/// Outcome of a cache run (wrapped in the report's notes, plus returned
/// for the benches).
#[derive(Debug, Clone)]
pub struct CacheOutcome {
    /// Standard app report.
    pub report: AppReport,
    /// Cache entries installed.
    pub cache_entries: u32,
    /// Lane hit rate observed at the server.
    pub hit_rate: f64,
}

/// Run the cache on a target; the cache is sized to the largest table the
/// target can compile (the Fig. 3 economics).
pub fn run(kind: TargetKind, cfg: &KvCacheCfg) -> CacheOutcome {
    let server_port = PortId(cfg.clients); // one past the clients
    let (target_entries, mut sw, notes) = match kind {
        TargetKind::Adcp => {
            let target = TargetModel::adcp_reference();
            let entries = (max_cache_entries(&target, cfg.width) / cfg.scale_down.max(1))
                .min(cfg.keyspace as u32)
                .max(1);
            let sw = AdcpSwitch::new(
                program(cfg.width, entries, server_port),
                target,
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .expect("kvcache compiles on ADCP");
            let n = sw.placement.notes.clone();
            (entries, AnySwitch::Adcp(Box::new(sw)), n)
        }
        _ => {
            let target = TargetModel::rmt_12t();
            let entries = (max_cache_entries(&target, cfg.width) / cfg.scale_down.max(1))
                .min(cfg.keyspace as u32)
                .max(1);
            let sw = RmtSwitch::new(
                program(cfg.width, entries, server_port),
                target,
                CompileOptions::default(),
                RmtConfig::default(),
            )
            .expect("kvcache compiles on RMT");
            let n = sw.placement.notes.clone();
            (entries, AnySwitch::Rmt(Box::new(sw)), n)
        }
    };

    // Control plane: cache the `entries` most popular keys (Zipf key 0 is
    // the hottest).
    for k in 0..target_entries as u64 {
        sw_install(
            &mut sw,
            "cache",
            Entry {
                value: MatchValue::Exact(k),
                action: 0,
                params: vec![cached_value(k)],
            },
        );
    }

    // Data plane: Zipf GET batches. Clients pace themselves — all
    // requests funnel into one server port, so an unpaced burst would be
    // a pure incast test rather than a cache test (2 ns between requests
    // keeps the aggregate well under the server port's drain rate).
    let zipf = ZipfKeys::new(cfg.keyspace, cfg.skew);
    let mut rng = SimRng::seed_from(cfg.seed);
    let mut sent_lanes = 0u64;
    for i in 0..cfg.requests {
        let keys: Vec<u64> = (0..cfg.width).map(|_| zipf.sample(&mut rng)).collect();
        sent_lanes += keys.len() as u64;
        sw.inject(
            PortId(i as u16 % cfg.clients),
            get_packet(i as u64, i as u16 % cfg.clients, &keys),
            SimTime(i as u64 * 2_000),
        );
    }
    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Server side: count hit lanes (value lane filled with cached_value).
    let delivered = sw.take_delivered();
    let mut hit_lanes = 0u64;
    let mut seen_lanes = 0u64;
    let mut correct = delivered.len() == cfg.requests as usize;
    for d in &delivered {
        if d.port != server_port {
            correct = false;
        }
        for (k, v) in read_lanes(&d.data, cfg.width as usize) {
            seen_lanes += 1;
            if v == cached_value(k) {
                hit_lanes += 1;
            } else if v != 0 {
                correct = false; // a miss lane must be untouched
            } else if k < target_entries as u64 {
                correct = false; // a cached key must have hit
            }
        }
    }
    if seen_lanes != sent_lanes {
        correct = false;
    }
    let hit_rate = hit_lanes as f64 / seen_lanes.max(1) as f64;
    let mut notes = notes;
    notes.push(format!(
        "cache entries = {target_entries}, lane hit rate = {:.3}",
        hit_rate
    ));
    CacheOutcome {
        report: AppReport::from_switch("kvcache", kind, &mut sw, makespan, correct, notes),
        cache_entries: target_entries,
        hit_rate,
    }
}

fn sw_install(sw: &mut AnySwitch, table: &str, entry: Entry) {
    match sw {
        AnySwitch::Rmt(s) => s.install_all(table, entry).expect("install"),
        AnySwitch::Adcp(s) => s.install_all(table, entry).expect("install"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KvCacheCfg {
        KvCacheCfg {
            width: 8,
            keyspace: 50_000,
            skew: 0.99,
            requests: 300,
            clients: 4,
            scale_down: 8,
            seed: 23,
        }
    }

    #[test]
    fn rmt_cache_is_roughly_width_times_smaller() {
        let rmt = max_cache_entries(&TargetModel::rmt_12t(), 8);
        let adcp = max_cache_entries(&TargetModel::adcp_reference(), 8);
        let ratio = adcp as f64 / rmt as f64;
        assert!(
            (6.0..=10.0).contains(&ratio),
            "Fig. 3: ~8x replication tax; got adcp={adcp} rmt={rmt} ratio={ratio}"
        );
    }

    #[test]
    fn adcp_hit_rate_beats_rmt() {
        let a = run(TargetKind::Adcp, &small());
        let r = run(TargetKind::RmtPinned, &small());
        assert!(a.report.correct, "{:?}", a.report);
        assert!(r.report.correct, "{:?}", r.report);
        assert!(
            a.hit_rate > r.hit_rate + 0.03,
            "adcp {:.3} vs rmt {:.3}",
            a.hit_rate,
            r.hit_rate
        );
        assert!(a.cache_entries > r.cache_entries);
    }

    #[test]
    fn scalar_caches_are_equal_sized() {
        let rmt = max_cache_entries(&TargetModel::rmt_12t(), 1);
        let adcp = max_cache_entries(&TargetModel::adcp_reference(), 1);
        // Same memory model, no replication at width 1.
        assert_eq!(rmt, adcp);
    }

    #[test]
    fn wider_batches_raise_element_rate() {
        let narrow = run(
            TargetKind::Adcp,
            &KvCacheCfg {
                width: 1,
                ..small()
            },
        );
        let wide = run(TargetKind::Adcp, &small());
        assert!(
            wide.report.elements_per_sec > 4.0 * narrow.report.elements_per_sec,
            "wide {:.3e} vs narrow {:.3e}",
            wide.report.elements_per_sec,
            narrow.report.elements_per_sec
        );
    }
}
