//! In-network lock management (the coordination class of the paper's §1:
//! "locking [33]" — NetLock-style), built as a **switch ticket lock**.
//!
//! The switch keeps two register arrays per lock shard: `next_ticket` and
//! `now_serving`. ACQUIRE fetch-adds `next_ticket` and replies to the
//! requester with its ticket and the current `now_serving`; the client
//! holds the lock when the two are equal. RELEASE increments
//! `now_serving` and the switch **multicasts** the new value to every
//! client, handing the lock to the next ticket without any server round
//! trip — sub-RTT coordination, the NetChain/NetLock pitch.
//!
//! Architectural angle: the lock state is *coflow* state (every client's
//! flow reads and writes it), so it lives in the central region. Locks
//! are sharded across central pipelines by lock id — the partitioned
//! global area of §3.1. On RMT the same program needs recirculation or
//! pins all lock traffic to one port's egress pipeline, and the RELEASE
//! broadcast is impossible under pinning (clients would have to poll).
//!
//! The harness runs a closed loop of clients acquiring/releasing and then
//! *proves mutual exclusion from the packet record*: per lock, critical
//! sections (grant-learned .. release-sent) never overlap and grants
//! follow ticket order.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
    HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder,
    RegAluOp, Region, RegisterDef, RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::time::{Duration, SimTime};

/// Parameters of one lock-service run.
#[derive(Debug, Clone)]
pub struct NetLockCfg {
    /// Client hosts (one port each).
    pub clients: u16,
    /// Distinct locks (sharded over central pipelines by id).
    pub locks: u16,
    /// Acquire/release rounds each client performs.
    pub rounds: u32,
    /// Simulated critical-section hold time.
    pub hold: Duration,
}

impl Default for NetLockCfg {
    fn default() -> Self {
        NetLockCfg {
            clients: 8,
            locks: 4,
            rounds: 5,
            hold: Duration::from_ns(50),
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_OP: u16 = 0; // 0 = ACQUIRE, 1 = RELEASE
const F_CLIENT: u16 = 1; // requester (also its port)
const F_LOCK: u16 = 2;
const F_TICKET: u16 = 3;
const F_SERVING: u16 = 4;

const OP_ACQUIRE: u64 = 0;
const OP_RELEASE: u64 = 1;

/// Build the ticket-lock program.
pub fn program(kind: TargetKind, cfg: &NetLockCfg, central_pipes: u32) -> Program {
    let mut b = ProgramBuilder::new(format!("netlock-{}", kind.label()));
    let h = b.header(HeaderDef::new(
        "lk",
        vec![
            FieldDef::scalar("op", 8),
            FieldDef::scalar("client", 8),
            FieldDef::scalar("lock", 16),
            FieldDef::scalar("ticket", 32),
            FieldDef::scalar("serving", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let next_ticket = b.register(RegisterDef::new("next_ticket", cfg.locks as u32, 32));
    let now_serving = b.register(RegisterDef::new("now_serving", cfg.locks as u32, 32));
    let everyone = b.mcast_group((0..cfg.clients).map(PortId).collect());

    // Ingress: steer lock traffic to the shard that owns the lock.
    let steer_ops = match kind {
        TargetKind::Adcp => vec![ActionOp::SetCentralPipe(Operand::Field(fr(F_LOCK)))],
        TargetKind::RmtRecirc => vec![
            ActionOp::SetCentralPipe(Operand::Field(fr(F_LOCK))),
            ActionOp::Recirculate,
        ],
        // Pinned: every lock packet goes to client 0's port pipeline.
        TargetKind::RmtPinned => vec![ActionOp::SetEgress(Operand::Const(0))],
    };
    let _ = central_pipes;
    b.table(TableDef {
        name: "steer".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "steer",
            [steer_ops, vec![ActionOp::CountElements(Operand::Const(1))]].concat(),
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // Central: the lock service proper, keyed on the op code. Both
    // registers are owned by this one table (the single-owner rule).
    let acquire = ActionDef::new(
        "acquire",
        vec![
            ActionOp::RegRmw {
                reg: next_ticket,
                index: Operand::Field(fr(F_LOCK)),
                op: RegAluOp::Add,
                value: Operand::Const(1),
                fetch: Some(fr(F_TICKET)),
            },
            ActionOp::RegRead {
                reg: now_serving,
                index: Operand::Field(fr(F_LOCK)),
                dst: fr(F_SERVING),
            },
            ActionOp::SetEgress(Operand::Field(fr(F_CLIENT))),
        ],
    );
    // RELEASE also reads next_ticket? No — it bumps now_serving and
    // broadcasts the new value; but register single-ownership means both
    // register accesses must live in the same table, which they do.
    let release_out = match kind {
        TargetKind::Adcp | TargetKind::RmtRecirc => {
            ActionOp::SetMulticast(Operand::Const(everyone as u64))
        }
        // Pinning cannot broadcast from egress: the release update is only
        // visible on the pinned port (clients elsewhere must poll).
        TargetKind::RmtPinned => ActionOp::SetEgress(Operand::Const(0)),
    };
    let release = ActionDef::new(
        "release",
        vec![
            ActionOp::RegRmw {
                reg: now_serving,
                index: Operand::Field(fr(F_LOCK)),
                op: RegAluOp::Add,
                value: Operand::Const(1),
                fetch: Some(fr(F_SERVING)),
            },
            // fetch returned the pre-increment value; carry the new one.
            ActionOp::Bin {
                dst: fr(F_SERVING),
                op: BinOp::Add,
                a: Operand::Field(fr(F_SERVING)),
                b: Operand::Const(1),
            },
            release_out,
        ],
    );
    b.table(TableDef {
        name: "locksvc".into(),
        region: Region::Central,
        key: Some(KeySpec {
            field: fr(F_OP),
            kind: MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![
            acquire,
            release,
            ActionDef::new("bad", vec![ActionOp::Drop]),
        ],
        default_action: 2,
        default_params: vec![],
        size: 4,
    });
    b.build()
}

fn lock_packet(id: u64, op: u64, client: u16, lock: u16) -> Packet {
    let mut data = vec![0u8; 12];
    data[0] = op as u8;
    data[1] = client as u8;
    data[2..4].copy_from_slice(&lock.to_be_bytes());
    Packet::new(id, FlowId(client as u64), data)
        .with_goodput(12)
        .with_elements(1)
}

#[derive(Debug, Clone, Copy)]
struct Wire {
    op: u64,
    lock: u16,
    ticket: u32,
    serving: u32,
}

fn read_wire(data: &[u8]) -> Wire {
    Wire {
        op: data[0] as u64,
        lock: u16::from_be_bytes(data[2..4].try_into().unwrap()),
        ticket: u32::from_be_bytes(data[4..8].try_into().unwrap()),
        serving: u32::from_be_bytes(data[8..12].try_into().unwrap()),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClientState {
    Idle,
    Waiting { lock: u16, ticket: Option<u32> },
    Holding { lock: u16, until: SimTime },
    Done,
}

/// Run the closed-loop lock service and prove mutual exclusion.
pub fn run(kind: TargetKind, cfg: &NetLockCfg) -> AppReport {
    let (mut sw, notes) = build_switch(kind, cfg);
    // Install the two op-code entries.
    for (op, action) in [(OP_ACQUIRE, 0usize), (OP_RELEASE, 1usize)] {
        let e = Entry {
            value: MatchValue::Exact(op),
            action,
            params: vec![],
        };
        match &mut sw {
            AnySwitch::Rmt(s) => s.install_all("locksvc", e).unwrap(),
            AnySwitch::Adcp(s) => s.install_all("locksvc", e).unwrap(),
        }
    }

    let n = cfg.clients as usize;
    let mut state = vec![ClientState::Idle; n];
    let mut rounds_left = vec![cfg.rounds; n];
    let mut serving_seen = vec![0u32; cfg.locks as usize];
    // Per lock: critical-section intervals (enter, exit) in packet time.
    let mut cs: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); cfg.locks as usize];
    let mut next_id = 0u64;
    let mut now = SimTime::ZERO;
    let mut grants = 0u64;

    // Closed loop: alternate "clients act" and "switch runs" phases until
    // every client finishes its rounds, or the protocol stalls (which is
    // the *expected* outcome under egress pinning: waiters never see the
    // release broadcast).
    let mut stalled_iterations = 0;
    loop {
        let mut acted = false;
        // Phase 1: clients act based on their state.
        for c in 0..n {
            match state[c] {
                ClientState::Idle if rounds_left[c] > 0 => {
                    let lock = ((c as u32 + rounds_left[c]) % cfg.locks as u32) as u16;
                    sw.inject(
                        PortId(c as u16),
                        lock_packet(next_id, OP_ACQUIRE, c as u16, lock),
                        now + Duration::from_ns(c as u64 + 1),
                    );
                    next_id += 1;
                    state[c] = ClientState::Waiting { lock, ticket: None };
                    acted = true;
                }
                ClientState::Idle => state[c] = ClientState::Done,
                ClientState::Holding { lock, until } if now >= until => {
                    sw.inject(
                        PortId(c as u16),
                        lock_packet(next_id, OP_RELEASE, c as u16, lock),
                        until,
                    );
                    next_id += 1;
                    cs[lock as usize].last_mut().expect("entered").1 = until;
                    rounds_left[c] -= 1;
                    state[c] = ClientState::Idle;
                    acted = true;
                }
                _ => {}
            }
        }
        // Phase 2: the switch drains.
        now = sw.run_until_idle().max(now + Duration::from_ns(1));
        // Phase 3: clients absorb deliveries.
        let deliveries = sw.take_delivered();
        let progressed = !deliveries.is_empty();
        for d in deliveries {
            let w = read_wire(&d.data);
            let port = d.port.0 as usize;
            match w.op {
                x if x == OP_ACQUIRE => {
                    // Reply to one client: its ticket and the serving
                    // value at grant-attempt time.
                    if let ClientState::Waiting { lock, ticket } = &mut state[port] {
                        if *lock == w.lock && ticket.is_none() {
                            *ticket = Some(w.ticket);
                            if w.serving == w.ticket {
                                // Granted immediately.
                                cs[w.lock as usize].push((d.time, SimTime::NEVER));
                                grants += 1;
                                state[port] = ClientState::Holding {
                                    lock: w.lock,
                                    until: d.time + cfg.hold,
                                };
                            }
                        }
                    }
                }
                x if x == OP_RELEASE => {
                    // Broadcast serving update: the client whose ticket
                    // matches now holds the lock.
                    serving_seen[w.lock as usize] = serving_seen[w.lock as usize].max(w.serving);
                    if let ClientState::Waiting {
                        lock,
                        ticket: Some(t),
                    } = state[port]
                    {
                        if lock == w.lock && t == w.serving {
                            cs[w.lock as usize].push((d.time, SimTime::NEVER));
                            grants += 1;
                            state[port] = ClientState::Holding {
                                lock,
                                until: d.time + cfg.hold,
                            };
                        }
                    }
                }
                _ => {}
            }
        }
        let all_done = state.iter().all(|s| *s == ClientState::Done);
        if all_done {
            break;
        }
        if acted || progressed {
            stalled_iterations = 0;
        } else {
            stalled_iterations += 1;
            if stalled_iterations > 100 {
                break; // stalled; the correctness check below records it
            }
        }
    }
    sw.check_conservation();

    // Mutual exclusion proof: per lock, intervals sorted by entry never
    // overlap, and grants cover every round exactly once.
    let mut correct = grants == (cfg.clients as u64 * cfg.rounds as u64);
    for intervals in &cs {
        let mut sorted = intervals.clone();
        sorted.sort_by_key(|(s, _)| *s);
        for w in sorted.windows(2) {
            let (_, exit) = w[0];
            let (enter, _) = w[1];
            if exit == SimTime::NEVER || enter < exit {
                correct = false;
            }
        }
    }
    let mut notes = notes;
    notes.push(format!(
        "{} grants across {} locks, mutual exclusion verified from packet record",
        grants, cfg.locks
    ));
    AppReport::from_switch("netlock", kind, &mut sw, now, correct, notes)
}

fn build_switch(kind: TargetKind, cfg: &NetLockCfg) -> (AnySwitch, Vec<String>) {
    match kind {
        TargetKind::Adcp => {
            let target = TargetModel::adcp_reference();
            let prog = program(kind, cfg, target.central_pipes as u32);
            let sw = AdcpSwitch::new(
                prog,
                target,
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .expect("netlock compiles on ADCP");
            let n = sw.placement.notes.clone();
            (AnySwitch::Adcp(Box::new(sw)), n)
        }
        _ => {
            let target = TargetModel::rmt_12t();
            let prog = program(kind, cfg, target.num_pipes() as u32);
            let strategy = if kind == TargetKind::RmtRecirc {
                RmtCentralStrategy::Recirculate
            } else {
                RmtCentralStrategy::EgressPin
            };
            let sw = RmtSwitch::new(
                prog,
                target,
                CompileOptions {
                    rmt_central: strategy,
                },
                RmtConfig::default(),
            )
            .expect("netlock compiles on RMT");
            let n = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NetLockCfg {
        NetLockCfg {
            clients: 4,
            locks: 2,
            rounds: 3,
            hold: Duration::from_ns(30),
        }
    }

    #[test]
    fn adcp_lock_service_mutual_exclusion() {
        let r = run(TargetKind::Adcp, &small());
        assert!(r.correct, "{r:?}");
        assert!(r
            .notes
            .iter()
            .any(|n| n.contains("mutual exclusion verified")));
    }

    #[test]
    fn rmt_recirc_lock_service_works_with_passes() {
        let r = run(TargetKind::RmtRecirc, &small());
        assert!(r.correct, "{r:?}");
        assert!(r.recirc_passes > 0);
    }

    #[test]
    fn contention_single_lock_serializes() {
        let cfg = NetLockCfg {
            clients: 6,
            locks: 1,
            rounds: 2,
            hold: Duration::from_ns(40),
        };
        let r = run(TargetKind::Adcp, &cfg);
        assert!(r.correct, "{r:?}");
        // 12 grants through one lock: the makespan must cover at least
        // 12 serialized hold times.
        assert!(
            r.makespan_ns >= 12.0 * 40.0,
            "makespan {:.0}ns too short for serialized holds",
            r.makespan_ns
        );
    }

    #[test]
    fn egress_pinning_stalls_the_lock_service() {
        // Under pinning the release broadcast cannot reach the waiting
        // clients (it only exits the pinned port), so contended handoff
        // never happens — the Fig. 2 restriction as a protocol failure.
        let r = run(TargetKind::RmtPinned, &small());
        assert!(!r.correct, "pinning must break lock handoff: {r:?}");
        // Fewer grants than the 4 clients x 3 rounds = 12 required.
        let grants: u64 = r
            .notes
            .iter()
            .find_map(|n| {
                n.strip_suffix(|_: char| true)
                    .and_then(|_| n.split(" grants").next())
                    .and_then(|x| x.rsplit(' ').next())
                    .and_then(|x| x.parse().ok())
            })
            .expect("grants note present");
        assert!(grants < 12, "only uncontended acquires succeed: {grants}");
    }

    #[test]
    fn uncontended_single_client() {
        let r = run(
            TargetKind::Adcp,
            &NetLockCfg {
                clients: 1,
                locks: 1,
                rounds: 4,
                hold: Duration::from_ns(20),
            },
        );
        assert!(r.correct, "{r:?}");
    }

    #[test]
    fn deterministic() {
        let a = run(TargetKind::Adcp, &small());
        let b = run(TargetKind::Adcp, &small());
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.delivered, b.delivered);
    }
}
