//! In-network DDoS detection with threshold promotion/demotion ("ddos").
//!
//! Per-source packet counters over tumbling windows, entirely in the
//! switch: each source slot keeps the window id it last counted in, the
//! count inside that window, and a one-bit mitigation state. A source
//! whose in-window count reaches `t_hi` is **promoted** (its traffic is
//! dropped at line rate); when a later window closes below `t_lo` — or a
//! window passes with no traffic at all — the source is **demoted** and
//! its traffic flows again. The hysteresis gap (`t_lo < t_hi`) keeps a
//! source from flapping at the threshold.
//!
//! Traffic is the million-flow TE/security mix from `adcp-workloads`: a
//! Zipf-heavy benign edge plus an adversarial ramp — a compact range of
//! attack sources whose share climbs mid-run to a configured peak, then
//! falls back in a cooldown phase so demotion is exercised too.
//!
//! The security twist on the paper's §3.1 control-plane story: the attack
//! range is *hot state*, and on the ADCP it lands — like any compact key
//! range — in one range bucket of the partitioned central area. A small
//! security controller watches per-bucket load, and when the attack skews
//! a pipe past threshold it reads the detector's own promotion bits out
//! of the central registers, carves the promoted slots into singleton
//! range buckets, and migrates them round-robin across all central pipes
//! **mid-attack** (the epoch-versioned incremental protocol; zero
//! misroutes demanded). RMT has no partitioned area: the same program
//! runs pinned or recirculating, and the skew stays where it lands.
//!
//! Every packet's fate (delivered to the server port vs dropped by the
//! mitigation) is predicted by an exact host reference and every
//! delivered packet is checked against it — across the live migrations.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use crate::flowlet::MAX_RMT_SLOTS;
use adcp_core::{
    AdcpConfig, AdcpSwitch, DemuxPolicy, MigrationStats, MigrationStrategy, PartitionMap,
    PartitionScheme,
};
use adcp_ctrl::{plan_rebalance, LoadSnapshot};
use adcp_lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, RegId, Region, RegisterDef,
    RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::time::SimTime;
use adcp_workloads::{AttackRamp, TrafficCfg, TrafficGen};

/// Parameters of one DDoS-detection run.
#[derive(Debug, Clone)]
pub struct DdosCfg {
    /// Benign live-flow keyspace (sources `0..flows`).
    pub flows: u64,
    /// Attack sources (the compact range `flows..flows + attackers`).
    pub attackers: u64,
    /// Packets in the attack phase (ramp to peak, then flat).
    pub pkts: u64,
    /// Packets in the cooldown phase (attack share drops to
    /// `cool_share`, so windows close under `t_lo` and demotion fires).
    pub cool_pkts: u64,
    /// Packets per tumbling window (the window id is stamped into the
    /// header by the edge, so window semantics are exact).
    pub window_pkts: u64,
    /// Zipf skew of benign source popularity.
    pub skew: f64,
    /// Attack share of the mix at the ramp's peak.
    pub peak_share: f64,
    /// Attack share during cooldown (must sit below the demote rate).
    pub cool_share: f64,
    /// Promote when a source's in-window count reaches this.
    pub t_hi: u32,
    /// Demote when a closed window stayed strictly below this.
    pub t_lo: u32,
    /// Client RX ports (source `s` arrives on port `s % clients`).
    pub clients: u16,
    /// ADCP: install the range-partition map and run the security
    /// controller (live mid-attack rebalance). Off = skew persists.
    pub rebalance: bool,
    /// Controller ticks spread evenly across the run.
    pub ticks: u32,
    /// RNG seed.
    pub seed: u64,
    /// ADCP central-worker threads (byte-identical output for any value).
    pub central_workers: usize,
}

impl Default for DdosCfg {
    fn default() -> Self {
        DdosCfg {
            flows: 50_000,
            attackers: 8,
            pkts: 8_000,
            cool_pkts: 4_000,
            window_pkts: 500,
            skew: 0.9,
            peak_share: 0.6,
            cool_share: 0.05,
            t_hi: 25,
            t_lo: 8,
            clients: 4,
            rebalance: true,
            ticks: 12,
            seed: 11,
            central_workers: 1,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_SRC: u16 = 0; // 32b source id
const F_WIN: u16 = 1; // 32b window id (edge-stamped)
const F_SLOT: u16 = 2; // 32b state slot
const F_OLDW: u16 = 3; // scratch: window the slot last counted in
const F_ROLL: u16 = 4; // scratch: win - oldw (wrapping)
const F_FRESH: u16 = 5; // 8b: 1 when the window rolled
const F_OLDC: u16 = 6; // scratch: the closed window's count
const F_UNDER: u16 = 7; // scratch: closed window under t_lo?
const F_U2: u16 = 8; // scratch: >= 1 empty window elapsed?
const F_ST: u16 = 9; // scratch: mitigation state
const F_KEEP: u16 = 10; // scratch: 1 - under
const F_PREV: u16 = 11; // scratch: pre-increment count
const F_OVER: u16 = 12; // scratch: count reached t_hi?

/// Header bytes (fields above, byte-aligned, in order).
const HDR_BYTES: usize = 49;

/// Injection pacing (see `flowlet`): one event per 5 ns keeps every
/// queue empty, so per-slot processing order equals injection order and
/// the host reference is exact on every target.
const INJECT_GAP_PS: u64 = 5_000;

/// State slots for a target: exact per-source on the ADCP, hash-folded
/// on the RMT lowerings (collisions accepted — the structural contrast).
pub fn slots_for(kind: TargetKind, sources: u64) -> u64 {
    let exact = sources.next_power_of_two();
    match kind {
        TargetKind::Adcp => exact,
        _ => exact.min(MAX_RMT_SLOTS),
    }
}

/// Build the detector program. Returns the program and the `RegId` of
/// the mitigation-state register (the promotion bits the security
/// controller reads back out of the live switch).
pub fn program(
    kind: TargetKind,
    n_slots: u64,
    t_hi: u32,
    t_lo: u32,
    server: PortId,
    collector: PortId,
) -> (Program, RegId) {
    assert!(t_lo >= 1 && t_hi >= t_lo);
    let mut b = ProgramBuilder::new("ddos");
    let h = b.header(HeaderDef::new(
        "ddos",
        vec![
            FieldDef::scalar("src", 32),
            FieldDef::scalar("win", 32),
            FieldDef::scalar("slot", 32),
            FieldDef::scalar("oldw", 32),
            FieldDef::scalar("roll", 32),
            FieldDef::scalar("fresh", 8),
            FieldDef::scalar("oldc", 32),
            FieldDef::scalar("under", 32),
            FieldDef::scalar("u2", 32),
            FieldDef::scalar("st", 32),
            FieldDef::scalar("keep", 32),
            FieldDef::scalar("prev", 32),
            FieldDef::scalar("over", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let lastwin = b.register(RegisterDef::new("last_window", n_slots as u32, 32));
    let cnt = b.register(RegisterDef::new("window_count", n_slots as u32, 32));
    let state = b.register(RegisterDef::new("mitigation", n_slots as u32, 8));

    // Ingress: fold the source into a slot and steer toward the state.
    let fold = ActionOp::Bin {
        dst: fr(F_SLOT),
        op: BinOp::And,
        a: Operand::Field(fr(F_SRC)),
        b: Operand::Const(n_slots - 1),
    };
    let steer = match kind {
        TargetKind::Adcp => vec![ActionOp::SetCentralPipe(Operand::Field(fr(F_SLOT)))],
        TargetKind::RmtRecirc => vec![
            ActionOp::SetCentralPipe(Operand::Field(fr(F_SLOT))),
            ActionOp::Recirculate,
        ],
        // Pinned: funnel everything to the collector's egress pipeline,
        // where all detector state lives; survivors can only leave on
        // the collector port (the egress region cannot redirect).
        TargetKind::RmtPinned => vec![ActionOp::SetEgress(Operand::Const(collector.0 as u64))],
    };
    b.table(TableDef {
        name: "classify".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "fold",
            [
                vec![fold],
                steer,
                vec![ActionOp::CountElements(Operand::Const(1))],
            ]
            .concat(),
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // Central detector: window roll (with demotion), count, promote,
    // verdict. `MarkDrop` continues execution, so it must come last.
    let mut detect = vec![
        // Which window did this slot last count in?
        ActionOp::RegRmw {
            reg: lastwin,
            index: Operand::Field(fr(F_SLOT)),
            op: RegAluOp::Write,
            value: Operand::Field(fr(F_WIN)),
            fetch: Some(fr(F_OLDW)),
        },
        ActionOp::Bin {
            dst: fr(F_ROLL),
            op: BinOp::Sub,
            a: Operand::Field(fr(F_WIN)),
            b: Operand::Field(fr(F_OLDW)),
        },
        ActionOp::Bin {
            dst: fr(F_FRESH),
            op: BinOp::Ge,
            a: Operand::Field(fr(F_ROLL)),
            b: Operand::Const(1),
        },
    ];
    // The window rolled: close the old one. Demote when it ended under
    // t_lo, or when at least one whole window passed with no traffic.
    detect.push(ActionOp::IfEq {
        a: Operand::Field(fr(F_FRESH)),
        b: Operand::Const(1),
        then: vec![
            ActionOp::RegRmw {
                reg: cnt,
                index: Operand::Field(fr(F_SLOT)),
                op: RegAluOp::Write,
                value: Operand::Const(0),
                fetch: Some(fr(F_OLDC)),
            },
            ActionOp::Bin {
                dst: fr(F_UNDER),
                op: BinOp::Ge,
                a: Operand::Const(t_lo as u64 - 1),
                b: Operand::Field(fr(F_OLDC)),
            },
            ActionOp::Bin {
                dst: fr(F_U2),
                op: BinOp::Ge,
                a: Operand::Field(fr(F_ROLL)),
                b: Operand::Const(2),
            },
            ActionOp::Bin {
                dst: fr(F_UNDER),
                op: BinOp::Or,
                a: Operand::Field(fr(F_UNDER)),
                b: Operand::Field(fr(F_U2)),
            },
            // state &= (1 - under): branch-free demotion (no And ALU op
            // on registers, so read-modify-write through the PHV).
            ActionOp::RegRead {
                reg: state,
                index: Operand::Field(fr(F_SLOT)),
                dst: fr(F_ST),
            },
            ActionOp::Bin {
                dst: fr(F_KEEP),
                op: BinOp::Sub,
                a: Operand::Const(1),
                b: Operand::Field(fr(F_UNDER)),
            },
            ActionOp::Bin {
                dst: fr(F_ST),
                op: BinOp::And,
                a: Operand::Field(fr(F_ST)),
                b: Operand::Field(fr(F_KEEP)),
            },
            ActionOp::RegRmw {
                reg: state,
                index: Operand::Field(fr(F_SLOT)),
                op: RegAluOp::Write,
                value: Operand::Field(fr(F_ST)),
                fetch: None,
            },
        ],
    });
    detect.extend([
        // Count this packet; promote when the window reaches t_hi.
        ActionOp::RegRmw {
            reg: cnt,
            index: Operand::Field(fr(F_SLOT)),
            op: RegAluOp::Add,
            value: Operand::Const(1),
            fetch: Some(fr(F_PREV)),
        },
        ActionOp::Bin {
            dst: fr(F_OVER),
            op: BinOp::Ge,
            a: Operand::Field(fr(F_PREV)),
            b: Operand::Const(t_hi as u64 - 1),
        },
        ActionOp::IfEq {
            a: Operand::Field(fr(F_OVER)),
            b: Operand::Const(1),
            then: vec![ActionOp::RegRmw {
                reg: state,
                index: Operand::Field(fr(F_SLOT)),
                op: RegAluOp::Write,
                value: Operand::Const(1),
                fetch: None,
            }],
        },
        // Verdict: promoted sources are dropped at line rate.
        ActionOp::RegRead {
            reg: state,
            index: Operand::Field(fr(F_SLOT)),
            dst: fr(F_ST),
        },
        ActionOp::SetEgress(Operand::Const(server.0 as u64)),
        ActionOp::IfEq {
            a: Operand::Field(fr(F_ST)),
            b: Operand::Const(1),
            then: vec![ActionOp::MarkDrop],
        },
    ]);
    b.table(TableDef {
        name: "detect".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new("detect", detect)],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    (b.build(), state)
}

fn pkt(id: u64, src: u64, win: u32) -> Packet {
    let mut d = vec![0u8; HDR_BYTES + 6];
    d[0..4].copy_from_slice(&(src as u32).to_be_bytes());
    d[4..8].copy_from_slice(&win.to_be_bytes());
    Packet::new(id, FlowId(src), d)
        .with_goodput(8)
        .with_elements(1)
}

/// Host reference: the exact per-slot state machine the switch runs.
struct DdosRef {
    slot_mask: u64,
    t_hi: u32,
    t_lo: u32,
    lastwin: Vec<u32>,
    cnt: Vec<u32>,
    state: Vec<u8>,
    promoted_ever: Vec<bool>,
    promotions: u64,
    demotions: u64,
}

impl DdosRef {
    fn new(n_slots: u64, t_hi: u32, t_lo: u32) -> Self {
        DdosRef {
            slot_mask: n_slots - 1,
            t_hi,
            t_lo,
            lastwin: vec![0; n_slots as usize],
            cnt: vec![0; n_slots as usize],
            state: vec![0; n_slots as usize],
            promoted_ever: vec![false; n_slots as usize],
            promotions: 0,
            demotions: 0,
        }
    }

    /// Process one packet; returns true when the mitigation drops it.
    fn step(&mut self, src: u64, win: u32) -> bool {
        let s = (src & self.slot_mask) as usize;
        let oldw = self.lastwin[s];
        self.lastwin[s] = win;
        let roll = win.wrapping_sub(oldw);
        if roll >= 1 {
            let oldc = self.cnt[s];
            self.cnt[s] = 0;
            if oldc < self.t_lo || roll >= 2 {
                if self.state[s] == 1 {
                    self.demotions += 1;
                }
                self.state[s] = 0;
            }
        }
        let prev = self.cnt[s];
        self.cnt[s] = prev.wrapping_add(1);
        if prev >= self.t_hi - 1 {
            if self.state[s] == 0 {
                self.promotions += 1;
                self.promoted_ever[s] = true;
            }
            self.state[s] = 1;
        }
        self.state[s] == 1
    }
}

/// The initial range-partition map: per-key singleton buckets over the
/// Zipf head (so the benign hot keys interleave across pipes), then
/// doubling-width ranges over the tail — under a Zipf popularity each
/// doubling carries roughly equal mass, so round-robin owners balance
/// the benign load. A compact hot range in the tail — the attack —
/// still lands in *one* coarse bucket on one pipe.
pub fn initial_map(n_slots: u64, pipes: u32) -> PartitionMap {
    let head = 256u64.min(n_slots / 4).max(1);
    let mut bounds: Vec<u64> = (1..=head).collect();
    let mut w = head;
    let mut x = head + w;
    while x < n_slots {
        bounds.push(x);
        w *= 2;
        x += w;
    }
    let owners = (0..bounds.len() as u32 + 1).map(|b| b % pipes).collect();
    PartitionMap::from_ranges(bounds, owners)
}

/// The range bucket of `key` under a range map, as `[lo, hi)`.
fn bucket_span(map: &PartitionMap, key: u64) -> (u64, u64) {
    let PartitionScheme::Range { bounds, .. } = map.scheme() else {
        return (0, u64::MAX);
    };
    let b = bounds.partition_point(|&x| x <= key);
    let lo = if b == 0 { 0 } else { bounds[b - 1] };
    let hi = bounds.get(b).copied().unwrap_or(u64::MAX);
    (lo, hi)
}

/// Carve every `hot` slot (sorted) into its own singleton range bucket
/// and spread those buckets round-robin across the pipes; every other
/// range keeps its current owner.
fn isolate_slots(map: &PartitionMap, hot: &[u64], pipes: u32) -> PartitionMap {
    let PartitionScheme::Range { bounds, .. } = map.scheme() else {
        unreachable!("the security controller only runs on range maps");
    };
    let mut nb: Vec<u64> = bounds.clone();
    for &s in hot {
        nb.push(s);
        nb.push(s + 1);
    }
    nb.sort_unstable();
    nb.dedup();
    let mut owners = Vec::with_capacity(nb.len() + 1);
    let mut rr = 0u32;
    let mut lo = 0u64;
    for i in 0..=nb.len() {
        let hi = nb.get(i).copied().unwrap_or(u64::MAX);
        if hi == lo.wrapping_add(1) && hot.binary_search(&lo).is_ok() {
            owners.push(rr % pipes);
            rr += 1;
        } else {
            owners.push(map.owner(lo));
        }
        lo = hi;
    }
    PartitionMap::from_ranges(nb, owners)
}

/// Everything a ddos run produced, beyond the standard report.
#[derive(Debug)]
pub struct DdosOutcome {
    /// Standard app report (`correct` = every packet's delivered/dropped
    /// fate and exit port matched the host reference's prediction).
    pub report: AppReport,
    /// Promotion events (0 → 1 transitions) the reference predicted.
    pub promotions: u64,
    /// Demotion events (1 → 0 transitions) the reference predicted.
    pub demotions: u64,
    /// Distinct attack-source slots that were ever promoted.
    pub attackers_promoted: u64,
    /// Packets the mitigation drops.
    pub predicted_drops: u64,
    /// Attack-source packets delivered during the cooldown phase —
    /// nonzero means the mitigation actually lifted after demotion.
    pub cooldown_attack_delivered: u64,
    /// Migrations the security controller actuated (ADCP only).
    pub rebalances: usize,
    /// Migration protocol stats (zeroes on RMT / controller off).
    pub stats: MigrationStats,
    /// Partition-map epoch at the end of the run.
    pub final_epoch: u64,
    /// Pipe-load skew (max/mean) observed before the first migration.
    pub skew_before: f64,
    /// Pipe-load skew over the traffic after the last map change.
    pub skew_after: f64,
}

/// The security controller's per-tick decision against a live switch.
/// Returns a human-readable note when it actuated a migration.
#[allow(clippy::too_many_arguments)]
fn security_tick(
    sw: &mut AdcpSwitch,
    state_reg: RegId,
    n_slots: u64,
    now: SimTime,
    threshold: f64,
    min_samples: u64,
    skew_before: &mut f64,
    rebalances: &mut usize,
) -> Option<String> {
    if sw.migration_active() {
        // Drain migrations self-commit; incremental ones stay open until
        // finalized. Busy / InProgress just mean "not yet".
        let _ = sw.finalize_migration();
        return None;
    }
    let snap = LoadSnapshot::from_switch(sw)?;
    if snap.total < min_samples {
        return None;
    }
    if *rebalances == 0 {
        *skew_before = skew_before.max(snap.skew());
    }
    let skew = snap.skew();
    if skew < threshold {
        return None;
    }
    let map = sw.partition_map()?.clone();
    let pipes = sw.num_central() as u32;
    // The detector's own output is the control signal: promoted slots,
    // read out of the live mitigation register on each cell's owner.
    let hot: Vec<u64> = (0..n_slots)
        .filter(|&s| {
            let owner = map.owner(s) as usize;
            sw.central_register(owner, state_reg)
                .is_some_and(|r| r.peek(s) == 1)
        })
        .collect();
    let unisolated = hot.iter().any(|&s| {
        let (lo, hi) = bucket_span(&map, s);
        hi.wrapping_sub(lo) != 1
    });
    let (next, what) = if !hot.is_empty() && unisolated {
        (
            isolate_slots(&map, &hot, pipes),
            format!("isolated {} promoted slots", hot.len()),
        )
    } else {
        let next = plan_rebalance(&map, &snap.bucket_pkts, pipes)?;
        let moved = map.moved_buckets(&next).len();
        (next, format!("rebalanced {moved} buckets"))
    };
    let to_epoch = map.epoch + 1;
    match sw.begin_migration(next, MigrationStrategy::Incremental) {
        Ok(()) => {
            *rebalances += 1;
            Some(format!(
                "security ctl at {} ns: skew {skew:.2}, {what} -> epoch {to_epoch}",
                now.as_ps() / 1000
            ))
        }
        // Old-epoch packets still in flight: retry on a later tick.
        Err(_) => None,
    }
}

/// Run the DDoS detector on a target; verify every packet's fate
/// against the host reference.
pub fn run(kind: TargetKind, cfg: &DdosCfg) -> DdosOutcome {
    let collector = PortId(6);
    let server = PortId(10);
    let sources = cfg.flows + cfg.attackers;
    let n_slots = slots_for(kind, sources);
    let (prog, state_reg) = program(kind, n_slots, cfg.t_hi, cfg.t_lo, server, collector);

    // The two-phase traffic mix: ramp to peak, then a low-share cooldown
    // (time is re-paced at injection; the generators supply the exact
    // source/attack sequence, deterministic per seed).
    let main = TrafficGen::new(TrafficCfg {
        flows: cfg.flows,
        pkts: cfg.pkts,
        skew: cfg.skew,
        attack: Some(AttackRamp {
            attackers: cfg.attackers,
            start_frac: 0.2,
            full_frac: 0.5,
            peak_share: cfg.peak_share,
        }),
        seed: cfg.seed,
        ..TrafficCfg::default()
    });
    let cool = TrafficGen::new(TrafficCfg {
        flows: cfg.flows,
        pkts: cfg.cool_pkts.max(1),
        skew: cfg.skew,
        attack: Some(AttackRamp {
            attackers: cfg.attackers,
            start_frac: 0.0,
            full_frac: 0.01,
            peak_share: cfg.cool_share,
        }),
        seed: cfg.seed + 1,
        ..TrafficCfg::default()
    });
    let events: Vec<(u64, bool)> = main.chain(cool).map(|e| (e.src, e.attack)).collect();
    let total = events.len() as u64;

    // The reference predicts every packet's fate up front.
    let mut reference = DdosRef::new(n_slots, cfg.t_hi, cfg.t_lo);
    let mut predicted_drops = 0u64;
    let mut cooldown_attack_delivered = 0u64;
    let predicted: Vec<bool> = events
        .iter()
        .enumerate()
        .map(|(i, &(src, attack))| {
            let win = (i as u64 / cfg.window_pkts.max(1)) as u32;
            let dropped = reference.step(src, win);
            if dropped {
                predicted_drops += 1;
            } else if attack && i as u64 >= cfg.pkts {
                cooldown_attack_delivered += 1;
            }
            dropped
        })
        .collect();
    let attackers_promoted = (cfg.flows..sources)
        .filter(|&s| reference.promoted_ever[(s & reference.slot_mask) as usize])
        .count() as u64;

    let inject_one = |sw: &mut AnySwitch, i: u64, src: u64| {
        sw.inject(
            PortId((src % cfg.clients as u64) as u16),
            pkt(i, src, (i / cfg.window_pkts.max(1)) as u32),
            SimTime((i + 1) * INJECT_GAP_PS),
        );
    };

    let span_ps = (total + 1) * INJECT_GAP_PS;
    let (mut sw, mut notes, rebalances, stats, final_epoch, skew_before, skew_after) = match kind {
        TargetKind::Adcp => {
            let mut sw = AdcpSwitch::new(
                prog,
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                AdcpConfig {
                    demux: DemuxPolicy::FlowHash,
                    ..Default::default()
                },
            )
            .expect("ddos compiles on ADCP");
            sw.set_central_workers(cfg.central_workers);
            let mut notes = sw.placement.notes.clone();
            let mut rebalances = 0usize;
            let mut skew_before = 0.0f64;
            if cfg.rebalance {
                let pipes = sw.num_central() as u32;
                sw.install_partition_map(initial_map(n_slots, pipes))
                    .expect("map installs on the idle switch");
                let ticks = cfg.ticks.max(1) as u64;
                let min_samples = (total / 6).max(64);
                let mut sw_any = AnySwitch::Adcp(Box::new(sw));
                let mut i = 0u64;
                for k in 1..=ticks {
                    let bound = SimTime(span_ps * k / ticks);
                    while i < total && (i + 1) * INJECT_GAP_PS <= bound.as_ps() {
                        inject_one(&mut sw_any, i, events[i as usize].0);
                        i += 1;
                    }
                    let now = sw_any.run_until(bound);
                    let AnySwitch::Adcp(sw) = &mut sw_any else {
                        unreachable!()
                    };
                    if let Some(note) = security_tick(
                        sw,
                        state_reg,
                        n_slots,
                        now,
                        1.4,
                        min_samples,
                        &mut skew_before,
                        &mut rebalances,
                    ) {
                        notes.push(note);
                    }
                }
                while i < total {
                    inject_one(&mut sw_any, i, events[i as usize].0);
                    i += 1;
                }
                let end = sw_any.run_until_idle();
                let AnySwitch::Adcp(sw) = &mut sw_any else {
                    unreachable!()
                };
                // Finalize a trailing incremental migration.
                security_tick(
                    sw,
                    state_reg,
                    n_slots,
                    end,
                    f64::INFINITY,
                    u64::MAX,
                    &mut skew_before,
                    &mut rebalances,
                );
                let skew_after = LoadSnapshot::from_switch(sw).map_or(1.0, |s| s.skew());
                let stats = sw.migration_stats().clone();
                let epoch = sw.partition_epoch();
                (
                    sw_any,
                    notes,
                    rebalances,
                    stats,
                    epoch,
                    skew_before,
                    skew_after,
                )
            } else {
                notes.push("control plane off: skew persists".into());
                let mut sw_any = AnySwitch::Adcp(Box::new(sw));
                for (i, &(src, _)) in events.iter().enumerate() {
                    inject_one(&mut sw_any, i as u64, src);
                    if i % 50_000 == 49_999 {
                        sw_any.run_until(SimTime((i as u64 + 1) * INJECT_GAP_PS));
                    }
                }
                (sw_any, notes, 0, MigrationStats::default(), 0, 1.0, 1.0)
            }
        }
        _ => {
            let strategy = if kind == TargetKind::RmtRecirc {
                RmtCentralStrategy::Recirculate
            } else {
                RmtCentralStrategy::EgressPin
            };
            let sw = RmtSwitch::new(
                prog,
                TargetModel::rmt_12t(),
                CompileOptions {
                    rmt_central: strategy,
                },
                RmtConfig::default(),
            )
            .expect("ddos compiles on RMT");
            let mut notes = sw.placement.notes.clone();
            notes.push("no global partitioned area: the attack skew stays where it lands".into());
            let mut sw_any = AnySwitch::Rmt(Box::new(sw));
            for (i, &(src, _)) in events.iter().enumerate() {
                inject_one(&mut sw_any, i as u64, src);
                if i % 50_000 == 49_999 {
                    sw_any.run_until(SimTime((i as u64 + 1) * INJECT_GAP_PS));
                }
            }
            (sw_any, notes, 0, MigrationStats::default(), 0, 1.0, 1.0)
        }
    };

    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Every delivered packet must be one the reference let through, on
    // the right port; together with the count matching the predicted
    // survivor total, the delivered set equals the prediction exactly.
    let delivered = sw.take_delivered();
    let mut correct = delivered.len() as u64 == total - predicted_drops;
    let want_port = if kind == TargetKind::RmtPinned {
        collector
    } else {
        server
    };
    for d in &delivered {
        if predicted[d.meta.id as usize] || d.port != want_port {
            correct = false;
        }
    }
    if stats.misroutes != 0 {
        correct = false;
    }

    notes.push(format!(
        "slots={n_slots} promotions={} demotions={} attackers_promoted={attackers_promoted} \
         predicted_drops={predicted_drops} migrations={} moved_keys={} misroutes={} \
         skew {skew_before:.2} -> {skew_after:.2}",
        reference.promotions,
        reference.demotions,
        stats.migrations,
        stats.moved_keys,
        stats.misroutes
    ));
    DdosOutcome {
        report: AppReport::from_switch("ddos", kind, &mut sw, makespan, correct, notes),
        promotions: reference.promotions,
        demotions: reference.demotions,
        attackers_promoted,
        predicted_drops,
        cooldown_attack_delivered,
        rebalances,
        stats,
        final_epoch,
        skew_before,
        skew_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_ctl() -> DdosCfg {
        DdosCfg {
            rebalance: false,
            ..DdosCfg::default()
        }
    }

    #[test]
    fn adcp_matches_reference_and_mitigates() {
        let o = run(TargetKind::Adcp, &no_ctl());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(
            o.attackers_promoted == DdosCfg::default().attackers,
            "every attacker promoted: {:?}",
            o.report.notes
        );
        assert!(o.predicted_drops > 0);
        assert!(
            o.report.delivered == o.report.injected - o.predicted_drops,
            "{:?}",
            o.report.notes
        );
    }

    #[test]
    fn cooldown_demotes_and_traffic_flows_again() {
        let o = run(TargetKind::Adcp, &no_ctl());
        assert!(o.report.correct);
        assert!(o.demotions >= 1, "{:?}", o.report.notes);
        assert!(
            o.cooldown_attack_delivered > 0,
            "mitigation must lift after demotion: {:?}",
            o.report.notes
        );
    }

    #[test]
    fn rmt_pinned_matches_reference() {
        let o = run(TargetKind::RmtPinned, &no_ctl());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert_eq!(o.report.recirc_passes, 0);
    }

    #[test]
    fn rmt_recirc_matches_reference_and_pays_the_tax() {
        let o = run(TargetKind::RmtRecirc, &no_ctl());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(
            o.report.recirc_passes >= o.report.injected,
            "every packet recirculates once: {} passes / {} injected",
            o.report.recirc_passes,
            o.report.injected
        );
    }

    #[test]
    fn live_reshard_spreads_the_attack_with_zero_misroutes() {
        let o = run(TargetKind::Adcp, &DdosCfg::default());
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(
            o.rebalances >= 1,
            "the security controller must react mid-attack: {:?}",
            o.report.notes
        );
        assert_eq!(o.stats.misroutes, 0);
        assert!(o.stats.moved_keys > 0, "{:?}", o.report.notes);
        assert!(o.final_epoch >= 1);
        assert!(
            o.skew_after < o.skew_before,
            "skew {:.2} -> {:.2}: {:?}",
            o.skew_before,
            o.skew_after,
            o.report.notes
        );
    }

    #[test]
    fn million_source_state_partitions_and_spans() {
        // Compile-only at 2^20 sources: the ADCP partitions the detector
        // registers across central pipes and spans stages; the RMT
        // lowering folds to MAX_RMT_SLOTS and still spans.
        let sources = 1u64 << 20;
        let n = slots_for(TargetKind::Adcp, sources);
        assert_eq!(n, 1 << 20);
        let (prog, _) = program(TargetKind::Adcp, n, 25, 8, PortId(10), PortId(6));
        let sw = AdcpSwitch::new(
            prog,
            TargetModel::adcp_reference(),
            CompileOptions::default(),
            AdcpConfig::default(),
        )
        .expect("million-source detector compiles on ADCP");
        assert!(
            sw.placement
                .notes
                .iter()
                .any(|n| n.contains("partitioned across")),
            "{:?}",
            sw.placement.notes
        );

        let nr = slots_for(TargetKind::RmtPinned, sources);
        assert_eq!(nr, MAX_RMT_SLOTS);
        let (prog, _) = program(TargetKind::RmtPinned, nr, 25, 8, PortId(10), PortId(6));
        let sw = RmtSwitch::new(
            prog,
            TargetModel::rmt_12t(),
            CompileOptions::default(),
            RmtConfig::default(),
        )
        .expect("folded million-source detector compiles on RMT");
        assert!(
            sw.placement.notes.iter().any(|n| n.contains("spans")),
            "{:?}",
            sw.placement.notes
        );
    }

    #[test]
    fn initial_map_isolates_head_and_coarsens_tail() {
        let map = initial_map(1 << 16, 4);
        // Head keys are singleton buckets interleaved across pipes.
        for k in 0..256u64 {
            let (lo, hi) = bucket_span(&map, k);
            assert_eq!((lo, hi), (k, k + 1));
            assert_eq!(map.owner(k), (k % 4) as u32);
        }
        // A compact tail range shares one coarse bucket (and one pipe).
        let (lo, hi) = bucket_span(&map, 50_000);
        assert!(hi - lo > 1_000);
        assert_eq!(map.owner(50_000), map.owner(50_007));
        // Isolating hot slots carves singletons spread round-robin.
        let hot: Vec<u64> = (50_000..50_008).collect();
        let next = isolate_slots(&map, &hot, 4);
        for (i, &s) in hot.iter().enumerate() {
            let (lo, hi) = bucket_span(&next, s);
            assert_eq!((lo, hi), (s, s + 1));
            assert_eq!(next.owner(s), (i % 4) as u32);
        }
        // Everything else keeps its owner.
        assert_eq!(next.owner(40_000), map.owner(40_000));
        assert_eq!(next.owner(123), map.owner(123));
    }
}
