//! Database analytics: in-network filter–aggregate–reshuffle (Table 1).
//!
//! Mappers stream `(key, value)` rows; the switch (a) drops rows the
//! query's filter rejects, (b) repartitions survivors to the reducer that
//! owns `hash(key)`, and (c) keeps a per-key running sum whose latest
//! value rides in each forwarded row — so the reducer's final answer for a
//! key is simply the last value it receives (sums are monotone).
//!
//! Variants:
//! * **ADCP**: the first TM shards keys across central pipelines; the
//!   per-key sums live in the global area; TM2 can also copy each
//!   completed total to a *coordinator* port for query progress tracking —
//!   a second destination, which egress-pinned RMT cannot produce.
//! * **RMT/pinned**: aggregation state lives in each reducer's egress
//!   pipeline. Functional for plain shuffles (state is per-key and keys
//!   are pinned to reducers), but totals are visible *only* to the owning
//!   reducer, and half the stages (ingress) do no aggregation work.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    fold_hash, ActionDef, ActionOp, CompileOptions, Entry, FieldDef, FieldId, FieldRef, HeaderDef,
    HeaderId, KeySpec, MatchKind, MatchValue, Operand, ParserSpec, Program, ProgramBuilder,
    RegAluOp, Region, RegisterDef, RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::shuffle::{Row, ShuffleWorkload};
use std::collections::HashMap;

/// Parameters of one shuffle run.
#[derive(Debug, Clone)]
pub struct DbShuffleCfg {
    /// Underlying workload shape.
    pub workload: ShuffleWorkload,
    /// Port carrying the coordinator copy (ADCP only).
    pub coordinator_port: u16,
    /// RNG seed.
    pub seed: u64,
    /// Central-pipeline worker threads (ADCP only; output is
    /// byte-identical for any value).
    pub central_workers: usize,
}

impl Default for DbShuffleCfg {
    fn default() -> Self {
        DbShuffleCfg {
            workload: ShuffleWorkload {
                mappers: 4,
                reducers: 4,
                rows_per_mapper: 500,
                selectivity: 0.6,
                distinct_keys: 64,
                skew: 0.9,
            },
            coordinator_port: 15,
            seed: 3,
            central_workers: 1,
        }
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_FILTER: u16 = 0; // 8b: 1 = row passes the query filter
const F_KEY: u16 = 1; // 32b group-by key
const F_VALUE: u16 = 2; // 32b value / running sum
const F_SCRATCH: u16 = 3; // 32b reducer index scratch

/// Build the shuffle program for a variant.
pub fn program(cfg: &DbShuffleCfg, kind: TargetKind, _central_pipes: u32) -> Program {
    let reducers = cfg.workload.reducers as u64;
    let mut b = ProgramBuilder::new(format!("dbshuffle-{}", kind.label()));
    let h = b.header(HeaderDef::new(
        "row",
        vec![
            FieldDef::scalar("filter", 8),
            FieldDef::scalar("key", 32),
            FieldDef::scalar("value", 32),
            FieldDef::scalar("scratch", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let sums = b.register(RegisterDef::new(
        "group_sums",
        cfg.workload.distinct_keys as u32,
        64,
    ));

    // Ingress 1: the query filter (exact match on the filter flag).
    b.table(TableDef {
        name: "filter".into(),
        region: Region::Ingress,
        key: Some(KeySpec {
            field: fr(F_FILTER),
            kind: MatchKind::Exact,
            bits: 8,
        }),
        actions: vec![
            ActionDef::nop(),
            ActionDef::new("reject", vec![ActionOp::Drop]),
        ],
        default_action: 1, // anything unlisted is filtered out
        default_params: vec![],
        size: 4,
    });

    // Ingress 2: compute the owning reducer = hash(key) % reducers, and
    // the state placement.
    let mut partition_ops = vec![ActionOp::Hash {
        dst: fr(F_SCRATCH),
        fields: vec![fr(F_KEY)],
        modulo: reducers,
    }];
    match kind {
        TargetKind::Adcp => {
            // Shard aggregation state across central pipelines by key.
            partition_ops.push(ActionOp::SetCentralPipe(Operand::Field(fr(F_SCRATCH))));
        }
        TargetKind::RmtRecirc => {
            partition_ops.push(ActionOp::SetCentralPipe(Operand::Field(fr(F_SCRATCH))));
            partition_ops.push(ActionOp::Recirculate);
        }
        TargetKind::RmtPinned => {}
    }
    partition_ops.push(ActionOp::CountElements(Operand::Const(1)));
    b.table(TableDef {
        name: "partition".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new("partition", partition_ops)],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // Central: per-key running sum; the running total replaces the value.
    b.table(TableDef {
        name: "groupby".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "sum",
            vec![
                ActionOp::RegRmw {
                    reg: sums,
                    index: Operand::Field(fr(F_KEY)),
                    op: RegAluOp::Add,
                    value: Operand::Field(fr(F_VALUE)),
                    fetch: None,
                },
                // Re-read the cell so the row carries the post-add total.
                ActionOp::RegRead {
                    reg: sums,
                    index: Operand::Field(fr(F_KEY)),
                    dst: fr(F_VALUE),
                },
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });

    // Route to the owning reducer's port (+ coordinator copy on ADCP).
    // Entries installed by the control plane. On the egress-pinned RMT
    // variant the routing decision must be made at INGRESS (the TM needs
    // the port before the pinned egress pipeline runs); elsewhere it runs
    // in the central region after the group-by.
    let route_region = if kind == TargetKind::RmtPinned {
        Region::Ingress
    } else {
        Region::Central
    };
    b.table(TableDef {
        name: "route".into(),
        region: route_region,
        key: Some(KeySpec {
            field: fr(F_SCRATCH),
            kind: MatchKind::Exact,
            bits: 32,
        }),
        actions: vec![
            ActionDef::new("to_reducer", vec![ActionOp::SetEgress(Operand::Param(0))]),
            ActionDef::new("to_group", vec![ActionOp::SetMulticast(Operand::Param(1))]),
            ActionDef::new("drop", vec![ActionOp::Drop]),
        ],
        default_action: 2,
        default_params: vec![],
        size: 64,
    });
    // Multicast groups are appended per-reducer by the control plane setup
    // below (group g = {reducer_port(g), coordinator}).
    for r in 0..cfg.workload.reducers {
        let ports = vec![
            PortId(reducer_port(cfg, r) as u16),
            PortId(cfg.coordinator_port),
        ];
        b.mcast_group(ports);
    }
    b.build()
}

/// Mapper m sends from port m; reducer r receives on port mappers + r.
pub fn reducer_port(cfg: &DbShuffleCfg, r: u32) -> u32 {
    cfg.workload.mappers + r
}

fn row_packet(id: u64, row: &Row) -> Packet {
    let mut data = Vec::with_capacity(13);
    data.push(u8::from(row.keep));
    data.extend_from_slice(&(row.key as u32).to_be_bytes());
    data.extend_from_slice(&(row.value as u32).to_be_bytes());
    data.extend_from_slice(&0u32.to_be_bytes());
    Packet::new(id, FlowId(row.mapper as u64), data)
        .with_goodput(8)
        .with_elements(1)
}

fn read_key_value(data: &[u8]) -> (u64, u64) {
    let key = u32::from_be_bytes(data[1..5].try_into().unwrap()) as u64;
    let value = u32::from_be_bytes(data[5..9].try_into().unwrap()) as u64;
    (key, value)
}

/// Run one shuffle variant end to end; verify per-key totals and routing.
pub fn run(kind: TargetKind, cfg: &DbShuffleCfg) -> AppReport {
    let (mut sw, notes, central_pipes) = build_switch(kind, cfg);
    sw.set_central_workers(cfg.central_workers);

    // Control plane: route entries. ADCP multicasts each reducer's rows to
    // {reducer, coordinator}; RMT unicasts (pinning makes the coordinator
    // copy impossible without recirculation).
    for r in 0..cfg.workload.reducers {
        let (action, params) = match kind {
            // param0 unused, param1 = multicast group index (= reducer).
            TargetKind::Adcp => (1usize, vec![0, r as u64]),
            _ => (0usize, vec![reducer_port(cfg, r) as u64]),
        };
        let entry = Entry {
            value: MatchValue::Exact(r as u64),
            action,
            params,
        };
        sw_install(&mut sw, "route", entry);
    }
    // Filter: flag==1 passes.
    sw_install(
        &mut sw,
        "filter",
        Entry {
            value: MatchValue::Exact(1),
            action: 0,
            params: vec![],
        },
    );

    // Data plane: inject every mapper's rows.
    let mut rng = SimRng::seed_from(cfg.seed);
    let rows = cfg.workload.generate(&mut rng);
    for (i, row) in rows.iter().enumerate() {
        sw.inject(
            PortId(row.mapper as u16),
            row_packet(i as u64, row),
            SimTime::ZERO,
        );
    }
    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Verify: per key, the *latest* value seen at the owning reducer port
    // equals the reference group-by sum, and rows landed on the right
    // reducer.
    let reference = ShuffleWorkload::reference_sums(&rows);
    let delivered = sw.take_delivered();
    let mut last_at_reducer: HashMap<u64, u64> = HashMap::new();
    let mut coordinator_rows = 0u64;
    let mut misrouted = 0u64;
    for d in &delivered {
        let (key, value) = read_key_value(&d.data);
        if d.port == PortId(cfg.coordinator_port) && kind == TargetKind::Adcp {
            coordinator_rows += 1;
            continue;
        }
        let owner = (fold_hash([key]) % cfg.workload.reducers as u64) as u32;
        if d.port != PortId(reducer_port(cfg, owner) as u16) {
            misrouted += 1;
            continue;
        }
        // Running sums are monotone: the max is the latest/final value.
        let e = last_at_reducer.entry(key).or_insert(0);
        *e = (*e).max(value);
    }
    let mut correct = misrouted == 0 && last_at_reducer.len() == reference.len();
    for (key, total) in &reference {
        if last_at_reducer.get(key) != Some(total) {
            correct = false;
        }
    }
    if kind == TargetKind::Adcp && coordinator_rows == 0 && !delivered.is_empty() {
        correct = false;
    }
    let mut notes = notes;
    notes.push(format!(
        "coordinator copies: {coordinator_rows} (ADCP-only capability)"
    ));
    let _ = central_pipes;
    AppReport::from_switch("dbshuffle", kind, &mut sw, makespan, correct, notes)
}

fn sw_install(sw: &mut AnySwitch, table: &str, entry: Entry) {
    match sw {
        AnySwitch::Rmt(s) => s.install_all(table, entry).expect("install"),
        AnySwitch::Adcp(s) => s.install_all(table, entry).expect("install"),
    }
}

fn build_switch(kind: TargetKind, cfg: &DbShuffleCfg) -> (AnySwitch, Vec<String>, u32) {
    match kind {
        TargetKind::Adcp => {
            let target = TargetModel::adcp_reference();
            let cp = target.central_pipes as u32;
            let prog = program(cfg, kind, cp);
            let sw = AdcpSwitch::new(
                prog,
                target,
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .expect("dbshuffle compiles on ADCP");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Adcp(Box::new(sw)), notes, cp)
        }
        TargetKind::RmtRecirc | TargetKind::RmtPinned => {
            let target = TargetModel::rmt_12t();
            let cp = target.num_pipes() as u32;
            let prog = program(cfg, kind, cp);
            let strategy = if kind == TargetKind::RmtRecirc {
                RmtCentralStrategy::Recirculate
            } else {
                RmtCentralStrategy::EgressPin
            };
            let sw = RmtSwitch::new(
                prog,
                target,
                CompileOptions {
                    rmt_central: strategy,
                },
                RmtConfig::default(),
            )
            .expect("dbshuffle compiles on RMT");
            let notes = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), notes, cp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DbShuffleCfg {
        DbShuffleCfg {
            workload: ShuffleWorkload {
                mappers: 4,
                reducers: 4,
                rows_per_mapper: 200,
                selectivity: 0.5,
                distinct_keys: 32,
                skew: 0.8,
            },
            coordinator_port: 15,
            seed: 21,
            central_workers: 1,
        }
    }

    #[test]
    fn adcp_shuffle_is_correct_with_coordinator() {
        let r = run(TargetKind::Adcp, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.injected, 800);
        assert!(r.notes.iter().any(|n| n.contains("coordinator copies")));
    }

    #[test]
    fn rmt_pinned_shuffle_is_correct_without_coordinator() {
        let r = run(TargetKind::RmtPinned, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.recirc_passes, 0);
    }

    #[test]
    fn rmt_recirc_shuffle_pays_a_pass_per_row() {
        let r = run(TargetKind::RmtRecirc, &small());
        assert!(r.correct, "{r:?}");
        // Only filtered-in rows recirculate (filter runs first).
        assert!(r.recirc_passes > 300, "recirc = {}", r.recirc_passes);
        assert!(r.recirc_passes < 500);
    }

    #[test]
    fn selectivity_extremes() {
        // Filter keeps nothing: everything drops, nothing delivered.
        let mut cfg = small();
        cfg.workload.selectivity = 0.0;
        let r = run(TargetKind::Adcp, &cfg);
        assert!(r.correct, "{r:?}");
        assert_eq!(r.delivered, 0);
        assert_eq!(r.drops, r.injected);
        // Filter keeps everything: every row reaches a reducer (plus the
        // coordinator copies).
        cfg.workload.selectivity = 1.0;
        let r = run(TargetKind::Adcp, &cfg);
        assert!(r.correct, "{r:?}");
        assert_eq!(r.delivered, 2 * r.injected, "reducer + coordinator");
    }

    #[test]
    fn filter_drops_rejected_rows() {
        let r = run(TargetKind::Adcp, &small());
        // ~half the rows are filtered in-switch.
        assert!(r.drops > 300, "drops = {}", r.drops);
    }
}
