//! Group communication with heterogeneous NICs (Table 1, row 4;
//! zero-sided-RDMA style).
//!
//! A source streams a data object once; the switch replicates it to a
//! receiver group "even if some of the servers have different NIC
//! capabilities". Receivers with slower NICs drain their egress queues
//! more slowly; the shared-memory TM absorbs the rate mismatch. The run
//! verifies per-receiver completeness and in-order delivery, and reports
//! the completion-time skew between the fastest and slowest receiver.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch};
use adcp_lang::{
    ActionDef, ActionOp, CompileOptions, FieldDef, HeaderDef, Operand, ParserSpec, Program,
    ProgramBuilder, Region, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::port::LinkSpeed;
use adcp_sim::time::SimTime;
use std::collections::HashMap;

/// Parameters of one group transfer.
#[derive(Debug, Clone)]
pub struct GroupCommCfg {
    /// Receivers in the group.
    pub receivers: u16,
    /// Every second receiver runs at this reduced NIC speed (Gbps).
    pub slow_nic_gbps: u32,
    /// Packets in the object.
    pub packets: u32,
    /// Frame bytes per packet.
    pub frame_bytes: usize,
    /// Source pacing rate in Gbps (token bucket); `None` sends at line
    /// rate and lets the TM buffer absorb the slow receivers.
    pub pace_gbps: Option<u32>,
}

impl Default for GroupCommCfg {
    fn default() -> Self {
        GroupCommCfg {
            receivers: 6,
            slow_nic_gbps: 100,
            packets: 400,
            frame_bytes: 1024,
            pace_gbps: None,
        }
    }
}

/// Build the one-table replication program.
pub fn program(kind: TargetKind) -> Program {
    let mut b = ProgramBuilder::new(format!("groupcomm-{}", kind.label()));
    let h = b.header(HeaderDef::new(
        "gc",
        vec![FieldDef::scalar("seq", 32), FieldDef::scalar("pad", 32)],
    ));
    b.parser(ParserSpec::single(h));
    // Group 0 is filled in by the runner before building the switch.
    b.table(TableDef {
        name: "replicate".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "replicate",
            vec![
                ActionOp::SetMulticast(Operand::Const(0)),
                ActionOp::CountElements(Operand::Const(1)),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn data_packet(id: u64, seq: u32, frame: usize) -> Packet {
    let mut data = vec![0u8; frame.max(8)];
    data[..4].copy_from_slice(&seq.to_be_bytes());
    Packet::new(id, FlowId(0), data)
        .with_goodput(frame as u32 - 8)
        .with_elements(1)
}

/// Run the transfer; verify completeness/order; report skew in the notes.
pub fn run(kind: TargetKind, cfg: &GroupCommCfg) -> AppReport {
    let src = PortId(0);
    let receivers: Vec<PortId> = (1..=cfg.receivers).map(PortId).collect();
    // Every second receiver has a slow NIC.
    let slow: Vec<(u16, LinkSpeed)> = receivers
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, p)| (p.0, LinkSpeed::gbps(cfg.slow_nic_gbps)))
        .collect();

    let mut prog = program(kind);
    prog.mcast_groups.push(receivers.clone());

    let (mut sw, notes) = match kind {
        TargetKind::Adcp => {
            let sw = AdcpSwitch::new(
                prog,
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                AdcpConfig {
                    port_speeds: slow,
                    ..Default::default()
                },
            )
            .expect("groupcomm compiles on ADCP");
            let n = sw.placement.notes.clone();
            (AnySwitch::Adcp(Box::new(sw)), n)
        }
        _ => {
            let sw = RmtSwitch::new(
                prog,
                TargetModel::rmt_12t(),
                CompileOptions::default(),
                RmtConfig {
                    port_speeds: slow,
                    ..Default::default()
                },
            )
            .expect("groupcomm compiles on RMT");
            let n = sw.placement.notes.clone();
            (AnySwitch::Rmt(Box::new(sw)), n)
        }
    };

    let mut bucket = cfg
        .pace_gbps
        .map(|g| adcp_sim::shaper::TokenBucket::new(g as u64 * 1_000_000_000, 2 * 1520));
    let mut t = SimTime::ZERO;
    for i in 0..cfg.packets {
        let pkt = data_packet(i as u64, i, cfg.frame_bytes);
        if let Some(b) = bucket.as_mut() {
            t = b.admit(&pkt, t);
        }
        sw.inject(src, pkt, t);
    }
    let makespan = sw.run_until_idle();
    sw.check_conservation();

    // Verify: each receiver saw the full, in-order sequence.
    let delivered = sw.take_delivered();
    let mut per_port: HashMap<PortId, Vec<(SimTime, u32)>> = HashMap::new();
    for d in &delivered {
        let seq = u32::from_be_bytes(d.data[..4].try_into().unwrap());
        per_port.entry(d.port).or_default().push((d.time, seq));
    }
    let mut correct = per_port.len() == receivers.len();
    let mut completion: Vec<(PortId, SimTime)> = Vec::new();
    for r in &receivers {
        match per_port.get(r) {
            Some(seqs) if seqs.len() == cfg.packets as usize => {
                // Delivery times are recorded in TX order; the sequence
                // numbers must be monotone per receiver.
                if !seqs.windows(2).all(|w| w[0].1 < w[1].1) {
                    correct = false;
                }
                completion.push((*r, seqs.last().unwrap().0));
            }
            _ => correct = false,
        }
    }
    let mut notes = notes;
    notes.push(format!(
        "tm buffer high-water: {} cells",
        sw.tm_buffer_hwm()
    ));
    if let (Some(min), Some(max)) = (
        completion.iter().map(|(_, t)| *t).min(),
        completion.iter().map(|(_, t)| *t).max(),
    ) {
        notes.push(format!(
            "completion skew fast->slow receivers: {:.1}ns",
            (max - min).as_ns_f64()
        ));
    }
    AppReport::from_switch("groupcomm", kind, &mut sw, makespan, correct, notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GroupCommCfg {
        GroupCommCfg {
            receivers: 4,
            slow_nic_gbps: 100,
            packets: 100,
            frame_bytes: 1024,
            pace_gbps: None,
        }
    }

    #[test]
    fn adcp_group_transfer_complete_and_ordered() {
        let r = run(TargetKind::Adcp, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.injected, 100);
        assert_eq!(r.delivered, 400, "4 receivers x 100 packets");
    }

    #[test]
    fn rmt_group_transfer_also_works() {
        // Plain replication is a classic TM feature: RMT handles it too.
        let r = run(TargetKind::RmtPinned, &small());
        assert!(r.correct, "{r:?}");
        assert_eq!(r.delivered, 400);
    }

    #[test]
    fn slow_nics_create_completion_skew() {
        let r = run(TargetKind::Adcp, &small());
        let note = r
            .notes
            .iter()
            .find(|n| n.contains("completion skew"))
            .expect("skew note present");
        let skew: f64 = note
            .split("skew fast->slow receivers: ")
            .nth(1)
            .unwrap()
            .trim_end_matches("ns")
            .parse()
            .unwrap();
        // 100 packets x 1044 wire bytes: 800G drains in ~1us, 100G in
        // ~8.4us — the skew must be microseconds.
        assert!(skew > 1_000.0, "skew = {skew}ns");
    }

    #[test]
    fn pacing_shrinks_switch_buffering() {
        // An unpaced sender dumps at 800G; slow receivers buffer in the
        // TM. Pacing the source to the slow NIC rate keeps the buffer
        // nearly empty — end-host shaping trades time for switch memory.
        let unpaced = run(TargetKind::Adcp, &small());
        let paced = run(
            TargetKind::Adcp,
            &GroupCommCfg {
                pace_gbps: Some(100),
                ..small()
            },
        );
        assert!(unpaced.correct && paced.correct);
        let hwm = |r: &crate::driver::AppReport| -> u64 {
            r.notes
                .iter()
                .find_map(|n| {
                    n.strip_prefix("tm buffer high-water: ")
                        .and_then(|x| x.split(' ').next())
                        .and_then(|x| x.parse().ok())
                })
                .unwrap()
        };
        assert!(
            hwm(&paced) * 4 < hwm(&unpaced),
            "paced {} vs unpaced {} cells",
            hwm(&paced),
            hwm(&unpaced)
        );
        // Either way the transfer finishes when the slow NICs drain: the
        // makespans are within 25% of each other — pacing trades switch
        // memory for source-side waiting, not for total time.
        assert!(
            (paced.makespan_ns / unpaced.makespan_ns - 1.0).abs() < 0.25,
            "paced {:.0}ns vs unpaced {:.0}ns",
            paced.makespan_ns,
            unpaced.makespan_ns
        );
    }

    #[test]
    fn faster_object_on_faster_nics() {
        let slow = run(TargetKind::Adcp, &small());
        let fast = run(
            TargetKind::Adcp,
            &GroupCommCfg {
                slow_nic_gbps: 800,
                ..small()
            },
        );
        assert!(fast.makespan_ns < slow.makespan_ns);
    }
}
