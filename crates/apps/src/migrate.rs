//! Partitioned shard counting under live repartitioning ("partmigrate").
//!
//! A Zipf-skewed keyed workload updates per-shard counters in the global
//! partitioned area. The key-to-shard fold is deliberately "unlucky": hot
//! keys collide onto the same central pipeline (`stride`), so the initial
//! uniform partition map concentrates the load. On the ADCP a
//! [`Controller`] watches per-bucket load mid-run, plans a rebalance and
//! migrates the register shards live (drain or incremental strategy);
//! correctness demands that **no counter update is lost, duplicated, or
//! misrouted across the migration** — every delivered packet carries the
//! pre-increment counter value it observed, so the multiset of observed
//! values per shard must be exactly `0..n-1`.
//!
//! RMT has no global partitioned area to repartition: the same program
//! runs (pinned or recirculating), but the skew stays where it lands —
//! the run is the no-control-plane baseline the paper's §3.1 argues
//! against.

use crate::driver::{AnySwitch, AppReport, TargetKind};
use adcp_core::{AdcpConfig, AdcpSwitch, MigrationStats, MigrationStrategy, PartitionMap};
use adcp_ctrl::{Controller, LoadSnapshot, SkewPolicy};
use adcp_lang::{
    ActionDef, ActionOp, BinOp, CompileOptions, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId,
    Operand, ParserSpec, Program, ProgramBuilder, RegAluOp, Region, RegisterDef,
    RmtCentralStrategy, TableDef, TargetModel,
};
use adcp_rmt::{RmtConfig, RmtSwitch};
use adcp_sim::packet::{FlowId, Packet, PortId};
use adcp_sim::rng::SimRng;
use adcp_sim::time::SimTime;
use adcp_workloads::keys::ZipfKeys;

/// Shards in the partitioned area (also the partition-map bucket count
/// and the counter register size — the cell == partition-key convention).
pub const SHARDS: u64 = 64;

/// Parameters of one partmigrate run.
#[derive(Debug, Clone)]
pub struct MigrateCfg {
    /// Distinct keys in the keyspace (folded into [`SHARDS`] shards).
    pub keyspace: usize,
    /// Zipf skew of key popularity.
    pub skew: f64,
    /// Packets to send.
    pub packets: u32,
    /// Client ports used round-robin.
    pub clients: u16,
    /// Inter-packet gap, ns.
    pub gap_ns: u64,
    /// Packets injected per timestamp: consecutive groups of `burst`
    /// packets share one injection time (spread across the client
    /// ports), modeling synchronized senders. `1` staggers every packet.
    pub burst: u16,
    /// Popularity-rank-to-key multiplier. With the default 4, the hottest
    /// keys all fold onto the same central pipeline under the initial
    /// uniform map — the "unlucky hash" the control plane must fix.
    pub stride: u64,
    /// Migration strategy for the controller; `None` runs without a
    /// control plane (the skew persists — baseline).
    pub strategy: Option<MigrationStrategy>,
    /// Controller ticks spread evenly across the run.
    pub ticks: u32,
    /// RNG seed.
    pub seed: u64,
    /// Central-pipeline worker threads (ADCP only; output is
    /// byte-identical for any value — the switch serializes automatically
    /// while a migration's fences are in flight).
    pub central_workers: usize,
}

impl Default for MigrateCfg {
    fn default() -> Self {
        MigrateCfg {
            keyspace: 4096,
            skew: 1.1,
            packets: 4_000,
            clients: 4,
            gap_ns: 200,
            burst: 1,
            stride: 4,
            strategy: Some(MigrationStrategy::Incremental),
            ticks: 8,
            seed: 31,
            central_workers: 1,
        }
    }
}

/// Parse a `--migrate` flag value: `drain`, `incremental`, or `off`.
/// Outer `None` means the string is not a recognised mode.
pub fn parse_strategy(s: &str) -> Option<Option<MigrationStrategy>> {
    match s {
        "drain" => Some(Some(MigrationStrategy::Drain)),
        "incremental" | "inc" => Some(Some(MigrationStrategy::Incremental)),
        "off" | "none" => Some(None),
        _ => None,
    }
}

fn fr(f: u16) -> FieldRef {
    FieldRef::new(HeaderId(0), FieldId(f))
}

const F_DST: u16 = 0;
const F_KEY: u16 = 1;
const F_IDX: u16 = 2;
const F_COUNT: u16 = 3;

/// Build the shard-counting program. Header: {dst:16, key:16, idx:16,
/// count:32}. Ingress folds `key` into a shard index and steers; the
/// central table increments the shard counter and echoes the
/// pre-increment value into `count`.
pub fn program(kind: TargetKind, collector: PortId) -> Program {
    let mut b = ProgramBuilder::new("partmigrate");
    let h = b.header(HeaderDef::new(
        "pm",
        vec![
            FieldDef::scalar("dst", 16),
            FieldDef::scalar("key", 16),
            FieldDef::scalar("idx", 16),
            FieldDef::scalar("count", 32),
        ],
    ));
    b.parser(ParserSpec::single(h));
    let cnt = b.register(RegisterDef::new("shard_cnt", SHARDS as u32, 32));
    let fold = ActionOp::Bin {
        dst: fr(F_IDX),
        op: BinOp::And,
        a: Operand::Field(fr(F_KEY)),
        b: Operand::Const(SHARDS - 1),
    };
    let steer = match kind {
        TargetKind::Adcp => vec![ActionOp::SetCentralPipe(Operand::Field(fr(F_IDX)))],
        TargetKind::RmtRecirc => vec![
            ActionOp::SetCentralPipe(Operand::Field(fr(F_IDX))),
            ActionOp::Recirculate,
        ],
        // Pinned: funnel everything to the collector's egress pipeline,
        // where the pinned central table (and all shard state) lives.
        TargetKind::RmtPinned => vec![ActionOp::SetEgress(Operand::Const(collector.0 as u64))],
    };
    b.table(TableDef {
        name: "shard".into(),
        region: Region::Ingress,
        key: None,
        actions: vec![ActionDef::new(
            "fold",
            [
                vec![fold],
                steer,
                vec![ActionOp::CountElements(Operand::Const(1))],
            ]
            .concat(),
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.table(TableDef {
        name: "count".into(),
        region: Region::Central,
        key: None,
        actions: vec![ActionDef::new(
            "bump",
            vec![
                ActionOp::RegRmw {
                    reg: cnt,
                    index: Operand::Field(fr(F_IDX)),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: Some(fr(F_COUNT)),
                },
                ActionOp::SetEgress(Operand::Field(fr(F_DST))),
            ],
        )],
        default_action: 0,
        default_params: vec![],
        size: 1,
    });
    b.build()
}

fn pkt(id: u64, dst: u16, key: u16) -> Packet {
    let mut data = Vec::with_capacity(10 + 8);
    data.extend_from_slice(&dst.to_be_bytes());
    data.extend_from_slice(&key.to_be_bytes());
    data.extend_from_slice(&[0u8; 2]); // idx (computed in ingress)
    data.extend_from_slice(&[0u8; 4]); // count (filled centrally)
    data.extend_from_slice(&[0u8; 8]); // payload
    Packet::new(id, FlowId(key as u64), data)
        .with_goodput(8)
        .with_elements(1)
}

/// Outcome of a partmigrate run.
#[derive(Debug, Clone)]
pub struct MigrateOutcome {
    /// Standard app report.
    pub report: AppReport,
    /// Rebalances the controller actuated (ADCP only).
    pub rebalances: usize,
    /// Migration protocol stats (zeroes on RMT / with the controller off).
    pub stats: MigrationStats,
    /// Partition-map epoch at the end of the run.
    pub final_epoch: u64,
    /// Pipe-load skew (max/mean) observed before the first rebalance.
    pub skew_before: f64,
    /// Pipe-load skew over the traffic after the last map change.
    pub skew_after: f64,
}

/// Correctness oracle shared by every target: each delivered packet
/// carries the pre-increment counter it observed, so per shard the
/// observed values must be exactly the multiset `{0, 1, ..., n-1}` —
/// any lost, duplicated, or misordered-on-one-cell update breaks it.
fn check_counts(delivered: &[crate::driver::DeliveredPkt], packets: u32) -> bool {
    if delivered.len() != packets as usize {
        return false;
    }
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); SHARDS as usize];
    for d in delivered {
        let key = u16::from_be_bytes(d.data[2..4].try_into().unwrap()) as u64;
        let count = u32::from_be_bytes(d.data[6..10].try_into().unwrap()) as u64;
        per_shard[(key & (SHARDS - 1)) as usize].push(count);
    }
    per_shard.iter_mut().all(|obs| {
        obs.sort_unstable();
        obs.iter().enumerate().all(|(i, &c)| c == i as u64)
    })
}

/// Run partmigrate on a target.
pub fn run(kind: TargetKind, cfg: &MigrateCfg) -> MigrateOutcome {
    let collector = PortId(cfg.clients); // one past the clients
    let zipf = ZipfKeys::new(cfg.keyspace, cfg.skew);
    let mut rng = SimRng::seed_from(cfg.seed);
    let keys: Vec<u16> = (0..cfg.packets)
        .map(|_| ((zipf.sample(&mut rng) * cfg.stride) % cfg.keyspace as u64) as u16)
        .collect();
    let gap_ps = cfg.gap_ns * 1_000;
    let burst = cfg.burst.max(1) as u64;
    let span_ps = (cfg.packets as u64).div_ceil(burst) * gap_ps;

    let (mut sw, mut notes, rebalances, stats, final_epoch, skew_before, skew_after) = match kind {
        TargetKind::Adcp => {
            let mut sw = AdcpSwitch::new(
                program(kind, collector),
                TargetModel::adcp_reference(),
                CompileOptions::default(),
                AdcpConfig::default(),
            )
            .expect("partmigrate compiles on ADCP");
            sw.set_central_workers(cfg.central_workers);
            let notes = sw.placement.notes.clone();
            let n_pipes = sw.num_central() as u32;
            sw.install_partition_map(PartitionMap::uniform(SHARDS as u32, n_pipes))
                .expect("map installs on the idle switch");
            for (i, &key) in keys.iter().enumerate() {
                sw.inject(
                    PortId(i as u16 % cfg.clients),
                    pkt(i as u64, collector.0, key),
                    SimTime(i as u64 / burst * gap_ps),
                );
            }
            let mut ctl = cfg.strategy.map(|strategy| {
                Controller::new(SkewPolicy {
                    max_over_mean: 1.25,
                    min_samples: (cfg.packets as u64 / 10).max(32),
                    strategy,
                })
            });
            let mut skew_before = 0.0f64;
            for k in 1..=cfg.ticks.max(1) as u64 {
                let now = sw.run_until(SimTime(span_ps * k / cfg.ticks.max(1) as u64));
                if let Some(ctl) = ctl.as_mut() {
                    if ctl.events().is_empty() {
                        if let Some(snap) = LoadSnapshot::from_switch(&sw) {
                            skew_before = skew_before.max(snap.skew());
                        }
                    }
                    ctl.tick(&mut sw, now);
                }
            }
            let end = sw.run_until_idle();
            if let Some(ctl) = ctl.as_mut() {
                ctl.tick(&mut sw, end); // finalize a trailing incremental migration
            }
            let skew_after = LoadSnapshot::from_switch(&sw).map_or(1.0, |s| s.skew());
            let rebalances = ctl.as_ref().map_or(0, |c| c.events().len());
            let stats = sw.migration_stats().clone();
            let epoch = sw.partition_epoch();
            let mut notes = notes;
            if let Some(ctl) = &ctl {
                for ev in ctl.events() {
                    notes.push(format!(
                        "rebalance at {} ns: skew {:.2}, {} buckets -> epoch {} ({:?})",
                        ev.at_ns, ev.skew, ev.moved_buckets, ev.to_epoch, ev.strategy
                    ));
                }
            } else {
                notes.push("control plane off: skew persists".into());
            }
            (
                AnySwitch::Adcp(Box::new(sw)),
                notes,
                rebalances,
                stats,
                epoch,
                skew_before,
                skew_after,
            )
        }
        _ => {
            let strategy = if kind == TargetKind::RmtRecirc {
                RmtCentralStrategy::Recirculate
            } else {
                RmtCentralStrategy::EgressPin
            };
            let mut sw = RmtSwitch::new(
                program(kind, collector),
                TargetModel::rmt_12t(),
                CompileOptions {
                    rmt_central: strategy,
                },
                RmtConfig::default(),
            )
            .expect("partmigrate compiles on RMT");
            let mut notes = sw.placement.notes.clone();
            notes.push("no global partitioned area: runs without repartitioning".into());
            for (i, &key) in keys.iter().enumerate() {
                sw.inject(
                    PortId(i as u16 % cfg.clients),
                    pkt(i as u64, collector.0, key),
                    SimTime(i as u64 / burst * gap_ps),
                );
            }
            (
                AnySwitch::Rmt(Box::new(sw)),
                notes,
                0,
                MigrationStats::default(),
                0,
                1.0,
                1.0,
            )
        }
    };

    let makespan = sw.run_until_idle();
    sw.check_conservation();
    let delivered = sw.take_delivered();
    let mut correct = check_counts(&delivered, cfg.packets);
    if stats.misroutes != 0 {
        correct = false;
    }
    notes.push(format!(
        "migrations={} moved_keys={} paused_ns={} redirected={} skew {:.2} -> {:.2}",
        stats.migrations,
        stats.moved_keys,
        stats.paused_ns,
        stats.redirected_pkts,
        skew_before,
        skew_after
    ));
    MigrateOutcome {
        report: AppReport::from_switch("partmigrate", kind, &mut sw, makespan, correct, notes),
        rebalances,
        stats,
        final_epoch,
        skew_before,
        skew_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(strategy: Option<MigrationStrategy>) -> MigrateCfg {
        MigrateCfg {
            packets: 1_200,
            strategy,
            seed: 77,
            ..MigrateCfg::default()
        }
    }

    #[test]
    fn incremental_rebalance_is_correct_and_reduces_skew() {
        let o = run(
            TargetKind::Adcp,
            &small(Some(MigrationStrategy::Incremental)),
        );
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(
            o.rebalances >= 1,
            "controller must react: {:?}",
            o.report.notes
        );
        assert!(o.final_epoch >= 1);
        assert_eq!(o.stats.misroutes, 0);
        assert!(o.stats.moved_keys > 0);
        assert!(
            o.skew_after < o.skew_before,
            "skew {:.2} -> {:.2}",
            o.skew_before,
            o.skew_after
        );
    }

    #[test]
    fn drain_rebalance_is_correct() {
        let o = run(TargetKind::Adcp, &small(Some(MigrationStrategy::Drain)));
        assert!(o.report.correct, "{:?}", o.report.notes);
        assert!(o.rebalances >= 1);
        assert_eq!(o.stats.misroutes, 0);
        assert!(o.stats.paused_ns > 0, "drain must pause");
    }

    #[test]
    fn baseline_without_controller_keeps_the_skew() {
        let o = run(TargetKind::Adcp, &small(None));
        assert!(o.report.correct);
        assert_eq!(o.rebalances, 0);
        assert_eq!(o.final_epoch, 0);
        assert_eq!(o.stats.migrations, 0);
    }

    #[test]
    fn rmt_targets_run_without_migration() {
        for kind in [TargetKind::RmtRecirc, TargetKind::RmtPinned] {
            let o = run(kind, &small(Some(MigrationStrategy::Incremental)));
            assert!(o.report.correct, "{kind:?}: {:?}", o.report.notes);
            assert_eq!(o.rebalances, 0);
            assert_eq!(o.stats.migrations, 0);
        }
    }
}
