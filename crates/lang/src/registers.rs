//! Stateful register files.
//!
//! Registers are the "stateful processing" of the paper's §1: data lifted
//! from prior packets that later packets can read and modify. In RMT each
//! register array lives in one stage and a packet gets **one**
//! read-modify-write per register (the stateful-ALU constraint); the ADCP
//! array MAU relaxes this to one RMW *per lane*, i.e. a width-w array op
//! performs w independent RMWs on consecutive cells (§3.2).

use serde::Serialize;

/// Identifies a register array declared by a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct RegId(pub u16);

/// Declaration of a register array.
#[derive(Debug, Clone, Serialize)]
pub struct RegisterDef {
    /// Human-readable name.
    pub name: String,
    /// Number of cells.
    pub entries: u32,
    /// Width of each cell in bits (1..=64); arithmetic wraps at this width.
    pub bits: u8,
}

impl RegisterDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, entries: u32, bits: u8) -> Self {
        assert!((1..=64).contains(&bits));
        assert!(entries > 0);
        RegisterDef {
            name: name.into(),
            entries,
            bits,
        }
    }

    /// Total storage in bits (counts against the stage register budget).
    pub fn total_bits(&self) -> u64 {
        self.entries as u64 * self.bits as u64
    }
}

/// Runtime instance of a register array (one per pipeline that hosts it —
/// pipelines are shared-nothing, which is exactly the Fig. 2 limitation).
#[derive(Debug, Clone)]
pub struct RegisterFile {
    cells: Vec<u64>,
    bits: u8,
    /// Total single-cell read-modify-write operations performed.
    pub ops: u64,
}

/// The read-modify-write operations a stateful ALU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegAluOp {
    /// `cell = value`.
    Write,
    /// `cell += value` (wrapping at cell width).
    Add,
    /// `cell = max(cell, value)`.
    Max,
    /// `cell = min(cell, value)`.
    Min,
}

impl RegisterFile {
    /// Zero-initialized instance of a definition.
    pub fn new(def: &RegisterDef) -> Self {
        RegisterFile {
            cells: vec![0; def.entries as usize],
            bits: def.bits,
            ops: 0,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the file has no cells (cannot happen via `RegisterDef`).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    fn mask(&self, v: u64) -> u64 {
        if self.bits >= 64 {
            v
        } else {
            v & ((1u64 << self.bits) - 1)
        }
    }

    /// Read a cell. Out-of-range indices read as 0 (and are counted as an
    /// op — hardware would wrap; we saturate to a benign value and let the
    /// program validator reject static out-of-range indices).
    pub fn read(&mut self, idx: u64) -> u64 {
        self.ops += 1;
        self.cells.get(idx as usize).copied().unwrap_or(0)
    }

    /// Read without counting an op (stats/tests).
    pub fn peek(&self, idx: u64) -> u64 {
        self.cells.get(idx as usize).copied().unwrap_or(0)
    }

    /// Perform a read-modify-write; returns the value the cell held
    /// *before* the operation (fetch-op semantics).
    pub fn rmw(&mut self, idx: u64, op: RegAluOp, value: u64) -> u64 {
        self.ops += 1;
        if idx as usize >= self.cells.len() {
            return 0;
        }
        let old = self.cells[idx as usize];
        let v = match op {
            RegAluOp::Write => value,
            RegAluOp::Add => old.wrapping_add(value),
            RegAluOp::Max => old.max(value),
            RegAluOp::Min => old.min(value),
        };
        self.cells[idx as usize] = self.mask(v);
        old
    }

    /// Reset every cell to zero (control-plane operation between epochs).
    pub fn clear(&mut self) {
        self.cells.iter_mut().for_each(|c| *c = 0);
    }

    /// Control-plane state migration: take one cell's value and zero the
    /// cell (the source side of a shard move). Unlike [`RegisterFile::rmw`]
    /// this is not a data-plane operation, so it does not count toward
    /// `ops`. Out-of-range indices extract 0.
    pub fn extract(&mut self, idx: usize) -> u64 {
        match self.cells.get_mut(idx) {
            Some(c) => std::mem::take(c),
            None => 0,
        }
    }

    /// Control-plane state migration: set one cell to a previously
    /// extracted value (the destination side of a shard move). Masked to
    /// the cell width; does not count toward `ops`. Out-of-range indices
    /// are ignored.
    pub fn restore(&mut self, idx: usize, value: u64) {
        let masked = self.mask(value);
        if let Some(c) = self.cells.get_mut(idx) {
            *c = masked;
        }
    }

    /// Control-plane state migration: extract every cell selected by
    /// `select`, returning `(index, value)` pairs for the nonzero ones.
    /// Selected cells are zeroed; does not count toward `ops`.
    pub fn drain(&mut self, mut select: impl FnMut(usize) -> bool) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for (i, c) in self.cells.iter_mut().enumerate() {
            if select(i) && *c != 0 {
                out.push((i, std::mem::take(c)));
            }
        }
        out
    }

    /// Snapshot of all cells (control-plane readout).
    pub fn snapshot(&self) -> &[u64] {
        &self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(entries: u32, bits: u8) -> RegisterFile {
        RegisterFile::new(&RegisterDef::new("r", entries, bits))
    }

    #[test]
    fn def_sizes() {
        let d = RegisterDef::new("agg", 1024, 32);
        assert_eq!(d.total_bits(), 32 * 1024);
    }

    #[test]
    fn rmw_semantics() {
        let mut f = file(8, 32);
        assert_eq!(f.rmw(3, RegAluOp::Write, 10), 0);
        assert_eq!(f.rmw(3, RegAluOp::Add, 5), 10);
        assert_eq!(f.peek(3), 15);
        assert_eq!(f.rmw(3, RegAluOp::Max, 7), 15);
        assert_eq!(f.peek(3), 15);
        assert_eq!(f.rmw(3, RegAluOp::Max, 99), 15);
        assert_eq!(f.peek(3), 99);
        assert_eq!(f.rmw(3, RegAluOp::Min, 50), 99);
        assert_eq!(f.peek(3), 50);
        assert_eq!(f.ops, 5);
    }

    #[test]
    fn arithmetic_wraps_at_cell_width() {
        let mut f = file(2, 8);
        f.rmw(0, RegAluOp::Write, 250);
        f.rmw(0, RegAluOp::Add, 10);
        assert_eq!(f.peek(0), (250 + 10) % 256);
        // Write is masked too.
        f.rmw(1, RegAluOp::Write, 0x1FF);
        assert_eq!(f.peek(1), 0xFF);
    }

    #[test]
    fn out_of_range_is_benign() {
        let mut f = file(4, 32);
        assert_eq!(f.read(99), 0);
        assert_eq!(f.rmw(99, RegAluOp::Add, 5), 0);
        assert_eq!(f.len(), 4);
        assert!(f.snapshot().iter().all(|&c| c == 0));
    }

    #[test]
    fn clear_resets() {
        let mut f = file(4, 64);
        for i in 0..4 {
            f.rmw(i, RegAluOp::Write, i + 1);
        }
        f.clear();
        assert!(f.snapshot().iter().all(|&c| c == 0));
    }

    #[test]
    fn extract_restore_round_trip() {
        let mut src = file(8, 32);
        let mut dst = file(8, 32);
        src.rmw(2, RegAluOp::Write, 7);
        src.rmw(5, RegAluOp::Write, 11);
        let ops_before = src.ops;
        let moved = src.drain(|i| i % 2 == 1);
        assert_eq!(moved, vec![(5, 11)]);
        assert_eq!(src.peek(5), 0, "drained cell is zeroed at the source");
        assert_eq!(src.peek(2), 7, "unselected cell untouched");
        for (i, v) in moved {
            dst.restore(i, v);
        }
        assert_eq!(dst.peek(5), 11);
        let v = src.extract(2);
        assert_eq!(v, 7);
        assert_eq!(src.peek(2), 0);
        dst.restore(2, v);
        assert_eq!(dst.peek(2), 7);
        assert_eq!(src.ops, ops_before, "migration is not a data-plane op");
        assert_eq!(dst.ops, 0, "restore is not a data-plane op");
        // Out-of-range moves are benign, like the data-plane accessors.
        assert_eq!(src.extract(99), 0);
        dst.restore(99, 5);
    }

    #[test]
    fn restore_masks_to_cell_width() {
        let mut f = file(2, 8);
        f.restore(0, 0x1FF);
        assert_eq!(f.peek(0), 0xFF);
    }

    #[test]
    fn full_width_cells() {
        let mut f = file(1, 64);
        f.rmw(0, RegAluOp::Write, u64::MAX);
        assert_eq!(f.peek(0), u64::MAX);
        f.rmw(0, RegAluOp::Add, 1);
        assert_eq!(f.peek(0), 0, "wraps at 64 bits");
    }
}
