//! Stateful register files.
//!
//! Registers are the "stateful processing" of the paper's §1: data lifted
//! from prior packets that later packets can read and modify. In RMT each
//! register array lives in one stage and a packet gets **one**
//! read-modify-write per register (the stateful-ALU constraint); the ADCP
//! array MAU relaxes this to one RMW *per lane*, i.e. a width-w array op
//! performs w independent RMWs on consecutive cells (§3.2).

use serde::Serialize;

/// Identifies a register array declared by a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct RegId(pub u16);

/// Declaration of a register array.
#[derive(Debug, Clone, Serialize)]
pub struct RegisterDef {
    /// Human-readable name.
    pub name: String,
    /// Number of cells.
    pub entries: u32,
    /// Width of each cell in bits (1..=64); arithmetic wraps at this width.
    pub bits: u8,
}

impl RegisterDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, entries: u32, bits: u8) -> Self {
        assert!((1..=64).contains(&bits));
        assert!(entries > 0);
        RegisterDef {
            name: name.into(),
            entries,
            bits,
        }
    }

    /// Total storage in bits (counts against the stage register budget).
    pub fn total_bits(&self) -> u64 {
        self.entries as u64 * self.bits as u64
    }
}

/// Cells per lazily-allocated page. 4096 × 8 B = 32 KiB per resident page.
const PAGE_CELLS: usize = 4096;

/// Runtime instance of a register array (one per pipeline that hosts it —
/// pipelines are shared-nothing, which is exactly the Fig. 2 limitation).
///
/// Storage is paged and lazy: every `RegionState` of every pipeline
/// instantiates every program register, so a dense `Vec<u64>` would cost
/// `cells × 8 B × pipelines × regions` up front — ~80 MB per instance at
/// the 10⁷-flow scale. Pages materialize on first write; untouched cells
/// read as zero, which is also their architectural reset value.
#[derive(Debug, Clone)]
pub struct RegisterFile {
    pages: Vec<Option<Box<[u64; PAGE_CELLS]>>>,
    len: usize,
    bits: u8,
    /// Total single-cell read-modify-write operations performed.
    pub ops: u64,
}

/// The read-modify-write operations a stateful ALU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RegAluOp {
    /// `cell = value`.
    Write,
    /// `cell += value` (wrapping at cell width).
    Add,
    /// `cell = max(cell, value)`.
    Max,
    /// `cell = min(cell, value)`.
    Min,
}

impl RegisterFile {
    /// Zero-initialized instance of a definition. Allocates only the page
    /// table (one pointer-sized slot per 4096 cells); no cell storage.
    pub fn new(def: &RegisterDef) -> Self {
        let len = def.entries as usize;
        RegisterFile {
            pages: vec![None; len.div_ceil(PAGE_CELLS)],
            len,
            bits: def.bits,
            ops: 0,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the file has no cells (cannot happen via `RegisterDef`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of cell storage currently resident (allocated pages plus the
    /// page table). Lets tests assert the lazy layout holds: a fresh
    /// 10⁷-cell file costs ~20 KB of page table, not 80 MB of cells.
    pub fn resident_bytes(&self) -> usize {
        let pages = self.pages.iter().filter(|p| p.is_some()).count();
        pages * PAGE_CELLS * std::mem::size_of::<u64>()
            + self.pages.capacity() * std::mem::size_of::<Option<Box<[u64; PAGE_CELLS]>>>()
    }

    fn mask(&self, v: u64) -> u64 {
        if self.bits >= 64 {
            v
        } else {
            v & ((1u64 << self.bits) - 1)
        }
    }

    fn get(&self, idx: usize) -> u64 {
        if idx >= self.len {
            return 0;
        }
        match &self.pages[idx / PAGE_CELLS] {
            Some(p) => p[idx % PAGE_CELLS],
            None => 0,
        }
    }

    fn cell_mut(&mut self, idx: usize) -> &mut u64 {
        let page = self.pages[idx / PAGE_CELLS].get_or_insert_with(|| Box::new([0; PAGE_CELLS]));
        &mut page[idx % PAGE_CELLS]
    }

    /// Read a cell. Out-of-range indices read as 0 (and are counted as an
    /// op — hardware would wrap; we saturate to a benign value and let the
    /// program validator reject static out-of-range indices).
    pub fn read(&mut self, idx: u64) -> u64 {
        self.ops += 1;
        self.get(idx as usize)
    }

    /// Read without counting an op (stats/tests).
    pub fn peek(&self, idx: u64) -> u64 {
        self.get(idx as usize)
    }

    /// Perform a read-modify-write; returns the value the cell held
    /// *before* the operation (fetch-op semantics).
    pub fn rmw(&mut self, idx: u64, op: RegAluOp, value: u64) -> u64 {
        self.ops += 1;
        if idx as usize >= self.len {
            return 0;
        }
        let mask = if self.bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        let c = self.cell_mut(idx as usize);
        let old = *c;
        let v = match op {
            RegAluOp::Write => value,
            RegAluOp::Add => old.wrapping_add(value),
            RegAluOp::Max => old.max(value),
            RegAluOp::Min => old.min(value),
        };
        *c = v & mask;
        old
    }

    /// Reset every cell to zero (control-plane operation between epochs).
    /// Drops all resident pages, returning the file to its fresh footprint.
    pub fn clear(&mut self) {
        self.pages.iter_mut().for_each(|p| *p = None);
    }

    /// Control-plane state migration: take one cell's value and zero the
    /// cell (the source side of a shard move). Unlike [`RegisterFile::rmw`]
    /// this is not a data-plane operation, so it does not count toward
    /// `ops`. Out-of-range indices extract 0.
    pub fn extract(&mut self, idx: usize) -> u64 {
        if idx >= self.len {
            return 0;
        }
        match &mut self.pages[idx / PAGE_CELLS] {
            Some(p) => std::mem::take(&mut p[idx % PAGE_CELLS]),
            None => 0,
        }
    }

    /// Control-plane state migration: set one cell to a previously
    /// extracted value (the destination side of a shard move). Masked to
    /// the cell width; does not count toward `ops`. Out-of-range indices
    /// are ignored. Restoring zero into an unallocated page stays lazy.
    pub fn restore(&mut self, idx: usize, value: u64) {
        let masked = self.mask(value);
        if idx >= self.len {
            return;
        }
        if masked == 0 && self.pages[idx / PAGE_CELLS].is_none() {
            return;
        }
        *self.cell_mut(idx) = masked;
    }

    /// Control-plane state migration: extract every cell selected by
    /// `select`, returning `(index, value)` pairs for the nonzero ones.
    /// Selected cells are zeroed; does not count toward `ops`. Only
    /// resident pages are visited, so the cost is O(occupied), not O(cells).
    pub fn drain(&mut self, mut select: impl FnMut(usize) -> bool) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for (pi, page) in self.pages.iter_mut().enumerate() {
            let Some(p) = page else { continue };
            let base = pi * PAGE_CELLS;
            for (o, c) in p.iter_mut().enumerate() {
                if *c != 0 && select(base + o) {
                    out.push((base + o, std::mem::take(c)));
                }
            }
        }
        out
    }

    /// Snapshot of all cells (control-plane readout). Materializes a dense
    /// vector — intended for small registers and test assertions, not for
    /// million-cell files on the hot path.
    pub fn snapshot(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.len];
        for (pi, page) in self.pages.iter().enumerate() {
            let Some(p) = page else { continue };
            let base = pi * PAGE_CELLS;
            let n = PAGE_CELLS.min(self.len - base);
            out[base..base + n].copy_from_slice(&p[..n]);
        }
        out
    }

    /// Iterate the nonzero cells as `(index, value)` pairs, visiting only
    /// resident pages (control-plane readout at scale).
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.pages.iter().enumerate().flat_map(move |(pi, page)| {
            let base = pi * PAGE_CELLS;
            page.iter().flat_map(move |p| {
                p.iter()
                    .enumerate()
                    .filter(|(_, c)| **c != 0)
                    .map(move |(o, c)| (base + o, *c))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(entries: u32, bits: u8) -> RegisterFile {
        RegisterFile::new(&RegisterDef::new("r", entries, bits))
    }

    #[test]
    fn def_sizes() {
        let d = RegisterDef::new("agg", 1024, 32);
        assert_eq!(d.total_bits(), 32 * 1024);
    }

    #[test]
    fn rmw_semantics() {
        let mut f = file(8, 32);
        assert_eq!(f.rmw(3, RegAluOp::Write, 10), 0);
        assert_eq!(f.rmw(3, RegAluOp::Add, 5), 10);
        assert_eq!(f.peek(3), 15);
        assert_eq!(f.rmw(3, RegAluOp::Max, 7), 15);
        assert_eq!(f.peek(3), 15);
        assert_eq!(f.rmw(3, RegAluOp::Max, 99), 15);
        assert_eq!(f.peek(3), 99);
        assert_eq!(f.rmw(3, RegAluOp::Min, 50), 99);
        assert_eq!(f.peek(3), 50);
        assert_eq!(f.ops, 5);
    }

    #[test]
    fn arithmetic_wraps_at_cell_width() {
        let mut f = file(2, 8);
        f.rmw(0, RegAluOp::Write, 250);
        f.rmw(0, RegAluOp::Add, 10);
        assert_eq!(f.peek(0), (250 + 10) % 256);
        // Write is masked too.
        f.rmw(1, RegAluOp::Write, 0x1FF);
        assert_eq!(f.peek(1), 0xFF);
    }

    #[test]
    fn out_of_range_is_benign() {
        let mut f = file(4, 32);
        assert_eq!(f.read(99), 0);
        assert_eq!(f.rmw(99, RegAluOp::Add, 5), 0);
        assert_eq!(f.len(), 4);
        assert!(f.snapshot().iter().all(|&c| c == 0));
    }

    #[test]
    fn clear_resets() {
        let mut f = file(4, 64);
        for i in 0..4 {
            f.rmw(i, RegAluOp::Write, i + 1);
        }
        f.clear();
        assert!(f.snapshot().iter().all(|&c| c == 0));
    }

    #[test]
    fn extract_restore_round_trip() {
        let mut src = file(8, 32);
        let mut dst = file(8, 32);
        src.rmw(2, RegAluOp::Write, 7);
        src.rmw(5, RegAluOp::Write, 11);
        let ops_before = src.ops;
        let moved = src.drain(|i| i % 2 == 1);
        assert_eq!(moved, vec![(5, 11)]);
        assert_eq!(src.peek(5), 0, "drained cell is zeroed at the source");
        assert_eq!(src.peek(2), 7, "unselected cell untouched");
        for (i, v) in moved {
            dst.restore(i, v);
        }
        assert_eq!(dst.peek(5), 11);
        let v = src.extract(2);
        assert_eq!(v, 7);
        assert_eq!(src.peek(2), 0);
        dst.restore(2, v);
        assert_eq!(dst.peek(2), 7);
        assert_eq!(src.ops, ops_before, "migration is not a data-plane op");
        assert_eq!(dst.ops, 0, "restore is not a data-plane op");
        // Out-of-range moves are benign, like the data-plane accessors.
        assert_eq!(src.extract(99), 0);
        dst.restore(99, 5);
    }

    #[test]
    fn restore_masks_to_cell_width() {
        let mut f = file(2, 8);
        f.restore(0, 0x1FF);
        assert_eq!(f.peek(0), 0xFF);
    }

    #[test]
    fn full_width_cells() {
        let mut f = file(1, 64);
        f.rmw(0, RegAluOp::Write, u64::MAX);
        assert_eq!(f.peek(0), u64::MAX);
        f.rmw(0, RegAluOp::Add, 1);
        assert_eq!(f.peek(0), 0, "wraps at 64 bits");
    }

    #[test]
    fn ten_million_cells_allocate_lazily() {
        // A fresh 10⁷-cell file must cost page-table bytes (~20 KB), not
        // dense cell storage (80 MB) — the property that makes million-flow
        // register state affordable across every pipeline's RegionState.
        let mut f = file(10_000_000, 32);
        assert_eq!(f.len(), 10_000_000);
        let fresh = f.resident_bytes();
        assert!(
            fresh < 64 * 1024,
            "fresh footprint {fresh} B, want < 64 KiB"
        );
        // Touch a handful of scattered cells: one 32 KiB page each.
        for idx in [0u64, 5_000_000, 9_999_999] {
            f.rmw(idx, RegAluOp::Add, idx + 1);
        }
        assert_eq!(f.peek(5_000_000), 5_000_001);
        assert_eq!(f.peek(5_000_001), 0, "neighbors in a fresh page read 0");
        let touched = f.resident_bytes();
        assert!(
            touched < fresh + 4 * 32 * 1024,
            "3 touched pages cost {touched} B"
        );
        // clear() returns to the lazy footprint.
        f.clear();
        assert_eq!(f.resident_bytes(), fresh);
        assert_eq!(f.peek(5_000_000), 0);
    }

    #[test]
    fn paged_drain_and_snapshot_cross_page_boundaries() {
        let mut f = file(10_000, 32);
        // Straddle the page boundary at 4096.
        for idx in [4095u64, 4096, 8191, 8192, 9999] {
            f.rmw(idx, RegAluOp::Write, idx);
        }
        let snap = f.snapshot();
        assert_eq!(snap.len(), 10_000);
        assert_eq!(snap[4095], 4095);
        assert_eq!(snap[4096], 4096);
        assert_eq!(snap[9999], 9999);
        assert_eq!(snap.iter().filter(|&&c| c != 0).count(), 5);
        let nz: Vec<_> = f.iter_nonzero().collect();
        assert_eq!(
            nz,
            vec![
                (4095, 4095),
                (4096, 4096),
                (8191, 8191),
                (8192, 8192),
                (9999, 9999)
            ]
        );
        let moved = f.drain(|i| i >= 4096);
        assert_eq!(
            moved,
            vec![(4096, 4096), (8191, 8191), (8192, 8192), (9999, 9999)]
        );
        assert_eq!(f.peek(4095), 4095, "unselected cell untouched");
        assert_eq!(f.iter_nonzero().count(), 1);
    }

    #[test]
    fn restore_zero_stays_lazy() {
        let mut f = file(1_000_000, 32);
        let fresh = f.resident_bytes();
        f.restore(999_999, 0);
        assert_eq!(f.resident_bytes(), fresh, "restoring 0 allocates nothing");
        f.restore(999_999, 42);
        assert_eq!(f.peek(999_999), 42);
        assert!(f.resident_bytes() > fresh);
    }
}
