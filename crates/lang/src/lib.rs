//! # adcp-lang — match-action program IR and compiler
//!
//! A small, P4-flavoured intermediate representation for switch programs,
//! shared by the RMT baseline and the ADCP model:
//!
//! * [`header`] — packet formats with scalar **and array** fields (§3.2).
//! * [`parser`] — parse graphs and the parsing engine.
//! * [`phv`] — packet header vectors with array slots and intrinsic
//!   metadata (egress decision, central-pipeline choice, merge sort key).
//! * [`table`] / [`action`] / [`registers`] — match-action tables, action
//!   primitives (including wide register ops), stateful register files.
//! * [`program`] — complete programs + validation + a fluent builder.
//! * [`target`] — per-architecture resource models (Table 2/3 presets).
//! * [`fabric`] — one-big-switch → leaf–spine placement: phase-gated
//!   program splitting with key-range state ownership (SNAP/LOADER-style).
//! * [`compile`] — placement onto targets. Array tables replicate on RMT
//!   (Fig. 3) and share interconnected MAU memory on ADCP (Fig. 6);
//!   central tables lower to egress-pinning or recirculation on RMT
//!   (Fig. 2) and place natively on ADCP (§3.1).
//! * [`exec`] — the interpreter: per-pipeline region state with lane
//!   (SIMD-style) semantics for array tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod compile;
pub mod describe;
pub mod exec;
pub mod fabric;
pub mod header;
pub mod parser;
pub mod phv;
pub mod program;
pub mod protocols;
pub mod registers;
pub mod table;
pub mod target;

pub use action::{fold_hash, ActionDef, ActionOp, BinOp, Operand};
pub use compile::{
    compile, CentralImpl, CompileError, CompileOptions, PlacedTable, Placement, RegionPlan,
    RmtCentralStrategy, StagePlan,
};
pub use describe::{describe_placement, describe_program};
pub use exec::{RegionRunStats, RegionState};
pub use fabric::{place, FabricPlacement, FabricSpec, PlaceError};
pub use header::{deposit_bits, extract_bits, FieldDef, FieldId, FieldRef, HeaderDef, HeaderId};
pub use parser::{
    deparse, deparse_into, ParseError, ParseOutcome, ParserSpec, ParserState, StateId, Transition,
};
pub use phv::{Intrinsics, Phv, PhvLayout};
pub use program::{Program, ProgramBuilder, TmSpec, ValidateError};
pub use registers::{RegAluOp, RegId, RegisterDef, RegisterFile};
pub use table::{
    Entry, KeySpec, MatchKind, MatchValue, Region, TableDef, TableError, TableRuntime,
};
pub use target::{Arch, TargetModel};
