//! Match-action tables: definitions and runtime storage.
//!
//! A [`TableDef`] declares the match key, the candidate actions, and the
//! capacity; a [`TableRuntime`] holds the installed entries. A table keyed
//! on an **array field** performs one lookup per element ("lane"); whether
//! that costs one table copy per lane (RMT, Fig. 3) or one shared copy
//! across interconnected MAU memories (ADCP, Fig. 6) is decided by the
//! compiler, not here — the runtime semantics are identical.

use crate::action::ActionDef;
use crate::header::FieldRef;
use serde::Serialize;
use std::collections::HashMap;

/// Which pipeline region a table executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Region {
    /// Ingress pipelines (before the first TM).
    Ingress,
    /// Central pipelines — the ADCP global partitioned area (§3.1).
    /// On RMT targets the compiler must lower these tables somewhere else.
    Central,
    /// Egress pipelines (after the last TM).
    Egress,
}

/// How keys are matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MatchKind {
    /// Exact match (hash table in hardware).
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Value/mask with priority (TCAM).
    Ternary,
    /// Inclusive range match.
    Range,
}

/// The match key of a table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KeySpec {
    /// Field the key is read from. If it is an array field, the table is an
    /// array table and matches every element (one lane each).
    pub field: FieldRef,
    /// Match discipline.
    pub kind: MatchKind,
    /// Width of the key in bits (must equal the field element width).
    pub bits: u8,
}

/// A table declaration.
#[derive(Debug, Clone, Serialize)]
pub struct TableDef {
    /// Human-readable name.
    pub name: String,
    /// Region this table executes in.
    pub region: Region,
    /// Match key; `None` makes this an unconditional action stage (the
    /// default action always runs — used for pure compute steps).
    pub key: Option<KeySpec>,
    /// Candidate actions; entries refer to them by index.
    pub actions: Vec<ActionDef>,
    /// Action index executed on a miss (or always, for keyless tables).
    pub default_action: usize,
    /// Action-data parameters for the default action.
    pub default_params: Vec<u64>,
    /// Capacity in entries.
    pub size: u32,
}

impl TableDef {
    /// Estimated bits per installed entry: key bits plus action-selector and
    /// action-data overhead. This is the quantity that gets multiplied by
    /// the replication factor on RMT (Fig. 3).
    pub fn entry_bits(&self) -> u32 {
        let key_bits = self.key.map(|k| k.bits as u32).unwrap_or(0);
        // Match kind overhead: ternary stores a mask (2× key), LPM a length.
        let match_overhead = match self.key.map(|k| k.kind) {
            Some(MatchKind::Ternary) => key_bits,
            Some(MatchKind::Range) => key_bits, // second bound
            Some(MatchKind::Lpm) => 8,
            _ => 0,
        };
        // Action selector + 2 × 32b action data words, a typical budget.
        key_bits + match_overhead + 8 + 64
    }

    /// Total memory footprint of one copy of this table, in bits.
    pub fn mem_bits(&self) -> u64 {
        self.entry_bits() as u64 * self.size as u64
    }
}

/// The key pattern of one installed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MatchValue {
    /// Exact value.
    Exact(u64),
    /// Prefix of `len` bits (counted from the MSB of the key width).
    Lpm {
        /// Prefix value (low bits beyond `len` ignored).
        value: u64,
        /// Prefix length in bits.
        len: u8,
    },
    /// Value/mask with priority (higher wins).
    Ternary {
        /// Pattern.
        value: u64,
        /// Care mask (1 = must match).
        mask: u64,
        /// Priority; ties broken by insertion order.
        priority: u16,
    },
    /// Inclusive range.
    Range {
        /// Low bound.
        lo: u64,
        /// High bound.
        hi: u64,
    },
}

/// An installed entry: a key pattern bound to an action and its data.
#[derive(Debug, Clone, Serialize)]
pub struct Entry {
    /// Key pattern.
    pub value: MatchValue,
    /// Index into the table's action list.
    pub action: usize,
    /// Action-data parameters (`Operand::Param(i)`).
    pub params: Vec<u64>,
}

/// Errors installing entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The table is at capacity.
    Full {
        /// Capacity in entries.
        capacity: u32,
    },
    /// Entry kind does not match the table's declared `MatchKind`.
    KindMismatch,
    /// Action index out of range.
    BadAction {
        /// The offending index.
        action: usize,
    },
    /// A duplicate exact key.
    Duplicate,
}

/// Runtime storage for one table in one pipeline.
#[derive(Debug, Clone)]
pub struct TableRuntime {
    kind: Option<MatchKind>,
    key_bits: u8,
    capacity: u32,
    exact: HashMap<u64, Entry>,
    /// Non-exact entries, scanned in match order.
    scan: Vec<Entry>,
    /// Lookups performed (lanes count individually).
    pub lookups: u64,
    /// Lookups that hit an installed entry.
    pub hits: u64,
}

impl TableRuntime {
    /// Empty runtime for a definition.
    pub fn new(def: &TableDef) -> Self {
        TableRuntime {
            kind: def.key.map(|k| k.kind),
            key_bits: def.key.map(|k| k.bits).unwrap_or(0),
            capacity: def.size,
            exact: HashMap::new(),
            scan: Vec::new(),
            lookups: 0,
            hits: 0,
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.exact.len() + self.scan.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Install an entry, validating kind, capacity, and action index
    /// against the definition.
    pub fn insert(&mut self, def: &TableDef, e: Entry) -> Result<(), TableError> {
        if self.len() as u32 >= self.capacity {
            return Err(TableError::Full {
                capacity: self.capacity,
            });
        }
        if e.action >= def.actions.len() {
            return Err(TableError::BadAction { action: e.action });
        }
        let kind_ok = matches!(
            (self.kind, &e.value),
            (Some(MatchKind::Exact), MatchValue::Exact(_))
                | (Some(MatchKind::Lpm), MatchValue::Lpm { .. })
                | (Some(MatchKind::Ternary), MatchValue::Ternary { .. })
                | (Some(MatchKind::Range), MatchValue::Range { .. })
        );
        if !kind_ok {
            return Err(TableError::KindMismatch);
        }
        match e.value {
            MatchValue::Exact(k) => {
                if self.exact.contains_key(&k) {
                    return Err(TableError::Duplicate);
                }
                self.exact.insert(k, e);
            }
            _ => self.scan.push(e),
        }
        Ok(())
    }

    /// Look up one key (one lane). Returns the winning entry, if any.
    pub fn lookup(&mut self, key: u64) -> Option<&Entry> {
        self.lookups += 1;
        let kind = self.kind?;
        let found: Option<&Entry> = match kind {
            MatchKind::Exact => self.exact.get(&key),
            MatchKind::Lpm => {
                let w = self.key_bits as u32;
                self.scan
                    .iter()
                    .filter(|e| match e.value {
                        MatchValue::Lpm { value, len } => {
                            let len = len as u32;
                            if len == 0 {
                                true
                            } else if len >= w {
                                value == key
                            } else {
                                (key >> (w - len)) == (value >> (w - len))
                            }
                        }
                        _ => false,
                    })
                    .max_by_key(|e| match e.value {
                        MatchValue::Lpm { len, .. } => len,
                        _ => 0,
                    })
            }
            MatchKind::Ternary => self
                .scan
                .iter()
                .filter(|e| match e.value {
                    MatchValue::Ternary { value, mask, .. } => key & mask == value & mask,
                    _ => false,
                })
                .max_by_key(|e| match e.value {
                    MatchValue::Ternary { priority, .. } => priority,
                    _ => 0,
                }),
            MatchKind::Range => self.scan.iter().find(|e| match e.value {
                MatchValue::Range { lo, hi } => (lo..=hi).contains(&key),
                _ => false,
            }),
        };
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Hit fraction over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FieldId, HeaderId};

    fn def(kind: MatchKind, size: u32) -> TableDef {
        TableDef {
            name: "t".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: FieldRef::new(HeaderId(0), FieldId(0)),
                kind,
                bits: 32,
            }),
            actions: vec![ActionDef::nop(), ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size,
        }
    }

    fn entry(v: MatchValue, action: usize) -> Entry {
        Entry {
            value: v,
            action,
            params: vec![],
        }
    }

    #[test]
    fn exact_match_hits_and_misses() {
        let d = def(MatchKind::Exact, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Exact(42), 1)).unwrap();
        assert_eq!(t.lookup(42).map(|e| e.action), Some(1));
        assert!(t.lookup(43).is_none());
        assert_eq!(t.lookups, 2);
        assert_eq!(t.hits, 1);
        assert!((t.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_enforced() {
        let d = def(MatchKind::Exact, 2);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Exact(1), 0)).unwrap();
        t.insert(&d, entry(MatchValue::Exact(2), 0)).unwrap();
        assert_eq!(
            t.insert(&d, entry(MatchValue::Exact(3), 0)),
            Err(TableError::Full { capacity: 2 })
        );
    }

    #[test]
    fn duplicates_and_bad_actions_rejected() {
        let d = def(MatchKind::Exact, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Exact(1), 0)).unwrap();
        assert_eq!(
            t.insert(&d, entry(MatchValue::Exact(1), 0)),
            Err(TableError::Duplicate)
        );
        assert_eq!(
            t.insert(&d, entry(MatchValue::Exact(2), 7)),
            Err(TableError::BadAction { action: 7 })
        );
        assert_eq!(
            t.insert(&d, entry(MatchValue::Lpm { value: 0, len: 8 }, 0)),
            Err(TableError::KindMismatch)
        );
    }

    #[test]
    fn lpm_prefers_longest_prefix() {
        let d = def(MatchKind::Lpm, 8);
        let mut t = TableRuntime::new(&d);
        // 10.0.0.0/8 -> action 0; 10.1.0.0/16 -> action 1.
        t.insert(
            &d,
            entry(
                MatchValue::Lpm {
                    value: 0x0A00_0000,
                    len: 8,
                },
                0,
            ),
        )
        .unwrap();
        t.insert(
            &d,
            entry(
                MatchValue::Lpm {
                    value: 0x0A01_0000,
                    len: 16,
                },
                1,
            ),
        )
        .unwrap();
        assert_eq!(t.lookup(0x0A01_02_03).map(|e| e.action), Some(1));
        assert_eq!(t.lookup(0x0A02_0000).map(|e| e.action), Some(0));
        assert!(t.lookup(0x0B00_0000).is_none());
    }

    #[test]
    fn lpm_default_route_len_zero() {
        let d = def(MatchKind::Lpm, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Lpm { value: 0, len: 0 }, 1))
            .unwrap();
        assert_eq!(t.lookup(0xFFFF_FFFF).map(|e| e.action), Some(1));
    }

    #[test]
    fn ternary_respects_priority() {
        let d = def(MatchKind::Ternary, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(
            &d,
            entry(
                MatchValue::Ternary {
                    value: 0x10,
                    mask: 0xF0,
                    priority: 1,
                },
                0,
            ),
        )
        .unwrap();
        t.insert(
            &d,
            entry(
                MatchValue::Ternary {
                    value: 0x12,
                    mask: 0xFF,
                    priority: 9,
                },
                1,
            ),
        )
        .unwrap();
        assert_eq!(t.lookup(0x12).map(|e| e.action), Some(1), "higher priority");
        assert_eq!(t.lookup(0x15).map(|e| e.action), Some(0));
        assert!(t.lookup(0x25).is_none());
    }

    #[test]
    fn range_match_inclusive() {
        let d = def(MatchKind::Range, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Range { lo: 10, hi: 20 }, 1))
            .unwrap();
        assert!(t.lookup(9).is_none());
        assert_eq!(t.lookup(10).map(|e| e.action), Some(1));
        assert_eq!(t.lookup(20).map(|e| e.action), Some(1));
        assert!(t.lookup(21).is_none());
    }

    #[test]
    fn entry_bits_accounting() {
        let exact = def(MatchKind::Exact, 1024);
        assert_eq!(exact.entry_bits(), 32 + 8 + 64);
        let ternary = def(MatchKind::Ternary, 1024);
        assert_eq!(ternary.entry_bits(), 32 + 32 + 8 + 64);
        assert_eq!(exact.mem_bits(), 104 * 1024);
    }
}
