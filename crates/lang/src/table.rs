//! Match-action tables: definitions and runtime storage.
//!
//! A [`TableDef`] declares the match key, the candidate actions, and the
//! capacity; a [`TableRuntime`] holds the installed entries. A table keyed
//! on an **array field** performs one lookup per element ("lane"); whether
//! that costs one table copy per lane (RMT, Fig. 3) or one shared copy
//! across interconnected MAU memories (ADCP, Fig. 6) is decided by the
//! compiler, not here — the runtime semantics are identical.

use crate::action::ActionDef;
use crate::header::FieldRef;
use serde::Serialize;
use std::cell::Cell;
use std::collections::HashMap;

/// Which pipeline region a table executes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Region {
    /// Ingress pipelines (before the first TM).
    Ingress,
    /// Central pipelines — the ADCP global partitioned area (§3.1).
    /// On RMT targets the compiler must lower these tables somewhere else.
    Central,
    /// Egress pipelines (after the last TM).
    Egress,
}

/// How keys are matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MatchKind {
    /// Exact match (hash table in hardware).
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Value/mask with priority (TCAM).
    Ternary,
    /// Inclusive range match.
    Range,
}

/// The match key of a table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct KeySpec {
    /// Field the key is read from. If it is an array field, the table is an
    /// array table and matches every element (one lane each).
    pub field: FieldRef,
    /// Match discipline.
    pub kind: MatchKind,
    /// Width of the key in bits (must equal the field element width).
    pub bits: u8,
}

/// A table declaration.
#[derive(Debug, Clone, Serialize)]
pub struct TableDef {
    /// Human-readable name.
    pub name: String,
    /// Region this table executes in.
    pub region: Region,
    /// Match key; `None` makes this an unconditional action stage (the
    /// default action always runs — used for pure compute steps).
    pub key: Option<KeySpec>,
    /// Candidate actions; entries refer to them by index.
    pub actions: Vec<ActionDef>,
    /// Action index executed on a miss (or always, for keyless tables).
    pub default_action: usize,
    /// Action-data parameters for the default action.
    pub default_params: Vec<u64>,
    /// Capacity in entries.
    pub size: u32,
}

impl TableDef {
    /// Estimated bits per installed entry: key bits plus action-selector and
    /// action-data overhead. This is the quantity that gets multiplied by
    /// the replication factor on RMT (Fig. 3).
    pub fn entry_bits(&self) -> u32 {
        let key_bits = self.key.map(|k| k.bits as u32).unwrap_or(0);
        // Match kind overhead: ternary stores a mask (2× key), LPM a length.
        let match_overhead = match self.key.map(|k| k.kind) {
            Some(MatchKind::Ternary) => key_bits,
            Some(MatchKind::Range) => key_bits, // second bound
            Some(MatchKind::Lpm) => 8,
            _ => 0,
        };
        // Action selector + 2 × 32b action data words, a typical budget.
        key_bits + match_overhead + 8 + 64
    }

    /// Total memory footprint of one copy of this table, in bits.
    pub fn mem_bits(&self) -> u64 {
        self.entry_bits() as u64 * self.size as u64
    }
}

/// The key pattern of one installed entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MatchValue {
    /// Exact value.
    Exact(u64),
    /// Prefix of `len` bits (counted from the MSB of the key width).
    Lpm {
        /// Prefix value (low bits beyond `len` ignored).
        value: u64,
        /// Prefix length in bits.
        len: u8,
    },
    /// Value/mask with priority (higher wins).
    Ternary {
        /// Pattern.
        value: u64,
        /// Care mask (1 = must match).
        mask: u64,
        /// Priority; ties broken by insertion order.
        priority: u16,
    },
    /// Inclusive range.
    Range {
        /// Low bound.
        lo: u64,
        /// High bound.
        hi: u64,
    },
}

/// An installed entry: a key pattern bound to an action and its data.
#[derive(Debug, Clone, Serialize)]
pub struct Entry {
    /// Key pattern.
    pub value: MatchValue,
    /// Index into the table's action list.
    pub action: usize,
    /// Action-data parameters (`Operand::Param(i)`).
    pub params: Vec<u64>,
}

/// Errors installing entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The table is at capacity.
    Full {
        /// Capacity in entries.
        capacity: u32,
    },
    /// Entry kind does not match the table's declared `MatchKind`.
    KindMismatch,
    /// Action index out of range.
    BadAction {
        /// The offending index.
        action: usize,
    },
    /// A duplicate exact key.
    Duplicate,
    /// A range entry overlapping an already-installed interval. Ranges are
    /// kept in a sorted index; overlap would make "which entry wins"
    /// insertion-order dependent, so it is rejected at install time.
    Overlap {
        /// Low bound of the conflicting installed interval.
        lo: u64,
        /// High bound of the conflicting installed interval.
        hi: u64,
    },
    /// A control-plane call addressed a pipeline the target does not have
    /// (e.g. `install_central_at` beyond the central-pipe count).
    NoSuchPipe {
        /// The requested pipeline index.
        pipe: usize,
        /// How many pipelines of that kind exist.
        have: usize,
    },
}

/// Runtime storage for one table in one pipeline.
///
/// Entries are held in per-kind **indexes** rather than a linear scan list:
///
/// * Exact — a hash map keyed on the value.
/// * LPM — one exact map per installed prefix length, probed
///   longest-length-first; the first probe that hits is the longest match.
///   Re-installing an identical prefix replaces the previous entry.
/// * Ternary — entries sorted by (priority descending, insertion order
///   descending), scanned with first-match early exit, so the winner is
///   found without visiting lower-priority entries.
/// * Range — intervals sorted by low bound and validated non-overlapping at
///   install, so one `partition_point` binary search answers a lookup.
///
/// `lookup` takes `&self`; the hit/lookup counters live in [`Cell`]s so a
/// returned entry can borrow the table while stats still accumulate.
#[derive(Debug, Clone)]
pub struct TableRuntime {
    kind: Option<MatchKind>,
    key_bits: u8,
    capacity: u32,
    exact: HashMap<u64, Entry>,
    /// LPM index: (prefix length, normalized-prefix → entry), kept sorted by
    /// length descending so probes go longest-first.
    lpm: Vec<(u8, HashMap<u64, Entry>)>,
    /// Ternary index: (priority, insertion sequence, entry), sorted by
    /// (priority, sequence) descending. Later installs win priority ties.
    ternary: Vec<(u16, u64, Entry)>,
    ternary_seq: u64,
    /// Range index: non-overlapping intervals sorted by low bound.
    range: Vec<(u64, u64, Entry)>,
    /// Lookups performed (lanes count individually).
    lookups: Cell<u64>,
    /// Lookups that hit an installed entry.
    hits: Cell<u64>,
}

impl TableRuntime {
    /// Empty runtime for a definition.
    pub fn new(def: &TableDef) -> Self {
        TableRuntime {
            kind: def.key.map(|k| k.kind),
            key_bits: def.key.map(|k| k.bits).unwrap_or(0),
            capacity: def.size,
            exact: HashMap::new(),
            lpm: Vec::new(),
            ternary: Vec::new(),
            ternary_seq: 0,
            range: Vec::new(),
            lookups: Cell::new(0),
            hits: Cell::new(0),
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.exact.len()
            + self.lpm.iter().map(|(_, m)| m.len()).sum::<usize>()
            + self.ternary.len()
            + self.range.len()
    }

    /// True when no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bucket key an LPM entry/lookup uses for a given prefix length:
    /// the prefix bits only, so entries whose don't-care bits differ still
    /// land on the same slot.
    fn lpm_bucket_key(&self, value: u64, len: u8) -> u64 {
        let w = self.key_bits as u32;
        let len = len as u32;
        if len == 0 {
            0
        } else if len >= w {
            value
        } else {
            value >> (w - len)
        }
    }

    /// Install an entry, validating kind, capacity, and action index
    /// against the definition.
    pub fn insert(&mut self, def: &TableDef, e: Entry) -> Result<(), TableError> {
        if self.len() as u32 >= self.capacity {
            return Err(TableError::Full {
                capacity: self.capacity,
            });
        }
        if e.action >= def.actions.len() {
            return Err(TableError::BadAction { action: e.action });
        }
        let kind_ok = matches!(
            (self.kind, &e.value),
            (Some(MatchKind::Exact), MatchValue::Exact(_))
                | (Some(MatchKind::Lpm), MatchValue::Lpm { .. })
                | (Some(MatchKind::Ternary), MatchValue::Ternary { .. })
                | (Some(MatchKind::Range), MatchValue::Range { .. })
        );
        if !kind_ok {
            return Err(TableError::KindMismatch);
        }
        match e.value {
            MatchValue::Exact(k) => {
                if self.exact.contains_key(&k) {
                    return Err(TableError::Duplicate);
                }
                self.exact.insert(k, e);
            }
            MatchValue::Lpm { value, len } => {
                let bk = self.lpm_bucket_key(value, len);
                match self.lpm.iter_mut().find(|(l, _)| *l == len) {
                    Some((_, m)) => {
                        m.insert(bk, e);
                    }
                    None => {
                        let mut m = HashMap::new();
                        m.insert(bk, e);
                        // Keep lengths sorted descending: probe order is
                        // longest-first, so the first hit is the answer.
                        let pos = self.lpm.partition_point(|(l, _)| *l > len);
                        self.lpm.insert(pos, (len, m));
                    }
                }
            }
            MatchValue::Ternary { priority, .. } => {
                let seq = self.ternary_seq;
                self.ternary_seq += 1;
                // Sorted by (priority, seq) descending; later installs win
                // priority ties (matching the old last-max-wins scan).
                let pos = self
                    .ternary
                    .partition_point(|(p, s, _)| (*p, *s) > (priority, seq));
                self.ternary.insert(pos, (priority, seq, e));
            }
            MatchValue::Range { lo, hi } => {
                let pos = self.range.partition_point(|(l, _, _)| *l < lo);
                // Overlap check against both neighbors in the sorted order.
                if let Some(&(plo, phi, _)) = pos.checked_sub(1).and_then(|i| self.range.get(i)) {
                    if phi >= lo {
                        return Err(TableError::Overlap { lo: plo, hi: phi });
                    }
                }
                if let Some(&(nlo, nhi, _)) = self.range.get(pos) {
                    if nlo <= hi {
                        return Err(TableError::Overlap { lo: nlo, hi: nhi });
                    }
                }
                self.range.insert(pos, (lo, hi, e));
            }
        }
        Ok(())
    }

    /// Look up one key (one lane). Returns the winning entry, if any.
    pub fn lookup(&self, key: u64) -> Option<&Entry> {
        self.lookups.set(self.lookups.get() + 1);
        let kind = self.kind?;
        let found: Option<&Entry> = match kind {
            MatchKind::Exact => self.exact.get(&key),
            MatchKind::Lpm => self
                .lpm
                .iter()
                .find_map(|(len, m)| m.get(&self.lpm_bucket_key(key, *len))),
            MatchKind::Ternary => self.ternary.iter().find_map(|(_, _, e)| match e.value {
                MatchValue::Ternary { value, mask, .. } if key & mask == value & mask => Some(e),
                _ => None,
            }),
            MatchKind::Range => {
                let i = self.range.partition_point(|(lo, _, _)| *lo <= key);
                i.checked_sub(1)
                    .and_then(|i| self.range.get(i))
                    .filter(|(_, hi, _)| *hi >= key)
                    .map(|(_, _, e)| e)
            }
        };
        if found.is_some() {
            self.hits.set(self.hits.get() + 1);
        }
        found
    }

    /// Lookups performed so far (lanes count individually).
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Lookups that hit an installed entry.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Hit fraction over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups.get() == 0 {
            0.0
        } else {
            self.hits.get() as f64 / self.lookups.get() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FieldId, HeaderId};

    fn def(kind: MatchKind, size: u32) -> TableDef {
        TableDef {
            name: "t".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: FieldRef::new(HeaderId(0), FieldId(0)),
                kind,
                bits: 32,
            }),
            actions: vec![ActionDef::nop(), ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size,
        }
    }

    fn entry(v: MatchValue, action: usize) -> Entry {
        Entry {
            value: v,
            action,
            params: vec![],
        }
    }

    #[test]
    fn exact_match_hits_and_misses() {
        let d = def(MatchKind::Exact, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Exact(42), 1)).unwrap();
        assert_eq!(t.lookup(42).map(|e| e.action), Some(1));
        assert!(t.lookup(43).is_none());
        assert_eq!(t.lookups(), 2);
        assert_eq!(t.hits(), 1);
        assert!((t.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_enforced() {
        let d = def(MatchKind::Exact, 2);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Exact(1), 0)).unwrap();
        t.insert(&d, entry(MatchValue::Exact(2), 0)).unwrap();
        assert_eq!(
            t.insert(&d, entry(MatchValue::Exact(3), 0)),
            Err(TableError::Full { capacity: 2 })
        );
    }

    #[test]
    fn duplicates_and_bad_actions_rejected() {
        let d = def(MatchKind::Exact, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Exact(1), 0)).unwrap();
        assert_eq!(
            t.insert(&d, entry(MatchValue::Exact(1), 0)),
            Err(TableError::Duplicate)
        );
        assert_eq!(
            t.insert(&d, entry(MatchValue::Exact(2), 7)),
            Err(TableError::BadAction { action: 7 })
        );
        assert_eq!(
            t.insert(&d, entry(MatchValue::Lpm { value: 0, len: 8 }, 0)),
            Err(TableError::KindMismatch)
        );
    }

    #[test]
    fn lpm_prefers_longest_prefix() {
        let d = def(MatchKind::Lpm, 8);
        let mut t = TableRuntime::new(&d);
        // 10.0.0.0/8 -> action 0; 10.1.0.0/16 -> action 1.
        t.insert(
            &d,
            entry(
                MatchValue::Lpm {
                    value: 0x0A00_0000,
                    len: 8,
                },
                0,
            ),
        )
        .unwrap();
        t.insert(
            &d,
            entry(
                MatchValue::Lpm {
                    value: 0x0A01_0000,
                    len: 16,
                },
                1,
            ),
        )
        .unwrap();
        assert_eq!(t.lookup(0x0A01_0203).map(|e| e.action), Some(1));
        assert_eq!(t.lookup(0x0A02_0000).map(|e| e.action), Some(0));
        assert!(t.lookup(0x0B00_0000).is_none());
    }

    #[test]
    fn lpm_default_route_len_zero() {
        let d = def(MatchKind::Lpm, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Lpm { value: 0, len: 0 }, 1))
            .unwrap();
        assert_eq!(t.lookup(0xFFFF_FFFF).map(|e| e.action), Some(1));
    }

    #[test]
    fn ternary_respects_priority() {
        let d = def(MatchKind::Ternary, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(
            &d,
            entry(
                MatchValue::Ternary {
                    value: 0x10,
                    mask: 0xF0,
                    priority: 1,
                },
                0,
            ),
        )
        .unwrap();
        t.insert(
            &d,
            entry(
                MatchValue::Ternary {
                    value: 0x12,
                    mask: 0xFF,
                    priority: 9,
                },
                1,
            ),
        )
        .unwrap();
        assert_eq!(t.lookup(0x12).map(|e| e.action), Some(1), "higher priority");
        assert_eq!(t.lookup(0x15).map(|e| e.action), Some(0));
        assert!(t.lookup(0x25).is_none());
    }

    #[test]
    fn range_match_inclusive() {
        let d = def(MatchKind::Range, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Range { lo: 10, hi: 20 }, 1))
            .unwrap();
        assert!(t.lookup(9).is_none());
        assert_eq!(t.lookup(10).map(|e| e.action), Some(1));
        assert_eq!(t.lookup(20).map(|e| e.action), Some(1));
        assert!(t.lookup(21).is_none());
    }

    #[test]
    fn overlapping_ranges_rejected() {
        let d = def(MatchKind::Range, 8);
        let mut t = TableRuntime::new(&d);
        t.insert(&d, entry(MatchValue::Range { lo: 10, hi: 20 }, 0))
            .unwrap();
        t.insert(&d, entry(MatchValue::Range { lo: 30, hi: 40 }, 0))
            .unwrap();
        // Overlaps the first interval from either side, or spans both.
        for (lo, hi) in [(20, 25), (5, 10), (15, 18), (0, 100)] {
            assert!(
                matches!(
                    t.insert(&d, entry(MatchValue::Range { lo, hi }, 0)),
                    Err(TableError::Overlap { .. })
                ),
                "[{lo}, {hi}] should be rejected"
            );
        }
        // Touching but disjoint is fine.
        t.insert(&d, entry(MatchValue::Range { lo: 21, hi: 29 }, 0))
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(25).map(|e| e.action), Some(0));
    }

    #[test]
    fn lpm_equal_length_reinstall_replaces() {
        let d = def(MatchKind::Lpm, 8);
        let mut t = TableRuntime::new(&d);
        // Same /8 prefix (don't-care bits differ): the second install
        // replaces the first, mirroring the old scan's last-wins tie-break.
        t.insert(
            &d,
            entry(
                MatchValue::Lpm {
                    value: 0x0A00_0000,
                    len: 8,
                },
                0,
            ),
        )
        .unwrap();
        t.insert(
            &d,
            entry(
                MatchValue::Lpm {
                    value: 0x0A00_0001,
                    len: 8,
                },
                1,
            ),
        )
        .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(0x0A33_4455).map(|e| e.action), Some(1));
    }

    #[test]
    fn entry_bits_accounting() {
        let exact = def(MatchKind::Exact, 1024);
        assert_eq!(exact.entry_bits(), 32 + 8 + 64);
        let ternary = def(MatchKind::Ternary, 1024);
        assert_eq!(ternary.entry_bits(), 32 + 32 + 8 + 64);
        assert_eq!(exact.mem_bits(), 104 * 1024);
    }
}
