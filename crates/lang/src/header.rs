//! Header type definitions and bit-level field extraction.
//!
//! A switch program declares the packet formats it understands as
//! [`HeaderDef`]s: named sequences of fixed-width fields, where a field may
//! be a scalar or an **array** of `count` equal-width elements. Array fields
//! are the §3.2 hook: a packet that carries eight keys declares
//! `keys: 8 × 32b` and the ADCP target matches all eight against one table.
//!
//! Fields are packed big-endian, most-significant bit first, in declaration
//! order — the classic network wire format.

use serde::Serialize;
use std::fmt;

/// Identifies a declared header type within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct HeaderId(pub u16);

/// Identifies a field within a header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct FieldId(pub u16);

/// A fully qualified field reference: header + field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct FieldRef {
    /// The header the field belongs to.
    pub header: HeaderId,
    /// The field within that header.
    pub field: FieldId,
}

impl FieldRef {
    /// Shorthand constructor.
    pub fn new(header: HeaderId, field: FieldId) -> Self {
        FieldRef { header, field }
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}.f{}", self.header.0, self.field.0)
    }
}

/// One field in a header: `count` elements of `bits` each.
///
/// `count == 1` is a scalar; `count > 1` is an array field (§3.2).
#[derive(Debug, Clone, Serialize)]
pub struct FieldDef {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Width of one element, in bits (1..=64).
    pub bits: u8,
    /// Number of elements.
    pub count: u16,
}

impl FieldDef {
    /// A scalar field.
    pub fn scalar(name: impl Into<String>, bits: u8) -> Self {
        FieldDef {
            name: name.into(),
            bits,
            count: 1,
        }
    }

    /// An array field of `count` elements.
    pub fn array(name: impl Into<String>, bits: u8, count: u16) -> Self {
        FieldDef {
            name: name.into(),
            bits,
            count,
        }
    }

    /// Total width of the field (all elements), in bits.
    pub fn total_bits(&self) -> u32 {
        self.bits as u32 * self.count as u32
    }

    /// Is this an array field?
    pub fn is_array(&self) -> bool {
        self.count > 1
    }
}

/// A header type: an ordered list of fields.
#[derive(Debug, Clone, Serialize)]
pub struct HeaderDef {
    /// Human-readable name.
    pub name: String,
    /// Fields in wire order.
    pub fields: Vec<FieldDef>,
}

impl HeaderDef {
    /// New header with the given fields.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDef>) -> Self {
        let h = HeaderDef {
            name: name.into(),
            fields,
        };
        for f in &h.fields {
            assert!(
                (1..=64).contains(&f.bits),
                "field {} width {} out of range",
                f.name,
                f.bits
            );
            assert!(f.count >= 1, "field {} has zero count", f.name);
        }
        h
    }

    /// Total header width in bits.
    pub fn total_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.total_bits()).sum()
    }

    /// Total header width in whole bytes (headers must be byte-aligned to be
    /// parsed; enforce at program validation).
    pub fn total_bytes(&self) -> u32 {
        self.total_bits().div_ceil(8)
    }

    /// Bit offset of element `elem` of field `fid` from the header start.
    pub fn bit_offset(&self, fid: FieldId, elem: u16) -> u32 {
        let mut off = 0u32;
        for (i, f) in self.fields.iter().enumerate() {
            if i == fid.0 as usize {
                assert!(elem < f.count, "element {} out of range", elem);
                return off + f.bits as u32 * elem as u32;
            }
            off += f.total_bits();
        }
        panic!("field {:?} not in header {}", fid, self.name);
    }

    /// Look up a field by name (test/builder convenience).
    pub fn field_named(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| FieldId(i as u16))
    }

    /// The field definition for `fid`.
    pub fn field(&self, fid: FieldId) -> &FieldDef {
        &self.fields[fid.0 as usize]
    }
}

/// Extract `bits` bits starting at `bit_off` from `data`, big-endian.
///
/// Returns `None` if the span runs past the end of `data`.
pub fn extract_bits(data: &[u8], bit_off: u32, bits: u8) -> Option<u64> {
    let end_bit = bit_off as u64 + bits as u64;
    if end_bit > data.len() as u64 * 8 {
        return None;
    }
    let mut v: u64 = 0;
    for i in 0..bits as u32 {
        let b = bit_off + i;
        let byte = data[(b / 8) as usize];
        let bit = (byte >> (7 - (b % 8))) & 1;
        v = (v << 1) | bit as u64;
    }
    Some(v)
}

/// Write `bits` bits of `value` at `bit_off` into `data`, big-endian.
///
/// Returns `false` (and leaves `data` untouched) if the span does not fit.
pub fn deposit_bits(data: &mut [u8], bit_off: u32, bits: u8, value: u64) -> bool {
    let end_bit = bit_off as u64 + bits as u64;
    if end_bit > data.len() as u64 * 8 {
        return false;
    }
    for i in 0..bits as u32 {
        let b = bit_off + i;
        let shift = bits as u32 - 1 - i;
        let bit = ((value >> shift) & 1) as u8;
        let byte = &mut data[(b / 8) as usize];
        let mask = 1u8 << (7 - (b % 8));
        if bit == 1 {
            *byte |= mask;
        } else {
            *byte &= !mask;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv_header() -> HeaderDef {
        HeaderDef::new(
            "kv",
            vec![
                FieldDef::scalar("op", 8),
                FieldDef::scalar("seq", 32),
                FieldDef::array("keys", 32, 4),
                FieldDef::array("vals", 32, 4),
            ],
        )
    }

    #[test]
    fn header_sizes() {
        let h = kv_header();
        assert_eq!(h.total_bits(), 8 + 32 + 128 + 128);
        assert_eq!(h.total_bytes(), 37);
        assert!(h.field(FieldId(2)).is_array());
        assert!(!h.field(FieldId(0)).is_array());
    }

    #[test]
    fn bit_offsets() {
        let h = kv_header();
        assert_eq!(h.bit_offset(FieldId(0), 0), 0);
        assert_eq!(h.bit_offset(FieldId(1), 0), 8);
        assert_eq!(h.bit_offset(FieldId(2), 0), 40);
        assert_eq!(h.bit_offset(FieldId(2), 3), 40 + 96);
        assert_eq!(h.bit_offset(FieldId(3), 0), 168);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_offset_bad_element_panics() {
        kv_header().bit_offset(FieldId(2), 4);
    }

    #[test]
    fn extract_byte_aligned() {
        let data = [0xDE, 0xAD, 0xBE, 0xEF];
        assert_eq!(extract_bits(&data, 0, 8), Some(0xDE));
        assert_eq!(extract_bits(&data, 8, 16), Some(0xADBE));
        assert_eq!(extract_bits(&data, 0, 32), Some(0xDEADBEEF));
    }

    #[test]
    fn extract_unaligned() {
        // 0b1101_1110 1010_1101: bits 4..12 = 0b1110_1010 = 0xEA
        let data = [0xDE, 0xAD];
        assert_eq!(extract_bits(&data, 4, 8), Some(0xEA));
        assert_eq!(extract_bits(&data, 1, 3), Some(0b101));
    }

    #[test]
    fn extract_past_end_is_none() {
        let data = [0xFF];
        assert_eq!(extract_bits(&data, 0, 9), None);
        assert_eq!(extract_bits(&data, 8, 1), None);
        assert_eq!(extract_bits(&data, 0, 8), Some(0xFF));
    }

    #[test]
    fn deposit_then_extract_roundtrip() {
        let mut data = [0u8; 8];
        assert!(deposit_bits(&mut data, 5, 13, 0x1ABC & 0x1FFF));
        assert_eq!(extract_bits(&data, 5, 13), Some(0x1ABC & 0x1FFF));
        // Surrounding bits untouched.
        assert_eq!(extract_bits(&data, 0, 5), Some(0));
        assert!(deposit_bits(&mut data, 0, 5, 0b10101));
        assert_eq!(extract_bits(&data, 0, 5), Some(0b10101));
        assert_eq!(extract_bits(&data, 5, 13), Some(0x1ABC & 0x1FFF));
    }

    #[test]
    fn deposit_past_end_fails_cleanly() {
        let mut data = [0u8; 2];
        assert!(!deposit_bits(&mut data, 10, 8, 0xFF));
        assert_eq!(data, [0, 0]);
    }

    #[test]
    fn field_lookup_by_name() {
        let h = kv_header();
        assert_eq!(h.field_named("seq"), Some(FieldId(1)));
        assert_eq!(h.field_named("nope"), None);
    }
}
