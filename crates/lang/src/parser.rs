//! Programmable packet parsing.
//!
//! A [`ParserSpec`] is a parse graph in the style of Gibb et al. (the
//! paper's reference [11], which it cites when noting that "parsing
//! efficiency is linked to the complexity of structure within packets
//! rather than port speed"): states extract one header each and select the
//! next state from a field of the header just extracted.
//!
//! The engine produces a [`Phv`] and reports the number of states visited —
//! the parse *depth* — which the timing models use, since parse latency
//! scales with structural depth, not port speed.

use crate::header::{extract_bits, FieldId, HeaderDef, HeaderId};
use crate::phv::{Phv, PhvLayout};
use serde::Serialize;

/// Identifies a parser state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StateId(pub u16);

/// Transition out of a parser state.
#[derive(Debug, Clone, Serialize)]
pub enum Transition {
    /// Parsing is complete; hand the PHV to the pipeline.
    Accept,
    /// Unconditionally continue to another state.
    Goto(StateId),
    /// Select the next state by the value of a field extracted in this
    /// state. Unmatched values fall through to `default`.
    Select {
        /// Field (of this state's header) the decision is made on.
        field: FieldId,
        /// (value, next-state) cases.
        cases: Vec<(u64, StateId)>,
        /// Where to go when no case matches (`None` = reject the packet).
        default: Option<StateId>,
    },
}

/// One parser state: extract a header, then transition.
#[derive(Debug, Clone, Serialize)]
pub struct ParserState {
    /// Header type extracted when this state runs.
    pub extracts: HeaderId,
    /// What happens next.
    pub transition: Transition,
}

/// A complete parse graph. State 0 is the start state.
#[derive(Debug, Clone, Serialize)]
pub struct ParserSpec {
    /// All states, indexed by [`StateId`].
    pub states: Vec<ParserState>,
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Packet too short for the header a state wanted to extract.
    Truncated {
        /// The state that failed.
        state: StateId,
        /// Bytes that were available.
        available: usize,
        /// Bytes the header needed.
        needed: usize,
    },
    /// A select found no matching case and no default.
    NoTransition {
        /// The state that rejected.
        state: StateId,
        /// The selector value seen.
        value: u64,
    },
    /// The graph looped longer than the state count (malformed spec).
    DepthExceeded,
}

/// A successful parse.
#[derive(Debug)]
pub struct ParseOutcome {
    /// Extracted field values.
    pub phv: Phv,
    /// Bytes of the packet consumed by headers (the rest is payload).
    pub consumed: usize,
    /// Number of parser states visited — the structural depth that parse
    /// timing scales with.
    pub depth: u32,
    /// Headers in extraction (wire) order — what the deparser replays.
    pub extracted: Vec<HeaderId>,
}

/// Reassemble a packet from a (possibly modified) PHV: the extracted
/// headers are re-serialized in wire order, followed by the untouched
/// payload. This is the deparser at the end of each pipeline.
pub fn deparse(
    headers: &[HeaderDef],
    layout: &PhvLayout,
    phv: &Phv,
    extracted: &[HeaderId],
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::new();
    deparse_into(&mut out, headers, layout, phv, extracted, payload);
    out
}

/// [`deparse`] into a caller-supplied buffer (cleared first), so hot paths
/// can recycle frame buffers instead of allocating one per traversal.
pub fn deparse_into(
    out: &mut Vec<u8>,
    headers: &[HeaderDef],
    layout: &PhvLayout,
    phv: &Phv,
    extracted: &[HeaderId],
    payload: &[u8],
) {
    let hdr_bytes: usize = extracted
        .iter()
        .map(|h| headers[h.0 as usize].total_bytes() as usize)
        .sum();
    out.clear();
    out.resize(hdr_bytes, 0);
    let mut base = 0u32;
    for h in extracted {
        let hdr = &headers[h.0 as usize];
        for (fi, f) in hdr.fields.iter().enumerate() {
            let fid = FieldId(fi as u16);
            for e in 0..f.count {
                let off = base + hdr.bit_offset(fid, e);
                let v = phv.get_elem(layout, crate::header::FieldRef::new(*h, fid), e as usize);
                let ok = crate::header::deposit_bits(out, off, f.bits, v);
                debug_assert!(ok, "deparse buffer sized from the same headers");
            }
        }
        base += hdr.total_bits();
    }
    out.extend_from_slice(payload);
}

impl ParserSpec {
    /// A trivial spec: extract exactly one header type and accept.
    pub fn single(header: HeaderId) -> Self {
        ParserSpec {
            states: vec![ParserState {
                extracts: header,
                transition: Transition::Accept,
            }],
        }
    }

    /// The maximum depth of the graph (`states.len()` is a safe bound for
    /// acyclic graphs; cyclic specs are caught at runtime).
    pub fn max_depth(&self) -> u32 {
        self.states.len() as u32
    }

    /// Run the parser over `data`, extracting into a fresh PHV.
    pub fn parse(
        &self,
        headers: &[HeaderDef],
        layout: &PhvLayout,
        data: &[u8],
    ) -> Result<ParseOutcome, ParseError> {
        self.parse_reusing(headers, layout, data, Phv::empty(), Vec::new())
    }

    /// [`ParserSpec::parse`], but recycling a scratch PHV and extraction
    /// list from a previous outcome — hot paths avoid the per-traversal
    /// field-vector allocations. The scratch values are reshaped to the
    /// layout's zero state first, so any previous contents are irrelevant.
    pub fn parse_reusing(
        &self,
        headers: &[HeaderDef],
        layout: &PhvLayout,
        data: &[u8],
        mut phv: Phv,
        mut extracted: Vec<HeaderId>,
    ) -> Result<ParseOutcome, ParseError> {
        layout.reinstantiate(&mut phv);
        extracted.clear();
        let mut offset = 0usize;
        let mut state = StateId(0);
        let mut depth = 0u32;
        loop {
            depth += 1;
            if depth > self.states.len() as u32 {
                return Err(ParseError::DepthExceeded);
            }
            let st = &self.states[state.0 as usize];
            let hdr = &headers[st.extracts.0 as usize];
            let hdr_bytes = hdr.total_bytes() as usize;
            if offset + hdr_bytes > data.len() {
                return Err(ParseError::Truncated {
                    state,
                    available: data.len().saturating_sub(offset),
                    needed: hdr_bytes,
                });
            }
            // Extract every field (every element of array fields).
            let base = offset as u32 * 8;
            for (fi, f) in hdr.fields.iter().enumerate() {
                let fid = FieldId(fi as u16);
                for e in 0..f.count {
                    let off = base + hdr.bit_offset(fid, e);
                    let v = extract_bits(data, off, f.bits).expect("bounds checked above");
                    phv.set_elem(
                        layout,
                        crate::header::FieldRef::new(st.extracts, fid),
                        e as usize,
                        v,
                    );
                }
            }
            phv.set_valid(st.extracts);
            extracted.push(st.extracts);
            offset += hdr_bytes;
            match &st.transition {
                Transition::Accept => {
                    return Ok(ParseOutcome {
                        phv,
                        consumed: offset,
                        depth,
                        extracted,
                    })
                }
                Transition::Goto(next) => state = *next,
                Transition::Select {
                    field,
                    cases,
                    default,
                } => {
                    let v = phv.get(layout, crate::header::FieldRef::new(st.extracts, *field));
                    match cases.iter().find(|(cv, _)| *cv == v) {
                        Some((_, next)) => state = *next,
                        None => match default {
                            Some(next) => state = *next,
                            None => return Err(ParseError::NoTransition { state, value: v }),
                        },
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FieldDef, FieldRef};

    /// eth(type) -> [0x0800 -> ipv4ish -> accept | 0x88B5 -> kv -> accept]
    fn spec() -> (Vec<HeaderDef>, PhvLayout, ParserSpec) {
        let headers = vec![
            HeaderDef::new(
                "eth",
                vec![
                    FieldDef::scalar("dst", 48),
                    FieldDef::scalar("src", 48),
                    FieldDef::scalar("type", 16),
                ],
            ),
            HeaderDef::new(
                "ip",
                vec![FieldDef::scalar("proto", 8), FieldDef::scalar("addr", 32)],
            ),
            HeaderDef::new(
                "kv",
                vec![FieldDef::scalar("op", 8), FieldDef::array("keys", 16, 4)],
            ),
        ];
        let layout = PhvLayout::build(&headers);
        let spec = ParserSpec {
            states: vec![
                ParserState {
                    extracts: HeaderId(0),
                    transition: Transition::Select {
                        field: FieldId(2),
                        cases: vec![(0x0800, StateId(1)), (0x88B5, StateId(2))],
                        default: None,
                    },
                },
                ParserState {
                    extracts: HeaderId(1),
                    transition: Transition::Accept,
                },
                ParserState {
                    extracts: HeaderId(2),
                    transition: Transition::Accept,
                },
            ],
        };
        (headers, layout, spec)
    }

    fn eth_frame(ethertype: u16, rest: &[u8]) -> Vec<u8> {
        let mut v = vec![0u8; 12];
        v.extend_from_slice(&ethertype.to_be_bytes());
        v.extend_from_slice(rest);
        v
    }

    #[test]
    fn parses_ip_branch() {
        let (headers, layout, spec) = spec();
        let data = eth_frame(0x0800, &[6, 10, 0, 0, 1, 99, 99]);
        let out = spec.parse(&headers, &layout, &data).unwrap();
        assert_eq!(out.depth, 2);
        assert_eq!(out.consumed, 14 + 5);
        assert!(out.phv.is_valid(HeaderId(1)));
        assert!(!out.phv.is_valid(HeaderId(2)));
        assert_eq!(
            out.phv.get(&layout, FieldRef::new(HeaderId(1), FieldId(0))),
            6
        );
        assert_eq!(
            out.phv.get(&layout, FieldRef::new(HeaderId(1), FieldId(1))),
            0x0A000001
        );
    }

    #[test]
    fn parses_kv_branch_with_array() {
        let (headers, layout, spec) = spec();
        let mut kv = vec![0x01u8]; // op
        for k in [100u16, 200, 300, 400] {
            kv.extend_from_slice(&k.to_be_bytes());
        }
        let data = eth_frame(0x88B5, &kv);
        let out = spec.parse(&headers, &layout, &data).unwrap();
        assert!(out.phv.is_valid(HeaderId(2)));
        let keys = out
            .phv
            .get_array(&layout, FieldRef::new(HeaderId(2), FieldId(1)));
        assert_eq!(keys, &[100, 200, 300, 400]);
    }

    #[test]
    fn unknown_ethertype_rejected() {
        let (headers, layout, spec) = spec();
        let data = eth_frame(0x9999, &[0; 16]);
        match spec.parse(&headers, &layout, &data) {
            Err(ParseError::NoTransition { state, value }) => {
                assert_eq!(state, StateId(0));
                assert_eq!(value, 0x9999);
            }
            other => panic!("expected NoTransition, got {other:?}"),
        }
    }

    #[test]
    fn truncated_packet_rejected() {
        let (headers, layout, spec) = spec();
        let data = eth_frame(0x0800, &[6, 10]); // ip header needs 5 bytes
        match spec.parse(&headers, &layout, &data) {
            Err(ParseError::Truncated {
                available, needed, ..
            }) => {
                assert_eq!(available, 2);
                assert_eq!(needed, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn cyclic_graph_caught() {
        let headers = vec![HeaderDef::new("h", vec![FieldDef::scalar("x", 8)])];
        let layout = PhvLayout::build(&headers);
        let spec = ParserSpec {
            states: vec![ParserState {
                extracts: HeaderId(0),
                transition: Transition::Goto(StateId(0)),
            }],
        };
        let data = vec![0u8; 64];
        assert!(matches!(
            spec.parse(&headers, &layout, &data),
            Err(ParseError::DepthExceeded)
        ));
    }

    #[test]
    fn deparse_roundtrips_modified_fields() {
        let (headers, layout, spec) = spec();
        let mut kv = vec![0x01u8];
        for k in [100u16, 200, 300, 400] {
            kv.extend_from_slice(&k.to_be_bytes());
        }
        let mut data = eth_frame(0x88B5, &kv);
        data.extend_from_slice(&[0xAA, 0xBB]); // payload
        let out = spec.parse(&headers, &layout, &data).unwrap();
        let mut phv = out.phv;
        // Switch rewrites key lane 2.
        phv.set_elem(&layout, FieldRef::new(HeaderId(2), FieldId(1)), 2, 999);
        let rebuilt = deparse(
            &headers,
            &layout,
            &phv,
            &out.extracted,
            &data[out.consumed..],
        );
        assert_eq!(rebuilt.len(), data.len());
        // Re-parse the rebuilt frame: lane 2 is updated, others intact.
        let again = spec.parse(&headers, &layout, &rebuilt).unwrap();
        let keys = again
            .phv
            .get_array(&layout, FieldRef::new(HeaderId(2), FieldId(1)));
        assert_eq!(keys, &[100, 200, 999, 400]);
        // Payload preserved.
        assert_eq!(&rebuilt[rebuilt.len() - 2..], &[0xAA, 0xBB]);
    }

    #[test]
    fn single_spec_accepts_immediately() {
        let headers = vec![HeaderDef::new("h", vec![FieldDef::scalar("x", 32)])];
        let layout = PhvLayout::build(&headers);
        let spec = ParserSpec::single(HeaderId(0));
        let out = spec.parse(&headers, &layout, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(out.consumed, 4);
        assert_eq!(out.depth, 1);
        assert_eq!(spec.max_depth(), 1);
    }
}
