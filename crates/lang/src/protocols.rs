//! Canonical protocol headers and a realistic parse graph.
//!
//! The app programs in this repository use bespoke single-header formats
//! (which is what in-network-computing packets actually look like on the
//! wire inside a rack: an Ethernet type dispatching to an app header).
//! This module provides the standard framing around them — Ethernet II,
//! IPv4, UDP — and a builder that assembles the classic parse graph:
//!
//! ```text
//! ethernet --0x0800--> ipv4 --17--> udp --app_port--> <app header>
//!        \--app_ethertype------------------------------^
//! ```
//!
//! so programs can accept both raw-Ethernet app packets (the low-latency
//! path) and UDP-encapsulated ones (the routable path), like SwitchML does.

use crate::header::{FieldDef, HeaderDef, HeaderId};
use crate::parser::{ParserSpec, ParserState, StateId, Transition};
use crate::program::ProgramBuilder;

/// EtherType carried by raw app-on-Ethernet packets.
pub const APP_ETHERTYPE: u64 = 0x88B5; // IEEE local experimental
/// IPv4 protocol number for UDP.
pub const IPPROTO_UDP: u64 = 17;

/// Ethernet II: dst, src, ethertype.
pub fn ethernet() -> HeaderDef {
    HeaderDef::new(
        "ethernet",
        vec![
            FieldDef::scalar("dst", 48),
            FieldDef::scalar("src", 48),
            FieldDef::scalar("ethertype", 16),
        ],
    )
}

/// IPv4 (fixed 20-byte header; options unsupported, as on most ASIC
/// parsers' fast path).
pub fn ipv4() -> HeaderDef {
    HeaderDef::new(
        "ipv4",
        vec![
            FieldDef::scalar("version_ihl", 8),
            FieldDef::scalar("dscp_ecn", 8),
            FieldDef::scalar("total_len", 16),
            FieldDef::scalar("identification", 16),
            FieldDef::scalar("flags_frag", 16),
            FieldDef::scalar("ttl", 8),
            FieldDef::scalar("protocol", 8),
            FieldDef::scalar("checksum", 16),
            FieldDef::scalar("src", 32),
            FieldDef::scalar("dst", 32),
        ],
    )
}

/// UDP.
pub fn udp() -> HeaderDef {
    HeaderDef::new(
        "udp",
        vec![
            FieldDef::scalar("sport", 16),
            FieldDef::scalar("dport", 16),
            FieldDef::scalar("length", 16),
            FieldDef::scalar("checksum", 16),
        ],
    )
}

/// Metadata words per INT hop stamp (see [`int_hop`] for the layout).
pub const INT_HOP_FIELDS: usize = 6;

/// The INT shim a stamping switch would prepend to the app payload: how
/// many hop records follow, and how many further hops found the region
/// full (a real shim's remaining-hop-count reaching zero). The simulator
/// carries the equivalent state in packet metadata (`meta.int`) so that
/// delivered frames stay byte-identical across targets — this header pins
/// the canonical wire layout that state corresponds to.
pub fn int_shim() -> HeaderDef {
    HeaderDef::new(
        "int_shim",
        vec![
            FieldDef::scalar("hop_count", 8),
            FieldDef::scalar("truncated", 16),
        ],
    )
}

/// One INT hop record: stamping device, site code (which RX port /
/// pipeline / TM inside it), enter/exit timestamps in picoseconds, and
/// the TM queue depth and buffer occupancy observed at the hop. One of
/// these per hop follows the [`int_shim`], up to the region bound.
pub fn int_hop() -> HeaderDef {
    HeaderDef::new(
        "int_hop",
        vec![
            FieldDef::scalar("device", 16),
            FieldDef::scalar("site", 64),
            FieldDef::scalar("enter_ps", 64),
            FieldDef::scalar("exit_ps", 64),
            FieldDef::scalar("queue_depth", 32),
            FieldDef::scalar("buffer_cells", 64),
        ],
    )
}

/// Handles to the framing headers registered by [`standard_framing`].
#[derive(Debug, Clone, Copy)]
pub struct Framing {
    /// Ethernet header id.
    pub eth: HeaderId,
    /// IPv4 header id.
    pub ip: HeaderId,
    /// UDP header id.
    pub udp: HeaderId,
    /// The application header id the graph dispatches to.
    pub app: HeaderId,
}

/// Register ethernet/ipv4/udp around an app header and install the parse
/// graph: raw app EtherType and UDP `app_port` both reach the app header;
/// anything else is rejected (parse error → counted drop).
pub fn standard_framing(b: &mut ProgramBuilder, app_header: HeaderDef, app_port: u16) -> Framing {
    let eth = b.header(ethernet());
    let ip = b.header(ipv4());
    let udp_h = b.header(udp());
    let app = b.header(app_header);
    let spec = ParserSpec {
        states: vec![
            // 0: ethernet
            ParserState {
                extracts: eth,
                transition: Transition::Select {
                    field: crate::header::FieldId(2), // ethertype
                    cases: vec![(0x0800, StateId(1)), (APP_ETHERTYPE, StateId(3))],
                    default: None,
                },
            },
            // 1: ipv4
            ParserState {
                extracts: ip,
                transition: Transition::Select {
                    field: crate::header::FieldId(6), // protocol
                    cases: vec![(IPPROTO_UDP, StateId(2))],
                    default: None,
                },
            },
            // 2: udp
            ParserState {
                extracts: udp_h,
                transition: Transition::Select {
                    field: crate::header::FieldId(1), // dport
                    cases: vec![(app_port as u64, StateId(3))],
                    default: None,
                },
            },
            // 3: the application header
            ParserState {
                extracts: app,
                transition: Transition::Accept,
            },
        ],
    };
    b.parser(spec);
    Framing {
        eth,
        ip,
        udp: udp_h,
        app,
    }
}

/// Serialize an Ethernet frame carrying the app header directly.
pub fn raw_app_frame(app_bytes: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(14 + app_bytes.len());
    f.extend_from_slice(&[0u8; 12]); // dst+src
    f.extend_from_slice(&(APP_ETHERTYPE as u16).to_be_bytes());
    f.extend_from_slice(app_bytes);
    f
}

/// Serialize an Ethernet+IPv4+UDP frame carrying the app header.
pub fn udp_app_frame(app_port: u16, app_bytes: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(42 + app_bytes.len());
    f.extend_from_slice(&[0u8; 12]);
    f.extend_from_slice(&0x0800u16.to_be_bytes());
    // ipv4: version/ihl 0x45, then plausible fixed fields.
    f.push(0x45);
    f.push(0);
    f.extend_from_slice(&((20 + 8 + app_bytes.len()) as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0, 0, 0]); // id, flags/frag
    f.push(64); // ttl
    f.push(IPPROTO_UDP as u8);
    f.extend_from_slice(&[0, 0]); // checksum (unvalidated in the model)
    f.extend_from_slice(&[10, 0, 0, 1]);
    f.extend_from_slice(&[10, 0, 0, 2]);
    // udp
    f.extend_from_slice(&40_000u16.to_be_bytes());
    f.extend_from_slice(&app_port.to_be_bytes());
    f.extend_from_slice(&((8 + app_bytes.len()) as u16).to_be_bytes());
    f.extend_from_slice(&[0, 0]);
    f.extend_from_slice(app_bytes);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::FieldRef;
    use crate::phv::PhvLayout;

    fn setup() -> (
        Vec<HeaderDef>,
        crate::parser::ParserSpec,
        Framing,
        PhvLayout,
    ) {
        let mut b = ProgramBuilder::new("framed");
        let app = HeaderDef::new(
            "app",
            vec![
                FieldDef::scalar("op", 8),
                FieldDef::scalar("key", 32),
                FieldDef::scalar("pad", 8),
            ],
        );
        let framing = standard_framing(&mut b, app, 9999);
        let p = b.build();
        let layout = p.layout();
        (p.headers, p.parser, framing, layout)
    }

    fn app_bytes() -> Vec<u8> {
        let mut v = vec![7u8];
        v.extend_from_slice(&0xDEADBEEFu32.to_be_bytes());
        v.push(0);
        v
    }

    #[test]
    fn raw_path_parses_to_app_header() {
        let (headers, spec, framing, layout) = setup();
        let frame = raw_app_frame(&app_bytes());
        let out = spec.parse(&headers, &layout, &frame).unwrap();
        assert_eq!(out.depth, 2, "ethernet + app");
        assert!(out.phv.is_valid(framing.app));
        assert!(!out.phv.is_valid(framing.ip));
        let key = out.phv.get(
            &layout,
            FieldRef::new(framing.app, crate::header::FieldId(1)),
        );
        assert_eq!(key, 0xDEADBEEF);
    }

    #[test]
    fn udp_path_parses_through_the_full_stack() {
        let (headers, spec, framing, layout) = setup();
        let frame = udp_app_frame(9999, &app_bytes());
        let out = spec.parse(&headers, &layout, &frame).unwrap();
        assert_eq!(out.depth, 4, "ethernet + ipv4 + udp + app");
        assert!(out.phv.is_valid(framing.eth));
        assert!(out.phv.is_valid(framing.ip));
        assert!(out.phv.is_valid(framing.udp));
        assert!(out.phv.is_valid(framing.app));
        let ttl = out.phv.get(
            &layout,
            FieldRef::new(framing.ip, crate::header::FieldId(5)),
        );
        assert_eq!(ttl, 64);
        let key = out.phv.get(
            &layout,
            FieldRef::new(framing.app, crate::header::FieldId(1)),
        );
        assert_eq!(key, 0xDEADBEEF);
    }

    #[test]
    fn foreign_traffic_is_rejected() {
        let (headers, spec, _, layout) = setup();
        // Wrong UDP port.
        let frame = udp_app_frame(53, &app_bytes());
        assert!(spec.parse(&headers, &layout, &frame).is_err());
        // Unknown ethertype (ARP).
        let mut arp = vec![0u8; 12];
        arp.extend_from_slice(&0x0806u16.to_be_bytes());
        arp.extend_from_slice(&[0u8; 28]);
        assert!(spec.parse(&headers, &layout, &arp).is_err());
        // Non-UDP IP protocol (TCP).
        let mut frame = udp_app_frame(9999, &app_bytes());
        frame[23] = 6; // protocol = TCP
        assert!(spec.parse(&headers, &layout, &frame).is_err());
    }

    #[test]
    fn deparse_preserves_the_full_stack() {
        let (headers, spec, _, layout) = setup();
        let frame = udp_app_frame(9999, &app_bytes());
        let out = spec.parse(&headers, &layout, &frame).unwrap();
        let rebuilt = crate::parser::deparse(
            &headers,
            &layout,
            &out.phv,
            &out.extracted,
            &frame[out.consumed..],
        );
        assert_eq!(rebuilt, frame);
    }

    #[test]
    fn int_headers_pin_the_wire_layout() {
        let shim = int_shim();
        assert_eq!(shim.fields.len(), 2);
        assert_eq!(shim.total_bits(), 24);
        let hop = int_hop();
        assert_eq!(hop.fields.len(), INT_HOP_FIELDS);
        // device 16 + site 64 + two 64-bit timestamps + qdepth 32 + cells 64.
        assert_eq!(hop.total_bits(), 16 + 64 + 64 + 64 + 32 + 64);
        // A full 32-hop region is shim + 32 hop records: bounded, and small
        // enough to ride a jumbo frame (the bound INT_MAX_HOPS enforces).
        let region_bytes = (shim.total_bits() + 32 * hop.total_bits()) / 8;
        assert_eq!(region_bytes, 3 + 32 * 38);
        assert!(region_bytes < 1280);
    }

    #[test]
    fn parse_depth_differs_by_path() {
        // §3.3: "parsing efficiency is linked to the complexity of
        // structure within packets" — the raw path is half the depth of
        // the UDP path, i.e. structure, not speed, sets the cost.
        let (headers, spec, _, layout) = setup();
        let raw = spec
            .parse(&headers, &layout, &raw_app_frame(&app_bytes()))
            .unwrap();
        let udp = spec
            .parse(&headers, &layout, &udp_app_frame(9999, &app_bytes()))
            .unwrap();
        assert_eq!(raw.depth, 2);
        assert_eq!(udp.depth, 4);
        assert_eq!(raw.consumed, 14 + 6);
        assert_eq!(udp.consumed, 14 + 20 + 8 + 6);
    }
}
