//! One-big-switch placement onto a leaf–spine fabric.
//!
//! SNAP compiles a single logical stateful program into per-device
//! configurations; LOADER replicates state across data-plane devices. This
//! module does the ADCP version of that step: it takes **one** program whose
//! central region owns a partitioned register area, and splits that area
//! across the leaves of a leaf–spine fabric by *steer-key range* — the same
//! key-range partitioning the `adcp-ctrl` planners use to balance central
//! pipelines inside a single switch, lifted one level up the topology.
//!
//! ## How the transform works
//!
//! The logical program is rewritten into a **leaf program** (identical text
//! on every leaf; only installed entries differ) and a **spine program**
//! (stateless gk-range routing). Two scratch header fields that the original
//! program must never touch carry the placement state on the wire:
//!
//! * `phase_field` — where the packet is in its fabric journey:
//!   0 = fresh from a host, 1 = running the original program on the owner
//!   leaf, 2 = in transit to the owner leaf, 3 = in transit to the delivery
//!   leaf, 4 = delivering to the host.
//! * `gk_field` — the *gated key* `(phase << log2(key_space)) | steer_key`,
//!   recomputed at every hop so one range-match table can dispatch on the
//!   (phase, key) pair at once.
//!
//! Every original action body is wrapped in a one-level
//! [`ActionOp::IfEq`] predicate on the phase field: ingress and central
//! tables only act when `phase == 1` (owner leaf), egress tables only when
//! `phase == 4` (delivery leaf). Table *entries* install verbatim on every
//! leaf — lookups still happen everywhere (MAT counters differ from the
//! one-big-switch run; nothing else does), but a matched action is inert
//! unless the packet is in the right phase on the right device. Since the
//! original program runs its ingress + central half exactly once (owner
//! leaf) and its egress half exactly once (delivery leaf), delivered frames
//! and register state match the one-big-switch reference bit for bit; the
//! final egress step clears both scratch fields so even the wire bytes
//! agree.
//!
//! Synthesized tables (names are reserved; a program that already uses them
//! is rejected):
//!
//! | table              | region  | place | role |
//! |--------------------|---------|-------|------|
//! | `fab_compute`      | ingress | first | recompute `gk` from (phase, key) |
//! | `fab_steer`        | ingress | second| range-match `gk`: run here / forward to owner or delivery leaf |
//! | `fab_exit_compute` | central | after originals | recompute `gk` |
//! | `fab_exit`         | central | last  | owner leaf hand-off: deliver locally or forward to the delivery leaf |
//! | `fab_finish`       | egress  | last  | clear the scratch fields on delivery |
//!
//! The spine program is `fab_compute` plus a `spine_route` range table that
//! forwards phase-2 traffic to the owner leaf of its key range and phase-3
//! traffic to the delivery leaf. It is stateless and ingress-only, so it
//! compiles for RMT targets too — spines need none of ADCP's central area.
//!
//! A packet whose steer key falls outside `key_space` (only possible if a
//! host injects one; corrupted frames die at FCS verification before
//! parsing) misses every synthesized range and is dropped loudly as
//! `no_decision` — never silently mis-placed.

use crate::action::{ActionDef, ActionOp, BinOp, Operand};
use crate::header::FieldRef;
use crate::program::Program;
use crate::table::{Entry, KeySpec, MatchKind, MatchValue, Region, TableDef};

/// Phase values carried in `phase_field`.
pub mod phase {
    /// Fresh from a host; not yet steered.
    pub const FRESH: u64 = 0;
    /// On the owner leaf: the original ingress/central program runs.
    pub const RUN: u64 = 1;
    /// In transit to the owner leaf.
    pub const TO_OWNER: u64 = 2;
    /// In transit to the delivery leaf.
    pub const TO_EGRESS: u64 = 3;
    /// On the delivery leaf: the original egress program runs.
    pub const DELIVER: u64 = 4;
}

/// Reserved names of the synthesized leaf/spine tables.
pub const RESERVED_TABLES: [&str; 6] = [
    "fab_compute",
    "fab_steer",
    "fab_exit_compute",
    "fab_exit",
    "fab_finish",
    "spine_route",
];

/// A leaf–spine fabric and how one logical program maps onto it.
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Number of leaf switches (≥ 2; hosts and state live here).
    pub n_leaves: u32,
    /// Number of spine switches (≥ 1; stateless gk routers).
    pub n_spines: u32,
    /// Host-facing ports per leaf. Leaf ports `0..hosts_per_leaf` are host
    /// slots; ports `hosts_per_leaf..hosts_per_leaf + n_spines` are uplinks
    /// (uplink `s` connects to spine `s`). Spine port `l` connects to
    /// leaf `l`.
    pub hosts_per_leaf: u32,
    /// Scalar field carrying the fabric phase (≥ 3 bits; must be unused by
    /// the original program).
    pub phase_field: FieldRef,
    /// Scalar field carrying the gated key (≥ `log2(key_space) + 3` bits;
    /// must be unused by the original program).
    pub gk_field: FieldRef,
    /// Scalar field the state is partitioned on. Every register index in
    /// the original program must be exactly `Operand::Field(steer_field)`,
    /// and ingress/central tables must not write it — that is what makes
    /// "owner of the steer key" the same thing as "owner of the state the
    /// packet touches".
    pub steer_field: FieldRef,
    /// Size of the steer-key space (power of two ≥ 2); workload steer keys
    /// must be `< key_space`.
    pub key_space: u64,
    /// Owner leaf per steer key (`owners.len() == key_space`, each
    /// `< n_leaves`). Produce this with the `adcp-ctrl` planners.
    pub owners: Vec<u32>,
    /// Logical host port all frames are delivered to (the fabric maps
    /// logical port `p` to leaf `p % n_leaves`, slot `p / n_leaves`).
    pub delivery_port: u32,
}

impl FabricSpec {
    /// Leaf that hosts logical port `p`.
    pub fn leaf_of(&self, p: u32) -> u32 {
        p % self.n_leaves
    }

    /// Host-slot port on [`Self::leaf_of`] for logical port `p`.
    pub fn slot_of(&self, p: u32) -> u32 {
        p / self.n_leaves
    }

    /// Logical port for a (leaf, host slot) pair.
    pub fn logical_of(&self, leaf: u32, slot: u32) -> u32 {
        slot * self.n_leaves + leaf
    }

    /// Leaf-local port of the uplink to `spine`.
    pub fn uplink_port(&self, spine: u32) -> u32 {
        self.hosts_per_leaf + spine
    }

    /// Which spine carries traffic destined for `leaf` (deterministic
    /// spread so both spines see work).
    pub fn spine_for(&self, leaf: u32) -> u32 {
        leaf % self.n_spines
    }

    /// Ports per leaf switch (host slots + uplinks).
    pub fn leaf_ports(&self) -> u32 {
        self.hosts_per_leaf + self.n_spines
    }

    /// Number of logical host ports across the fabric.
    pub fn logical_ports(&self) -> u32 {
        self.n_leaves * self.hosts_per_leaf
    }

    /// log2 of the key space.
    pub fn key_bits(&self) -> u32 {
        self.key_space.trailing_zeros()
    }

    /// Maximal runs of equal ownership: `(first_key, last_key, owner)`,
    /// covering the whole key space in order. Each run becomes one
    /// range-table entry.
    pub fn ownership_runs(&self) -> Vec<(u64, u64, u32)> {
        let mut runs = Vec::new();
        let mut start = 0u64;
        for k in 1..self.owners.len() {
            if self.owners[k] != self.owners[start as usize] {
                runs.push((start, k as u64 - 1, self.owners[start as usize]));
                start = k as u64;
            }
        }
        if !self.owners.is_empty() {
            runs.push((
                start,
                self.owners.len() as u64 - 1,
                self.owners[start as usize],
            ));
        }
        runs
    }
}

/// Why a program cannot be placed on a fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceError {
    /// The fabric shape itself is unusable (counts, key space, owners,
    /// delivery port).
    Topology(String),
    /// A scratch/steer field is missing, an array, or too narrow.
    BadField {
        /// Which role the field was to play.
        role: &'static str,
        /// The offending reference.
        field: FieldRef,
        /// What is wrong with it.
        why: String,
    },
    /// An original table touches a field the placement owns (writes
    /// phase/gk anywhere, or writes the steer field before egress), or is
    /// keyed on / reads a scratch field.
    FieldConflict {
        /// Table name.
        table: String,
        /// What it did.
        why: String,
    },
    /// An original action uses an op the fabric cannot split (array ops,
    /// multicast, recirculation, registers outside the central region, or a
    /// register index that is not the steer field).
    ForbiddenOp {
        /// Table name.
        table: String,
        /// What it did.
        why: String,
    },
    /// An original table uses one of the [`RESERVED_TABLES`] names.
    NameCollision {
        /// The colliding name.
        table: String,
    },
}

/// The result of [`place`]: per-device programs plus the entries to install
/// in the synthesized tables.
#[derive(Debug, Clone)]
pub struct FabricPlacement {
    /// The rewritten program every leaf runs (identical text on all
    /// leaves). The *original* program's entries must also be installed on
    /// every leaf, verbatim.
    pub leaf_program: Program,
    /// The stateless routing program every spine runs.
    pub spine_program: Program,
    /// Synthesized-table entries per leaf: `leaf_installs[l]` is a list of
    /// `(table_name, entry)` for leaf `l`.
    pub leaf_installs: Vec<Vec<(String, Entry)>>,
    /// Synthesized-table entries every spine installs.
    pub spine_installs: Vec<(String, Entry)>,
}

/// Walk an op list recursively (into `IfEq` bodies).
fn scan_ops<'a>(ops: &'a [ActionOp], f: &mut impl FnMut(&'a ActionOp)) {
    for op in ops {
        f(op);
        if let ActionOp::IfEq { then, .. } = op {
            scan_ops(then, f);
        }
    }
}

fn field_bits(p: &Program, f: FieldRef) -> Option<u8> {
    let h = p.headers.get(f.header.0 as usize)?;
    let fd = h.fields.get(f.field.0 as usize)?;
    if fd.count > 1 {
        return None; // array fields cannot carry scalars
    }
    Some(fd.bits)
}

fn check_scalar_field(
    p: &Program,
    f: FieldRef,
    role: &'static str,
    min_bits: u32,
) -> Result<u8, PlaceError> {
    match field_bits(p, f) {
        None => Err(PlaceError::BadField {
            role,
            field: f,
            why: "missing or an array field".into(),
        }),
        Some(b) if (b as u32) < min_bits => Err(PlaceError::BadField {
            role,
            field: f,
            why: format!("{b} bits, need at least {min_bits}"),
        }),
        Some(b) => Ok(b),
    }
}

fn validate(p: &Program, spec: &FabricSpec) -> Result<(u8, u8), PlaceError> {
    if spec.n_leaves < 2 || spec.n_spines < 1 || spec.hosts_per_leaf < 1 {
        return Err(PlaceError::Topology(format!(
            "need ≥ 2 leaves, ≥ 1 spine, ≥ 1 host/leaf (got {}/{}/{})",
            spec.n_leaves, spec.n_spines, spec.hosts_per_leaf
        )));
    }
    if spec.key_space < 2 || !spec.key_space.is_power_of_two() {
        return Err(PlaceError::Topology(format!(
            "key_space must be a power of two ≥ 2, got {}",
            spec.key_space
        )));
    }
    if spec.owners.len() as u64 != spec.key_space {
        return Err(PlaceError::Topology(format!(
            "owners covers {} keys, key_space is {}",
            spec.owners.len(),
            spec.key_space
        )));
    }
    if let Some(o) = spec.owners.iter().find(|o| **o >= spec.n_leaves) {
        return Err(PlaceError::Topology(format!(
            "owner leaf {o} out of range (n_leaves = {})",
            spec.n_leaves
        )));
    }
    if spec.delivery_port >= spec.logical_ports() {
        return Err(PlaceError::Topology(format!(
            "delivery_port {} out of range ({} logical ports)",
            spec.delivery_port,
            spec.logical_ports()
        )));
    }

    let phase_bits = check_scalar_field(p, spec.phase_field, "phase_field", 3)?;
    let gk_bits = check_scalar_field(p, spec.gk_field, "gk_field", spec.key_bits() + 3)?;
    check_scalar_field(p, spec.steer_field, "steer_field", 1)?;

    for t in &p.tables {
        if RESERVED_TABLES.contains(&t.name.as_str()) {
            return Err(PlaceError::NameCollision {
                table: t.name.clone(),
            });
        }
        if let Some(k) = t.key {
            if k.field == spec.phase_field || k.field == spec.gk_field {
                return Err(PlaceError::FieldConflict {
                    table: t.name.clone(),
                    why: "keyed on a fabric scratch field".into(),
                });
            }
        }
        for a in &t.actions {
            for f in a.writes() {
                if f == spec.phase_field || f == spec.gk_field {
                    return Err(PlaceError::FieldConflict {
                        table: t.name.clone(),
                        why: format!("action `{}` writes a fabric scratch field", a.name),
                    });
                }
            }
            for f in a.reads() {
                if f == spec.phase_field || f == spec.gk_field {
                    return Err(PlaceError::FieldConflict {
                        table: t.name.clone(),
                        why: format!("action `{}` reads a fabric scratch field", a.name),
                    });
                }
            }
            let mut err: Option<PlaceError> = None;
            scan_ops(&a.ops, &mut |op| {
                if err.is_some() {
                    return;
                }
                let forbid = |why: String| PlaceError::ForbiddenOp {
                    table: t.name.clone(),
                    why,
                };
                // Writes to the steer field before egress would let the
                // program move a packet's state key *after* steering
                // decided where its state lives. One idiom is exempt: the
                // self-mask `steer &= m` with `m` covering the whole key
                // space, which is the identity on every in-range key (the
                // range-check idiom the single-switch programs already
                // use). Anything else is rejected.
                let is_identity_mask = matches!(
                    op,
                    ActionOp::Bin {
                        dst,
                        op: BinOp::And,
                        a: Operand::Field(af),
                        b: Operand::Const(m),
                    } if *dst == spec.steer_field
                        && *af == spec.steer_field
                        && m & (spec.key_space - 1) == spec.key_space - 1
                );
                if t.region != Region::Egress && !is_identity_mask {
                    let writes_steer = match op {
                        ActionOp::Set { dst, .. }
                        | ActionOp::Bin { dst, .. }
                        | ActionOp::Hash { dst, .. }
                        | ActionOp::RegRead { dst, .. } => *dst == spec.steer_field,
                        ActionOp::RegRmw { fetch: Some(f), .. } => *f == spec.steer_field,
                        _ => false,
                    };
                    if writes_steer {
                        err = Some(PlaceError::FieldConflict {
                            table: t.name.clone(),
                            why: format!(
                                "action `{}` writes the steer field before egress",
                                a.name
                            ),
                        });
                        return;
                    }
                }
                match op {
                    ActionOp::RegArray { .. } | ActionOp::ArrayReduce { .. } => {
                        err = Some(forbid("array-wide ops cannot be split by key".into()));
                    }
                    ActionOp::SetMulticast(_) => {
                        err = Some(forbid("multicast replication is per-switch".into()));
                    }
                    ActionOp::Recirculate => {
                        err = Some(forbid("recirculation is per-switch".into()));
                    }
                    ActionOp::RegRead { index, .. } | ActionOp::RegRmw { index, .. } => {
                        if t.region != Region::Central {
                            err = Some(forbid("register state outside the central region".into()));
                        } else if *index != Operand::Field(spec.steer_field) {
                            err = Some(forbid("register index is not the steer field".into()));
                        }
                    }
                    _ => {}
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
    }
    Ok((phase_bits, gk_bits))
}

/// Wrap an op list in a phase predicate (empty lists stay empty — a nop is
/// a nop in any phase).
fn gate(ops: Vec<ActionOp>, phase_field: FieldRef, active: u64) -> Vec<ActionOp> {
    if ops.is_empty() {
        ops
    } else {
        vec![ActionOp::IfEq {
            a: Operand::Field(phase_field),
            b: Operand::Const(active),
            then: ops,
        }]
    }
}

/// Split one logical program across a leaf–spine fabric.
///
/// Validates that the program is splittable (see [`PlaceError`]) and
/// returns the rewritten leaf/spine programs plus the per-device entries
/// for the synthesized steering tables. The *original* program's entries
/// are not touched: install them verbatim on every leaf, exactly as on the
/// one-big-switch reference.
pub fn place(program: &Program, spec: &FabricSpec) -> Result<FabricPlacement, PlaceError> {
    let (phase_bits, gk_bits) = validate(program, spec)?;
    let kb = spec.key_bits() as u64;
    let pf = spec.phase_field;
    let gk = spec.gk_field;

    // gk = (phase << kb) | steer_key, recomputed wherever the phase may
    // just have changed.
    let compute_ops = vec![
        ActionOp::Bin {
            dst: gk,
            op: BinOp::Shl,
            a: Operand::Field(pf),
            b: Operand::Const(kb),
        },
        ActionOp::Bin {
            dst: gk,
            op: BinOp::Or,
            a: Operand::Field(gk),
            b: Operand::Field(spec.steer_field),
        },
    ];
    let compute_table = |name: &str, region: Region| TableDef {
        name: name.into(),
        region,
        key: None,
        actions: vec![ActionDef::new("fab_gk", compute_ops.clone())],
        default_action: 0,
        default_params: vec![],
        size: 1,
    };
    let range_key = KeySpec {
        field: gk,
        kind: MatchKind::Range,
        bits: gk_bits,
    };
    let range_size = spec.key_space as u32 + 8;

    // fab_steer actions: 0 = run here (set phase), 1 = forward (set phase +
    // egress port), 2 = nop (miss ⇒ invalid key ⇒ loud no_decision drop).
    let fab_steer = TableDef {
        name: "fab_steer".into(),
        region: Region::Ingress,
        key: Some(range_key),
        actions: vec![
            ActionDef::new(
                "fab_run",
                vec![ActionOp::Set {
                    dst: pf,
                    src: Operand::Param(0),
                }],
            ),
            ActionDef::new(
                "fab_fwd",
                vec![
                    ActionOp::Set {
                        dst: pf,
                        src: Operand::Param(0),
                    },
                    ActionOp::SetEgress(Operand::Param(1)),
                ],
            ),
            ActionDef::nop(),
        ],
        default_action: 2,
        default_params: vec![],
        size: range_size,
    };
    // fab_exit action: set phase + egress (deliver locally or forward).
    let fab_exit = TableDef {
        name: "fab_exit".into(),
        region: Region::Central,
        key: Some(range_key),
        actions: vec![
            ActionDef::new(
                "fab_set",
                vec![
                    ActionOp::Set {
                        dst: pf,
                        src: Operand::Param(0),
                    },
                    ActionOp::SetEgress(Operand::Param(1)),
                ],
            ),
            ActionDef::nop(),
        ],
        default_action: 1,
        default_params: vec![],
        size: range_size,
    };
    // fab_finish: on delivery, restore the scratch fields to the 0 the
    // reference run carries, so wire bytes match bit for bit.
    let fab_finish = TableDef {
        name: "fab_finish".into(),
        region: Region::Egress,
        key: Some(KeySpec {
            field: pf,
            kind: MatchKind::Exact,
            bits: phase_bits,
        }),
        actions: vec![
            ActionDef::new(
                "fab_clear",
                vec![
                    ActionOp::Set {
                        dst: pf,
                        src: Operand::Const(0),
                    },
                    ActionOp::Set {
                        dst: gk,
                        src: Operand::Const(0),
                    },
                ],
            ),
            ActionDef::nop(),
        ],
        default_action: 1,
        default_params: vec![],
        size: 2,
    };

    // The leaf program: synthesized ingress tables first, originals (with
    // every action phase-gated) in their original order, synthesized
    // central/egress tables last. `region_tables` filters by list order, so
    // a single flat list gives each region the order in the table above.
    let mut leaf = program.clone();
    leaf.name = format!("{}@leaf", program.name);
    let mut tables = vec![compute_table("fab_compute", Region::Ingress), fab_steer];
    for t in &program.tables {
        let active = match t.region {
            Region::Ingress | Region::Central => phase::RUN,
            Region::Egress => phase::DELIVER,
        };
        let mut t = t.clone();
        for a in &mut t.actions {
            a.ops = gate(std::mem::take(&mut a.ops), pf, active);
        }
        tables.push(t);
    }
    tables.push(compute_table("fab_exit_compute", Region::Central));
    tables.push(fab_exit);
    tables.push(fab_finish);
    leaf.tables = tables;

    // The spine program: recompute gk, then route on it. Stateless and
    // ingress-only — compiles for RMT spines just as well.
    let spine = Program {
        name: format!("{}@spine", program.name),
        headers: program.headers.clone(),
        parser: program.parser.clone(),
        tables: vec![
            compute_table("fab_compute", Region::Ingress),
            TableDef {
                name: "spine_route".into(),
                region: Region::Ingress,
                key: Some(range_key),
                actions: vec![
                    ActionDef::new("sp_fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
                    ActionDef::nop(),
                ],
                default_action: 1,
                default_params: vec![],
                size: range_size,
            },
        ],
        registers: vec![],
        mcast_groups: vec![],
        tm1: program.tm1,
        tm2: program.tm2,
    };

    let runs = spec.ownership_runs();
    let dleaf = spec.leaf_of(spec.delivery_port);
    let dslot = spec.slot_of(spec.delivery_port) as u64;
    let gkr = |ph: u64, lo: u64, hi: u64| MatchValue::Range {
        lo: (ph << kb) | lo,
        hi: (ph << kb) | hi,
    };
    let all = spec.key_space - 1;

    let mut leaf_installs: Vec<Vec<(String, Entry)>> = Vec::new();
    for l in 0..spec.n_leaves {
        let mut ins = Vec::new();
        // Phase 0: fresh packets either run here or head for the owner.
        for &(lo, hi, owner) in &runs {
            let e = if owner == l {
                Entry {
                    value: gkr(phase::FRESH, lo, hi),
                    action: 0, // fab_run
                    params: vec![phase::RUN],
                }
            } else {
                Entry {
                    value: gkr(phase::FRESH, lo, hi),
                    action: 1, // fab_fwd
                    params: vec![
                        phase::TO_OWNER,
                        spec.uplink_port(spec.spine_for(owner)) as u64,
                    ],
                }
            };
            ins.push(("fab_steer".to_string(), e));
        }
        // Phase 2: a packet arriving in TO_OWNER runs wherever it lands —
        // if steering sent it to the wrong leaf, state lands on the wrong
        // device and the conformance register-leak check screams.
        ins.push((
            "fab_steer".to_string(),
            Entry {
                value: gkr(phase::TO_OWNER, 0, all),
                action: 0,
                params: vec![phase::RUN],
            },
        ));
        // Phase 3: only the delivery leaf accepts hand-off traffic; on any
        // other leaf the range is absent and the packet drops loudly.
        if l == dleaf {
            ins.push((
                "fab_steer".to_string(),
                Entry {
                    value: gkr(phase::TO_EGRESS, 0, all),
                    action: 1,
                    params: vec![phase::DELIVER, dslot],
                },
            ));
        }
        // fab_exit, phase 1: after the original program ran here, deliver
        // locally or hand off toward the delivery leaf.
        let exit = if l == dleaf {
            Entry {
                value: gkr(phase::RUN, 0, all),
                action: 0,
                params: vec![phase::DELIVER, dslot],
            }
        } else {
            Entry {
                value: gkr(phase::RUN, 0, all),
                action: 0,
                params: vec![
                    phase::TO_EGRESS,
                    spec.uplink_port(spec.spine_for(dleaf)) as u64,
                ],
            }
        };
        ins.push(("fab_exit".to_string(), exit));
        // fab_exit, phase 4: re-assert the host slot on the delivery leaf
        // (the ingress decision already points there; this is defensive).
        if l == dleaf {
            ins.push((
                "fab_exit".to_string(),
                Entry {
                    value: gkr(phase::DELIVER, 0, all),
                    action: 0,
                    params: vec![phase::DELIVER, dslot],
                },
            ));
        }
        // fab_finish: clear scratch fields on every delivering frame.
        ins.push((
            "fab_finish".to_string(),
            Entry {
                value: MatchValue::Exact(phase::DELIVER),
                action: 0,
                params: vec![],
            },
        ));
        leaf_installs.push(ins);
    }

    let mut spine_installs = Vec::new();
    for &(lo, hi, owner) in &runs {
        spine_installs.push((
            "spine_route".to_string(),
            Entry {
                value: gkr(phase::TO_OWNER, lo, hi),
                action: 0,
                params: vec![owner as u64],
            },
        ));
    }
    spine_installs.push((
        "spine_route".to_string(),
        Entry {
            value: gkr(phase::TO_EGRESS, 0, all),
            action: 0,
            params: vec![dleaf as u64],
        },
    ));

    Ok(FabricPlacement {
        leaf_program: leaf,
        spine_program: spine,
        leaf_installs,
        spine_installs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use crate::header::{FieldDef, FieldId, HeaderDef, HeaderId};
    use crate::parser::ParserSpec;
    use crate::program::ProgramBuilder;
    use crate::registers::{RegAluOp, RegisterDef};
    use crate::target::TargetModel;

    fn fr(f: u16) -> FieldRef {
        FieldRef::new(HeaderId(0), FieldId(f))
    }

    /// A miniature of the conformance generator's fabric-mode programs:
    /// scalar header with op/key/idx/val + scratch fields, a central
    /// counter keyed on nothing, register indexed by idx.
    fn logical() -> Program {
        let mut b = ProgramBuilder::new("toy");
        let h = b.header(HeaderDef::new(
            "hdr",
            vec![
                FieldDef::scalar("op", 8),
                FieldDef::scalar("key", 32),
                FieldDef::scalar("idx", 16),
                FieldDef::scalar("val", 32),
                FieldDef::scalar("fphase", 8),
                FieldDef::scalar("fgk", 16),
            ],
        ));
        b.parser(ParserSpec::single(h));
        let reg = b.register(RegisterDef::new("cnt", 64, 32));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "to0",
                vec![ActionOp::SetEgress(Operand::Const(0))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "count".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "bump",
                vec![ActionOp::RegRmw {
                    reg,
                    index: Operand::Field(fr(2)),
                    op: RegAluOp::Add,
                    value: Operand::Field(fr(3)),
                    fetch: None,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    fn spec() -> FabricSpec {
        FabricSpec {
            n_leaves: 4,
            n_spines: 2,
            hosts_per_leaf: 2,
            phase_field: fr(4),
            gk_field: fr(5),
            steer_field: fr(2),
            key_space: 64,
            owners: (0..64).map(|k| (k / 16) as u32).collect(),
            delivery_port: 0,
        }
    }

    #[test]
    fn placement_programs_validate() {
        let placed = place(&logical(), &spec()).unwrap();
        assert!(placed.leaf_program.validate().is_empty());
        assert!(placed.spine_program.validate().is_empty());
        assert_eq!(placed.leaf_installs.len(), 4);
        // Synthesized ingress tables come first, central/egress last.
        let names: Vec<&str> = placed
            .leaf_program
            .tables
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "fab_compute",
                "fab_steer",
                "route",
                "count",
                "fab_exit_compute",
                "fab_exit",
                "fab_finish"
            ]
        );
        // Originals got phase-gated.
        let route = &placed.leaf_program.tables[2];
        assert!(matches!(
            route.actions[0].ops[0],
            ActionOp::IfEq {
                b: Operand::Const(phase::RUN),
                ..
            }
        ));
        let count = &placed.leaf_program.tables[3];
        assert!(matches!(
            count.actions[0].ops[0],
            ActionOp::IfEq {
                b: Operand::Const(phase::RUN),
                ..
            }
        ));
    }

    #[test]
    fn ownership_runs_cover_key_space() {
        let s = spec();
        let runs = s.ownership_runs();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0], (0, 15, 0));
        assert_eq!(runs[3], (48, 63, 3));
        // Each leaf runs its own range locally, forwards the rest.
        let placed = place(&logical(), &s).unwrap();
        let steer0: Vec<&Entry> = placed.leaf_installs[0]
            .iter()
            .filter(|(n, _)| n == "fab_steer")
            .map(|(_, e)| e)
            .collect();
        // 4 phase-0 runs + 1 phase-2 catch-all + phase-3 (leaf 0 delivers).
        assert_eq!(steer0.len(), 6);
        let own = steer0
            .iter()
            .filter(|e| e.action == 0 && e.params == vec![phase::RUN])
            .count();
        assert_eq!(own, 2, "own range (phase 0) + TO_OWNER catch-all");
    }

    #[test]
    fn spine_program_is_stateless_and_compiles_on_rmt() {
        let placed = place(&logical(), &spec()).unwrap();
        assert!(placed.spine_program.registers.is_empty());
        assert!(!placed.spine_program.uses_central());
        // Spines need no ADCP central area: an RMT spine works too.
        compile(
            &placed.spine_program,
            &TargetModel::rmt_640g(),
            CompileOptions::default(),
        )
        .expect("spine program must compile for RMT");
        compile(
            &placed.spine_program,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .expect("spine program must compile for ADCP");
    }

    #[test]
    fn scratch_field_writes_rejected() {
        let mut p = logical();
        p.tables[0].actions[0].ops.push(ActionOp::Set {
            dst: fr(5),
            src: Operand::Const(1),
        });
        assert!(matches!(
            place(&p, &spec()),
            Err(PlaceError::FieldConflict { .. })
        ));
    }

    #[test]
    fn steer_mask_allowed_but_rewrite_rejected() {
        // The range-check idiom `idx &= key_space-1` is the identity on
        // every in-range key and must place fine…
        let mut p = logical();
        p.tables[0].actions[0].ops.insert(
            0,
            ActionOp::Bin {
                dst: fr(2),
                op: BinOp::And,
                a: Operand::Field(fr(2)),
                b: Operand::Const(63),
            },
        );
        assert!(place(&p, &spec()).is_ok());
        // …but an arbitrary steer rewrite before egress cannot.
        let mut p = logical();
        p.tables[0].actions[0].ops.insert(
            0,
            ActionOp::Set {
                dst: fr(2),
                src: Operand::Const(1),
            },
        );
        assert!(matches!(
            place(&p, &spec()),
            Err(PlaceError::FieldConflict { .. })
        ));
    }

    #[test]
    fn non_steer_register_index_rejected() {
        let mut p = logical();
        p.tables[1].actions[0].ops = vec![ActionOp::RegRmw {
            reg: crate::registers::RegId(0),
            index: Operand::Const(3),
            op: RegAluOp::Add,
            value: Operand::Const(1),
            fetch: None,
        }];
        assert!(matches!(
            place(&p, &spec()),
            Err(PlaceError::ForbiddenOp { .. })
        ));
    }

    #[test]
    fn bad_owners_rejected() {
        let mut s = spec();
        s.owners.pop();
        assert!(matches!(
            place(&logical(), &s),
            Err(PlaceError::Topology(_))
        ));
        let mut s = spec();
        s.owners[0] = 9;
        assert!(matches!(
            place(&logical(), &s),
            Err(PlaceError::Topology(_))
        ));
    }

    #[test]
    fn reserved_name_rejected() {
        let mut p = logical();
        p.tables[0].name = "fab_steer".into();
        assert!(matches!(
            place(&p, &spec()),
            Err(PlaceError::NameCollision { .. })
        ));
    }
}
