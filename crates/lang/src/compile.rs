//! Placing programs onto targets.
//!
//! The compiler turns a target-independent [`Program`] into a [`Placement`]:
//! an assignment of tables to pipeline stages that honors the target's
//! stage count, MAUs per stage, table memory, register memory, and PHV
//! budgets. Two rules encode the paper's core claims:
//!
//! * **Array tables** (§3.2 / Fig. 3): a table keyed on a width-`w` array
//!   costs `w` *replicas* — `w×` the memory — on an RMT target, but one
//!   shared copy spread over `w` interconnected MAUs on an ADCP target.
//! * **Central tables** (§3.1 / Fig. 2): tables in [`Region::Central`]
//!   place natively on an ADCP. On RMT they must be *lowered*: either
//!   pinned into the egress pipelines (restricting which ports results can
//!   leave from) or pushed through recirculation (halving usable
//!   bandwidth per extra pass). The chosen lowering is recorded so the
//!   switch model and the Fig. 2 experiment can charge the real cost.

use crate::program::{Program, ValidateError};
use crate::table::{Region, TableDef};
use crate::target::TargetModel;
use serde::Serialize;
use std::collections::HashMap;

/// How RMT should lower central-region tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum RmtCentralStrategy {
    /// Send all coflow traffic to one egress pipeline and run the central
    /// tables there. Results can then only exit via that pipeline's ports.
    #[default]
    EgressPin,
    /// Run central tables on a second ingress pass via recirculation,
    /// spending front-panel bandwidth for each pass.
    Recirculate,
}

/// Compilation knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Lowering for central tables on RMT targets.
    pub rmt_central: RmtCentralStrategy,
}

/// How the program's central region ended up implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CentralImpl {
    /// The program has no central tables.
    None,
    /// Placed in the target's native central pipelines (ADCP).
    Native,
    /// Lowered into the egress pipelines (RMT). Output ports are pinned.
    EgressPinned,
    /// Lowered onto extra ingress passes via recirculation (RMT).
    Recirculated,
}

/// One table placed into a stage.
#[derive(Debug, Clone, Serialize)]
pub struct PlacedTable {
    /// Global table index in the program.
    pub table: usize,
    /// Table name (reporting convenience).
    pub name: String,
    /// Array width of the table (1 = scalar).
    pub width: u16,
    /// Number of physical table copies (RMT replication; 1 on ADCP).
    pub replicas: u16,
    /// MAU slots consumed in the stage.
    pub mau_slots: u16,
    /// Table memory consumed, in bits (counts all replicas).
    pub mem_bits: u64,
    /// Register memory consumed in the stage, in bits.
    pub reg_bits: u64,
}

/// Resource usage of one stage.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StagePlan {
    /// Tables in this stage (execute in parallel).
    pub tables: Vec<PlacedTable>,
    /// MAU slots used.
    pub mau_slots_used: u16,
    /// Table memory used, bits.
    pub mem_bits_used: u64,
    /// Register memory used, bits.
    pub reg_bits_used: u64,
}

/// Placement of one region's tables onto one pipeline's stages.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RegionPlan {
    /// Stage-by-stage usage. `stages.len()` ≤ the region's stage budget.
    pub stages: Vec<StagePlan>,
}

impl RegionPlan {
    /// Stages actually occupied.
    pub fn depth(&self) -> u16 {
        self.stages.len() as u16
    }

    /// Total table memory, bits.
    pub fn mem_bits(&self) -> u64 {
        self.stages.iter().map(|s| s.mem_bits_used).sum()
    }

    /// Total replicas across placed tables (Fig. 3 metric).
    pub fn total_replicas(&self) -> u32 {
        self.stages
            .iter()
            .flat_map(|s| &s.tables)
            .map(|t| t.replicas as u32)
            .sum()
    }

    fn find(&self, table: usize) -> Option<(usize, &PlacedTable)> {
        for (si, st) in self.stages.iter().enumerate() {
            if let Some(t) = st.tables.iter().find(|t| t.table == table) {
                return Some((si, t));
            }
        }
        None
    }
}

/// A successful compilation.
#[derive(Debug, Clone, Serialize)]
pub struct Placement {
    /// Target name (reporting).
    pub target: String,
    /// Program name (reporting).
    pub program: String,
    /// Ingress placement (first pass).
    pub ingress: RegionPlan,
    /// Central placement — native, pinned, or recirculated per
    /// `central_impl`.
    pub central: RegionPlan,
    /// Egress placement.
    pub egress: RegionPlan,
    /// How central tables were implemented.
    pub central_impl: CentralImpl,
    /// Extra ingress passes needed (0 unless `Recirculated`).
    pub recirc_passes: u16,
    /// PHV bits the program needs.
    pub phv_bits_used: u32,
    /// Total table memory across all regions, in bits.
    pub total_mem_bits: u64,
    /// Human-readable compilation notes.
    pub notes: Vec<String>,
}

impl Placement {
    /// Where a table landed: (implementing region, stage index).
    pub fn table_location(&self, table: usize) -> Option<(CentralImpl, Region, usize)> {
        for (region, plan) in [
            (Region::Ingress, &self.ingress),
            (Region::Central, &self.central),
            (Region::Egress, &self.egress),
        ] {
            if let Some((stage, _)) = plan.find(table) {
                return Some((self.central_impl, region, stage));
            }
        }
        None
    }

    /// Pipeline latency, in cycles, of one pass through a region (stage
    /// traversal; the switch models multiply by the clock period).
    pub fn region_cycles(&self, region: Region) -> u64 {
        match region {
            Region::Ingress => self.ingress.depth() as u64,
            Region::Central => self.central.depth() as u64,
            Region::Egress => self.egress.depth() as u64,
        }
    }
}

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program failed validation.
    Invalid(Vec<ValidateError>),
    /// The program's fields exceed the target's PHV.
    PhvOverflow {
        /// Bits the program needs.
        needed: u32,
        /// Bits the target offers.
        budget: u32,
    },
    /// An array table is wider than the target supports natively and
    /// replication was not applicable (array *action* ops can't be
    /// replicated).
    ArrayOpUnsupported {
        /// Offending table.
        table: String,
        /// Its array width.
        width: u16,
    },
    /// A single table (with replication) does not fit in any one stage.
    TableTooLarge {
        /// Offending table.
        table: String,
        /// MAU slots it needs.
        slots_needed: u32,
        /// MAU slots a stage has.
        slots_available: u16,
    },
    /// A region ran out of stages.
    OutOfStages {
        /// The region that overflowed.
        region: Region,
        /// Its stage budget.
        budget: u16,
    },
    /// The chip-wide table memory pool was exceeded (dRMT-style targets).
    PoolOverflow {
        /// Bits the program needs.
        needed: u64,
        /// Bits the pool offers.
        budget: u64,
    },
    /// A stage's register memory was exceeded by a single table.
    RegisterOverflow {
        /// Offending table.
        table: String,
        /// Bits it needs.
        needed: u64,
        /// Bits a stage offers.
        budget: u64,
    },
}

/// Compile `program` for `target`.
///
/// ```
/// use adcp_lang::*;
///
/// // A one-table forwarding program...
/// let mut b = ProgramBuilder::new("demo");
/// let h = b.header(HeaderDef::new(
///     "fwd",
///     vec![FieldDef::scalar("dst", 16), FieldDef::scalar("pad", 16)],
/// ));
/// b.parser(ParserSpec::single(h));
/// b.table(TableDef {
///     name: "route".into(),
///     region: Region::Ingress,
///     key: Some(KeySpec {
///         field: FieldRef::new(h, FieldId(0)),
///         kind: MatchKind::Exact,
///         bits: 16,
///     }),
///     actions: vec![ActionDef::new(
///         "fwd",
///         vec![ActionOp::SetEgress(Operand::Param(0))],
///     )],
///     default_action: 0,
///     default_params: vec![],
///     size: 256,
/// });
/// let program = b.build();
///
/// // ...places on both architectures.
/// let rmt = compile(&program, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
/// let adcp = compile(&program, &TargetModel::adcp_reference(), CompileOptions::default()).unwrap();
/// assert_eq!(rmt.ingress.depth(), 1);
/// assert_eq!(adcp.ingress.depth(), 1);
/// ```
pub fn compile(
    program: &Program,
    target: &TargetModel,
    opts: CompileOptions,
) -> Result<Placement, CompileError> {
    let errs = program.validate();
    if !errs.is_empty() {
        return Err(CompileError::Invalid(errs));
    }
    let layout = program.layout();
    if layout.total_bits() > target.phv_bits {
        return Err(CompileError::PhvOverflow {
            needed: layout.total_bits(),
            budget: target.phv_bits,
        });
    }

    let mut notes = Vec::new();

    // Decide where central tables go.
    let central_impl = if !program.uses_central() {
        CentralImpl::None
    } else if target.has_central() {
        CentralImpl::Native
    } else {
        match opts.rmt_central {
            RmtCentralStrategy::EgressPin => {
                notes.push(
                    "central tables egress-pinned: coflow results can only leave \
                     via the pinned pipeline's ports (Fig. 2 limitation)"
                        .into(),
                );
                CentralImpl::EgressPinned
            }
            RmtCentralStrategy::Recirculate => {
                notes.push(
                    "central tables lowered to a recirculation pass: each pass \
                     consumes front-panel bandwidth"
                        .into(),
                );
                CentralImpl::Recirculated
            }
        }
    };

    // The stage budget each lowered region gets.
    let central_budget = match central_impl {
        CentralImpl::Native => target.central_stages,
        CentralImpl::EgressPinned => target.egress_stages,
        CentralImpl::Recirculated => target.ingress_stages,
        CentralImpl::None => 0,
    };

    let ingress = place_region(
        program,
        target,
        Region::Ingress,
        target.ingress_stages,
        &mut notes,
    )?;
    let central = if central_impl == CentralImpl::None {
        RegionPlan::default()
    } else {
        place_region(program, target, Region::Central, central_budget, &mut notes)?
    };
    // When central tables are egress-pinned they share the egress stage
    // budget with the egress tables proper: charge the egress region the
    // stages central already consumed.
    let egress_budget = if central_impl == CentralImpl::EgressPinned {
        target.egress_stages.saturating_sub(central.depth())
    } else {
        target.egress_stages
    };
    let egress = place_region(program, target, Region::Egress, egress_budget, &mut notes)?;

    let recirc_passes = if central_impl == CentralImpl::Recirculated {
        1
    } else {
        0
    };
    let total_mem_bits = ingress.mem_bits() + central.mem_bits() + egress.mem_bits();
    if target.pooled_table_memory && total_mem_bits > target.pool_bits() {
        return Err(CompileError::PoolOverflow {
            needed: total_mem_bits,
            budget: target.pool_bits(),
        });
    }

    Ok(Placement {
        target: target.name.clone(),
        program: program.name.clone(),
        ingress,
        central,
        egress,
        central_impl,
        recirc_passes,
        phv_bits_used: layout.total_bits(),
        total_mem_bits,
        notes,
    })
}

/// Greedy list-scheduling of one region's tables into stages.
fn place_region(
    program: &Program,
    target: &TargetModel,
    region: Region,
    stage_budget: u16,
    notes: &mut Vec<String>,
) -> Result<RegionPlan, CompileError> {
    let layout = program.layout();
    let tables = program.region_tables(region);
    let mut plan = RegionPlan::default();
    if tables.is_empty() {
        return Ok(plan);
    }
    // stage index each already-placed table landed in (for dependencies).
    let mut placed_stage: HashMap<usize, usize> = HashMap::new();

    for (gi, def) in tables {
        let width = program.table_width(&layout, def);
        let cost = table_cost(program, target, def, width, notes)?;

        if cost.mau_slots as u32 > target.maus_per_stage as u32 {
            return Err(CompileError::TableTooLarge {
                table: def.name.clone(),
                slots_needed: cost.mau_slots as u32,
                slots_available: target.maus_per_stage,
            });
        }
        // Cascone-style relaxed state layout ("Relaxing state-access
        // constraints"): a register file bigger than one stage's stateful
        // budget is not an automatic error. On the ADCP's central region
        // the cells are partitioned across the central pipes — the TM
        // already steers each key to its owning pipe, so each pipe holds
        // only `1/central_pipes` of the cells. Whatever remains may span
        // several *consecutive* stages, buying capacity with pipeline
        // depth and a documented per-packet RMW hazard window (the read
        // in the first spanned stage and the write in the last are not
        // atomic w.r.t. packets in flight between them). RMT replicates
        // register state per pipe, so it gets no partition discount:
        // million-flow exact state overflows there unless the program
        // folds its key space.
        let (stage_reg, span) = if cost.reg_bits > target.stage_reg_bits {
            let partitioned =
                region == Region::Central && target.has_central() && target.central_pipes > 1;
            let resident = if partitioned {
                cost.reg_bits.div_ceil(target.central_pipes as u64)
            } else {
                cost.reg_bits
            };
            let span = resident.div_ceil(target.stage_reg_bits).max(1);
            if span > stage_budget as u64 {
                return Err(CompileError::RegisterOverflow {
                    table: def.name.clone(),
                    needed: resident,
                    budget: target.stage_reg_bits * stage_budget as u64,
                });
            }
            if partitioned {
                notes.push(format!(
                    "table {}: {} register bits partitioned across {} central pipes \
                     ({resident} bits resident per pipe)",
                    def.name, cost.reg_bits, target.central_pipes
                ));
            }
            if span > 1 {
                notes.push(format!(
                    "table {}: register state spans {span} consecutive stages \
                     ({resident} bits vs {} per stage); per-packet RMW is non-atomic \
                     across the span — relaxed state-access hazard window of {} \
                     extra stage(s)",
                    def.name,
                    target.stage_reg_bits,
                    span - 1
                ));
            }
            (resident.div_ceil(span), span as usize)
        } else {
            (cost.reg_bits, 1)
        };

        // Earliest stage: strictly after every same-region table this one
        // depends on.
        let earliest = dependency_floor(program, region, gi, def, &placed_stage);

        // First stage from `earliest` with room (for a spanning table: with
        // register room in every stage of the span).
        let mut chosen = None;
        for s in earliest.. {
            if s + span > stage_budget as usize {
                return Err(CompileError::OutOfStages {
                    region,
                    budget: stage_budget,
                });
            }
            while plan.stages.len() < s + span {
                plan.stages.push(StagePlan::default());
            }
            let st = &plan.stages[s];
            let slots_ok =
                st.mau_slots_used as u32 + cost.mau_slots as u32 <= target.maus_per_stage as u32;
            // Disaggregated memory has no per-stage table bound — the
            // chip-wide pool is checked once at the end of compilation.
            let mem_ok = target.pooled_table_memory
                || st.mem_bits_used + cost.mem_bits <= target.stage_mem_bits();
            let reg_ok = (s..s + span)
                .all(|i| plan.stages[i].reg_bits_used + stage_reg <= target.stage_reg_bits);
            if slots_ok && mem_ok && reg_ok {
                chosen = Some(s);
                break;
            }
        }
        let s = chosen.expect("loop either chooses or errors");
        let st = &mut plan.stages[s];
        st.mau_slots_used += cost.mau_slots;
        st.mem_bits_used += cost.mem_bits;
        st.tables.push(PlacedTable {
            table: gi,
            name: def.name.clone(),
            width,
            replicas: cost.replicas,
            mau_slots: cost.mau_slots,
            mem_bits: cost.mem_bits,
            reg_bits: cost.reg_bits,
        });
        for i in s..s + span {
            plan.stages[i].reg_bits_used += stage_reg;
        }
        // A spanning table's result is only coherent after its last stage,
        // so dependents schedule past the whole span.
        placed_stage.insert(gi, s + span - 1);
    }
    Ok(plan)
}

struct TableCost {
    replicas: u16,
    mau_slots: u16,
    mem_bits: u64,
    reg_bits: u64,
}

/// Resource cost of one table on one target — the Fig. 3 arithmetic.
fn table_cost(
    program: &Program,
    target: &TargetModel,
    def: &TableDef,
    width: u16,
    notes: &mut Vec<String>,
) -> Result<TableCost, CompileError> {
    let base_mem = def.mem_bits();
    let has_array_action = def.actions.iter().any(|a| a.has_array_ops());
    // The width that matters for resources is the wider of the key's array
    // width and any array the actions operate on.
    let width = width.max(program.action_array_width(def));
    // A register is provisioned once no matter how many ops (or actions)
    // touch it — dedupe before summing.
    let mut regs: Vec<_> = def.actions.iter().flat_map(|a| a.registers()).collect();
    regs.sort_unstable_by_key(|r| r.0);
    regs.dedup();
    let reg_bits: u64 = regs
        .iter()
        .map(|r| program.registers[r.0 as usize].total_bits())
        .sum();

    // MAU slots express lookup bandwidth. With per-stage SRAM a table also
    // occupies the MAUs whose memory it fills; with a disaggregated pool
    // the match capacity alone binds.
    let mau_of = |mem: u64| -> u16 {
        if target.pooled_table_memory {
            1
        } else {
            mem.div_ceil(target.mau_mem_bits).max(1) as u16
        }
    };

    if width <= 1 && !has_array_action {
        // Plain scalar table.
        return Ok(TableCost {
            replicas: 1,
            mau_slots: mau_of(base_mem),
            mem_bits: base_mem,
            reg_bits,
        });
    }

    if width <= target.max_array_width && (width > 1 || has_array_action) {
        // Native array support: one shared copy across `width`
        // interconnected MAUs (§3.2 / Fig. 6).
        let slots = width.max(mau_of(base_mem));
        return Ok(TableCost {
            replicas: 1,
            mau_slots: slots,
            mem_bits: base_mem,
            reg_bits,
        });
    }

    // Target cannot match the array natively.
    if has_array_action {
        // Array ALU ops cannot be replicated — the application would have
        // to be restructured (which is the paper's point).
        return Err(CompileError::ArrayOpUnsupported {
            table: def.name.clone(),
            width,
        });
    }
    // Match-only array table: replicate the table `width` times (Fig. 3).
    let per_copy = mau_of(base_mem);
    notes.push(format!(
        "table '{}' replicated {}x on {} ({} KiB -> {} KiB)",
        def.name,
        width,
        target.name,
        base_mem / 8 / 1024,
        base_mem * width as u64 / 8 / 1024,
    ));
    Ok(TableCost {
        replicas: width,
        mau_slots: per_copy * width,
        mem_bits: base_mem * width as u64,
        reg_bits: reg_bits * width as u64,
    })
}

/// Strictly-after floor from read/write dependencies on earlier tables in
/// the same region.
fn dependency_floor(
    program: &Program,
    region: Region,
    gi: usize,
    def: &TableDef,
    placed_stage: &HashMap<usize, usize>,
) -> usize {
    let mut reads: Vec<_> = def.actions.iter().flat_map(|a| a.reads()).collect();
    if let Some(k) = def.key {
        reads.push(k.field);
    }
    let writes: Vec<_> = def.actions.iter().flat_map(|a| a.writes()).collect();

    let mut floor = 0usize;
    for (pj, prev) in program.region_tables(region) {
        if pj >= gi {
            break;
        }
        let Some(&ps) = placed_stage.get(&pj) else {
            continue;
        };
        let prev_writes: Vec<_> = prev.actions.iter().flat_map(|a| a.writes()).collect();
        let raw = reads.iter().any(|f| prev_writes.contains(f));
        let waw = writes.iter().any(|f| prev_writes.contains(f));
        if raw || waw {
            floor = floor.max(ps + 1);
        }
    }
    floor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, ActionOp, Operand};
    use crate::header::{FieldDef, FieldId, FieldRef, HeaderDef, HeaderId};
    use crate::parser::ParserSpec;
    use crate::program::ProgramBuilder;
    use crate::registers::{RegAluOp, RegisterDef};
    use crate::table::{KeySpec, MatchKind};

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(HeaderId(h), FieldId(f))
    }

    /// Program with one scalar table and one width-8 array table.
    fn array_program(region: Region, size: u32) -> Program {
        let mut b = ProgramBuilder::new("arr");
        let h = b.header(HeaderDef::new(
            "kv",
            vec![
                FieldDef::scalar("op", 8),
                FieldDef::scalar("dst", 16),
                FieldDef::array("keys", 32, 8),
            ],
        ));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 1),
                kind: MatchKind::Exact,
                bits: 16,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 256,
        });
        b.table(TableDef {
            name: "kv_lookup".into(),
            region,
            key: Some(KeySpec {
                field: fr(0, 2),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size,
        });
        b.build()
    }

    #[test]
    fn scalar_table_costs_one_mau() {
        let p = array_program(Region::Ingress, 64);
        let pl = compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
        let route = pl.ingress.stages[0]
            .tables
            .iter()
            .find(|t| t.name == "route")
            .unwrap();
        assert_eq!(route.replicas, 1);
        assert_eq!(route.mau_slots, 1);
    }

    #[test]
    fn rmt_replicates_array_table_8x() {
        let p = array_program(Region::Ingress, 64);
        let pl = compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
        let (_, _, _stage) = pl.table_location(1).unwrap();
        let kv = pl
            .ingress
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "kv_lookup")
            .unwrap();
        assert_eq!(kv.replicas, 8, "Fig. 3: one copy per array element");
        assert_eq!(kv.mem_bits, 8 * 64 * (32 + 8 + 64));
        assert!(pl.notes.iter().any(|n| n.contains("replicated 8x")));
    }

    #[test]
    fn adcp_places_array_table_once() {
        let p = array_program(Region::Ingress, 64);
        let pl = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        let kv = pl
            .ingress
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "kv_lookup")
            .unwrap();
        assert_eq!(kv.replicas, 1, "§3.2: shared memory, no replication");
        assert_eq!(kv.mau_slots, 8, "8 interconnected MAUs");
        assert_eq!(kv.mem_bits, 64 * (32 + 8 + 64));
    }

    #[test]
    fn central_native_on_adcp() {
        let p = array_program(Region::Central, 64);
        let pl = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(pl.central_impl, CentralImpl::Native);
        assert_eq!(pl.recirc_passes, 0);
        assert!(pl.central.depth() >= 1);
        let (_, region, _) = pl.table_location(1).unwrap();
        assert_eq!(region, Region::Central);
    }

    #[test]
    fn central_egress_pinned_on_rmt() {
        let p = array_program(Region::Central, 64);
        let pl = compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
        assert_eq!(pl.central_impl, CentralImpl::EgressPinned);
        assert_eq!(pl.recirc_passes, 0);
        assert!(pl.notes.iter().any(|n| n.contains("egress-pinned")));
    }

    #[test]
    fn central_recirculated_on_rmt() {
        let p = array_program(Region::Central, 64);
        let opts = CompileOptions {
            rmt_central: RmtCentralStrategy::Recirculate,
        };
        let pl = compile(&p, &TargetModel::rmt_12t(), opts).unwrap();
        assert_eq!(pl.central_impl, CentralImpl::Recirculated);
        assert_eq!(pl.recirc_passes, 1);
    }

    #[test]
    fn phv_overflow_detected() {
        let mut b = ProgramBuilder::new("wide");
        let h = b.header(HeaderDef::new(
            "huge",
            vec![FieldDef::array("x", 64, 200)], // 12,800 bits
        ));
        b.parser(ParserSpec::single(h));
        let p = b.build();
        match compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()) {
            Err(CompileError::PhvOverflow { needed, budget }) => {
                assert_eq!(needed, 12_800);
                assert_eq!(budget, 4_096);
            }
            other => panic!("expected PhvOverflow, got {other:?}"),
        }
    }

    #[test]
    fn array_action_op_rejected_on_rmt() {
        let mut b = ProgramBuilder::new("agg");
        let h = b.header(HeaderDef::new(
            "g",
            vec![FieldDef::scalar("slot", 32), FieldDef::array("w", 32, 8)],
        ));
        b.parser(ParserSpec::single(h));
        let r = b.register(RegisterDef::new("acc", 1024, 32));
        b.table(TableDef {
            name: "aggregate".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "agg",
                vec![ActionOp::RegArray {
                    reg: r,
                    base: Operand::Field(fr(0, 0)),
                    op: RegAluOp::Add,
                    values: fr(0, 1),
                    readback: false,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        let p = b.build();
        match compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()) {
            Err(CompileError::ArrayOpUnsupported { width, .. }) => assert_eq!(width, 8),
            other => panic!("expected ArrayOpUnsupported, got {other:?}"),
        }
        // The same program compiles on the ADCP.
        assert!(compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default()
        )
        .is_ok());
    }

    #[test]
    fn dependent_tables_get_later_stages() {
        let mut b = ProgramBuilder::new("dep");
        let h = b.header(HeaderDef::new(
            "m",
            vec![FieldDef::scalar("a", 32), FieldDef::scalar("b", 32)],
        ));
        b.parser(ParserSpec::single(h));
        // t0 writes field b; t1 keys on field b -> must be a later stage.
        b.table(TableDef {
            name: "writer".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "w",
                vec![ActionOp::Set {
                    dst: fr(0, 1),
                    src: Operand::Const(7),
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "reader".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 1),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 4,
        });
        let p = b.build();
        let pl = compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
        let (_, _, s0) = pl.table_location(0).unwrap();
        let (_, _, s1) = pl.table_location(1).unwrap();
        assert!(s1 > s0, "reader must follow writer: {s0} vs {s1}");
        assert_eq!(pl.region_cycles(Region::Ingress), 2);
    }

    #[test]
    fn out_of_stages_detected() {
        // Chain of dependent tables longer than the stage budget.
        let mut b = ProgramBuilder::new("chain");
        let h = b.header(HeaderDef::new("m", vec![FieldDef::scalar("x", 32)]));
        b.parser(ParserSpec::single(h));
        for i in 0..20 {
            b.table(TableDef {
                name: format!("t{i}"),
                region: Region::Ingress,
                key: None,
                actions: vec![ActionDef::new(
                    "bump",
                    vec![ActionOp::Bin {
                        dst: fr(0, 0),
                        op: crate::action::BinOp::Add,
                        a: Operand::Field(fr(0, 0)),
                        b: Operand::Const(1),
                    }],
                )],
                default_action: 0,
                default_params: vec![],
                size: 1,
            });
        }
        let p = b.build();
        // rmt_12t has 10 ingress stages; 20 chained tables cannot fit.
        match compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()) {
            Err(CompileError::OutOfStages { region, budget }) => {
                assert_eq!(region, Region::Ingress);
                assert_eq!(budget, 10);
            }
            other => panic!("expected OutOfStages, got {other:?}"),
        }
    }

    #[test]
    fn huge_table_spans_maus_and_overflows() {
        // A table so large a stage cannot hold it.
        let mut b = ProgramBuilder::new("huge");
        let h = b.header(HeaderDef::new("m", vec![FieldDef::scalar("k", 32)]));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "big".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 0),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 2_000_000, // 2M entries × 104 bits ≈ 208 Mbit >> 16 Mbit/stage
        });
        let p = b.build();
        match compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()) {
            Err(CompileError::TableTooLarge { slots_needed, .. }) => {
                assert!(slots_needed > 16);
            }
            other => panic!("expected TableTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn drmt_pool_admits_tables_too_big_for_a_stage() {
        // 2M entries x 104 bits ~ 208 Mibit: far beyond one 16 Mibit RMT
        // stage, comfortably inside dRMT's 320 Mibit pool.
        let mut b = ProgramBuilder::new("big");
        let h = b.header(HeaderDef::new("m", vec![FieldDef::scalar("k", 32)]));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "big".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 0),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 2_000_000,
        });
        let p = b.build();
        assert!(matches!(
            compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()),
            Err(CompileError::TableTooLarge { .. })
        ));
        let pl = compile(&p, &TargetModel::drmt_12t(), CompileOptions::default()).unwrap();
        assert_eq!(pl.ingress.depth(), 1);
        assert_eq!(pl.total_mem_bits, 2_000_000 * 104);
    }

    #[test]
    fn drmt_pool_overflow_detected() {
        let mut b = ProgramBuilder::new("toobig");
        let h = b.header(HeaderDef::new("m", vec![FieldDef::scalar("k", 32)]));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "huge".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 0),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![ActionDef::nop()],
            default_action: 0,
            default_params: vec![],
            size: 4_000_000, // ~416 Mibit > 320 Mibit pool
        });
        let p = b.build();
        match compile(&p, &TargetModel::drmt_12t(), CompileOptions::default()) {
            Err(CompileError::PoolOverflow { needed, budget }) => {
                assert!(needed > budget);
            }
            other => panic!("expected PoolOverflow, got {other:?}"),
        }
    }

    #[test]
    fn drmt_still_pays_the_replication_tax() {
        // Disaggregated memory relieves stage pressure, but the scalar-MAU
        // model still forces w replicas for a width-w array table — the
        // Fig. 3 tax survives dRMT, which is the paper's point about
        // "fundamentally offering the same packet-based abstraction".
        let p = array_program(Region::Ingress, 1024);
        let pl = compile(&p, &TargetModel::drmt_12t(), CompileOptions::default()).unwrap();
        let kv = pl
            .ingress
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "kv_lookup")
            .unwrap();
        assert_eq!(kv.replicas, 8);
        let pl_adcp = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        let kv_adcp = pl_adcp
            .ingress
            .stages
            .iter()
            .flat_map(|s| &s.tables)
            .find(|t| t.name == "kv_lookup")
            .unwrap();
        assert_eq!(kv.mem_bits, kv_adcp.mem_bits * 8);
    }

    /// Program with a central per-flow register of `entries` 32-bit cells,
    /// indexed by a packet field (the million-flow state shape).
    fn stateful_program(entries: u32) -> Program {
        let mut b = ProgramBuilder::new("stateful");
        let h = b.header(HeaderDef::new(
            "m",
            vec![FieldDef::scalar("dst", 16), FieldDef::scalar("key", 32)],
        ));
        b.parser(ParserSpec::single(h));
        let r = b.register(RegisterDef::new("flows", entries, 32));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "fwd",
                vec![ActionOp::SetEgress(Operand::Const(0))],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "flow_state".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "touch",
                vec![ActionOp::RegRmw {
                    reg: r,
                    index: Operand::Field(fr(0, 1)),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: None,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    #[test]
    fn million_flow_register_partitions_and_spans_on_adcp() {
        // 10⁶ × 32 b = 32 Mbit of exact per-flow state. The ADCP partitions
        // it across 4 central pipes (8 Mbit resident each), which still
        // exceeds the 4 Mibit stage budget — so it spans 2 consecutive
        // central stages, paying depth plus a recorded RMW hazard window.
        let p = stateful_program(1_000_000);
        let pl = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(pl.central_impl, CentralImpl::Native);
        assert_eq!(pl.central.depth(), 2, "8 Mbit / 4 Mibit per stage");
        assert_eq!(pl.region_cycles(Region::Central), 2, "depth is charged");
        assert!(pl
            .notes
            .iter()
            .any(|n| n.contains("partitioned across 4 central pipes")));
        assert!(pl
            .notes
            .iter()
            .any(|n| n.contains("spans 2 consecutive stages")));
    }

    #[test]
    fn million_flow_register_overflows_rmt() {
        // RMT gets no partition discount (per-pipe-replicated state): the
        // full 32 Mbit would span 16 > 10 stages — a structural overflow.
        let p = stateful_program(1_000_000);
        match compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()) {
            Err(CompileError::RegisterOverflow { needed, budget, .. }) => {
                assert_eq!(needed, 32_000_000);
                assert_eq!(budget, 10 * 2 * 1024 * 1024, "whole-region capacity");
            }
            other => panic!("expected RegisterOverflow, got {other:?}"),
        }
    }

    #[test]
    fn folded_register_spans_on_rmt() {
        // A hash-folded 2^18-slot table (8 Mibit) does fit RMT — across 4
        // consecutive stages with the hazard note. This is the honest RMT
        // fallback: collisions + spanning instead of exact state.
        let p = stateful_program(1 << 18);
        let pl = compile(&p, &TargetModel::rmt_12t(), CompileOptions::default()).unwrap();
        assert_eq!(pl.central.depth(), 4, "8 Mibit / 2 Mibit per stage");
        assert!(pl
            .notes
            .iter()
            .any(|n| n.contains("spans 4 consecutive stages")));
        assert!(
            !pl.notes.iter().any(|n| n.contains("partitioned across")),
            "no partition discount off the ADCP central region"
        );
    }

    #[test]
    fn small_registers_place_exactly_as_before() {
        // The relaxed path only engages past one stage's budget: small
        // registers keep the legacy single-stage accounting and no notes.
        let p = stateful_program(4096);
        let pl = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(pl.central.depth(), 1);
        assert_eq!(pl.central.stages[0].reg_bits_used, 4096 * 32);
        assert!(!pl.notes.iter().any(|n| n.contains("spans")));
        assert!(!pl.notes.iter().any(|n| n.contains("partitioned")));
    }

    #[test]
    fn independent_tables_share_a_stage() {
        let p = array_program(Region::Ingress, 64);
        let pl = compile(
            &p,
            &TargetModel::adcp_reference(),
            CompileOptions::default(),
        )
        .unwrap();
        // route (1 slot) and kv_lookup (8 slots) are independent: same stage.
        assert_eq!(pl.ingress.depth(), 1);
        assert_eq!(pl.ingress.stages[0].tables.len(), 2);
        assert_eq!(pl.ingress.stages[0].mau_slots_used, 9);
    }
}
