//! Executing programs: the match-action interpreter.
//!
//! A [`RegionState`] is the runtime state of **one region of one pipeline**:
//! installed table entries plus register file contents. Pipelines are
//! shared-nothing (in both architectures), so each pipeline instantiates
//! its own `RegionState` — which is precisely how the Fig. 2 problem
//! manifests in this model: coflow state accumulated in pipeline 0's
//! registers is invisible to pipeline 1.
//!
//! Lane semantics (§3.2): a table keyed on a width-`w` array field performs
//! `w` lookups, one per element, and runs the matched action in that
//! element's *lane* — array-field accesses inside the action address the
//! lane's element. Wide ops ([`ActionOp::RegArray`], [`ActionOp::
//! ArrayReduce`]) consume the whole array and execute once.

use crate::action::{fold_hash, ActionDef, ActionOp, Operand};
use crate::header::FieldRef;
use crate::phv::{Phv, PhvLayout};
use crate::program::Program;
use crate::registers::{RegId, RegisterFile};
use crate::table::{Entry, Region, TableError, TableRuntime};
use adcp_sim::packet::{EgressSpec, PortId};

/// Aggregate statistics from running packets through a region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionRunStats {
    /// Packets processed.
    pub packets: u64,
    /// Tables executed (skipped-after-drop tables not counted).
    pub tables_executed: u64,
    /// Individual key lookups (lanes count separately).
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Register ALU operations performed.
    pub reg_ops: u64,
}

/// Runtime state of one region of one pipeline.
#[derive(Debug, Clone)]
pub struct RegionState {
    region: Region,
    /// (global table index, runtime storage), in program order.
    tables: Vec<(usize, TableRuntime)>,
    /// All program registers (only this region's tables touch their own).
    registers: Vec<RegisterFile>,
    /// Statistics accumulated by [`RegionState::run`].
    pub stats: RegionRunStats,
}

impl RegionState {
    /// Fresh state for `region` of `program`.
    pub fn new(program: &Program, region: Region) -> Self {
        RegionState {
            region,
            tables: program
                .region_tables(region)
                .into_iter()
                .map(|(gi, def)| (gi, TableRuntime::new(def)))
                .collect(),
            registers: program.registers.iter().map(RegisterFile::new).collect(),
            stats: RegionRunStats::default(),
        }
    }

    /// The region this state serves.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Install an entry into the table with global index `gi`.
    pub fn install(
        &mut self,
        program: &Program,
        gi: usize,
        entry: Entry,
    ) -> Result<(), TableError> {
        let def = &program.tables[gi];
        let rt = self
            .tables
            .iter_mut()
            .find(|(i, _)| *i == gi)
            .map(|(_, rt)| rt)
            .unwrap_or_else(|| panic!("table {gi} is not in region {:?}", def.region));
        rt.insert(def, entry)
    }

    /// Install an entry by table name (builder/test convenience).
    pub fn install_by_name(
        &mut self,
        program: &Program,
        name: &str,
        entry: Entry,
    ) -> Result<(), TableError> {
        let gi = program
            .tables
            .iter()
            .position(|t| t.name == name)
            .unwrap_or_else(|| panic!("no table named {name}"));
        self.install(program, gi, entry)
    }

    /// Read access to a register file (assertions, control-plane readout).
    pub fn register(&self, r: RegId) -> &RegisterFile {
        &self.registers[r.0 as usize]
    }

    /// Mutable access to a register file (control plane: clear epochs).
    pub fn register_mut(&mut self, r: RegId) -> &mut RegisterFile {
        &mut self.registers[r.0 as usize]
    }

    /// Lookup/hit counters of the table with global index `gi`.
    pub fn table_counters(&self, gi: usize) -> Option<(u64, u64)> {
        self.tables
            .iter()
            .find(|(i, _)| *i == gi)
            .map(|(_, rt)| (rt.lookups(), rt.hits()))
    }

    /// Run one PHV through every table of this region, in program order.
    /// Stops early if an action drops the packet.
    pub fn run(&mut self, program: &Program, layout: &PhvLayout, phv: &mut Phv) {
        let RegionState {
            tables,
            registers,
            stats,
            ..
        } = self;
        run_tables(tables, registers, stats, program, layout, phv);
    }

    /// Like [`RegionState::run`], but the match tables come from `tables`
    /// (typically one shared, control-plane-owned copy) while the register
    /// files and stats are this pipeline's own. Stateless regions (ingress
    /// and egress match tables are installed identically into every
    /// pipeline) can then share one table copy instead of duplicating
    /// every entry per pipe; register state — the part the paper's Fig. 2
    /// argument is about — stays strictly per-pipeline.
    pub fn run_with_tables(
        &mut self,
        tables: &RegionState,
        program: &Program,
        layout: &PhvLayout,
        phv: &mut Phv,
    ) {
        run_tables(
            &tables.tables,
            &mut self.registers,
            &mut self.stats,
            program,
            layout,
            phv,
        );
    }
}

/// Shared body of [`RegionState::run`]/[`RegionState::run_with_tables`]:
/// tables and mutable state are passed separately so the tables may belong
/// to a different (shared) `RegionState` than the registers.
fn run_tables(
    tables: &[(usize, TableRuntime)],
    registers: &mut [RegisterFile],
    stats: &mut RegionRunStats,
    program: &Program,
    layout: &PhvLayout,
    phv: &mut Phv,
) {
    stats.packets += 1;
    let reg_ops_before: u64 = registers.iter().map(|r| r.ops).sum();
    for (gi, rt) in tables {
        if phv.intr.egress == EgressSpec::Drop {
            break;
        }
        let def = &program.tables[*gi];
        stats.tables_executed += 1;
        match def.key {
            None => {
                // Unconditional action stage.
                let action = &def.actions[def.default_action];
                exec_action(
                    action,
                    &def.default_params,
                    0,
                    layout,
                    phv,
                    registers,
                    &program.mcast_groups,
                );
            }
            Some(k) => {
                let lanes = layout
                    .array_dims_of(k.field)
                    .map(|(_, c)| c as usize)
                    .unwrap_or(1);
                for lane in 0..lanes {
                    let key = phv.get_elem(layout, k.field, lane);
                    stats.lookups += 1;
                    // `lookup` takes `&self`, so the entry's action and
                    // params are borrowed in place — no per-lookup
                    // allocation — while the registers (a disjoint
                    // borrow) stay mutable.
                    let (ai, params): (usize, &[u64]) = match rt.lookup(key) {
                        Some(e) => {
                            stats.hits += 1;
                            (e.action, &e.params)
                        }
                        None => (def.default_action, &def.default_params),
                    };
                    let action = &def.actions[ai];
                    exec_action(
                        action,
                        params,
                        lane,
                        layout,
                        phv,
                        registers,
                        &program.mcast_groups,
                    );
                    if phv.intr.egress == EgressSpec::Drop {
                        break;
                    }
                }
            }
        }
    }
    let reg_ops_after: u64 = registers.iter().map(|r| r.ops).sum();
    stats.reg_ops += reg_ops_after - reg_ops_before;
}

/// Element index a field access uses in a given lane.
fn lane_elem(layout: &PhvLayout, f: FieldRef, lane: usize) -> usize {
    match layout.array_dims_of(f) {
        Some((_, count)) => lane.min(count as usize - 1),
        None => 0,
    }
}

fn eval(o: &Operand, params: &[u64], lane: usize, layout: &PhvLayout, phv: &Phv) -> u64 {
    match o {
        Operand::Const(c) => *c,
        Operand::Field(f) => phv.get_elem(layout, *f, lane_elem(layout, *f, lane)),
        Operand::Param(i) => params.get(*i as usize).copied().unwrap_or(0),
    }
}

/// Execute one action in one lane.
fn exec_action(
    action: &ActionDef,
    params: &[u64],
    lane: usize,
    layout: &PhvLayout,
    phv: &mut Phv,
    registers: &mut [RegisterFile],
    mcast_groups: &[Vec<PortId>],
) {
    exec_ops(
        &action.ops,
        params,
        lane,
        layout,
        phv,
        registers,
        mcast_groups,
    );
}

/// Execute a straight-line op sequence in one lane. Returns early on
/// [`ActionOp::Drop`]; a nested sequence ([`ActionOp::IfEq`]) that drops
/// only terminates itself, matching the previous recursive-action
/// semantics.
#[allow(clippy::too_many_arguments)]
fn exec_ops(
    ops: &[ActionOp],
    params: &[u64],
    lane: usize,
    layout: &PhvLayout,
    phv: &mut Phv,
    registers: &mut [RegisterFile],
    mcast_groups: &[Vec<PortId>],
) {
    for op in ops {
        match op {
            ActionOp::Set { dst, src } => {
                let v = eval(src, params, lane, layout, phv);
                let e = lane_elem(layout, *dst, lane);
                phv.set_elem(layout, *dst, e, v);
            }
            ActionOp::Bin { dst, op, a, b } => {
                let va = eval(a, params, lane, layout, phv);
                let vb = eval(b, params, lane, layout, phv);
                let e = lane_elem(layout, *dst, lane);
                phv.set_elem(layout, *dst, e, op.eval(va, vb));
            }
            ActionOp::Hash {
                dst,
                fields,
                modulo,
            } => {
                let h = fold_hash(
                    fields
                        .iter()
                        .map(|f| phv.get_elem(layout, *f, lane_elem(layout, *f, lane))),
                );
                let v = if *modulo == 0 { h } else { h % *modulo };
                let e = lane_elem(layout, *dst, lane);
                phv.set_elem(layout, *dst, e, v);
            }
            ActionOp::RegRead { reg, index, dst } => {
                let idx = eval(index, params, lane, layout, phv);
                let v = registers[reg.0 as usize].read(idx);
                let e = lane_elem(layout, *dst, lane);
                phv.set_elem(layout, *dst, e, v);
            }
            ActionOp::RegRmw {
                reg,
                index,
                op,
                value,
                fetch,
            } => {
                let idx = eval(index, params, lane, layout, phv);
                let v = eval(value, params, lane, layout, phv);
                let old = registers[reg.0 as usize].rmw(idx, *op, v);
                if let Some(f) = fetch {
                    let e = lane_elem(layout, *f, lane);
                    phv.set_elem(layout, *f, e, old);
                }
            }
            ActionOp::RegArray {
                reg,
                base,
                op,
                values,
                readback,
            } => {
                // Wide op: execute once (lane 0 of an array-keyed table
                // would otherwise repeat it per lane).
                if lane != 0 {
                    continue;
                }
                let b = eval(base, params, lane, layout, phv);
                let count = layout
                    .array_dims_of(*values)
                    .map(|(_, c)| c as usize)
                    .unwrap_or(1);
                let rf = &mut registers[reg.0 as usize];
                for i in 0..count {
                    let v = phv.get_elem(layout, *values, i);
                    rf.rmw(b + i as u64, *op, v);
                    if *readback {
                        let post = rf.peek(b + i as u64);
                        phv.set_elem(layout, *values, i, post);
                    }
                }
            }
            ActionOp::ArrayReduce { dst, src, op } => {
                if lane != 0 {
                    continue;
                }
                let vals = phv.get_array(layout, *src);
                let acc = vals[1..].iter().fold(vals[0], |acc, v| op.eval(acc, *v));
                phv.set(layout, *dst, acc);
            }
            ActionOp::SetEgress(o) => {
                let v = eval(o, params, lane, layout, phv);
                phv.intr.egress = EgressSpec::Unicast(PortId(v as u16));
            }
            ActionOp::SetMulticast(o) => {
                let g = eval(o, params, lane, layout, phv) as usize;
                phv.intr.egress = match mcast_groups.get(g) {
                    Some(ports) => EgressSpec::Multicast(ports.clone()),
                    // An out-of-range group id (bad action data) drops.
                    None => EgressSpec::Drop,
                };
            }
            ActionOp::SetCentralPipe(o) => {
                let v = eval(o, params, lane, layout, phv);
                phv.intr.central_pipe = Some(v as u32);
            }
            ActionOp::SetSortKey(o) => {
                let v = eval(o, params, lane, layout, phv);
                phv.intr.sort_key = Some(v);
            }
            ActionOp::CountElements(o) => {
                let v = eval(o, params, lane, layout, phv);
                phv.intr.elements = phv.intr.elements.saturating_add(v as u32);
            }
            ActionOp::Drop => {
                phv.intr.egress = EgressSpec::Drop;
                return;
            }
            ActionOp::MarkDrop => {
                phv.intr.egress = EgressSpec::Drop;
            }
            ActionOp::IfEq { a, b, then } => {
                let va = eval(a, params, lane, layout, phv);
                let vb = eval(b, params, lane, layout, phv);
                if va == vb {
                    // Predicated body: runs in the same lane; a matched
                    // predicate may override an earlier MarkDrop.
                    if phv.intr.egress == EgressSpec::Drop {
                        phv.intr.egress = EgressSpec::Unset;
                    }
                    exec_ops(then, params, lane, layout, phv, registers, mcast_groups);
                }
            }
            ActionOp::Recirculate => {
                phv.intr.recirculate = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{FieldDef, FieldId, HeaderDef, HeaderId};
    use crate::parser::ParserSpec;
    use crate::program::ProgramBuilder;
    use crate::registers::{RegAluOp, RegisterDef};
    use crate::table::{KeySpec, MatchKind, MatchValue, TableDef};

    fn fr(h: u16, f: u16) -> FieldRef {
        FieldRef::new(HeaderId(h), FieldId(f))
    }

    /// Program: header {dst:16, slot:32, vals: 4×32}; ingress table
    /// `route` (exact on dst -> SetEgress(param0)); central keyless table
    /// `agg` (RegArray add + readback); egress table keyless `count`.
    fn program() -> Program {
        let mut b = ProgramBuilder::new("exec-test");
        let h = b.header(HeaderDef::new(
            "m",
            vec![
                FieldDef::scalar("dst", 16),
                FieldDef::scalar("slot", 32),
                FieldDef::array("vals", 32, 4),
            ],
        ));
        b.parser(ParserSpec::single(h));
        let acc = b.register(RegisterDef::new("acc", 64, 32));
        let ctr = b.register(RegisterDef::new("ctr", 4, 64));
        b.table(TableDef {
            name: "route".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 0),
                kind: MatchKind::Exact,
                bits: 16,
            }),
            actions: vec![
                ActionDef::new("fwd", vec![ActionOp::SetEgress(Operand::Param(0))]),
                ActionDef::new("drop", vec![ActionOp::Drop]),
            ],
            default_action: 1,
            default_params: vec![],
            size: 16,
        });
        b.table(TableDef {
            name: "agg".into(),
            region: Region::Central,
            key: None,
            actions: vec![ActionDef::new(
                "agg",
                vec![ActionOp::RegArray {
                    reg: acc,
                    base: Operand::Field(fr(0, 1)),
                    op: RegAluOp::Add,
                    values: fr(0, 2),
                    readback: true,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.table(TableDef {
            name: "count".into(),
            region: Region::Egress,
            key: None,
            actions: vec![ActionDef::new(
                "count",
                vec![ActionOp::RegRmw {
                    reg: ctr,
                    index: Operand::Const(0),
                    op: RegAluOp::Add,
                    value: Operand::Const(1),
                    fetch: None,
                }],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        b.build()
    }

    fn phv_with(p: &Program, dst: u64, slot: u64, vals: [u64; 4]) -> (PhvLayout, Phv) {
        let layout = p.layout();
        let mut phv = layout.instantiate();
        phv.set(&layout, fr(0, 0), dst);
        phv.set(&layout, fr(0, 1), slot);
        for (i, v) in vals.iter().enumerate() {
            phv.set_elem(&layout, fr(0, 2), i, *v);
        }
        (layout, phv)
    }

    #[test]
    fn miss_runs_default_action() {
        let p = program();
        let mut ing = RegionState::new(&p, Region::Ingress);
        let (layout, mut phv) = phv_with(&p, 99, 0, [0; 4]);
        ing.run(&p, &layout, &mut phv);
        assert_eq!(phv.intr.egress, EgressSpec::Drop);
        assert_eq!(ing.stats.lookups, 1);
        assert_eq!(ing.stats.hits, 0);
    }

    #[test]
    fn hit_executes_entry_action_with_params() {
        let p = program();
        let mut ing = RegionState::new(&p, Region::Ingress);
        ing.install_by_name(
            &p,
            "route",
            Entry {
                value: MatchValue::Exact(7),
                action: 0,
                params: vec![3],
            },
        )
        .unwrap();
        let (layout, mut phv) = phv_with(&p, 7, 0, [0; 4]);
        ing.run(&p, &layout, &mut phv);
        assert_eq!(phv.intr.egress, EgressSpec::Unicast(PortId(3)));
        assert_eq!(ing.stats.hits, 1);
        assert_eq!(ing.table_counters(0), Some((1, 1)));
    }

    #[test]
    fn reg_array_aggregates_and_reads_back() {
        let p = program();
        let mut central = RegionState::new(&p, Region::Central);
        let layout = p.layout();

        // Two "workers" contribute to slots 8..12.
        let (_, mut phv1) = phv_with(&p, 0, 8, [1, 2, 3, 4]);
        central.run(&p, &layout, &mut phv1);
        assert_eq!(phv1.get_array(&layout, fr(0, 2)), &[1, 2, 3, 4]);

        let (_, mut phv2) = phv_with(&p, 0, 8, [10, 20, 30, 40]);
        central.run(&p, &layout, &mut phv2);
        // Readback returns the running sums.
        assert_eq!(phv2.get_array(&layout, fr(0, 2)), &[11, 22, 33, 44]);

        let acc = central.register(RegId(0));
        assert_eq!(&acc.snapshot()[8..12], &[11, 22, 33, 44]);
        assert_eq!(central.stats.reg_ops, 8, "4 lanes × 2 packets");
    }

    #[test]
    fn per_pipeline_state_is_isolated() {
        // Two RegionStates = two pipelines: aggregation does NOT converge,
        // which is exactly the Fig. 2 limitation.
        let p = program();
        let layout = p.layout();
        let mut pipe_a = RegionState::new(&p, Region::Central);
        let mut pipe_b = RegionState::new(&p, Region::Central);
        let (_, mut phv1) = phv_with(&p, 0, 0, [5, 5, 5, 5]);
        let (_, mut phv2) = phv_with(&p, 0, 0, [7, 7, 7, 7]);
        pipe_a.run(&p, &layout, &mut phv1);
        pipe_b.run(&p, &layout, &mut phv2);
        assert_eq!(pipe_a.register(RegId(0)).peek(0), 5);
        assert_eq!(pipe_b.register(RegId(0)).peek(0), 7);
        // Neither pipeline holds the coflow total (12).
    }

    #[test]
    fn drop_short_circuits_later_tables() {
        let p = program();
        // Run ingress (default = drop) then egress in one region state
        // chain; the egress counter must not advance for dropped packets.
        let layout = p.layout();
        let mut ing = RegionState::new(&p, Region::Ingress);
        let mut eg = RegionState::new(&p, Region::Egress);
        let (_, mut phv) = phv_with(&p, 1, 0, [0; 4]);
        ing.run(&p, &layout, &mut phv);
        assert_eq!(phv.intr.egress, EgressSpec::Drop);
        if phv.intr.egress != EgressSpec::Drop {
            eg.run(&p, &layout, &mut phv);
        }
        assert_eq!(eg.register(RegId(1)).peek(0), 0);
    }

    #[test]
    fn egress_counter_counts_forwarded() {
        let p = program();
        let layout = p.layout();
        let mut eg = RegionState::new(&p, Region::Egress);
        for _ in 0..5 {
            let (_, mut phv) = phv_with(&p, 0, 0, [0; 4]);
            eg.run(&p, &layout, &mut phv);
        }
        assert_eq!(eg.register(RegId(1)).peek(0), 5);
        assert_eq!(eg.stats.packets, 5);
    }

    #[test]
    fn array_lane_matching_runs_one_action_per_element() {
        // A table keyed on the vals array: each element looks up
        // independently; hits rewrite that element (lane semantics).
        let mut b = ProgramBuilder::new("lanes");
        let h = b.header(HeaderDef::new("m", vec![FieldDef::array("keys", 32, 4)]));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "cache".into(),
            region: Region::Ingress,
            key: Some(KeySpec {
                field: fr(0, 0),
                kind: MatchKind::Exact,
                bits: 32,
            }),
            actions: vec![
                ActionDef::new(
                    "found",
                    vec![ActionOp::Set {
                        dst: fr(0, 0),
                        src: Operand::Param(0),
                    }],
                ),
                ActionDef::nop(),
            ],
            default_action: 1,
            default_params: vec![],
            size: 8,
        });
        let p = b.build();
        let layout = p.layout();
        let mut st = RegionState::new(&p, Region::Ingress);
        // keys 100 and 300 are cached, mapping to 1000 and 3000.
        for (k, v) in [(100u64, 1000u64), (300, 3000)] {
            st.install_by_name(
                &p,
                "cache",
                Entry {
                    value: MatchValue::Exact(k),
                    action: 0,
                    params: vec![v],
                },
            )
            .unwrap();
        }
        let mut phv = layout.instantiate();
        for (i, k) in [100u64, 200, 300, 400].iter().enumerate() {
            phv.set_elem(&layout, fr(0, 0), i, *k);
        }
        st.run(&p, &layout, &mut phv);
        assert_eq!(st.stats.lookups, 4, "one lookup per lane");
        assert_eq!(st.stats.hits, 2);
        assert_eq!(phv.get_array(&layout, fr(0, 0)), &[1000, 200, 3000, 400]);
    }

    #[test]
    fn array_reduce_and_count_elements() {
        let mut b = ProgramBuilder::new("reduce");
        let h = b.header(HeaderDef::new(
            "m",
            vec![FieldDef::scalar("sum", 64), FieldDef::array("xs", 32, 4)],
        ));
        b.parser(ParserSpec::single(h));
        b.table(TableDef {
            name: "reduce".into(),
            region: Region::Ingress,
            key: None,
            actions: vec![ActionDef::new(
                "r",
                vec![
                    ActionOp::ArrayReduce {
                        dst: fr(0, 0),
                        src: fr(0, 1),
                        op: crate::action::BinOp::Add,
                    },
                    ActionOp::CountElements(Operand::Const(4)),
                ],
            )],
            default_action: 0,
            default_params: vec![],
            size: 1,
        });
        let p = b.build();
        let layout = p.layout();
        let mut st = RegionState::new(&p, Region::Ingress);
        let mut phv = layout.instantiate();
        for (i, v) in [10u64, 20, 30, 40].iter().enumerate() {
            phv.set_elem(&layout, fr(0, 1), i, *v);
        }
        st.run(&p, &layout, &mut phv);
        assert_eq!(phv.get(&layout, fr(0, 0)), 100);
        assert_eq!(phv.intr.elements, 4);
    }
}
